//! Property-based tests over the core data structures and protocol
//! invariants, spanning crates.

use domino::phy::gold::{m_sequence, GoldFamily};
use domino::phy::units::{Db, Dbm};
use domino::scheduler::{Converter, ConverterConfig, RandScheduler};
use domino::sim::{Engine, SimDuration, SimTime};
use domino::stats::{jain_index, Cdf};
use domino::topology::conflict::ConflictGraph;
use domino::topology::network::{make_node, Network, PhyParams};
use domino::topology::node::{NodeRole, Position};
use domino::topology::rss::RssMatrix;
use domino::topology::{LinkId, NodeId};
use proptest::prelude::*;

proptest! {
    #[test]
    fn engine_delivers_in_nondecreasing_time_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = engine.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    }

    #[test]
    fn engine_same_time_events_are_fifo(n in 1usize..100) {
        let mut engine = Engine::new();
        let t = SimTime::from_micros(10);
        for i in 0..n {
            engine.schedule_at(t, i);
        }
        let mut expected = 0;
        while let Some((_, v)) = engine.pop() {
            prop_assert_eq!(v, expected);
            expected += 1;
        }
    }

    #[test]
    fn duration_arithmetic_is_consistent(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        let t = SimTime::from_nanos(a);
        prop_assert_eq!((t + db) - db, t);
    }

    #[test]
    fn dbm_power_sum_is_commutative_and_dominant(a in -100.0f64..0.0, b in -100.0f64..0.0) {
        let s1 = Dbm(a).power_sum(Dbm(b));
        let s2 = Dbm(b).power_sum(Dbm(a));
        prop_assert!((s1.value() - s2.value()).abs() < 1e-9);
        prop_assert!(s1.value() >= a.max(b) - 1e-9);
        prop_assert!(s1.value() <= a.max(b) + 3.02);
    }

    #[test]
    fn db_round_trips_through_linear(x in -80.0f64..80.0) {
        let db = Db(x);
        let back = Db::from_linear(db.to_linear());
        prop_assert!((back.value() - x).abs() < 1e-9);
    }

    #[test]
    fn jain_index_bounds(alloc in prop::collection::vec(0.0f64..100.0, 1..40)) {
        let j = jain_index(&alloc);
        prop_assert!(j >= 1.0 / alloc.len() as f64 - 1e-9);
        prop_assert!(j <= 1.0 + 1e-9);
    }

    #[test]
    fn cdf_is_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(samples);
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn m_sequences_are_balanced(degree in 3u32..10) {
        // Every maximal-length sequence has |#1s - #0s| = 1.
        let taps: &[u32] = match degree {
            3 => &[3, 2],
            4 => &[4, 3],
            5 => &[5, 3],
            6 => &[6, 5],
            7 => &[7, 3],
            8 => &[8, 6, 5, 4],
            _ => &[9, 5],
        };
        let code = m_sequence(degree, taps);
        let sum: i32 = code.chips().iter().map(|&c| i32::from(c)).sum();
        prop_assert_eq!(sum.abs(), 1);
    }

    #[test]
    fn rand_scheduler_slots_always_independent(
        seed_backlog in prop::collection::vec(0u32..5, 8),
        cross in prop::collection::vec(any::<bool>(), 4),
    ) {
        // 4 AP-client pairs with random interference pattern.
        let nodes: Vec<_> = (0..4u32)
            .flat_map(|i| {
                [
                    make_node(2 * i, NodeRole::Ap, None, Position::default()),
                    make_node(2 * i + 1, NodeRole::Client, Some(2 * i), Position::default()),
                ]
            })
            .collect();
        let mut rss = RssMatrix::disconnected(8);
        for i in 0..4u32 {
            rss.set_symmetric(NodeId(2 * i), NodeId(2 * i + 1), Dbm(-55.0));
        }
        for (k, &c) in cross.iter().enumerate() {
            if c {
                let i = k as u32;
                let j = (k as u32 + 1) % 4;
                rss.set_symmetric(NodeId(2 * i), NodeId(2 * j + 1), Dbm(-60.0));
            }
        }
        let net = Network::new(nodes, rss, PhyParams::default());
        let graph = ConflictGraph::build_for_scheduling(&net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = seed_backlog.clone();
        let strict = sched.schedule_batch(&graph, &mut backlog, 10);
        for slot in &strict.slots {
            prop_assert!(graph.is_independent(slot));
        }
        // Conservation: consumed packets equal scheduled entries.
        let consumed: u32 = seed_backlog.iter().zip(&backlog).map(|(a, b)| a - b).sum();
        let scheduled: usize = strict.slots.iter().map(Vec::len).sum();
        prop_assert_eq!(consumed as usize, scheduled);
    }

    #[test]
    fn converter_respects_caps_on_random_schedules(
        backlog in prop::collection::vec(0u32..4, 8),
        batch_slots in 1usize..8,
    ) {
        let nodes: Vec<_> = (0..4u32)
            .flat_map(|i| {
                [
                    make_node(2 * i, NodeRole::Ap, None, Position::default()),
                    make_node(2 * i + 1, NodeRole::Client, Some(2 * i), Position::default()),
                ]
            })
            .collect();
        let mut rss = RssMatrix::disconnected(8);
        for i in 0..4u32 {
            rss.set_symmetric(NodeId(2 * i), NodeId(2 * i + 1), Dbm(-55.0));
            for j in (i + 1)..4u32 {
                rss.set_symmetric(NodeId(2 * i), NodeId(2 * j), Dbm(-75.0));
            }
        }
        let net = Network::new(nodes, rss, PhyParams::default());
        let graph = ConflictGraph::build_for_scheduling(&net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut conv = Converter::new(ConverterConfig::default());
        let mut b = backlog.clone();
        let strict = sched.schedule_batch(&graph, &mut b, batch_slots);
        let outcome = conv.convert(&net, &graph, &strict, &net.aps());
        for slot in &outcome.batch.slots {
            let links: Vec<LinkId> = slot.entries.iter().map(|e| e.link).collect();
            prop_assert!(graph.is_independent(&links));
            let mut inbound = std::collections::HashMap::new();
            for burst in &slot.bursts {
                prop_assert!(burst.targets.len() <= 4);
                for t in &burst.targets {
                    *inbound.entry(*t).or_insert(0usize) += 1;
                }
            }
            for (_, count) in inbound {
                prop_assert!(count <= 2);
            }
        }
    }

    #[test]
    fn gold_codes_cross_correlation_is_bounded(i in 0usize..129, j in 0usize..129, shift in 0usize..127) {
        let family = GoldFamily::degree7();
        if i != j {
            let c = family.code(i).periodic_correlation(family.code(j), shift);
            prop_assert!(c.abs() <= 17, "corr {} for ({}, {}) at {}", c, i, j, shift);
        }
    }
}
