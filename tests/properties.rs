//! Property-based tests over the core data structures and protocol
//! invariants, spanning crates. Runs on the in-tree `domino-testkit`
//! property harness: each property draws its inputs from a seeded
//! [`prop::Gen`]; failures shrink to a minimal choice sequence that can be
//! pinned with `prop::replay` (see the regression tests at the bottom).

use domino::core::{scenarios, FaultConfig, RunReport, Scheme, SimulationBuilder};
use domino::mac::FlowKind;
use domino::phy::gold::{m_sequence, GoldFamily};
use domino::phy::units::{Db, Dbm};
use domino::scheduler::{Converter, ConverterConfig, RandScheduler};
use domino::sim::{Engine, SimDuration, SimTime};
use domino::stats::{jain_index, Cdf};
use domino::topology::conflict::ConflictGraph;
use domino::topology::network::{make_node, Network, PhyParams};
use domino::topology::node::{NodeRole, Position};
use domino::topology::rss::RssMatrix;
use domino::topology::{LinkId, NodeId};
use domino_testkit::prop;
use domino_testkit::{prop_assert, prop_assert_eq};

#[test]
fn engine_delivers_in_nondecreasing_time_order() {
    prop::check("engine_delivers_in_nondecreasing_time_order", |g| {
        let times = g.vec(1, 200, |g| g.u64(0, 999_999));
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, _)) = engine.pop() {
            prop_assert!(t >= last);
            last = t;
            count += 1;
        }
        prop_assert_eq!(count, times.len());
    });
}

#[test]
fn engine_same_time_events_are_fifo() {
    prop::check("engine_same_time_events_are_fifo", |g| {
        let n = g.usize(1, 99);
        let mut engine = Engine::new();
        let t = SimTime::from_micros(10);
        for i in 0..n {
            engine.schedule_at(t, i);
        }
        let mut expected = 0;
        while let Some((_, v)) = engine.pop() {
            prop_assert_eq!(v, expected);
            expected += 1;
        }
    });
}

#[test]
fn duration_arithmetic_is_consistent() {
    prop::check("duration_arithmetic_is_consistent", |g| {
        let a = g.u64(0, u32::MAX as u64 - 1);
        let b = g.u64(0, u32::MAX as u64 - 1);
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
        let t = SimTime::from_nanos(a);
        prop_assert_eq!((t + db) - db, t);
    });
}

#[test]
fn dbm_power_sum_is_commutative_and_dominant() {
    prop::check("dbm_power_sum_is_commutative_and_dominant", |g| {
        let a = g.f64(-100.0, 0.0);
        let b = g.f64(-100.0, 0.0);
        let s1 = Dbm(a).power_sum(Dbm(b));
        let s2 = Dbm(b).power_sum(Dbm(a));
        prop_assert!((s1.value() - s2.value()).abs() < 1e-9);
        prop_assert!(s1.value() >= a.max(b) - 1e-9);
        prop_assert!(s1.value() <= a.max(b) + 3.02);
    });
}

#[test]
fn db_round_trips_through_linear() {
    prop::check("db_round_trips_through_linear", |g| {
        let x = g.f64(-80.0, 80.0);
        let db = Db(x);
        let back = Db::from_linear(db.to_linear());
        prop_assert!((back.value() - x).abs() < 1e-9);
    });
}

#[test]
fn jain_index_bounds() {
    prop::check("jain_index_bounds", |g| {
        let alloc = g.vec(1, 40, |g| g.f64(0.0, 100.0));
        let j = jain_index(&alloc);
        prop_assert!(j >= 1.0 / alloc.len() as f64 - 1e-9);
        prop_assert!(j <= 1.0 + 1e-9);
    });
}

#[test]
fn cdf_is_monotone() {
    prop::check("cdf_is_monotone", |g| {
        let samples = g.vec(1, 200, |g| g.f64(-1e6, 1e6));
        let cdf = Cdf::from_samples(samples);
        let pts = cdf.points();
        for w in pts.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            prop_assert!(w[0].1 <= w[1].1);
        }
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
    });
}

#[test]
fn m_sequences_are_balanced() {
    prop::check("m_sequences_are_balanced", |g| {
        // Every maximal-length sequence has |#1s - #0s| = 1.
        let degree = g.u64(3, 9) as u32;
        let taps: &[u32] = match degree {
            3 => &[3, 2],
            4 => &[4, 3],
            5 => &[5, 3],
            6 => &[6, 5],
            7 => &[7, 3],
            8 => &[8, 6, 5, 4],
            _ => &[9, 5],
        };
        let code = m_sequence(degree, taps);
        let sum: i32 = code.chips().iter().map(|&c| i32::from(c)).sum();
        prop_assert_eq!(sum.abs(), 1);
    });
}

/// 4 AP-client pairs wired up with a configurable cross-interference
/// pattern; shared by the scheduler and converter properties.
fn four_pair_network(cross: &[bool]) -> Network {
    let nodes: Vec<_> = (0..4u32)
        .flat_map(|i| {
            [
                make_node(2 * i, NodeRole::Ap, None, Position::default()),
                make_node(2 * i + 1, NodeRole::Client, Some(2 * i), Position::default()),
            ]
        })
        .collect();
    let mut rss = RssMatrix::disconnected(8);
    for i in 0..4u32 {
        rss.set_symmetric(NodeId(2 * i), NodeId(2 * i + 1), Dbm(-55.0));
    }
    for (k, &c) in cross.iter().enumerate() {
        if c {
            let i = k as u32;
            let j = (k as u32 + 1) % 4;
            rss.set_symmetric(NodeId(2 * i), NodeId(2 * j + 1), Dbm(-60.0));
        }
    }
    Network::new(nodes, rss, PhyParams::default())
}

#[test]
fn rand_scheduler_slots_always_independent() {
    prop::check("rand_scheduler_slots_always_independent", |g| {
        let seed_backlog = g.vec(8, 8, |g| g.u64(0, 4) as u32);
        let cross: Vec<bool> = (0..4).map(|_| g.bool()).collect();
        let net = four_pair_network(&cross);
        let graph = ConflictGraph::build_for_scheduling(&net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = seed_backlog.clone();
        let strict = sched.schedule_batch(&graph, &mut backlog, 10);
        for slot in &strict.slots {
            prop_assert!(graph.is_independent(slot));
        }
        // Conservation: consumed packets equal scheduled entries.
        let consumed: u32 = seed_backlog.iter().zip(&backlog).map(|(a, b)| a - b).sum();
        let scheduled: usize = strict.slots.iter().map(Vec::len).sum();
        prop_assert_eq!(consumed as usize, scheduled);
    });
}

#[test]
fn converter_respects_caps_on_random_schedules() {
    prop::check("converter_respects_caps_on_random_schedules", |g| {
        let backlog = g.vec(8, 8, |g| g.u64(0, 3) as u32);
        let batch_slots = g.usize(1, 7);
        let nodes: Vec<_> = (0..4u32)
            .flat_map(|i| {
                [
                    make_node(2 * i, NodeRole::Ap, None, Position::default()),
                    make_node(2 * i + 1, NodeRole::Client, Some(2 * i), Position::default()),
                ]
            })
            .collect();
        let mut rss = RssMatrix::disconnected(8);
        for i in 0..4u32 {
            rss.set_symmetric(NodeId(2 * i), NodeId(2 * i + 1), Dbm(-55.0));
            for j in (i + 1)..4u32 {
                rss.set_symmetric(NodeId(2 * i), NodeId(2 * j), Dbm(-75.0));
            }
        }
        let net = Network::new(nodes, rss, PhyParams::default());
        let graph = ConflictGraph::build_for_scheduling(&net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut conv = Converter::new(ConverterConfig::default());
        let mut b = backlog.clone();
        let strict = sched.schedule_batch(&graph, &mut b, batch_slots);
        let outcome = conv.convert(&net, &graph, &strict, &net.aps());
        for slot in &outcome.batch.slots {
            let links: Vec<LinkId> = slot.entries.iter().map(|e| e.link).collect();
            prop_assert!(graph.is_independent(&links));
            let mut inbound = std::collections::HashMap::new();
            for burst in &slot.bursts {
                prop_assert!(burst.targets.len() <= 4);
                for t in &burst.targets {
                    *inbound.entry(*t).or_insert(0usize) += 1;
                }
            }
            for (_, count) in inbound {
                prop_assert!(count <= 2);
            }
        }
    });
}

#[test]
fn gold_codes_cross_correlation_is_bounded() {
    prop::check("gold_codes_cross_correlation_is_bounded", |g| {
        let family = GoldFamily::degree7();
        let i = g.usize(0, 128);
        let j = g.usize(0, 128);
        let shift = g.usize(0, 126);
        if i != j {
            let c = family.code(i).periodic_correlation(family.code(j), shift);
            prop_assert!(c.abs() <= 17, "corr {} for ({}, {}) at {}", c, i, j, shift);
        }
    });
}

// ---------------------------------------------------------------------------
// Fault-plane properties: for ANY random fault schedule, every MAC's run
// terminates (the engine's liveness monitor stays clean), delivers no more
// than it was offered, keeps its fault counters consistent — and drawing the
// all-zero schedule reproduces the unfaulted seeded run byte-for-byte.
// ---------------------------------------------------------------------------

/// Draw an arbitrary fault schedule. Every knob shrinks toward 0 (= off),
/// so a failing case minimizes to the smallest dose that still breaks the
/// invariant. Ranges run up to roughly twice the `FaultConfig::chaos(1.0)`
/// profile.
fn arbitrary_fault_schedule(g: &mut prop::Gen) -> FaultConfig {
    FaultConfig {
        wired_loss: g.f64(0.0, 0.25),
        wired_spike: g.f64(0.0, 0.16),
        wired_spike_us: g.f64(0.0, 5_000.0),
        ap_crash: g.f64(0.0, 0.02),
        ap_downtime_us: g.f64(0.0, 30_000.0),
        compute_stall: g.f64(0.0, 0.16),
        compute_stall_us: g.f64(0.0, 3_000.0),
        rop_stale: g.f64(0.0, 0.12),
        fade: g.f64(0.0, 0.08),
        fade_len: g.u64(0, 12) as u32,
        rop_corrupt: g.f64(0.0, 0.20),
        churn_rate_hz: g.f64(0.0, 3.0),
        churn_downtime_us: g.f64(0.0, 50_000.0),
    }
}

/// The invariants every faulted run must satisfy.
fn assert_run_invariants(report: &RunReport, duration_s: f64) {
    let s = &report.stats;
    let label = report.scheme.label();
    // Termination: the run ended without tripping the liveness monitor.
    prop_assert_eq!(s.faults.livelocks, 0, "{} livelocked", label);
    prop_assert!(s.events > 0, "{} processed no events", label);
    prop_assert!(s.duration_s == duration_s);
    // Counter consistency across the fault ledger.
    prop_assert!(
        s.faults.crash_recoveries <= s.faults.ap_crashes,
        "{}: more recoveries than crashes: {:?}",
        label,
        s.faults
    );
    prop_assert!(
        s.faults.fades_opened <= s.faults.detections_suppressed,
        "{}: fade opened without suppressing its detection: {:?}",
        label,
        s.faults
    );
    prop_assert!(
        s.domino.watchdog_storms * 8 <= s.domino.watchdog_restarts,
        "{}: storms outnumber restarts: {:?}",
        label,
        s.domino
    );
}

#[test]
fn any_fault_schedule_terminates_and_conserves() {
    let duration_s = 0.1;
    let (down_bps, up_bps) = (4e6, 1e6);
    // The unfaulted pin, computed once per scheme: an all-off plane must
    // reproduce exactly these stats in every case below.
    let baseline = |scheme: Scheme| {
        SimulationBuilder::new(scenarios::fig1())
            .udp(down_bps, up_bps)
            .duration_s(duration_s)
            .seed(7)
            .run(scheme)
    };
    let pins: Vec<RunReport> = Scheme::ALL.iter().map(|&s| baseline(s)).collect();

    prop::check_with(
        prop::Config { cases: 6, seed: 0xFA01, max_shrink_replays: 48 },
        "any_fault_schedule_terminates_and_conserves",
        |g| {
            let faults = arbitrary_fault_schedule(g);
            let seed = g.u64(1, 1 << 20);
            let b = SimulationBuilder::new(scenarios::fig1())
                .udp(down_bps, up_bps)
                .duration_s(duration_s)
                .seed(seed);
            for (&scheme, pin) in Scheme::ALL.iter().zip(&pins) {
                let r = b.clone().faults(faults.clone()).run(scheme);
                assert_run_invariants(&r, duration_s);
                // delivered ≤ offered, per flow link.
                let slack = (r.stats.delivered_bits.len() * 512 * 8) as f64;
                for f in
                    &domino::mac::Workload::udp_updown(b.network_ref(), down_bps, up_bps).flows
                {
                    let FlowKind::Udp { rate_bps } = &f.kind else { continue };
                    let delivered = r.stats.delivered_bits[f.link.index()] as f64;
                    prop_assert!(
                        delivered <= rate_bps * duration_s + slack,
                        "{}: link {:?} delivered {} > offered {}",
                        scheme.label(),
                        f.link,
                        delivered,
                        rate_bps * duration_s
                    );
                }
                // All-off reproduces the pinned seeded stats byte-for-byte
                // regardless of what the faulted run just did.
                let off = b.clone().seed(7).faults(FaultConfig::off()).run(scheme);
                prop_assert_eq!(&off.stats.delivered_bits, &pin.stats.delivered_bits);
                prop_assert_eq!(off.stats.events, pin.stats.events);
                prop_assert_eq!(off.stats.faults, Default::default());
            }
        },
    );
}

#[test]
fn tracing_never_perturbs_a_run() {
    // The observability plane's core contract, exercised under
    // adversarial fault schedules: attaching a trace sink is observation
    // only — every `Eq`-comparable field of `RunStats` is identical with
    // and without the sink, for all four schemes — and the captured
    // trace survives a JSONL round trip losslessly. (`duration_s` and
    // `delays` carry floats/summaries without `Eq`; the golden pins in
    // tests/golden.rs cover those through the rendered text.)
    prop::check_with(
        prop::Config { cases: 4, seed: 0x0B5E, max_shrink_replays: 32 },
        "tracing_never_perturbs_a_run",
        |g| {
            let faults = arbitrary_fault_schedule(g);
            let seed = g.u64(1, 1 << 20);
            let b = SimulationBuilder::new(scenarios::fig1())
                .udp(4e6, 1e6)
                .duration_s(0.1)
                .seed(seed)
                .faults(faults);
            for &scheme in &Scheme::ALL {
                let plain = b.run(scheme);
                let (handle, sink) = domino::obs::TraceHandle::mem();
                let traced = b.run_traced(scheme, handle);
                let eq_fields = |r: &RunReport| {
                    (
                        r.stats.delivered_bits.clone(),
                        r.stats.drops,
                        r.stats.retries,
                        r.stats.ack_timeouts,
                        r.stats.events,
                        r.stats.tcp_retransmissions,
                        r.stats.slot_starts.clone(),
                        r.stats.domino,
                        r.stats.faults,
                    )
                };
                prop_assert_eq!(
                    eq_fields(&plain),
                    eq_fields(&traced),
                    "{}: tracing perturbed the run",
                    scheme.label()
                );
                let records = sink.take();
                prop_assert!(!records.is_empty(), "{}: empty trace", scheme.label());
                let meta = domino::obs::jsonl::TraceMeta {
                    experiment: "properties".to_string(),
                    scheme: scheme.label().to_string(),
                    seed,
                    scale: "quick".to_string(),
                };
                let text = domino::obs::jsonl::write_trace(&meta, &records);
                let (meta2, records2) = domino::obs::jsonl::parse_trace(&text)
                    .expect("a written trace must parse back");
                prop_assert_eq!(meta2, meta, "{}: meta round trip", scheme.label());
                prop_assert_eq!(records2, records, "{}: record round trip", scheme.label());
            }
        },
    );
}

#[test]
fn regression_all_zero_fault_schedule_is_off() {
    // The shrinker's floor for `arbitrary_fault_schedule`: every choice 0
    // must decode to the all-off config (so minimal counterexamples read
    // as "no faults needed").
    prop::replay(&[], |g| {
        let cfg = arbitrary_fault_schedule(g);
        prop_assert!(!cfg.enabled());
        prop_assert_eq!(cfg, FaultConfig::off());
    });
}

// ---------------------------------------------------------------------------
// Regression replays: pinned choice sequences (the shrinker's floor and
// boundary cases) that must keep passing verbatim. `prop::replay` pads
// missing choices with zeros, so `&[]` is the all-minimal input of each
// property — exactly what a fully successful shrink would converge to if the
// property ever regressed there.
// ---------------------------------------------------------------------------

#[test]
fn regression_minimal_inputs_hold() {
    // Single event at t=0 delivered once, in order.
    prop::replay(&[], |g| {
        let times = g.vec(1, 200, |g| g.u64(0, 999_999));
        let mut engine = Engine::new();
        for (i, &t) in times.iter().enumerate() {
            engine.schedule_at(SimTime::from_nanos(t), i);
        }
        prop_assert_eq!(engine.pop(), Some((SimTime::ZERO, 0)));
        prop_assert_eq!(engine.pop(), None);
    });
    // Zero-length durations: identities must hold at the origin.
    prop::replay(&[], |g| {
        let a = g.u64(0, u32::MAX as u64 - 1);
        let da = SimDuration::from_nanos(a);
        prop_assert_eq!(da + da, da);
        prop_assert_eq!((SimTime::from_nanos(a) + da) - da, SimTime::ZERO);
    });
}

#[test]
fn regression_duration_arithmetic_upper_boundary() {
    // Both summands at the top of the sampled range — the carry path the
    // random cases reach only with probability ~2^-64.
    prop::replay(&[u32::MAX as u64 - 1, u32::MAX as u64 - 1], |g| {
        let a = g.u64(0, u32::MAX as u64 - 1);
        let b = g.u64(0, u32::MAX as u64 - 1);
        let (da, db) = (SimDuration::from_nanos(a), SimDuration::from_nanos(b));
        prop_assert_eq!(da + db, db + da);
        prop_assert_eq!((da + db).saturating_sub(db), da);
    });
}

#[test]
fn regression_scheduler_fully_interfering_backlog() {
    // All four cross-interference flags set with a saturated backlog: the
    // densest conflict graph the property can generate.
    prop::replay(&[0, 4, 4, 4, 4, 4, 4, 4, 4, 1, 1, 1, 1], |g| {
        let seed_backlog = g.vec(8, 8, |g| g.u64(0, 4) as u32);
        let cross: Vec<bool> = (0..4).map(|_| g.bool()).collect();
        prop_assert_eq!(&seed_backlog, &vec![4u32; 8]);
        prop_assert_eq!(&cross, &vec![true; 4]);
        let net = four_pair_network(&cross);
        let graph = ConflictGraph::build_for_scheduling(&net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = seed_backlog.clone();
        let strict = sched.schedule_batch(&graph, &mut backlog, 10);
        for slot in &strict.slots {
            prop_assert!(graph.is_independent(slot));
        }
        let consumed: u32 = seed_backlog.iter().zip(&backlog).map(|(a, b)| a - b).sum();
        let scheduled: usize = strict.slots.iter().map(Vec::len).sum();
        prop_assert_eq!(consumed as usize, scheduled);
    });
}
