//! Cross-crate integration tests: the full pipeline from topology
//! generation through scheduling, conversion, and the four MAC engines.

use domino::core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino::scheduler::{Converter, ConverterConfig, RandScheduler};
use domino::topology::conflict::{pair_stats, ConflictGraph};
use domino::topology::{LinkId, PhyParams};

#[test]
fn trace_to_topology_to_conflicts() {
    // The canonical trace supports the paper's T(10,2) with a pair
    // structure near the published one (10 hidden / 62 exposed of 720).
    let net = scenarios::standard_t(10, 2, 1);
    assert_eq!(net.num_nodes(), 30);
    assert_eq!(net.links().len(), 40);
    let graph = ConflictGraph::build(&net);
    let stats = pair_stats(&net, &graph);
    assert_eq!(stats.total, 720, "the paper counts 720 non-sharing link pairs");
    assert!(stats.hidden >= 2 && stats.hidden <= 40, "hidden={}", stats.hidden);
    assert!(stats.exposed >= 20 && stats.exposed <= 120, "exposed={}", stats.exposed);
}

#[test]
fn schedule_convert_execute_round_trip() {
    // Strict schedule -> relative schedule -> executable batch, with
    // invariants held at every step.
    let net = scenarios::standard_t(6, 2, 3);
    let graph = ConflictGraph::build_for_scheduling(&net);
    let mut sched = RandScheduler::new(net.links().len());
    let mut conv = Converter::new(ConverterConfig::default());

    let mut backlog = vec![5u32; net.links().len()];
    let strict = sched.schedule_batch(&graph, &mut backlog, 5);
    assert!(!strict.is_empty());
    for slot in &strict.slots {
        assert!(graph.is_independent(slot));
    }

    let outcome = conv.convert(&net, &graph, &strict, &net.aps());
    for slot in &outcome.batch.slots {
        let links: Vec<LinkId> = slot.entries.iter().map(|e| e.link).collect();
        assert!(graph.is_independent(&links), "converted slot conflicts");
        for b in &slot.bursts {
            assert!(b.targets.len() <= 4, "outbound cap");
        }
    }
}

#[test]
fn all_four_schemes_run_on_the_same_scenario() {
    let net = scenarios::standard_t(4, 2, 5);
    let builder = SimulationBuilder::new(net).udp(4e6, 1e6).duration_s(0.5).seed(5);
    for scheme in Scheme::ALL {
        let r = builder.run(scheme);
        assert!(
            r.aggregate_mbps() > 1.0,
            "{} delivered only {} Mb/s",
            scheme.label(),
            r.aggregate_mbps()
        );
        assert!(r.fairness() > 0.0 && r.fairness() <= 1.0);
    }
}

#[test]
fn domino_beats_dcf_on_the_motivation_network() {
    // The paper's headline on its running example, with Fig 2's flows:
    // AP1->C1, C2->AP2, AP3->C3.
    use domino::topology::NodeId;
    let net = scenarios::fig1();
    let l_ap1 = net.links().iter().find(|l| l.is_downlink() && l.sender == NodeId(0)).unwrap().id;
    let l_c2 = net.links().iter().find(|l| !l.is_downlink() && l.ap == NodeId(2)).unwrap().id;
    let l_ap3 = net.links().iter().find(|l| l.is_downlink() && l.sender == NodeId(4)).unwrap().id;
    let b = SimulationBuilder::new(net)
        .workload(Workload::udp_saturated(&[l_ap1, l_c2, l_ap3]))
        .duration_s(1.5)
        .seed(2);
    let domino = b.run(Scheme::Domino);
    let dcf = b.run(Scheme::Dcf);
    assert!(
        domino.gain_over(&dcf) > 1.2,
        "DOMINO {} vs DCF {}",
        domino.aggregate_mbps(),
        dcf.aggregate_mbps()
    );
}

#[test]
fn runs_are_reproducible_across_the_whole_stack() {
    let net = scenarios::standard_t(5, 2, 9);
    let b = SimulationBuilder::new(net).udp(6e6, 2e6).duration_s(0.5).seed(77);
    for scheme in Scheme::ALL {
        let a = b.run(scheme);
        let c = b.run(scheme);
        assert_eq!(
            a.stats.delivered_bits, c.stats.delivered_bits,
            "{} not deterministic",
            scheme.label()
        );
        assert_eq!(a.stats.events, c.stats.events);
    }
}

#[test]
fn usrp_scenarios_order_domino_gains_like_table2() {
    // ET gains most, HT next, SC least (Table 2's structure).
    let mut gains = Vec::new();
    for scenario in scenarios::UsrpScenario::ALL {
        let net = scenarios::usrp_scenario(scenario);
        let downlinks: Vec<LinkId> = net
            .links()
            .iter()
            .filter(|l| l.is_downlink())
            .map(|l| l.id)
            .collect();
        let cfg = domino::mac::domino::DominoConfig {
            converter: ConverterConfig { insert_rop: false, ..ConverterConfig::default() },
            ..Default::default()
        };
        let b = SimulationBuilder::new(net)
            .workload(Workload::udp_saturated(&downlinks))
            .duration_s(2.0)
            .seed(3)
            .domino_config(cfg);
        gains.push(b.run(Scheme::Domino).gain_over(&b.run(Scheme::Dcf)));
    }
    let (sc, ht, et) = (gains[0], gains[1], gains[2]);
    assert!(et > ht, "ET {et} should beat HT {ht}");
    assert!(ht > sc, "HT {ht} should beat SC {sc}");
    assert!(et > 1.5, "ET gain {et}");
}

#[test]
fn preset_phy_params_are_consistent() {
    let phy = PhyParams::default();
    assert!(phy.cs_threshold.value() < phy.comm_range_rss.value());
    assert!(phy.noise_floor.value() < phy.cs_threshold.value());
}
