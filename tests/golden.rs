//! Golden determinism tests: one small scenario per MAC scheme, pinned to a
//! fixed master seed, asserting the *exact* summary metrics. The whole
//! simulator is specified to be a pure function of `(configuration, seed)` —
//! SplitMix64-derived xoshiro256++ streams, integer-nanosecond clock, no
//! wall-time — so these values must reproduce bit-for-bit on every platform
//! and profile. Any diff here is cross-PR behavioral drift: either an
//! intended semantic change (update the constants and say so in the PR) or
//! an accidental one (a bug).
//!
//! Values are compared after fixed-point formatting so the assertion
//! messages stay readable; the formatting is exact for the precision used.

use domino::core::{scenarios, Scheme, SimulationBuilder};

fn summary(scheme: Scheme) -> String {
    let report = SimulationBuilder::new(scenarios::fig7())
        .udp(10e6, 5e6)
        .duration_s(0.1)
        .seed(0xD0311)
        .run(scheme);
    format!(
        "tput={:.6} delay_us={:.3} fairness={:.6}",
        report.aggregate_mbps(),
        report.mean_delay_us(),
        report.fairness()
    )
}

#[test]
fn golden_dcf_fig7_seeded() {
    assert_eq!(summary(Scheme::Dcf), "tput=12.656640 delay_us=41899.237 fairness=0.486215");
}

#[test]
fn golden_centaur_fig7_seeded() {
    assert_eq!(summary(Scheme::Centaur), "tput=13.312000 delay_us=39435.749 fairness=0.723023");
}

#[test]
fn golden_domino_fig7_seeded() {
    assert_eq!(summary(Scheme::Domino), "tput=20.193280 delay_us=33087.106 fairness=0.963532");
}

#[test]
fn golden_omniscient_fig7_seeded() {
    assert_eq!(
        summary(Scheme::Omniscient),
        "tput=18.759680 delay_us=32503.123 fairness=0.999943"
    );
}

/// The golden values above only catch drift if the run is reproducible in
/// the first place; assert that two back-to-back runs in one process agree.
#[test]
fn golden_runs_are_reproducible_in_process() {
    assert_eq!(summary(Scheme::Domino), summary(Scheme::Domino));
}
