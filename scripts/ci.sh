#!/usr/bin/env bash
# Tier-1 verification, hermeticity checks, and the experiment golden gate.
#
# The workspace must build and test with ZERO network access: every
# dependency is an in-workspace path crate (see crates/testkit for the
# PRNG / property-test / bench substrate that replaced rand, proptest and
# criterion). `--offline` turns any accidental registry dependency into a
# hard error instead of a hung download, and the Cargo.lock scan catches
# one that slipped in while the registry happened to be reachable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (whole workspace, all targets, no network) =="
# --bins is explicit: passing any target-selection flag (--benches) makes
# cargo build ONLY those targets, silently skipping the domino-run /
# domino-trace binaries the later steps drive.
cargo build --release --offline --workspace --bins --benches

echo "== lint gate: domino-lint (before any test runs) =="
# The semantic linter is the cheapest gate with the widest blast radius —
# a hot-path allocation or float-order regression fails here in seconds,
# before the test sweep spends minutes. --deny-unused-waivers keeps the
# waiver ledger honest, and the --json run is byte-diffed against the
# committed baseline so any drift in findings (new, fixed, or re-waived)
# must be reviewed as part of the change that caused it.
cargo run --release --offline -q -p domino-lint -- --deny-unused-waivers
cargo run --release --offline -q -p domino-lint -- --json | diff -u results/lint_findings.json - \
    || { echo "ERROR: lint findings drifted from results/lint_findings.json; regenerate with: cargo run -q -p domino-lint -- --json > results/lint_findings.json" >&2; exit 1; }

echo "== tier-1: test =="
cargo test -q --offline --workspace

echo "== golden gate: domino-run --check =="
# Regenerates every experiment at quick scale across 2 workers and
# byte-diffs against the committed results/ files. Output must be
# identical for any --jobs count, so jobs=2 also exercises the pool's
# index-ordered merge.
./target/release/domino-run --check --jobs 2

echo "== chaos smoke: fixed-seed fault injection =="
# The chaos_degradation experiment drives every scheme through the fault
# plane at increasing intensity: the byte-exact re-check proves faulted
# runs are as deterministic as clean ones (and that no MAC livelocks —
# the experiment's liveness gate is part of its pinned output).
./target/release/domino-run chaos_degradation --check --jobs 2

echo "== observability: traced run stays byte-identical, trace validates =="
# Tracing is observation-only: re-running the golden gate with --trace
# must still byte-match every pinned results/ file, while also writing
# the designated JSONL traces. domino-trace check then validates each
# trace: schema version, well-formed events, monotone timestamps.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
./target/release/domino-run fig10_timeline chaos_degradation --check --jobs 2 --trace "$TRACE_DIR"
for trace in "$TRACE_DIR"/*.jsonl; do
    ./target/release/domino-trace check "$trace"
done

echo "== differential oracle: timer wheel vs reference heap (fixed seed) =="
# The engine's timer wheel is checked op-for-op against the (time, seq)
# BinaryHeap oracle under a fixed master seed so failures replay exactly.
# (The suite already ran once under the workspace test sweep with the
# default seed; this run pins a second, independent exploration.)
TESTKIT_SEED=271828 TESTKIT_CASES=512 \
    cargo test -q --offline -p domino-sim --test differential

echo "== parser fuzz replay: lint parser total under pinned seed =="
# The lint parser must stay total (never panic) on arbitrary token soup;
# the pinned seed makes any regression replay exactly.
TESTKIT_SEED=271828 TESTKIT_CASES=512 \
    cargo test -q --offline -p domino-lint --test parser_fuzz

echo "== lint: clippy =="
# The container may lack clippy; the curated [workspace.lints] clippy set
# still applies through rustc when it is absent.
if command -v cargo-clippy >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -q -- -D warnings
else
    echo "cargo-clippy not installed; skipping"
fi

echo "== hermeticity: lockfile =="
if grep -q '^source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock contains registry-sourced packages:" >&2
    grep -B2 '^source = ' Cargo.lock >&2
    exit 1
fi
echo "Cargo.lock is path-only ($(grep -c '^name = ' Cargo.lock) workspace packages)"

echo "== OK =="
