#!/usr/bin/env bash
# Tier-1 verification, hermeticity checks, and the experiment golden gate.
#
# The workspace must build and test with ZERO network access: every
# dependency is an in-workspace path crate (see crates/testkit for the
# PRNG / property-test / bench substrate that replaced rand, proptest and
# criterion). `--offline` turns any accidental registry dependency into a
# hard error instead of a hung download, and the Cargo.lock scan catches
# one that slipped in while the registry happened to be reachable.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: build (whole workspace, all targets, no network) =="
# --bins is explicit: passing any target-selection flag (--benches) makes
# cargo build ONLY those targets, silently skipping the domino-run /
# domino-trace binaries the later steps drive.
cargo build --release --offline --workspace --bins --benches

echo "== lint gate: domino-lint (before any test runs) =="
# The semantic linter is the cheapest gate with the widest blast radius —
# a hot-path allocation or float-order regression fails here in seconds,
# before the test sweep spends minutes. --deny-unused-waivers keeps the
# waiver ledger honest, and the --json run is byte-diffed against the
# committed baseline so any drift in findings (new, fixed, or re-waived)
# must be reviewed as part of the change that caused it.
cargo run --release --offline -q -p domino-lint -- --deny-unused-waivers
cargo run --release --offline -q -p domino-lint -- --json | diff -u results/lint_findings.json - \
    || { echo "ERROR: lint findings drifted from results/lint_findings.json; regenerate with: cargo run -q -p domino-lint -- --json > results/lint_findings.json" >&2; exit 1; }

echo "== tier-1: test =="
cargo test -q --offline --workspace

echo "== golden gate: domino-run --check =="
# Regenerates every experiment at quick scale across 2 workers and
# byte-diffs against the committed results/ files. Output must be
# identical for any --jobs count, so jobs=2 also exercises the pool's
# index-ordered merge.
./target/release/domino-run --check --jobs 2

echo "== chaos smoke: fixed-seed fault injection =="
# The chaos_degradation experiment drives every scheme through the fault
# plane at increasing intensity: the byte-exact re-check proves faulted
# runs are as deterministic as clean ones (and that no MAC livelocks —
# the experiment's liveness gate is part of its pinned output).
./target/release/domino-run chaos_degradation --check --jobs 2

echo "== observability: traced run stays byte-identical, trace validates =="
# Tracing is observation-only: re-running the golden gate with --trace
# must still byte-match every pinned results/ file, while also writing
# the designated JSONL traces. domino-trace check then validates each
# trace: schema version, well-formed events, monotone timestamps.
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$TRACE_DIR"' EXIT
./target/release/domino-run fig10_timeline chaos_degradation --check --jobs 2 --trace "$TRACE_DIR"
for trace in "$TRACE_DIR"/*.jsonl; do
    ./target/release/domino-trace check "$trace"
done

echo "== source fingerprint: committed manifest matches the tree =="
# The shard cache keys every entry by a digest of the workspace sources;
# the committed manifest pins that fingerprint so a source edit that
# forgets to regenerate it fails here, not as a silent cache miss storm.
./target/release/domino-run fingerprint | diff -u results/source_manifest.txt - \
    || { echo "ERROR: source fingerprint drifted from results/source_manifest.txt; regenerate with: ./target/release/domino-run fingerprint > results/source_manifest.txt" >&2; exit 1; }

echo "== warm-cache gate: cold fill, then zero-execution rerun =="
# Cold: the full default suite through the cache (still --check, so the
# cached path is held to the same byte-for-byte golden bar). Warm: the
# identical invocation must serve every shard from the store — zero
# misses — and still byte-match the goldens. This is the purity claim
# made operational: the cache can change wall time only, never bytes.
CACHE_DIR="$(mktemp -d)/cache"
./target/release/domino-run --check --jobs 2 --cache --cache-dir "$CACHE_DIR" > /dev/null
WARM_LOG="$(mktemp)"
./target/release/domino-run --check --jobs 2 --cache --cache-dir "$CACHE_DIR" | tee "$WARM_LOG" | grep -E "campaign\.cache\.(hits|misses)"
grep -q "campaign.cache.misses 0" "$WARM_LOG" \
    || { echo "ERROR: warm rerun missed the cache" >&2; exit 1; }
if grep -qE " cache: [0-9]+ hits?, [1-9][0-9]* executed" "$WARM_LOG"; then
    echo "ERROR: warm rerun executed shards" >&2
    exit 1
fi
rm -f "$WARM_LOG"

echo "== campaign smoke: grid twice + interrupted resume =="
# A small experiment × seed grid, run cold then warm: the second pass
# must be 100% cache hits and the two merged reports byte-identical.
# Then interruption is simulated by deleting the report, one cell file,
# and the ledger's last line; --resume must rebuild the exact report.
CAMP_DIR="$(mktemp -d)"
cat > "$CAMP_DIR/smoke.campaign" <<'EOF'
campaign ci-smoke
experiments table1_params fig05_rop_samples
seeds 1 2
EOF
./target/release/domino-run campaign "$CAMP_DIR/smoke.campaign" \
    --cache-dir "$CACHE_DIR" --out "$CAMP_DIR/cold"
./target/release/domino-run campaign "$CAMP_DIR/smoke.campaign" \
    --cache-dir "$CACHE_DIR" --out "$CAMP_DIR/warm" | grep -E "cache: [0-9]+ hits, 0 misses"
diff "$CAMP_DIR/cold/report.txt" "$CAMP_DIR/warm/report.txt"
echo "campaign reports identical across cold/warm"
rm -f "$CAMP_DIR/warm/report.txt" "$CAMP_DIR/warm/cells/fig05_rop_samples.quick.s2.txt"
sed -i '$ d' "$CAMP_DIR/warm/ledger.txt"
./target/release/domino-run campaign "$CAMP_DIR/smoke.campaign" \
    --cache-dir "$CACHE_DIR" --out "$CAMP_DIR/warm" --resume | grep "3 resumed, 1 executed"
diff "$CAMP_DIR/cold/report.txt" "$CAMP_DIR/warm/report.txt"
echo "campaign resume rebuilt the identical report"
rm -rf "$CAMP_DIR" "$(dirname "$CACHE_DIR")"

echo "== differential oracle: timer wheel vs reference heap (fixed seed) =="
# The engine's timer wheel is checked op-for-op against the (time, seq)
# BinaryHeap oracle under a fixed master seed so failures replay exactly.
# (The suite already ran once under the workspace test sweep with the
# default seed; this run pins a second, independent exploration.)
TESTKIT_SEED=271828 TESTKIT_CASES=512 \
    cargo test -q --offline -p domino-sim --test differential

echo "== parser fuzz replay: lint parser total under pinned seed =="
# The lint parser must stay total (never panic) on arbitrary token soup;
# the pinned seed makes any regression replay exactly.
TESTKIT_SEED=271828 TESTKIT_CASES=512 \
    cargo test -q --offline -p domino-lint --test parser_fuzz

echo "== lint: clippy =="
# The container may lack clippy; the curated [workspace.lints] clippy set
# still applies through rustc when it is absent.
if command -v cargo-clippy >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -q -- -D warnings
else
    echo "cargo-clippy not installed; skipping"
fi

echo "== hermeticity: lockfile =="
if grep -q '^source = ' Cargo.lock; then
    echo "ERROR: Cargo.lock contains registry-sourced packages:" >&2
    grep -B2 '^source = ' Cargo.lock >&2
    exit 1
fi
echo "Cargo.lock is path-only ($(grep -c '^name = ' Cargo.lock) workspace packages)"

echo "== OK =="
