#!/usr/bin/env bash
# Benchmark the experiment runner and the substrate micro-benches, and
# write a machine-readable summary to BENCH_runner.json at the repo root.
#
# Two quick-scale sweeps of every experiment run through domino-run — a
# serial baseline (jobs=1, what the retired run_all loop amounted to) and
# a parallel one (jobs=$(nproc), override with JOBS=n) — and their outputs
# are diffed to re-assert that parallelism never changes a byte. The
# testkit micro-bench groups (TESTKIT_BENCH_JSON) ride along.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release --offline --workspace

echo "== runner: serial baseline (jobs=1) =="
./target/release/domino-run all --jobs 1 --out "$TMP/serial_out" --json "$TMP/serial.json"

echo "== runner: parallel (jobs=$JOBS) =="
./target/release/domino-run all --jobs "$JOBS" --out "$TMP/parallel_out" --json "$TMP/parallel.json"

echo "== runner: byte-identity across job counts =="
diff -r "$TMP/serial_out" "$TMP/parallel_out"
echo "identical"

echo "== micro-benches (testkit harness) =="
TESTKIT_BENCH_JSON="$TMP/micro" cargo bench --offline -p domino-bench -q

serial_ms=$(sed -n 's/^  "wall_ms": \([0-9.]*\),$/\1/p' "$TMP/serial.json")
parallel_ms=$(sed -n 's/^  "wall_ms": \([0-9.]*\),$/\1/p' "$TMP/parallel.json")
speedup=$(awk -v a="$serial_ms" -v b="$parallel_ms" 'BEGIN { printf "%.2f", a / b }')

{
  echo '{'
  echo '  "suite": "domino-runner",'
  echo "  \"jobs\": $JOBS,"
  echo "  \"host_cpus\": $(nproc),"
  echo "  \"serial_wall_ms\": $serial_ms,"
  echo "  \"parallel_wall_ms\": $parallel_ms,"
  echo "  \"speedup\": $speedup,"
  echo '  "serial":'
  sed 's/^/  /' "$TMP/serial.json"
  echo '  ,"parallel":'
  sed 's/^/  /' "$TMP/parallel.json"
  echo '  ,"micro": {'
  first=1
  for f in "$TMP"/micro/*.json; do
    [ -e "$f" ] || continue
    group=$(basename "$f" .json)
    [ "$first" -eq 1 ] || echo '  ,'
    first=0
    echo "  \"$group\":"
    sed 's/^/  /' "$f"
  done
  echo '  }'
  echo '}'
} > BENCH_runner.json

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool BENCH_runner.json > /dev/null
fi

echo "== wrote BENCH_runner.json (serial ${serial_ms} ms, jobs=$JOBS ${parallel_ms} ms, speedup ${speedup}x) =="
