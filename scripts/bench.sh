#!/usr/bin/env bash
# Benchmark the experiment runner and the substrate micro-benches, and
# write a machine-readable summary to BENCH_runner.json at the repo root.
#
# Two quick-scale sweeps of every experiment run through domino-run — a
# serial baseline (jobs=1, what the retired run_all loop amounted to) and
# a parallel one (jobs=$(nproc), override with JOBS=n) — and their outputs
# are diffed to re-assert that parallelism never changes a byte. The
# testkit micro-bench groups (TESTKIT_BENCH_JSON) ride along.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

cargo build --release --offline --workspace

echo "== runner: serial baseline (jobs=1) =="
./target/release/domino-run all --jobs 1 --out "$TMP/serial_out" --json "$TMP/serial.json"

echo "== runner: parallel (jobs=$JOBS) =="
./target/release/domino-run all --jobs "$JOBS" --out "$TMP/parallel_out" --json "$TMP/parallel.json"

echo "== runner: byte-identity across job counts =="
diff -r "$TMP/serial_out" "$TMP/parallel_out"
echo "identical"

echo "== micro-benches (testkit harness) =="
TESTKIT_BENCH_JSON="$TMP/micro" cargo bench --offline -p domino-bench -q

echo "== campaign: cold vs warm grid =="
# One small experiment × seed grid through the shard cache, timed cold
# (every shard computed + stored) and warm (every shard served from the
# store). The pair lands in BENCH_runner.json as campaign/* micro
# entries so cache overhead and hit-path speedup are tracked run-over-run.
cat > "$TMP/bench.campaign" <<'EOF'
campaign bench-grid
experiments table1_params fig05_rop_samples fig06_guard_sweep
seeds 1 2
EOF
campaign_ns() {
  local out="$1"
  local t0 t1
  t0=$(date +%s%N)
  ./target/release/domino-run campaign "$TMP/bench.campaign" \
      --cache-dir "$TMP/bench-cache" --out "$out" > /dev/null
  t1=$(date +%s%N)
  echo $((t1 - t0))
}
cold_ns=$(campaign_ns "$TMP/bench-cold")
warm_ns=$(campaign_ns "$TMP/bench-warm")
diff "$TMP/bench-cold/report.txt" "$TMP/bench-warm/report.txt"
mkdir -p "$TMP/micro"
{
  echo '{'
  echo '  "group": "campaign",'
  echo '  "results": ['
  echo "    {\"name\": \"campaign/grid_cold\", \"median_ns\": $cold_ns, \"p95_ns\": $cold_ns, \"mean_ns\": $cold_ns, \"min_ns\": $cold_ns, \"iters_per_sample\": 1, \"samples\": 1},"
  echo "    {\"name\": \"campaign/grid_warm\", \"median_ns\": $warm_ns, \"p95_ns\": $warm_ns, \"mean_ns\": $warm_ns, \"min_ns\": $warm_ns, \"iters_per_sample\": 1, \"samples\": 1}"
  echo '  ]'
  echo '}'
} > "$TMP/micro/campaign.json"
echo "campaign grid: cold $((cold_ns / 1000000)) ms, warm $((warm_ns / 1000000)) ms"

serial_ms=$(sed -n 's/^  "wall_ms": \([0-9.]*\),$/\1/p' "$TMP/serial.json")
parallel_ms=$(sed -n 's/^  "wall_ms": \([0-9.]*\),$/\1/p' "$TMP/parallel.json")
speedup=$(awk -v a="$serial_ms" -v b="$parallel_ms" 'BEGIN { printf "%.2f", a / b }')

{
  echo '{'
  echo '  "suite": "domino-runner",'
  echo "  \"jobs\": $JOBS,"
  echo "  \"host_cpus\": $(nproc),"
  echo "  \"serial_wall_ms\": $serial_ms,"
  echo "  \"parallel_wall_ms\": $parallel_ms,"
  echo "  \"speedup\": $speedup,"
  echo '  "serial":'
  sed 's/^/  /' "$TMP/serial.json"
  echo '  ,"parallel":'
  sed 's/^/  /' "$TMP/parallel.json"
  echo '  ,"micro": {'
  first=1
  for f in "$TMP"/micro/*.json; do
    [ -e "$f" ] || continue
    group=$(basename "$f" .json)
    [ "$first" -eq 1 ] || echo '  ,'
    first=0
    echo "  \"$group\":"
    sed 's/^/  /' "$f"
  done
  echo '  }'
  echo '}'
} > BENCH_runner.json

if command -v python3 >/dev/null 2>&1; then
  python3 -m json.tool BENCH_runner.json > /dev/null
fi

echo "== wrote BENCH_runner.json (serial ${serial_ms} ms, jobs=$JOBS ${parallel_ms} ms, speedup ${speedup}x) =="
