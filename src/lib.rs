//! # domino
//!
//! Umbrella crate for the DOMINO (CoNEXT'13) reproduction: re-exports the
//! high-level API from [`domino_core`] plus the substrate crates, and hosts
//! the workspace's runnable examples and cross-crate integration tests.
//!
//! Start with [`domino_core`]'s `SimulationBuilder`; see `examples/` for
//! runnable scenarios and `DESIGN.md` for the full system inventory.

#![forbid(unsafe_code)]

pub use domino_core as core;
pub use domino_faults as faults;
pub use domino_mac as mac;
pub use domino_medium as medium;
pub use domino_obs as obs;
pub use domino_phy as phy;
pub use domino_scheduler as scheduler;
pub use domino_sim as sim;
pub use domino_stats as stats;
pub use domino_topology as topology;
pub use domino_traffic as traffic;
pub use domino_wired as wired;
