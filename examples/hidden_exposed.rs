//! The paper's Fig 1 motivation, end to end: a hidden terminal and an
//! exposed terminal in one 3-pair network, and what each channel-access
//! scheme makes of them.
//!
//! ```text
//! cargo run --release --example hidden_exposed
//! ```

use domino::core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino::topology::conflict::{classify_pair, ConflictGraph};
use domino::topology::NodeId;

fn main() {
    let net = scenarios::fig1();

    // The three flows of Fig 2: AP1->C1 (downlink), C2->AP2 (uplink),
    // AP3->C3 (downlink).
    let l_ap1 = net
        .links()
        .iter()
        .find(|l| l.is_downlink() && l.sender == NodeId(0))
        .unwrap()
        .id;
    let l_c2 = net
        .links()
        .iter()
        .find(|l| !l.is_downlink() && l.ap == NodeId(2))
        .unwrap()
        .id;
    let l_ap3 = net
        .links()
        .iter()
        .find(|l| l.is_downlink() && l.sender == NodeId(4))
        .unwrap()
        .id;

    // Show that the relationships emerge from the RSS map.
    let graph = ConflictGraph::build(&net);
    println!("link relationships (from the RSS map, not hand-coded):");
    println!("  AP1->C1 vs AP3->C3: {:?}", classify_pair(&net, &graph, l_ap1, l_ap3));
    println!("  AP1->C1 vs C2->AP2: {:?}", classify_pair(&net, &graph, l_ap1, l_c2));
    println!();

    let builder = SimulationBuilder::new(net)
        .workload(Workload::udp_saturated(&[l_ap1, l_c2, l_ap3]))
        .duration_s(3.0)
        .seed(1);

    println!(
        "{:<11} {:>8} {:>8} {:>8} {:>8}   notes",
        "scheme", "AP1->C1", "C2->AP2", "AP3->C3", "overall"
    );
    for scheme in [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient] {
        let r = builder.run(scheme);
        let note = match scheme {
            Scheme::Dcf => "hidden link starves; exposed uplink serialized",
            Scheme::Centaur => "downlink scheduled; uplink still contends",
            Scheme::Domino => "relative schedule runs all three",
            Scheme::Omniscient => "perfect sync upper bound",
        };
        println!(
            "{:<11} {:>8.2} {:>8.2} {:>8.2} {:>8.2}   {note}",
            scheme.label(),
            r.link_mbps(l_ap1),
            r.link_mbps(l_c2),
            r.link_mbps(l_ap3),
            r.aggregate_mbps()
        );
    }
}
