//! Quickstart: build an enterprise WLAN from the bundled 40-node trace,
//! run the same workload under DCF and DOMINO, and compare.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use domino::core::{scenarios, Scheme, SimulationBuilder};

fn main() {
    // The paper's T(10,2): 10 APs with 2 clients each, drawn from the
    // synthetic two-building measurement trace exactly as the paper
    // draws its topologies from its testbed trace (§4.2.1).
    let network = scenarios::standard_t(10, 2, 1);
    println!(
        "network: {} nodes, {} links ({} APs)",
        network.num_nodes(),
        network.links().len(),
        network.aps().len()
    );

    // The Fig 12 workload at zero uplink: 10 Mb/s downlink UDP per link,
    // 2 simulated seconds.
    let builder = SimulationBuilder::new(network)
        .udp(10e6, 0.0)
        .duration_s(2.0)
        .seed(42);

    for scheme in [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient] {
        let report = builder.run(scheme);
        println!(
            "{:<10}  {:6.2} Mb/s aggregate   fairness {:.2}   mean delay {:7.2} ms",
            scheme.label(),
            report.aggregate_mbps(),
            report.fairness(),
            report.mean_delay_us() / 1000.0
        );
    }

    let domino = builder.run(Scheme::Domino);
    let dcf = builder.run(Scheme::Dcf);
    println!("\nDOMINO/DCF throughput gain: {:.2}x", domino.gain_over(&dcf));
}
