//! Rapid OFDM Polling at the sample level: 24 clients answer one poll in
//! a single 16 µs OFDM symbol, each on its private subchannel (paper
//! §3.1, Table 1, Figs 3–4).
//!
//! This drives the real DSP pipeline — 2-ASK encoding, IFFT, per-client
//! channel impairments (gain, arrival skew, residual CFO), summation and
//! ADC quantization at the AP, FFT, and amplitude-threshold decoding.
//!
//! ```text
//! cargo run --release --example rop_polling
//! ```

use domino::phy::ofdm::signalgen::ClientChannel;
use domino::phy::ofdm::{combine_at_ap, decode_symbol, encode_queue_symbol, DecoderConfig, RopSymbolConfig};
use domino::sim::rng::streams;
use domino::sim::SimRng;

fn main() {
    let cfg = RopSymbolConfig::default();
    let layout = cfg.layout();
    let mut rng = SimRng::derive(2026, streams::PHY_SAMPLES);

    println!(
        "ROP symbol: {} subcarriers, {} subchannels x {} data bins, {} guard bins between, {:.1} us CP, {:.0} us total\n",
        cfg.n_fft,
        layout.num_subchannels(),
        cfg.data_per_subchannel,
        cfg.guard_subcarriers,
        cfg.cp_duration_us(),
        cfg.symbol_duration_us()
    );

    // Every client picks a queue length and answers with realistic
    // impairments: RSS spread of 25 dB, up to 2 us of arrival skew,
    // residual CFO.
    let mut sent = Vec::new();
    let mut symbols = Vec::new();
    for sc in 0..layout.num_subchannels() {
        let queue = rng.below(64) as u32;
        let rss_offset = -(rng.uniform() * 25.0);
        let chan = ClientChannel::random(rss_offset, &mut rng);
        symbols.push(encode_queue_symbol(&cfg, &layout, sc, queue, &chan));
        sent.push((queue, rss_offset));
    }
    let rx = combine_at_ap(&symbols, 1e-4, 10, &mut rng);

    let all: Vec<usize> = (0..layout.num_subchannels()).collect();
    let (reports, _) = decode_symbol(&cfg, &layout, &rx, &all, &DecoderConfig::default());

    println!("{:>10} {:>10} {:>9} {:>8}", "subchannel", "RSS (dB)", "sent", "decoded");
    let mut correct = 0;
    for (r, (queue, rss)) in reports.iter().zip(&sent) {
        let ok = r.queue == *queue;
        correct += usize::from(ok);
        println!(
            "{:>10} {:>10.1} {:>9} {:>8} {}",
            r.subchannel,
            rss,
            queue,
            r.queue,
            if ok { "" } else { "  <-- error" }
        );
    }
    println!(
        "\n{}/{} queue reports decoded from ONE {} us symbol",
        correct,
        sent.len(),
        cfg.symbol_duration_us()
    );
    println!(
        "(polling the same {} clients one-by-one over 802.11 would cost ~{} us)",
        sent.len(),
        sent.len() * 120
    );
}
