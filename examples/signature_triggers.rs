//! Gold-code signature triggers at the sample level: the mechanism that
//! lets DOMINO "clock" a network without clocks (paper §3.2, Fig 9).
//!
//! A trigger must be detectable (a) without decoding anything, (b) under
//! interference from other signatures summed into the same burst, and
//! (c) well below the packet-decoding SINR. This example demonstrates all
//! three with the real 127-chip correlator.
//!
//! ```text
//! cargo run --release --example signature_triggers
//! ```

use domino::phy::gold::GoldFamily;
use domino::phy::signature::{synthesize_burst, Correlator, SenderSpec};
use domino::sim::rng::streams;
use domino::sim::SimRng;

fn main() {
    let family = GoldFamily::degree7();
    let mut rng = SimRng::derive(7, streams::PHY_SAMPLES);
    let correlator = Correlator::default();

    println!(
        "Gold family: {} codes of length {}, cross-correlation bounded by 17/127\n",
        family.len(),
        family.code(0).len()
    );

    // (a) A lone signature: clean detection.
    let burst = synthesize_burst(&family, &[SenderSpec::simple(vec![42])], 0.05, &mut rng);
    let peak = correlator.peak(&burst, family.code(42));
    let miss = correlator.peak(&burst, family.code(99));
    println!("lone signature 42:   own metric {:.2}, absent code 99 metric {:.2}", peak.metric, miss.metric);

    // (b) Four signatures summed in one burst (DOMINO's outbound cap).
    let combined = vec![3usize, 17, 88, 120];
    let burst = synthesize_burst(
        &family,
        &[SenderSpec::simple(combined.clone())],
        0.05,
        &mut rng,
    );
    let mut candidates = combined.clone();
    candidates.push(59); // false-positive probe
    let detected = correlator.detect(&family, &burst, &candidates);
    println!("4-signature burst:   detected {detected:?} (59 was not sent)");

    // (c) Detection under a much stronger interferer: the target
    // signature arrives 12 dB below an unrelated one, a situation where a
    // packet would be lost outright.
    let weak = SenderSpec {
        code_indices: vec![5],
        delay_chips: 2,
        phase: 0.7,
        amplitude: 10f64.powf(-12.0 / 20.0),
    };
    let strong = SenderSpec::simple(vec![77]);
    let burst = synthesize_burst(&family, &[weak, strong], 0.05, &mut rng);
    let det = Correlator {
        reference_amplitude: 10f64.powf(-12.0 / 20.0),
        ..Correlator::default()
    };
    let hits = det.detect(&family, &burst, &[5, 77]);
    println!("-12 dB SINR trigger: detected {hits:?} (correlation gain at work)");

    // Detection ratio vs combined count, abbreviated Fig 9.
    println!("\ncombined  detection ratio (200 runs, 1 sender)");
    for k in 1..=7 {
        let stats = domino::phy::signature::detection_experiment(
            &family,
            domino::phy::signature::Fig9Setup::OneSender,
            k,
            10.0,
            200,
            &mut rng,
        );
        let bar = "#".repeat((stats.detection_ratio * 40.0) as usize);
        println!("{k:>8}  {:>5.1}%  {bar}", stats.detection_ratio * 100.0);
    }
    println!("\nDOMINO caps bursts at 4 combined signatures for exactly this reason.");
}
