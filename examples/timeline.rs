//! Watch relative scheduling tick: the slot-by-slot timeline of the
//! paper's Fig 7 network under DOMINO, including the initial wired-jitter
//! misalignment healing itself (paper Fig 10 / §4.2.2).
//!
//! ```text
//! cargo run --release --example timeline
//! ```

use domino::core::{scenarios, Scheme, SimulationBuilder};
use domino::mac::domino::DominoConfig;
use domino::wired::WiredLatency;

fn main() {
    let net = scenarios::fig7();
    let cfg = DominoConfig {
        wired: WiredLatency::with_std(60.0), // exaggerate the jitter
        ..DominoConfig::default()
    };
    let report = SimulationBuilder::new(net.clone())
        .udp(10e6, 10e6)
        .duration_s(0.1)
        .seed(11)
        .domino_config(cfg)
        .run(Scheme::Domino);

    println!("slot transmissions (first 30):\n");
    println!("{:>10}  {:>4}  {:<22} payload", "start (us)", "slot", "link");
    for rec in report.stats.slot_starts.iter().take(30) {
        let l = net.link(rec.link);
        let arrow = if l.is_downlink() { "AP -> client" } else { "client -> AP" };
        println!(
            "{:>10.1}  {:>4}  pair {} {:<14} {}",
            rec.start_ns as f64 / 1000.0,
            rec.slot,
            l.ap.0 / 2 + 1,
            arrow,
            if rec.fake { "fake header (keep-alive)" } else { "512 B data" }
        );
    }

    println!("\nmax transmission misalignment per slot — no clock anywhere, yet:\n");
    for (slot, mis) in report.misalignment_by_slot().iter().take(10) {
        println!(
            "slot {slot:>2}: {mis:>8.2} us  {}",
            "#".repeat(((*mis / 2.0) as usize).min(70))
        );
    }
}
