//! Nodes: APs and clients.

use core::fmt;

/// Identifier of a wireless node, dense from zero within a [`Network`].
///
/// [`Network`]: crate::network::Network
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Index into per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a node is an access point (wired to the controller) or a
/// client.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum NodeRole {
    /// Access point: wired to the central controller, runs ROP polls.
    Ap,
    /// Client: associated to exactly one AP.
    Client,
}

/// A 2-D position in meters (used by generated topologies; preset
/// topologies may fabricate RSS directly and leave positions at origin).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Position {
    /// Meters east.
    pub x: f64,
    /// Meters north.
    pub y: f64,
}

impl Position {
    /// Construct a position.
    pub const fn new(x: f64, y: f64) -> Position {
        Position { x, y }
    }

    /// Euclidean distance to another position.
    pub fn distance_to(&self, other: &Position) -> f64 {
        ((self.x - other.x).powi(2) + (self.y - other.y).powi(2)).sqrt()
    }
}

/// One wireless node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Dense identifier.
    pub id: NodeId,
    /// AP or client.
    pub role: NodeRole,
    /// The AP a client is associated with (`None` for APs).
    pub associated_ap: Option<NodeId>,
    /// Physical position, when the topology has one.
    pub position: Position,
    /// Gold-code signature index assigned by the controller.
    pub signature: usize,
}

impl Node {
    /// True if this node is an access point.
    #[inline]
    pub fn is_ap(&self) -> bool {
        self.role == NodeRole::Ap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance() {
        let a = Position::new(0.0, 0.0);
        let b = Position::new(3.0, 4.0);
        assert!((a.distance_to(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.distance_to(&a), 0.0);
    }

    #[test]
    fn node_role() {
        let n = Node {
            id: NodeId(3),
            role: NodeRole::Ap,
            associated_ap: None,
            position: Position::default(),
            signature: 3,
        };
        assert!(n.is_ap());
        assert_eq!(n.id.index(), 3);
        assert_eq!(format!("{}", n.id), "n3");
    }
}
