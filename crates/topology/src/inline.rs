//! A fixed-capacity inline vector for small, bounded payloads.

/// A fixed-capacity inline vector for burst-sized payloads.
///
/// Bursts and trigger assignments ride inside frames, engine events, and
/// AP programs, all of which are cloned on the simulator's hottest paths;
/// with a handful of entries at most, heap-backed storage would spend
/// more time in the allocator than on the copy itself. This stores the
/// elements inline so cloning is a flat memcpy and constructing one
/// allocates nothing.
#[derive(Clone, Copy, Debug)]
pub struct InlineVec<T: Copy + Default, const N: usize> {
    len: u8,
    items: [T; N],
}

impl<T: Copy + Default, const N: usize> InlineVec<T, N> {
    /// An empty list.
    pub fn new() -> InlineVec<T, N> {
        InlineVec { len: 0, items: [T::default(); N] }
    }

    /// A one-element list.
    pub fn of(item: T) -> InlineVec<T, N> {
        let mut v = InlineVec::new();
        v.push(item);
        v
    }

    /// Append an element. Panics past the inline capacity — payload
    /// sizes are bounded by construction (converter `max_outbound`).
    pub fn push(&mut self, item: T) {
        assert!((self.len as usize) < N, "inline capacity {N} exceeded");
        self.items[self.len as usize] = item;
        self.len += 1;
    }

    /// The live elements.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        &self.items[..self.len as usize]
    }
}

impl<T: Copy + Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        InlineVec::new()
    }
}

impl<T: Copy + Default, const N: usize> std::ops::Deref for InlineVec<T, N> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Copy + Default + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl<T: Copy + Default + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Copy + Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<'a, T: Copy + Default, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        v.push(7);
        v.push(9);
        assert_eq!(v.as_slice(), &[7, 9]);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn collect_and_eq() {
        let a: InlineVec<u32, 8> = (0..5).collect();
        let b: InlineVec<u32, 8> = (0..5).collect();
        assert_eq!(a, b);
        assert_eq!(InlineVec::<u32, 8>::of(3).as_slice(), &[3]);
    }

    #[test]
    #[should_panic(expected = "inline capacity")]
    fn overflow_panics() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        v.push(0);
        v.push(1);
        v.push(2);
    }
}
