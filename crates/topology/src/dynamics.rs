//! Conflict-graph maintenance overhead (paper §5, "Building conflict
//! graph dynamically").
//!
//! The paper argues the map can be refreshed fast enough for mobile
//! scenarios: non-interfering nodes beacon concurrently, so a refresh
//! costs `t·(Δ+1)` where `t` is one beacon airtime and `Δ` is the
//! maximum degree of the two-hop interference graph, and it must run
//! once per channel coherence time (125.1 ms for walking speed at
//! 2.4 GHz, citing Fu et al.). With Δ = 40 and 40 µs beacons the paper
//! computes 1.3 % overhead. This module reproduces that arithmetic on
//! real topologies.

use crate::network::Network;
use crate::node::NodeId;
use domino_sim::SimDuration;

/// Channel coherence time at walking speed in the 2.4 GHz band
/// (Fu et al., cited in §5).
pub const WALKING_COHERENCE: SimDuration = SimDuration::from_micros(125_100);

/// Beacon airtime the paper assumes.
pub const BEACON_AIRTIME: SimDuration = SimDuration::from_micros(40);

/// Maximum degree of the two-hop interference graph over *nodes*: two
/// nodes are adjacent when one can interfere with the other (RSS at or
/// above the carrier-sense threshold), and the two-hop graph connects
/// any pair within two such hops.
pub fn two_hop_max_degree(net: &Network) -> usize {
    let n = net.num_nodes();
    let hears = |a: usize, b: usize| {
        net.rss().get(NodeId(a as u32), NodeId(b as u32)) >= net.phy().cs_threshold
            || net.rss().get(NodeId(b as u32), NodeId(a as u32)) >= net.phy().cs_threshold
    };
    // One-hop adjacency.
    let adj: Vec<Vec<bool>> = (0..n)
        .map(|a| (0..n).map(|b| a != b && hears(a, b)).collect())
        .collect();
    // Two-hop closure degree.
    (0..n)
        .map(|a| {
            (0..n)
                .filter(|&b| {
                    a != b && (adj[a][b] || (0..n).any(|m| adj[a][m] && adj[m][b]))
                })
                .count()
        })
        .max()
        .unwrap_or(0)
}

/// Time to refresh the whole conflict map: `t · (Δ + 1)` (§5).
pub fn refresh_time(net: &Network, beacon: SimDuration) -> SimDuration {
    beacon * (two_hop_max_degree(net) as u64 + 1)
}

/// Fraction of airtime spent refreshing the map once per coherence
/// interval.
pub fn maintenance_overhead(net: &Network, beacon: SimDuration, coherence: SimDuration) -> f64 {
    refresh_time(net, beacon).as_nanos() as f64 / coherence.as_nanos() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{make_node, PhyParams};
    use crate::node::{NodeRole, Position};
    use crate::rss::RssMatrix;
    use domino_phy::units::Dbm;

    #[test]
    fn papers_headline_number() {
        // "When Δ = 40 and each beacon takes 40 µs, the overhead is only
        // 1.3 %."
        let overhead =
            (BEACON_AIRTIME * 41).as_nanos() as f64 / WALKING_COHERENCE.as_nanos() as f64;
        assert!((overhead - 0.0131).abs() < 0.0005, "overhead={overhead}");
    }

    fn chain_net(n: u32, rss_val: f64) -> Network {
        // A chain: node i hears node i+1 only.
        let nodes: Vec<_> = (0..n)
            .map(|i| {
                if i % 2 == 0 {
                    make_node(i, NodeRole::Ap, None, Position::default())
                } else {
                    make_node(i, NodeRole::Client, Some(i - 1), Position::default())
                }
            })
            .collect();
        let mut rss = RssMatrix::disconnected(n as usize);
        for i in 0..n - 1 {
            rss.set_symmetric(NodeId(i), NodeId(i + 1), Dbm(rss_val));
        }
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn chain_two_hop_degree() {
        // In a 6-node audible chain, interior nodes reach 2 one-hop + 2
        // two-hop neighbours.
        let net = chain_net(6, -60.0);
        assert_eq!(two_hop_max_degree(&net), 4);
    }

    #[test]
    fn inaudible_network_has_zero_degree() {
        let net = chain_net(4, -95.0); // below the -82 dBm CS threshold
        assert_eq!(two_hop_max_degree(&net), 0);
        assert_eq!(refresh_time(&net, BEACON_AIRTIME), BEACON_AIRTIME);
    }

    #[test]
    fn overhead_on_the_canonical_t10_2() {
        let trace = crate::trace::generate(&crate::trace::TraceConfig::default(), 0xD0311);
        let net = crate::builder::t_topology(&trace, 10, 2, PhyParams::default(), 1).unwrap();
        let overhead = maintenance_overhead(&net, BEACON_AIRTIME, WALKING_COHERENCE);
        // Our 30-node topology is sparser than Δ=40; overhead must land
        // well under a few percent.
        assert!(overhead < 0.02, "overhead={overhead}");
        assert!(overhead > 0.0);
    }
}
