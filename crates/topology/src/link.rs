//! Directed AP↔client links.

use crate::node::NodeId;
use core::fmt;

/// Identifier of a directed link, dense from zero within a network.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LinkId(pub u32);

impl LinkId {
    /// Index into per-link arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// Traffic direction of a link.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Direction {
    /// AP → client.
    Downlink,
    /// Client → AP.
    Uplink,
}

/// A directed transmission link. Exactly one endpoint is an AP (paper
/// §3.3: "either l.sender or l.receiver must be an AP").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Link {
    /// Dense identifier.
    pub id: LinkId,
    /// Transmitting node.
    pub sender: NodeId,
    /// Receiving node.
    pub receiver: NodeId,
    /// The AP endpoint (sender for downlinks, receiver for uplinks).
    pub ap: NodeId,
    /// Downlink or uplink.
    pub direction: Direction,
}

impl Link {
    /// The client endpoint.
    pub fn client(&self) -> NodeId {
        if self.sender == self.ap {
            self.receiver
        } else {
            self.sender
        }
    }

    /// True for AP → client links.
    pub fn is_downlink(&self) -> bool {
        self.direction == Direction::Downlink
    }

    /// The link in the opposite direction over the same pair (identity of
    /// the reverse link is resolved by the network, this only swaps
    /// endpoints).
    pub fn reversed_endpoints(&self) -> (NodeId, NodeId) {
        (self.receiver, self.sender)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downlink_accessors() {
        let l = Link {
            id: LinkId(0),
            sender: NodeId(0),
            receiver: NodeId(1),
            ap: NodeId(0),
            direction: Direction::Downlink,
        };
        assert!(l.is_downlink());
        assert_eq!(l.client(), NodeId(1));
        assert_eq!(l.reversed_endpoints(), (NodeId(1), NodeId(0)));
    }

    #[test]
    fn uplink_accessors() {
        let l = Link {
            id: LinkId(5),
            sender: NodeId(1),
            receiver: NodeId(0),
            ap: NodeId(0),
            direction: Direction::Uplink,
        };
        assert!(!l.is_downlink());
        assert_eq!(l.client(), NodeId(1));
        assert_eq!(format!("{}", l.id), "l5");
    }
}
