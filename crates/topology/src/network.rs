//! The `Network`: nodes, associations, RSS map and the derived link set.

use crate::link::{Direction, Link, LinkId};
use crate::node::{Node, NodeId, NodeRole, Position};
use crate::rss::RssMatrix;
use domino_phy::error_model::DataRate;
use domino_phy::units::{wifi_noise_floor, Dbm};

/// Physical-layer parameters shared by every node in a network.
#[derive(Clone, Copy, Debug)]
pub struct PhyParams {
    /// Data rate used for payload frames (the paper's evaluation fixes
    /// 12 Mb/s).
    pub data_rate: DataRate,
    /// Carrier-sense (preamble-detection) threshold.
    pub cs_threshold: Dbm,
    /// Receiver noise floor.
    pub noise_floor: Dbm,
    /// RSS above which two nodes are considered "in communication range"
    /// when building topologies.
    pub comm_range_rss: Dbm,
}

impl Default for PhyParams {
    fn default() -> PhyParams {
        PhyParams {
            data_rate: DataRate::Mbps12,
            cs_threshold: Dbm(-82.0),
            noise_floor: wifi_noise_floor(),
            // Clients associate with APs they hear comfortably (a healthy
            // SINR margin), as enterprise deployments ensure; this also
            // calibrates the trace-driven pair structure to the paper's.
            comm_range_rss: Dbm(-72.0),
        }
    }
}

/// A complete enterprise WLAN topology.
#[derive(Clone, Debug)]
pub struct Network {
    nodes: Vec<Node>,
    rss: RssMatrix,
    links: Vec<Link>,
    phy: PhyParams,
}

impl Network {
    /// Assemble a network from nodes and an RSS map. Links are derived:
    /// one downlink and one uplink per associated client, ordered by AP
    /// then client.
    ///
    /// Panics if a client lacks an association, an AP has one, node ids
    /// are not dense, or the RSS matrix size mismatches.
    pub fn new(nodes: Vec<Node>, rss: RssMatrix, phy: PhyParams) -> Network {
        assert_eq!(nodes.len(), rss.len(), "RSS matrix size mismatch");
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(n.id.index(), i, "node ids must be dense and ordered");
            match n.role {
                NodeRole::Ap => assert!(n.associated_ap.is_none(), "{} is an AP with an association", n.id),
                NodeRole::Client => {
                    let ap = n.associated_ap.unwrap_or_else(|| panic!("{} has no AP", n.id));
                    assert!(nodes[ap.index()].is_ap(), "{} associated to non-AP {}", n.id, ap);
                }
            }
        }
        let mut links = Vec::new();
        for ap in nodes.iter().filter(|n| n.is_ap()) {
            for client in nodes.iter().filter(|n| n.associated_ap == Some(ap.id)) {
                let dl = LinkId(links.len() as u32);
                links.push(Link {
                    id: dl,
                    sender: ap.id,
                    receiver: client.id,
                    ap: ap.id,
                    direction: Direction::Downlink,
                });
                let ul = LinkId(links.len() as u32);
                links.push(Link {
                    id: ul,
                    sender: client.id,
                    receiver: ap.id,
                    ap: ap.id,
                    direction: Direction::Uplink,
                });
            }
        }
        Network { nodes, rss, links, phy }
    }

    /// All nodes, ordered by id.
    #[inline]
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Node by id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All directed links, ordered by id.
    #[inline]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Link by id.
    #[inline]
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The RSS map.
    #[inline]
    pub fn rss(&self) -> &RssMatrix {
        &self.rss
    }

    /// PHY parameters.
    #[inline]
    pub fn phy(&self) -> &PhyParams {
        &self.phy
    }

    /// All AP node ids.
    pub fn aps(&self) -> Vec<NodeId> {
        self.nodes.iter().filter(|n| n.is_ap()).map(|n| n.id).collect()
    }

    /// Clients associated with `ap`, in id order.
    pub fn clients_of(&self, ap: NodeId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| n.associated_ap == Some(ap))
            .map(|n| n.id)
            .collect()
    }

    /// The link in the opposite direction over the same AP–client pair.
    pub fn reverse_link(&self, id: LinkId) -> LinkId {
        let l = self.link(id);
        self.links
            .iter()
            .find(|o| o.sender == l.receiver && o.receiver == l.sender)
            .map(|o| o.id)
            .expect("every link is created with its reverse")
    }

    /// Links whose sender is `node`.
    pub fn links_from(&self, node: NodeId) -> Vec<LinkId> {
        self.links.iter().filter(|l| l.sender == node).map(|l| l.id).collect()
    }

    /// SNR (dB) of a link's data transmission with no interference.
    pub fn link_snr_db(&self, id: LinkId) -> f64 {
        let l = self.link(id);
        (self.rss.get(l.sender, l.receiver) - self.phy.noise_floor).value()
    }

    /// Can `a` carrier-sense `b`'s transmissions?
    pub fn can_sense(&self, a: NodeId, b: NodeId) -> bool {
        self.rss.get(b, a) >= self.phy.cs_threshold
    }

    /// Nodes in communication range of `node` (either direction at or
    /// above the comm-range RSS).
    pub fn comm_neighbors(&self, node: NodeId) -> Vec<NodeId> {
        (0..self.num_nodes() as u32)
            .map(NodeId)
            .filter(|&o| {
                o != node
                    && (self.rss.get(node, o) >= self.phy.comm_range_rss
                        || self.rss.get(o, node) >= self.phy.comm_range_rss)
            })
            .collect()
    }
}

/// Convenience constructor for a node.
pub fn make_node(id: u32, role: NodeRole, ap: Option<u32>, position: Position) -> Node {
    Node {
        id: NodeId(id),
        role,
        associated_ap: ap.map(NodeId),
        position,
        signature: id as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_pair_network() -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
            make_node(2, NodeRole::Ap, None, Position::default()),
            make_node(3, NodeRole::Client, Some(2), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(4);
        rss.set_symmetric(NodeId(0), NodeId(1), Dbm(-55.0));
        rss.set_symmetric(NodeId(2), NodeId(3), Dbm(-55.0));
        rss.set_symmetric(NodeId(0), NodeId(2), Dbm(-75.0));
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn links_derived_per_pair() {
        let net = two_pair_network();
        assert_eq!(net.links().len(), 4);
        let dl = net.link(LinkId(0));
        assert!(dl.is_downlink());
        assert_eq!(dl.sender, NodeId(0));
        assert_eq!(dl.receiver, NodeId(1));
        assert_eq!(dl.ap, NodeId(0));
        let ul = net.link(LinkId(1));
        assert_eq!(ul.sender, NodeId(1));
        assert_eq!(ul.ap, NodeId(0));
    }

    #[test]
    fn reverse_link_round_trip() {
        let net = two_pair_network();
        for l in net.links() {
            let r = net.reverse_link(l.id);
            assert_eq!(net.reverse_link(r), l.id);
            assert_ne!(r, l.id);
        }
    }

    #[test]
    fn aps_and_clients() {
        let net = two_pair_network();
        assert_eq!(net.aps(), vec![NodeId(0), NodeId(2)]);
        assert_eq!(net.clients_of(NodeId(0)), vec![NodeId(1)]);
        assert_eq!(net.clients_of(NodeId(2)), vec![NodeId(3)]);
    }

    #[test]
    fn snr_and_sensing() {
        let net = two_pair_network();
        // -55 - (-94) = 39 dB SNR.
        assert!((net.link_snr_db(LinkId(0)) - 39.0).abs() < 0.1);
        assert!(net.can_sense(NodeId(0), NodeId(2)));
        assert!(!net.can_sense(NodeId(1), NodeId(3)));
    }

    #[test]
    fn comm_neighbors() {
        // With the -72 dBm association threshold the -75 dBm AP0-AP2 pair
        // is out of communication range; only the -55 dBm client remains.
        let net = two_pair_network();
        assert_eq!(net.comm_neighbors(NodeId(0)), vec![NodeId(1)]);
        // A looser threshold brings AP2 back.
        let loose = PhyParams { comm_range_rss: Dbm(-80.0), ..PhyParams::default() };
        let nodes = net.nodes().to_vec();
        let net2 = Network::new(nodes, net.rss().clone(), loose);
        assert_eq!(net2.comm_neighbors(NodeId(0)), vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "has no AP")]
    fn client_without_ap_panics() {
        let nodes = vec![make_node(0, NodeRole::Client, None, Position::default())];
        let rss = RssMatrix::disconnected(1);
        let _ = Network::new(nodes, rss, PhyParams::default());
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rss_size_mismatch_panics() {
        let nodes = vec![make_node(0, NodeRole::Ap, None, Position::default())];
        let rss = RssMatrix::disconnected(2);
        let _ = Network::new(nodes, rss, PhyParams::default());
    }
}
