//! The paper's hand-drawn example topologies, realized as RSS matrices.
//!
//! Each preset fabricates an RSS map that induces exactly the sensing and
//! interference structure of the corresponding figure under the default
//! PHY parameters (capture ≈ 8.2 dB at 12 Mb/s, carrier sense at −82 dBm,
//! noise floor ≈ −94 dBm). Nothing downstream special-cases these
//! topologies: the conflict graph, hidden/exposed classification, and all
//! MAC behaviour fall out of the matrix.

use crate::network::{make_node, Network, PhyParams};
use crate::node::{NodeId, NodeRole, Position};
use crate::rss::RssMatrix;
use domino_phy::units::Dbm;

/// RSS of an associated AP–client pair: loud and reliable.
const PAIR: Dbm = Dbm(-55.0);
/// RSS that corrupts reception (within ~5 dB of the pair signal).
const INTERFERE: Dbm = Dbm(-60.0);
/// RSS that is sensable (above −82 dBm) but far too weak to corrupt.
const SENSE_ONLY: Dbm = Dbm(-75.0);
/// Background RSS for every other pair: far below carrier sense and
/// packet decoding ("the nodes cannot hear each other"), but real radios
/// are never at negative infinity — Gold-code correlation still detects
/// signatures at this level (21 dB of processing gain), which is what
/// lets DOMINO trigger hidden terminals at all.
const BACKGROUND: Dbm = Dbm(-95.0);

/// Fill every still-unset pair with the background level.
fn fill_background(rss: &mut RssMatrix) {
    let n = rss.len() as u32;
    for a in 0..n {
        for b in (a + 1)..n {
            if rss.get(NodeId(a), NodeId(b)) <= Dbm(-200.0) {
                rss.set(NodeId(a), NodeId(b), BACKGROUND);
            }
            if rss.get(NodeId(b), NodeId(a)) <= Dbm(-200.0) {
                rss.set(NodeId(b), NodeId(a), BACKGROUND);
            }
        }
    }
}

/// Paper Fig 1: three AP–client pairs.
///
/// * Nodes: 0=AP1, 1=C1, 2=AP2, 3=C2, 4=AP3, 5=C3.
/// * Flows evaluated in Fig 2: AP1→C1, C2→AP2, AP3→C3.
/// * AP1 is a hidden terminal to AP3 (AP1's signal corrupts C3, the APs
///   cannot hear each other), and C2/AP1 are exposed to each other.
pub fn fig1(phy: PhyParams) -> Network {
    let nodes = vec![
        make_node(0, NodeRole::Ap, None, Position::new(0.0, 0.0)),
        make_node(1, NodeRole::Client, Some(0), Position::new(0.0, 10.0)),
        make_node(2, NodeRole::Ap, None, Position::new(40.0, 0.0)),
        make_node(3, NodeRole::Client, Some(2), Position::new(30.0, 10.0)),
        make_node(4, NodeRole::Ap, None, Position::new(80.0, 0.0)),
        make_node(5, NodeRole::Client, Some(4), Position::new(70.0, 10.0)),
    ];
    let mut rss = RssMatrix::disconnected(6);
    // Associated pairs.
    rss.set_symmetric(NodeId(0), NodeId(1), PAIR);
    rss.set_symmetric(NodeId(2), NodeId(3), PAIR);
    rss.set_symmetric(NodeId(4), NodeId(5), PAIR);
    // AP1 corrupts C3 (one-directional hidden interference: AP3's signal
    // does not reach C1).
    rss.set(NodeId(0), NodeId(5), INTERFERE);
    rss.set(NodeId(5), NodeId(0), INTERFERE); // C3's ACK also collides at AP1's band; symmetric radio
    // C2 and AP1 hear each other (exposed) but neither corrupts the
    // other's receiver.
    rss.set_symmetric(NodeId(0), NodeId(3), SENSE_ONLY);
    fill_background(&mut rss);
    Network::new(nodes, rss, phy)
}

/// Paper Fig 7: four AP–client pairs whose downlinks form a 4-cycle
/// conflict graph.
///
/// * Nodes: 0=AP1, 1=C1, 2=AP2, 3=C2, 4=AP3, 5=C3, 6=AP4, 7=C4.
/// * Downlink conflicts: (1,2), (2,3), (3,4), (4,1); pairs (1,3) and
///   (2,4) are compatible, giving the two-slot schedule of Fig 7(c).
/// * AP3 and AP4 are hidden to each other; AP2 and AP3 are audible at
///   AP1 (their signals collide there, motivating signature triggers).
pub fn fig7(phy: PhyParams) -> Network {
    let nodes = vec![
        make_node(0, NodeRole::Ap, None, Position::new(0.0, 0.0)),
        make_node(1, NodeRole::Client, Some(0), Position::new(0.0, 10.0)),
        make_node(2, NodeRole::Ap, None, Position::new(30.0, 0.0)),
        make_node(3, NodeRole::Client, Some(2), Position::new(30.0, 10.0)),
        make_node(4, NodeRole::Ap, None, Position::new(60.0, 0.0)),
        make_node(5, NodeRole::Client, Some(4), Position::new(60.0, 10.0)),
        make_node(6, NodeRole::Ap, None, Position::new(90.0, 0.0)),
        make_node(7, NodeRole::Client, Some(6), Position::new(90.0, 10.0)),
    ];
    let ap = |i: usize| NodeId(2 * i as u32);
    let client = |i: usize| NodeId(2 * i as u32 + 1);
    let mut rss = RssMatrix::disconnected(8);
    for i in 0..4 {
        rss.set_symmetric(ap(i), client(i), PAIR);
    }
    // Conflict edges of the 4-cycle: each AP corrupts the next pair's
    // client (and vice versa), wrapping around.
    for (i, j) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
        rss.set_symmetric(ap(i), client(j), INTERFERE);
        rss.set_symmetric(ap(j), client(i), INTERFERE);
    }
    // Sensing relations: AP1–AP2, AP2–AP3, AP4–AP1 hear each other;
    // AP3–AP4 deliberately silent (hidden pair).
    rss.set_symmetric(ap(0), ap(1), SENSE_ONLY);
    rss.set_symmetric(ap(1), ap(2), SENSE_ONLY);
    rss.set_symmetric(ap(3), ap(0), SENSE_ONLY);
    // AP3 is audible at AP1 (collides with AP2's signal there).
    rss.set_symmetric(ap(2), ap(0), SENSE_ONLY);
    fill_background(&mut rss);
    Network::new(nodes, rss, phy)
}

/// Paper Fig 13(a): four downlinks that are all exposed to each other —
/// every AP senses every other AP, no receiver is disturbed.
pub fn fig13a(phy: PhyParams) -> Network {
    let nodes = four_pairs();
    let mut rss = four_pair_rss();
    for i in 0..4u32 {
        for j in (i + 1)..4u32 {
            rss.set_symmetric(NodeId(2 * i), NodeId(2 * j), SENSE_ONLY);
        }
    }
    fill_background(&mut rss);
    Network::new(nodes, rss, phy)
}

/// Paper Fig 13(b): AP1, AP2, AP3 cannot hear each other but all hear
/// AP4 (one common exposed link). CENTAUR's carrier-sense batch alignment
/// breaks down here (Table 3).
pub fn fig13b(phy: PhyParams) -> Network {
    let nodes = four_pairs();
    let mut rss = four_pair_rss();
    for i in 0..3u32 {
        rss.set_symmetric(NodeId(2 * i), NodeId(6), SENSE_ONLY);
    }
    fill_background(&mut rss);
    Network::new(nodes, rss, phy)
}

fn four_pairs() -> Vec<crate::node::Node> {
    (0..4)
        .flat_map(|i| {
            [
                make_node(2 * i, NodeRole::Ap, None, Position::new(30.0 * i as f64, 0.0)),
                make_node(2 * i + 1, NodeRole::Client, Some(2 * i), Position::new(30.0 * i as f64, 10.0)),
            ]
        })
        .collect()
}

fn four_pair_rss() -> RssMatrix {
    let mut rss = RssMatrix::disconnected(8);
    for i in 0..4u32 {
        rss.set_symmetric(NodeId(2 * i), NodeId(2 * i + 1), PAIR);
    }
    rss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conflict::{classify_pair, ConflictGraph, PairKind};
    use crate::link::LinkId;

    fn dl(net: &Network, ap: u32) -> LinkId {
        net.links()
            .iter()
            .find(|l| l.is_downlink() && l.sender == NodeId(ap))
            .unwrap()
            .id
    }

    fn ul(net: &Network, ap: u32) -> LinkId {
        net.links()
            .iter()
            .find(|l| !l.is_downlink() && l.receiver == NodeId(ap))
            .unwrap()
            .id
    }

    #[test]
    fn fig1_has_the_advertised_structure() {
        let net = fig1(PhyParams::default());
        let g = ConflictGraph::build(&net);
        let l1 = dl(&net, 0); // AP1 -> C1
        let l2 = ul(&net, 2); // C2 -> AP2
        let l3 = dl(&net, 4); // AP3 -> C3
        // AP1 hidden to AP3's downlink.
        assert_eq!(classify_pair(&net, &g, l1, l3), PairKind::Hidden);
        // AP1's downlink and C2's uplink are exposed.
        assert_eq!(classify_pair(&net, &g, l1, l2), PairKind::Exposed);
        // C2's uplink does not conflict with AP3's downlink.
        assert!(!g.conflicts(l2, l3));
    }

    #[test]
    fn fig7_conflict_graph_is_the_4_cycle() {
        let net = fig7(PhyParams::default());
        let g = ConflictGraph::build(&net);
        let d: Vec<LinkId> = (0..4).map(|i| dl(&net, 2 * i)).collect();
        for (i, j) in [(0usize, 1usize), (1, 2), (2, 3), (3, 0)] {
            assert!(g.conflicts(d[i], d[j]), "expected conflict {i}-{j}");
        }
        assert!(!g.conflicts(d[0], d[2]), "1-3 must be compatible");
        assert!(!g.conflicts(d[1], d[3]), "2-4 must be compatible");
        // The Fig 7(c) schedule slots are independent sets.
        assert!(g.is_independent(&[d[0], d[2]]));
        assert!(g.is_independent(&[d[1], d[3]]));
    }

    #[test]
    fn fig7_ap3_ap4_hidden() {
        let net = fig7(PhyParams::default());
        let g = ConflictGraph::build(&net);
        let l3 = dl(&net, 4);
        let l4 = dl(&net, 6);
        assert_eq!(classify_pair(&net, &g, l3, l4), PairKind::Hidden);
        // AP3 is audible at AP1 (used for trigger collision discussion).
        assert!(net.can_sense(NodeId(0), NodeId(4)));
    }

    #[test]
    fn fig13a_all_downlinks_mutually_exposed() {
        let net = fig13a(PhyParams::default());
        let g = ConflictGraph::build(&net);
        let d: Vec<LinkId> = (0..4).map(|i| dl(&net, 2 * i)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(
                    classify_pair(&net, &g, d[i], d[j]),
                    PairKind::Exposed,
                    "{i}-{j}"
                );
            }
        }
        assert!(g.is_independent(&d));
    }

    #[test]
    fn fig13b_only_ap4_is_commonly_heard() {
        let net = fig13b(PhyParams::default());
        // AP1..AP3 mutually silent.
        for i in 0..3u32 {
            for j in (i + 1)..3u32 {
                assert!(!net.can_sense(NodeId(2 * i), NodeId(2 * j)));
            }
            assert!(net.can_sense(NodeId(2 * i), NodeId(6)));
            assert!(net.can_sense(NodeId(6), NodeId(2 * i)));
        }
        // All four downlinks remain non-conflicting.
        let g = ConflictGraph::build(&net);
        let d: Vec<LinkId> = (0..4).map(|i| dl(&net, 2 * i)).collect();
        assert!(g.is_independent(&d));
    }
}
