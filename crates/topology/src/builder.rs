//! Topology construction: the paper's T(m, n) selection procedure and the
//! Fig 14 random-placement generator.

use crate::network::{Network, PhyParams};
use crate::node::{Node, NodeId, NodeRole, Position};
use crate::rss::RssMatrix;
use crate::trace::Trace;
use domino_phy::pathloss::{default_tx_power, LogDistanceModel};
use domino_phy::units::Db;
use domino_sim::rng::streams;
use domino_sim::SimRng;

/// Build `T(m, n)` from a trace, following §4.2.1 of the paper:
///
/// 1. sort trace nodes by the number of nodes in their communication
///    range, descending;
/// 2. take the first unused node as an AP and randomly pick `n` unused
///    nodes in its communication range as its clients;
/// 3. repeat until `m` APs are selected.
///
/// Returns `None` when the trace cannot furnish `m` APs with `n` clients
/// each (the caller should retry with another seed or a denser trace).
pub fn t_topology(
    trace: &Trace,
    m: usize,
    n: usize,
    phy: PhyParams,
    seed: u64,
) -> Option<Network> {
    let total = trace.len();
    assert!(m >= 1 && n >= 1);
    let mut rng = SimRng::derive(seed, streams::TOPOLOGY);

    // Communication-range neighbour lists from the trace RSS.
    let neighbors: Vec<Vec<usize>> = (0..total)
        .map(|i| {
            (0..total)
                .filter(|&j| {
                    j != i
                        && trace.rss.get(NodeId(i as u32), NodeId(j as u32))
                            >= phy.comm_range_rss
                })
                .collect()
        })
        .collect();

    let mut order: Vec<usize> = (0..total).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(neighbors[i].len()));

    let mut used = vec![false; total];
    // (trace index, role, ap trace index)
    let mut picked: Vec<(usize, NodeRole, Option<usize>)> = Vec::new();
    let mut aps = 0usize;
    for &cand in &order {
        if aps == m {
            break;
        }
        if used[cand] {
            continue;
        }
        let mut free: Vec<usize> = neighbors[cand].iter().copied().filter(|&j| !used[j]).collect();
        if free.len() < n {
            continue;
        }
        rng.shuffle(&mut free);
        used[cand] = true;
        picked.push((cand, NodeRole::Ap, None));
        for &c in free.iter().take(n) {
            used[c] = true;
            picked.push((c, NodeRole::Client, Some(cand)));
        }
        aps += 1;
    }
    if aps < m {
        return None;
    }

    Some(remap(trace, &picked, phy))
}

/// Re-index a subset of trace nodes into a dense [`Network`].
fn remap(trace: &Trace, picked: &[(usize, NodeRole, Option<usize>)], phy: PhyParams) -> Network {
    let index_of = |trace_idx: usize| -> u32 {
        picked
            .iter()
            .position(|&(t, _, _)| t == trace_idx)
            .expect("AP of a picked client must itself be picked") as u32
    };
    let nodes: Vec<Node> = picked
        .iter()
        .enumerate()
        .map(|(new_id, &(t, role, ap))| Node {
            id: NodeId(new_id as u32),
            role,
            associated_ap: ap.map(|a| NodeId(index_of(a))),
            position: trace.positions[t],
            signature: new_id,
        })
        .collect();
    let mut rss = RssMatrix::disconnected(picked.len());
    for (i, &(ti, _, _)) in picked.iter().enumerate() {
        for (j, &(tj, _, _)) in picked.iter().enumerate() {
            if i == j {
                continue;
            }
            rss.set(
                NodeId(i as u32),
                NodeId(j as u32),
                trace.rss.get(NodeId(ti as u32), NodeId(tj as u32)),
            );
        }
    }
    Network::new(nodes, rss, phy)
}

/// Random-placement generator for the Fig 14 experiment: `m` APs uniformly
/// in a square area of `area_side_m`, each with `n` clients placed
/// uniformly within `client_radius_m` of it; RSS from the ns-3 default
/// path-loss model plus light shadowing.
pub fn random_placement(
    m: usize,
    n: usize,
    area_side_m: f64,
    client_radius_m: f64,
    phy: PhyParams,
    seed: u64,
) -> Network {
    let mut rng = SimRng::derive(seed, streams::TOPOLOGY);
    let mut nodes = Vec::new();
    for ap_idx in 0..m {
        let ap_id = nodes.len() as u32;
        let ap_pos = Position::new(
            rng.uniform_range(0.0, area_side_m),
            rng.uniform_range(0.0, area_side_m),
        );
        nodes.push(Node {
            id: NodeId(ap_id),
            role: NodeRole::Ap,
            associated_ap: None,
            position: ap_pos,
            signature: ap_id as usize,
        });
        for _ in 0..n {
            let id = nodes.len() as u32;
            let theta = rng.uniform_range(0.0, 2.0 * core::f64::consts::PI);
            // sqrt for uniform density over the disc.
            let r = client_radius_m * rng.uniform().sqrt();
            nodes.push(Node {
                id: NodeId(id),
                role: NodeRole::Client,
                associated_ap: Some(NodeId(ap_id)),
                position: Position::new(
                    (ap_pos.x + r * theta.cos()).clamp(0.0, area_side_m),
                    (ap_pos.y + r * theta.sin()).clamp(0.0, area_side_m),
                ),
                signature: id as usize,
            });
        }
        let _ = ap_idx;
    }

    let model = LogDistanceModel::ns3_default();
    let tx = default_tx_power();
    let mut rss = RssMatrix::disconnected(nodes.len());
    for i in 0..nodes.len() {
        for j in (i + 1)..nodes.len() {
            let d = nodes[i].position.distance_to(&nodes[j].position);
            let shadow = Db(rng.normal(0.0, 3.0));
            rss.set_symmetric(
                NodeId(i as u32),
                NodeId(j as u32),
                tx - model.loss(d) + shadow,
            );
        }
    }
    Network::new(nodes, rss, phy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{generate, TraceConfig};

    #[test]
    fn t_topology_shape() {
        let trace = generate(&TraceConfig::default(), 42);
        let net = t_topology(&trace, 10, 2, PhyParams::default(), 1)
            .expect("default trace supports T(10,2)");
        assert_eq!(net.aps().len(), 10);
        assert_eq!(net.num_nodes(), 30);
        for ap in net.aps() {
            assert_eq!(net.clients_of(ap).len(), 2);
        }
        // 10 APs x 2 clients x 2 directions.
        assert_eq!(net.links().len(), 40);
    }

    #[test]
    fn t_topology_clients_in_range() {
        let trace = generate(&TraceConfig::default(), 42);
        let net = t_topology(&trace, 6, 3, PhyParams::default(), 2).unwrap();
        for ap in net.aps() {
            for c in net.clients_of(ap) {
                assert!(
                    net.rss().get(ap, c) >= net.phy().comm_range_rss,
                    "client {c} out of range of {ap}"
                );
            }
        }
    }

    #[test]
    fn t_topology_is_seed_sensitive_but_deterministic() {
        let trace = generate(&TraceConfig::default(), 42);
        let a = t_topology(&trace, 5, 2, PhyParams::default(), 1).unwrap();
        let b = t_topology(&trace, 5, 2, PhyParams::default(), 1).unwrap();
        let c = t_topology(&trace, 5, 2, PhyParams::default(), 99).unwrap();
        let sig = |n: &Network| {
            n.nodes()
                .iter()
                .map(|x| (x.position.x * 1000.0) as i64)
                .collect::<Vec<_>>()
        };
        assert_eq!(sig(&a), sig(&b));
        assert_ne!(sig(&a), sig(&c));
    }

    #[test]
    fn impossible_request_returns_none() {
        let trace = generate(&TraceConfig::default(), 42);
        assert!(t_topology(&trace, 25, 10, PhyParams::default(), 1).is_none());
    }

    #[test]
    fn random_placement_shape() {
        let net = random_placement(20, 3, 800.0, 30.0, PhyParams::default(), 7);
        assert_eq!(net.num_nodes(), 80);
        assert_eq!(net.aps().len(), 20);
        // Clients placed near their AP.
        for ap in net.aps() {
            let ap_pos = net.node(ap).position;
            for c in net.clients_of(ap) {
                assert!(net.node(c).position.distance_to(&ap_pos) <= 30.0 * 1.5);
            }
        }
    }

    #[test]
    fn random_placement_links_usable() {
        let net = random_placement(20, 3, 800.0, 30.0, PhyParams::default(), 3);
        let mut usable = 0;
        for l in net.links() {
            if net.link_snr_db(l.id) > 10.0 {
                usable += 1;
            }
        }
        // The vast majority of 30 m links must be healthy at 12 Mb/s.
        assert!(usable as f64 / net.links().len() as f64 > 0.9);
    }
}
