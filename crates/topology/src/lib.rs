//! # domino-topology
//!
//! Topology substrate for the DOMINO (CoNEXT'13) reproduction: nodes and
//! AP–client associations ([`node`], [`network`]), directed links
//! ([`link`]), pairwise RSS maps ([`rss`]), conflict graphs with
//! hidden/exposed classification ([`conflict`]), the synthetic 40-node
//! two-building trace that replaces the paper's measurement campaign
//! ([`trace`]), the paper's T(m, n) selection procedure and Fig 14
//! random-placement generator ([`builder`]), the hand-drawn example
//! topologies of Figs 1, 7 and 13 ([`presets`]), and the §5
//! conflict-map maintenance-overhead arithmetic ([`dynamics`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod conflict;
pub mod dynamics;
pub mod inline;
pub mod link;
pub mod network;
pub mod node;
pub mod presets;
pub mod rss;
pub mod trace;

pub use conflict::{ConflictGraph, PairKind, PairStats};
pub use inline::InlineVec;
pub use link::{Direction, Link, LinkId};
pub use network::{Network, PhyParams};
pub use node::{Node, NodeId, NodeRole, Position};
pub use rss::RssMatrix;
