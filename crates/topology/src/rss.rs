//! Pairwise received-signal-strength matrices.
//!
//! The central interference map of DOMINO is "the received signal strength
//! between all node pairs, maintained at the server" (paper §3). All
//! reception, carrier-sense and conflict decisions in the reproduction
//! derive from this matrix — preset topologies fabricate it directly,
//! generated topologies compute it from positions and a path-loss model.

use crate::node::NodeId;
use domino_phy::units::Dbm;

/// Dense N×N matrix of RSS values; `get(tx, rx)` is the power of `tx`'s
/// transmission as received at `rx`.
#[derive(Clone, Debug)]
pub struct RssMatrix {
    n: usize,
    values: Vec<Dbm>,
}

impl RssMatrix {
    /// A matrix of `n` nodes with every entry at [`Dbm::FLOOR`] (no node
    /// hears any other).
    pub fn disconnected(n: usize) -> RssMatrix {
        RssMatrix { n, values: vec![Dbm::FLOOR; n * n] }
    }

    /// Number of nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix covers zero nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// RSS of `tx` as heard at `rx`. A node does not hear itself; querying
    /// the diagonal returns the floor.
    pub fn get(&self, tx: NodeId, rx: NodeId) -> Dbm {
        if tx == rx {
            return Dbm::FLOOR;
        }
        self.values[tx.index() * self.n + rx.index()]
    }

    /// Set the RSS of the directed pair `tx → rx`.
    pub fn set(&mut self, tx: NodeId, rx: NodeId, rss: Dbm) {
        assert!(tx != rx, "diagonal RSS is meaningless");
        self.values[tx.index() * self.n + rx.index()] = rss;
    }

    /// Set both directions of a pair to the same value (radio links are
    /// close to reciprocal at these time scales).
    pub fn set_symmetric(&mut self, a: NodeId, b: NodeId, rss: Dbm) {
        self.set(a, b, rss);
        self.set(b, a, rss);
    }

    /// Iterate over all ordered pairs `(tx, rx, rss)` above the given
    /// floor.
    pub fn iter_audible(&self, floor: Dbm) -> impl Iterator<Item = (NodeId, NodeId, Dbm)> + '_ {
        (0..self.n as u32).flat_map(move |t| {
            (0..self.n as u32).filter_map(move |r| {
                let (tx, rx) = (NodeId(t), NodeId(r));
                let rss = self.get(tx, rx);
                (tx != rx && rss >= floor).then_some((tx, rx, rss))
            })
        })
    }

    /// Nodes whose transmissions `rx` hears at or above `floor`.
    pub fn audible_at(&self, rx: NodeId, floor: Dbm) -> Vec<NodeId> {
        (0..self.n as u32)
            .map(NodeId)
            .filter(|&tx| tx != rx && self.get(tx, rx) >= floor)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disconnected_matrix_is_floor() {
        let m = RssMatrix::disconnected(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(NodeId(0), NodeId(2)), Dbm::FLOOR);
    }

    #[test]
    fn set_get_directed() {
        let mut m = RssMatrix::disconnected(3);
        m.set(NodeId(0), NodeId(1), Dbm(-60.0));
        assert_eq!(m.get(NodeId(0), NodeId(1)), Dbm(-60.0));
        assert_eq!(m.get(NodeId(1), NodeId(0)), Dbm::FLOOR);
    }

    #[test]
    fn symmetric_setter() {
        let mut m = RssMatrix::disconnected(4);
        m.set_symmetric(NodeId(1), NodeId(3), Dbm(-70.0));
        assert_eq!(m.get(NodeId(1), NodeId(3)), Dbm(-70.0));
        assert_eq!(m.get(NodeId(3), NodeId(1)), Dbm(-70.0));
    }

    #[test]
    fn diagonal_is_floor() {
        let m = RssMatrix::disconnected(2);
        assert_eq!(m.get(NodeId(1), NodeId(1)), Dbm::FLOOR);
    }

    #[test]
    #[should_panic(expected = "diagonal")]
    fn setting_diagonal_panics() {
        let mut m = RssMatrix::disconnected(2);
        m.set(NodeId(0), NodeId(0), Dbm(-10.0));
    }

    #[test]
    fn audible_iteration() {
        let mut m = RssMatrix::disconnected(3);
        m.set(NodeId(0), NodeId(1), Dbm(-60.0));
        m.set(NodeId(2), NodeId(1), Dbm(-90.0));
        let floor = Dbm(-82.0);
        let pairs: Vec<_> = m.iter_audible(floor).collect();
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, NodeId(0));
        assert_eq!(m.audible_at(NodeId(1), floor), vec![NodeId(0)]);
        assert_eq!(m.audible_at(NodeId(1), Dbm(-95.0)).len(), 2);
    }
}
