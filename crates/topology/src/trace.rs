//! Synthetic replacement for the paper's 40-node RSS measurement trace.
//!
//! The paper measures RSS "in a testbed with 40 wireless nodes spread
//! across 2 buildings" and drives ns-3 from that trace. The raw trace is
//! not published, so we generate a statistically comparable one: two
//! parallel office buildings modeled as corridors with internal walls,
//! log-distance indoor propagation, per-wall penetration loss and
//! symmetric log-normal shadowing. The generator is seeded and fully
//! deterministic.
//!
//! What matters for the evaluation is the *pair structure* the trace
//! induces: a mix of contending, hidden, exposed and independent link
//! pairs (the paper reports 10 hidden and 62 exposed pairs in its T(10,2)
//! instance), and an RSS-gap distribution in which almost no co-audible
//! pair differs by more than 38 dB (0.54 % in the paper). The unit tests
//! and `EXPERIMENTS.md` check these statistics.

use crate::node::Position;
use crate::rss::RssMatrix;
use crate::node::NodeId;
use domino_phy::pathloss::{default_tx_power, LogDistanceModel};
use domino_phy::units::Db;
use domino_sim::rng::streams;
use domino_sim::SimRng;

/// Parameters of the synthetic two-building campus.
#[derive(Clone, Debug)]
pub struct TraceConfig {
    /// Nodes per building.
    pub nodes_per_building: usize,
    /// Building footprint (meters): length along x.
    pub building_length_m: f64,
    /// Building footprint (meters): depth along y.
    pub building_depth_m: f64,
    /// Gap between the two buildings along y.
    pub building_gap_m: f64,
    /// Positions (x) of internal walls within each building.
    pub internal_walls_x: Vec<f64>,
    /// Loss per internal wall crossed.
    pub internal_wall_loss: Db,
    /// Loss for crossing between the buildings (two exterior walls).
    pub exterior_wall_loss: Db,
    /// Log-normal shadowing standard deviation (dB), symmetric per pair.
    pub shadowing_sigma_db: f64,
}

impl Default for TraceConfig {
    /// Calibrated so the induced T(10,2) pair structure matches the
    /// paper's (≈10 hidden and ≈62 exposed of 720 link pairs; see
    /// EXPERIMENTS.md).
    fn default() -> TraceConfig {
        TraceConfig {
            nodes_per_building: 20,
            building_length_m: 60.0,
            building_depth_m: 14.0,
            building_gap_m: 20.0,
            internal_walls_x: vec![30.0],
            internal_wall_loss: Db(5.0),
            exterior_wall_loss: Db(11.0),
            shadowing_sigma_db: 4.0,
        }
    }
}

/// A generated trace: node positions and the measured-equivalent RSS map.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Node positions (building A first, then building B).
    pub positions: Vec<Position>,
    /// Pairwise RSS.
    pub rss: RssMatrix,
}

impl Trace {
    /// Total node count.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if the trace holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }
}

/// Which building a node index belongs to (first half A, second half B).
fn building_of(cfg: &TraceConfig, idx: usize) -> usize {
    usize::from(idx >= cfg.nodes_per_building)
}

/// Number of internal walls between two x coordinates in the same
/// building.
fn internal_walls_between(cfg: &TraceConfig, xa: f64, xb: f64) -> usize {
    let (lo, hi) = if xa < xb { (xa, xb) } else { (xb, xa) };
    cfg.internal_walls_x.iter().filter(|&&w| lo < w && w < hi).count()
}

/// Generate the synthetic trace.
pub fn generate(cfg: &TraceConfig, seed: u64) -> Trace {
    let mut rng = SimRng::derive(seed, streams::TOPOLOGY);
    let n = cfg.nodes_per_building * 2;
    let mut positions = Vec::with_capacity(n);
    for b in 0..2 {
        let y0 = b as f64 * (cfg.building_depth_m + cfg.building_gap_m);
        for _ in 0..cfg.nodes_per_building {
            positions.push(Position::new(
                rng.uniform_range(0.0, cfg.building_length_m),
                y0 + rng.uniform_range(0.0, cfg.building_depth_m),
            ));
        }
    }

    let model = LogDistanceModel::indoor();
    let tx = default_tx_power();
    let mut rss = RssMatrix::disconnected(n);
    for i in 0..n {
        for j in (i + 1)..n {
            let d = positions[i].distance_to(&positions[j]);
            let mut loss = model.loss(d);
            if building_of(cfg, i) != building_of(cfg, j) {
                loss = loss + cfg.exterior_wall_loss;
            } else {
                let walls = internal_walls_between(cfg, positions[i].x, positions[j].x);
                loss = loss + Db(walls as f64 * cfg.internal_wall_loss.value());
            }
            let shadow = Db(rng.normal(0.0, cfg.shadowing_sigma_db));
            let value = tx - loss + shadow;
            rss.set_symmetric(NodeId(i as u32), NodeId(j as u32), value);
        }
    }
    Trace { positions, rss }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_phy::units::Dbm;

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&TraceConfig::default(), 7);
        let b = generate(&TraceConfig::default(), 7);
        let c = generate(&TraceConfig::default(), 8);
        for i in 0..a.len() as u32 {
            for j in 0..a.len() as u32 {
                if i == j {
                    continue;
                }
                assert_eq!(
                    a.rss.get(NodeId(i), NodeId(j)).value(),
                    b.rss.get(NodeId(i), NodeId(j)).value()
                );
            }
        }
        // A different seed must actually differ somewhere.
        let differs = (1..a.len() as u32)
            .any(|j| a.rss.get(NodeId(0), NodeId(j)).value() != c.rss.get(NodeId(0), NodeId(j)).value());
        assert!(differs);
    }

    #[test]
    fn forty_nodes_two_buildings() {
        let t = generate(&TraceConfig::default(), 1);
        assert_eq!(t.len(), 40);
        // Buildings are spatially separated along y.
        let max_a = t.positions[..20].iter().map(|p| p.y).fold(f64::MIN, f64::max);
        let min_b = t.positions[20..].iter().map(|p| p.y).fold(f64::MAX, f64::min);
        assert!(min_b - max_a > 0.0, "buildings overlap");
    }

    #[test]
    fn rss_is_symmetric() {
        let t = generate(&TraceConfig::default(), 3);
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                assert_eq!(
                    t.rss.get(NodeId(i), NodeId(j)).value(),
                    t.rss.get(NodeId(j), NodeId(i)).value()
                );
            }
        }
    }

    #[test]
    fn nearby_nodes_are_loud_far_nodes_are_quiet() {
        let t = generate(&TraceConfig::default(), 5);
        let mut best = f64::MIN;
        let mut worst = f64::MAX;
        for i in 0..40u32 {
            for j in (i + 1)..40u32 {
                let v = t.rss.get(NodeId(i), NodeId(j)).value();
                best = best.max(v);
                worst = worst.min(v);
            }
        }
        assert!(best > -70.0, "no strong links at all: best={best}");
        assert!(worst < -90.0, "no weak pairs at all: worst={worst}");
    }

    #[test]
    fn cross_building_pairs_are_attenuated() {
        let cfg = TraceConfig::default();
        let t = generate(&cfg, 9);
        let mean = |pairs: Vec<f64>| pairs.iter().sum::<f64>() / pairs.len() as f64;
        let mut same = Vec::new();
        let mut cross = Vec::new();
        for i in 0..40 {
            for j in (i + 1)..40 {
                let v = t.rss.get(NodeId(i as u32), NodeId(j as u32)).value();
                if building_of(&cfg, i) == building_of(&cfg, j) {
                    same.push(v);
                } else {
                    cross.push(v);
                }
            }
        }
        assert!(mean(same) > mean(cross) + 10.0);
    }

    #[test]
    fn most_coaudible_gaps_below_38db() {
        // The paper: only 0.54 % of co-audible pairs differ by > 38 dB.
        let t = generate(&TraceConfig::default(), 11);
        let mut total = 0;
        let mut over = 0;
        let floor = Dbm(-80.0);
        for rx in 0..40u32 {
            let audible = t.rss.audible_at(NodeId(rx), floor);
            for (i, &a) in audible.iter().enumerate() {
                for &b in &audible[i + 1..] {
                    total += 1;
                    let gap = (t.rss.get(a, NodeId(rx)).value()
                        - t.rss.get(b, NodeId(rx)).value())
                    .abs();
                    if gap > 38.0 {
                        over += 1;
                    }
                }
            }
        }
        assert!(total > 100, "trace too sparse: {total} pairs");
        let frac = over as f64 / total as f64;
        assert!(frac < 0.05, "RSS gap fraction {frac} too high");
    }

    #[test]
    fn wall_counting() {
        // The calibrated default has one internal wall at x = 30 m.
        let cfg = TraceConfig::default();
        assert_eq!(internal_walls_between(&cfg, 5.0, 15.0), 0);
        assert_eq!(internal_walls_between(&cfg, 5.0, 35.0), 1);
        assert_eq!(internal_walls_between(&cfg, 55.0, 5.0), 1);
        let multi = TraceConfig {
            internal_walls_x: vec![20.0, 40.0, 60.0],
            ..TraceConfig::default()
        };
        assert_eq!(internal_walls_between(&multi, 75.0, 5.0), 3);
    }
}
