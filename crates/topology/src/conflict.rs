//! Link conflict graphs (paper §3, "Identifying hidden and exposed
//! links").
//!
//! Each vertex is a directed link; an edge means the two links cannot
//! transmit in the same slot. Conflicts are computed from the RSS map: two
//! links conflict when they share a node, or when either link's data/ACK
//! reception would drop below the capture SINR with the other link's
//! endpoints transmitting. Hidden and exposed link pairs — the phenomena
//! DOMINO exploits — are *classified* from the same map, never
//! special-cased in the simulator.

use crate::link::LinkId;
use crate::network::Network;
use domino_phy::units::Dbm;

/// The conflict graph over a network's links.
#[derive(Clone, Debug)]
pub struct ConflictGraph {
    n: usize,
    adj: Vec<Vec<bool>>,
}

impl ConflictGraph {
    /// Build the conflict graph of `net` from its RSS map with the
    /// data-phase rule ([`links_conflict`]) — the map used for
    /// hidden/exposed classification and statistics.
    pub fn build(net: &Network) -> ConflictGraph {
        Self::build_with(net, links_conflict)
    }

    /// Build the *scheduling* conflict graph: the ACK-aware rule
    /// ([`links_conflict_with_acks`]), which is what a centralized
    /// scheduler must respect — two links whose ACK phases collide cannot
    /// share a slot reliably.
    pub fn build_for_scheduling(net: &Network) -> ConflictGraph {
        Self::build_with(net, links_conflict_with_acks)
    }

    /// Build with an arbitrary pairwise conflict rule.
    pub fn build_with(
        net: &Network,
        rule: impl Fn(&Network, LinkId, LinkId) -> bool,
    ) -> ConflictGraph {
        let n = net.links().len();
        let mut adj = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for i in 0..n {
            for j in (i + 1)..n {
                let c = rule(net, LinkId(i as u32), LinkId(j as u32));
                adj[i][j] = c;
                adj[j][i] = c;
            }
        }
        ConflictGraph { n, adj }
    }

    /// Number of link vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Do two links conflict?
    #[inline]
    pub fn conflicts(&self, a: LinkId, b: LinkId) -> bool {
        self.adj[a.index()][b.index()]
    }

    /// Links conflicting with `l`.
    pub fn neighbors(&self, l: LinkId) -> Vec<LinkId> {
        (0..self.n as u32)
            .map(LinkId)
            .filter(|&o| self.adj[l.index()][o.index()])
            .collect()
    }

    /// Degree of a link vertex.
    pub fn degree(&self, l: LinkId) -> usize {
        self.adj[l.index()].iter().filter(|&&c| c).count()
    }

    /// Is `candidate` compatible with every link in `set`?
    pub fn compatible_with_all(&self, candidate: LinkId, set: &[LinkId]) -> bool {
        set.iter().all(|&s| s != candidate && !self.conflicts(candidate, s))
    }

    /// Is `set` an independent set (pairwise non-conflicting, no
    /// duplicates)?
    pub fn is_independent(&self, set: &[LinkId]) -> bool {
        for (i, &a) in set.iter().enumerate() {
            for &b in &set[i + 1..] {
                if a == b || self.conflicts(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Extend `set` to a *maximal* independent set by greedily adding
    /// non-conflicting links from `candidates` in the given order (the
    /// converter's fake-link insertion, paper §3.3).
    ///
    /// Returns the links that were added.
    pub fn extend_to_maximal(&self, set: &mut Vec<LinkId>, candidates: &[LinkId]) -> Vec<LinkId> {
        let before = set.len();
        self.extend_to_maximal_in_place(set, candidates);
        set[before..].to_vec()
    }

    /// [`ConflictGraph::extend_to_maximal`] without materializing the
    /// added-links list: callers that need it can diff on `set.len()`.
    pub fn extend_to_maximal_in_place(&self, set: &mut Vec<LinkId>, candidates: &[LinkId]) {
        debug_assert!(self.is_independent(set));
        for &c in candidates {
            if self.compatible_with_all(c, set) {
                set.push(c);
            }
        }
    }
}

/// Would concurrent operation of links `a` and `b` break either *data*
/// reception?
///
/// This is the standard measurement-based conflict rule (the paper builds
/// its map per Kashyap et al. / Reis et al.): link A conflicts with B when
/// B's sender corrupts A's receiver or vice versa. ACK-phase cross terms
/// are not part of the map — ACKs are an order of magnitude shorter than
/// data frames and the occasional ACK collision is recovered by the MAC's
/// retransmission rules, exactly as on real hardware. The stricter
/// ACK-aware predicate is available as [`links_conflict_with_acks`].
pub fn links_conflict(net: &Network, a: LinkId, b: LinkId) -> bool {
    let la = net.link(a);
    let lb = net.link(b);
    // Shared node: a radio cannot do two things in one slot.
    if la.sender == lb.sender
        || la.sender == lb.receiver
        || la.receiver == lb.sender
        || la.receiver == lb.receiver
    {
        return true;
    }
    let capture = net.phy().data_rate.capture_sinr_db();
    let noise = net.phy().noise_floor;
    let broken = |sig_tx, sig_rx, interferer| {
        let sig = net.rss().get(sig_tx, sig_rx);
        let interf = net.rss().get(interferer, sig_rx);
        let sinr = (sig - interf.power_sum(noise)).value();
        sinr < capture
    };
    broken(la.sender, la.receiver, lb.sender) || broken(lb.sender, lb.receiver, la.sender)
}

/// The conservative variant of [`links_conflict`] that also protects both
/// links' ACK receptions against both endpoints of the other link.
pub fn links_conflict_with_acks(net: &Network, a: LinkId, b: LinkId) -> bool {
    if links_conflict(net, a, b) {
        return true;
    }
    let la = net.link(a);
    let lb = net.link(b);
    let capture = net.phy().data_rate.capture_sinr_db();
    let noise = net.phy().noise_floor;
    let broken = |sig_tx, sig_rx, other: &crate::link::Link| {
        let sig = net.rss().get(sig_tx, sig_rx);
        let interf = net
            .rss()
            .get(other.sender, sig_rx)
            .power_sum(net.rss().get(other.receiver, sig_rx));
        let sinr = (sig - interf.power_sum(noise)).value();
        sinr < capture
    };
    broken(la.sender, la.receiver, lb)
        || broken(la.receiver, la.sender, lb)
        || broken(lb.sender, lb.receiver, la)
        || broken(lb.receiver, lb.sender, la)
}

/// Classification of a pair of links relative to carrier sensing.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairKind {
    /// Conflicting and mutually sensable: ordinary contention.
    Contending,
    /// Conflicting but the senders cannot sense each other: hidden pair
    /// (DCF collides).
    Hidden,
    /// Non-conflicting but the senders sense each other: exposed pair
    /// (DCF serializes needlessly).
    Exposed,
    /// Non-conflicting and mutually inaudible: independent.
    Independent,
}

/// Classify a link pair (ignoring pairs that share a node, which are
/// trivially [`PairKind::Contending`]).
pub fn classify_pair(net: &Network, graph: &ConflictGraph, a: LinkId, b: LinkId) -> PairKind {
    let la = net.link(a);
    let lb = net.link(b);
    let sense = net.can_sense(la.sender, lb.sender) || net.can_sense(lb.sender, la.sender);
    match (graph.conflicts(a, b), sense) {
        (true, true) => PairKind::Contending,
        (true, false) => PairKind::Hidden,
        (false, true) => PairKind::Exposed,
        (false, false) => PairKind::Independent,
    }
}

/// Counts of hidden and exposed pairs over all unordered link pairs that
/// do not share a node (the statistic the paper quotes for T(10,2): "10
/// hidden link pairs and 62 exposed link pairs out of 720 possible link
/// pairs").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairStats {
    /// Unordered pairs examined.
    pub total: usize,
    /// Hidden pairs.
    pub hidden: usize,
    /// Exposed pairs.
    pub exposed: usize,
}

/// Compute [`PairStats`] for a network.
pub fn pair_stats(net: &Network, graph: &ConflictGraph) -> PairStats {
    let mut stats = PairStats::default();
    let n = net.links().len();
    for i in 0..n {
        for j in (i + 1)..n {
            let (a, b) = (LinkId(i as u32), LinkId(j as u32));
            let (la, lb) = (net.link(a), net.link(b));
            if la.sender == lb.sender
                || la.sender == lb.receiver
                || la.receiver == lb.sender
                || la.receiver == lb.receiver
            {
                continue;
            }
            stats.total += 1;
            match classify_pair(net, graph, a, b) {
                PairKind::Hidden => stats.hidden += 1,
                PairKind::Exposed => stats.exposed += 1,
                _ => {}
            }
        }
    }
    stats
}

/// Fraction of unordered node pairs heard by a common receiver whose RSS
/// gap exceeds `gap_db` — the statistic behind the paper's "only 0.54 % of
/// all link pairs have an RSS difference greater than 38 dB".
pub fn rss_gap_fraction(net: &Network, gap_db: f64) -> f64 {
    let mut total = 0usize;
    let mut over = 0usize;
    let floor = net.phy().comm_range_rss;
    for rx in 0..net.num_nodes() as u32 {
        let rx = crate::node::NodeId(rx);
        let audible = net.rss().audible_at(rx, floor);
        for (i, &a) in audible.iter().enumerate() {
            for &b in &audible[i + 1..] {
                total += 1;
                let ra: Dbm = net.rss().get(a, rx);
                let rb: Dbm = net.rss().get(b, rx);
                if (ra.value() - rb.value()).abs() > gap_db {
                    over += 1;
                }
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        over as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::{make_node, PhyParams};
    use crate::node::{NodeId, NodeRole, Position};
    use crate::rss::RssMatrix;

    /// Two AP-client pairs with controllable cross-RSS.
    fn net_with(cross: &[(u32, u32, f64)]) -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
            make_node(2, NodeRole::Ap, None, Position::default()),
            make_node(3, NodeRole::Client, Some(2), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(4);
        rss.set_symmetric(NodeId(0), NodeId(1), Dbm(-50.0));
        rss.set_symmetric(NodeId(2), NodeId(3), Dbm(-50.0));
        for &(a, b, v) in cross {
            rss.set_symmetric(NodeId(a), NodeId(b), Dbm(v));
        }
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn isolated_pairs_do_not_conflict() {
        let net = net_with(&[]);
        let g = ConflictGraph::build(&net);
        // Downlink 0 (AP0->C1) vs downlink 2 (AP2->C3).
        assert!(!g.conflicts(LinkId(0), LinkId(2)));
        // Same pair's own up/down conflict (shared nodes).
        assert!(g.conflicts(LinkId(0), LinkId(1)));
    }

    #[test]
    fn strong_interference_creates_conflict() {
        // AP0 is loud at C3: AP2->C3 cannot run while AP0->C1 runs.
        let net = net_with(&[(0, 3, -55.0)]);
        let g = ConflictGraph::build(&net);
        assert!(g.conflicts(LinkId(0), LinkId(2)));
    }

    #[test]
    fn hidden_pair_classified() {
        // Senders AP0 and AP2 cannot hear each other, but AP0 corrupts C3.
        let net = net_with(&[(0, 3, -55.0)]);
        let g = ConflictGraph::build(&net);
        assert_eq!(classify_pair(&net, &g, LinkId(0), LinkId(2)), PairKind::Hidden);
        let stats = pair_stats(&net, &g);
        assert!(stats.hidden >= 1);
    }

    #[test]
    fn exposed_pair_classified() {
        // Senders hear each other but both receptions survive: exposed.
        let net = net_with(&[(0, 2, -70.0)]);
        let g = ConflictGraph::build(&net);
        assert_eq!(classify_pair(&net, &g, LinkId(0), LinkId(2)), PairKind::Exposed);
        let stats = pair_stats(&net, &g);
        assert!(stats.exposed >= 1);
    }

    #[test]
    fn independent_pair_classified() {
        let net = net_with(&[]);
        let g = ConflictGraph::build(&net);
        assert_eq!(classify_pair(&net, &g, LinkId(0), LinkId(2)), PairKind::Independent);
    }

    #[test]
    fn weak_interference_is_tolerated() {
        // -50 signal vs -90 interference: SINR ≈ 38.5 dB, far above
        // capture.
        let net = net_with(&[(0, 3, -90.0)]);
        let g = ConflictGraph::build(&net);
        assert!(!g.conflicts(LinkId(0), LinkId(2)));
    }

    #[test]
    fn independent_set_operations() {
        let net = net_with(&[]);
        let g = ConflictGraph::build(&net);
        assert!(g.is_independent(&[LinkId(0), LinkId(2)]));
        assert!(!g.is_independent(&[LinkId(0), LinkId(1)]));
        assert!(!g.is_independent(&[LinkId(0), LinkId(0)]));

        let mut set = vec![LinkId(0)];
        let all: Vec<LinkId> = (0..4).map(LinkId).collect();
        let added = g.extend_to_maximal(&mut set, &all);
        assert!(g.is_independent(&set));
        // Link 2 or 3 must have been added (other pair is compatible).
        assert_eq!(added.len(), 1);
        assert!(set.len() == 2);
        // Maximality: nothing else fits.
        for &c in &all {
            if !set.contains(&c) {
                assert!(!g.compatible_with_all(c, &set));
            }
        }
    }

    #[test]
    fn degree_and_neighbors_agree() {
        let net = net_with(&[(0, 3, -55.0)]);
        let g = ConflictGraph::build(&net);
        for i in 0..g.len() as u32 {
            assert_eq!(g.degree(LinkId(i)), g.neighbors(LinkId(i)).len());
        }
    }

    #[test]
    fn rss_gap_fraction_bounds() {
        let net = net_with(&[(0, 2, -70.0)]);
        let f = rss_gap_fraction(&net, 38.0);
        assert!((0.0..=1.0).contains(&f));
    }

    #[test]
    fn ack_aware_variant_is_stricter() {
        // Interference only at the *sender* of link 0 (which receives the
        // ACK): we poison AP0's reception from C1 by making C3 loud at
        // AP0. The data-phase map tolerates this; the ACK-aware variant
        // flags it.
        let net = net_with(&[(3, 0, -52.0)]);
        // Link 0 = AP0->C1 (down), link 3 = C3->AP2 (up).
        assert!(!links_conflict(&net, LinkId(0), LinkId(3)));
        assert!(links_conflict_with_acks(&net, LinkId(0), LinkId(3)));
    }
}
