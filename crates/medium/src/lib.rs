//! # domino-medium
//!
//! The shared-channel physics of the DOMINO (CoNEXT'13) reproduction's
//! network simulator: frame types ([`frames`]), the SINR/capture medium
//! with per-receiver worst-case interference tracking ([`medium`]), and
//! the calibrated detection models for signature bursts and ROP symbols
//! ([`signatures`]) whose numbers come from `domino-phy`'s sample-level
//! experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frames;
#[allow(clippy::module_inception)]
pub mod medium;
pub mod signatures;

pub use frames::{Burst, BurstMarker, Frame, FrameBody, InlineVec, BURST_CAP};
pub use medium::{Medium, MediumCounters, Reception, TxId};
