//! On-air frame types.
//!
//! Every transmission the simulator puts on the medium is one of these
//! frames. The DOMINO-specific control surfaces — trigger instructions
//! appended to data/ACK frames (Fig 8), signature bursts, ROP polls and
//! replies — are first-class frame fields, so "a corrupted packet loses
//! its trigger instructions" and similar couplings fall out naturally.

use domino_topology::{LinkId, NodeId};
use domino_traffic::{Packet, PacketId};

/// Inline capacity of a [`Burst`]'s signature list. The converter caps
/// combined signatures at `max_outbound` (4, Fig 9) and clamps configs
/// above it, so 4 is exact — and it matters: bursts travel by value
/// inside MAC events, so this capacity sets the event-queue element
/// size (the ablation experiments only push `max_outbound` *below* the
/// paper's operating point; `InlineVec` panics loudly if anything ever
/// overflows the cap).
pub const BURST_CAP: usize = 4;

pub use domino_topology::InlineVec;

/// A set of signatures one node broadcasts to trigger the next slot's
/// transmitters (paper §3.2). `targets[i]` owns `codes[i]`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Burst {
    /// Gold-code indices being summed (at most 4, §3.2).
    pub codes: InlineVec<u32, BURST_CAP>,
    /// The nodes those codes belong to (same order as `codes`).
    pub targets: InlineVec<NodeId, BURST_CAP>,
    /// Which end-of-burst marker follows the signatures.
    pub marker: BurstMarker,
    /// Absolute index of the slot this burst triggers (lets a triggered
    /// client know which slot it is starting, and feeds the Fig 11
    /// misalignment log).
    pub slot: u64,
    /// The broadcaster itself transmits again in slot `slot`. Every
    /// slot's bursts are simultaneous, so a node that just broadcast is
    /// deaf to its triggers; the controller sets this flag in the
    /// instruction instead (APs derive it from their own program).
    pub continues: bool,
}

impl Burst {
    /// An empty burst carrying only a marker.
    pub fn marker_only(marker: BurstMarker) -> Burst {
        Burst {
            codes: InlineVec::new(),
            targets: InlineVec::new(),
            marker,
            slot: 0,
            continues: false,
        }
    }

    /// Number of combined signatures.
    pub fn combined(&self) -> usize {
        self.codes.len()
    }
}

/// The special signature appended after the trigger signatures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BurstMarker {
    /// S′ — the START signature: triggered nodes begin the next slot
    /// immediately.
    Start,
    /// The ROP signature: triggered nodes wait one ROP slot before
    /// transmitting (paper §3.3).
    Rop,
}

/// What a frame carries.
#[derive(Clone, Debug, PartialEq)]
pub enum FrameBody {
    /// A data frame on `packet.link`. When `fake` is set, only the MAC
    /// header goes on the air (schedule keep-alive, §3.3) and nothing is
    /// delivered to the flow.
    ///
    /// `client_burst` is the trigger instruction for the receiving client
    /// (the samples of S1 in Fig 8): the client stores it if and only if
    /// the frame decodes.
    Data {
        /// The payload packet.
        packet: Packet,
        /// Header-only fake-link frame?
        fake: bool,
        /// S1 instruction for the client, when the AP is the sender.
        client_burst: Option<Burst>,
    },
    /// Link-layer acknowledgment. Carries the S1 instruction when the AP
    /// is the *receiver* (Fig 8b: the AP appends S1 to the ACK).
    MacAck {
        /// Packet being acknowledged.
        packet: PacketId,
        /// The link the data traveled on.
        link: LinkId,
        /// S1 instruction for the client, when the AP sends this ACK.
        client_burst: Option<Burst>,
    },
    /// ROP polling packet, broadcast by an AP to all its clients
    /// (paper Fig 4).
    Poll {
        /// The polling AP.
        ap: NodeId,
    },
    /// One client's share of the collective ROP answer symbol: its queue
    /// length on its private subchannel.
    RopReport {
        /// The reporting client.
        client: NodeId,
        /// Its AP.
        ap: NodeId,
        /// Queue length, already clamped to 63.
        queue: u32,
    },
    /// A signature burst (trigger transmission).
    SignatureBurst(Burst),
}

/// A frame queued for / on the medium.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// Transmitting node.
    pub src: NodeId,
    /// Payload.
    pub body: FrameBody,
    /// Coded bits on air (drives the PER model; 0 for signature bursts
    /// and ROP symbols, which use their own detection models).
    pub bits: usize,
}

impl Frame {
    /// The nodes whose reception of this frame the medium must adjudicate.
    ///
    /// `clients_of_ap` resolves a Poll's audience; signature bursts are
    /// adjudicated at their trigger targets.
    pub fn intended_receivers(&self, clients_of_ap: impl Fn(NodeId) -> Vec<NodeId>) -> Vec<NodeId> {
        match &self.body {
            FrameBody::Data { packet: _, .. } => Vec::new(), // resolved by caller (needs link table)
            FrameBody::MacAck { .. } => Vec::new(),          // resolved by caller
            FrameBody::Poll { ap } => clients_of_ap(*ap),
            FrameBody::RopReport { ap, .. } => vec![*ap],
            FrameBody::SignatureBurst(b) => b.targets.to_vec(),
        }
    }

    /// True for frames adjudicated by the correlation-detection model
    /// rather than the packet PER model.
    pub fn is_signature(&self) -> bool {
        matches!(self.body, FrameBody::SignatureBurst(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn burst_helpers() {
        let b = Burst {
            codes: [3, 7].into_iter().collect(),
            targets: [NodeId(3), NodeId(7)].into_iter().collect(),
            marker: BurstMarker::Start,
            slot: 4,
            continues: false,
        };
        assert_eq!(b.combined(), 2);
        let m = Burst::marker_only(BurstMarker::Rop);
        assert_eq!(m.combined(), 0);
        assert_eq!(m.marker, BurstMarker::Rop);
    }

    #[test]
    fn receivers_of_poll_are_its_clients() {
        let f = Frame {
            src: NodeId(0),
            body: FrameBody::Poll { ap: NodeId(0) },
            bits: 200,
        };
        let rx = f.intended_receivers(|_| vec![NodeId(1), NodeId(2)]);
        assert_eq!(rx, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn receivers_of_burst_are_targets() {
        let f = Frame {
            src: NodeId(4),
            body: FrameBody::SignatureBurst(Burst {
                codes: InlineVec::of(9),
                targets: InlineVec::of(NodeId(9)),
                marker: BurstMarker::Start,
                slot: 0,
                continues: false,
            }),
            bits: 0,
        };
        assert!(f.is_signature());
        assert_eq!(f.intended_receivers(|_| vec![]), vec![NodeId(9)]);
    }
}
