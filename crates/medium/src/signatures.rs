//! Calibrated network-scale models for signature and ROP detection.
//!
//! The network simulator cannot run sample-level DSP per trigger (neither
//! does the paper's ns-3 evaluation); instead it draws from probability
//! models calibrated against the sample-level experiments in
//! `domino-phy`:
//!
//! * [`signature_detection_probability`] — from the Fig 9 reproduction
//!   (`domino_phy::signature::detection_experiment`): detection stays at
//!   ~100 % for bursts of up to 4 combined signatures at usable SINR and
//!   degrades beyond, with a 127-chip correlation processing gain that
//!   keeps triggers detectable *under* packet interference.
//! * [`rop_decode_probability`] — from the Fig 6 reproduction
//!   (`domino_phy::ofdm::experiment::guard_sweep`): with the standard 3
//!   guard subcarriers a client decodes while it is within ~38 dB of the
//!   strongest concurrent reporter and its symbol SNR is ≥ 4 dB.

/// Correlation processing gain of a 127-chip signature, dB
/// (10·log10(127) ≈ 21 dB): a signature is detectable well below the
/// packet-decoding SINR.
pub const SIGNATURE_PROCESSING_GAIN_DB: f64 = 21.0;

/// Detection-ratio calibration by number of combined signatures (index
/// k-1), measured by the Fig 9 experiment at high effective SINR.
const BASE_DETECTION: [f64; 8] = [0.999, 0.999, 0.998, 0.995, 0.90, 0.72, 0.52, 0.35];

/// Probability that a node detects its own signature inside a burst of
/// `combined` signatures received at `sinr_db` (signal = the burst,
/// interference = everything else on the air, *before* correlation
/// gain).
pub fn signature_detection_probability(combined: usize, sinr_db: f64) -> f64 {
    if combined == 0 {
        return 0.0;
    }
    let base = BASE_DETECTION[(combined - 1).min(BASE_DETECTION.len() - 1)];
    // Correlation gain rescues low-SINR bursts; below ~10 dB effective
    // the correlator's decision margin erodes linearly, hitting zero at
    // 0 dB effective.
    let effective = sinr_db + SIGNATURE_PROCESSING_GAIN_DB;
    let scale = (effective / 10.0).clamp(0.0, 1.0);
    base * scale
}

/// Tolerable RSS difference between concurrent ROP reporters with the
/// standard 3 guard subcarriers (Fig 6 calibration).
pub const ROP_TOLERABLE_GAP_DB: f64 = 38.0;

/// Minimum symbol SNR for ROP decoding (paper §3.1: "as long as the SNR
/// is higher than 4 dB, an OFDM symbol can be decoded correctly").
pub const ROP_MIN_SNR_DB: f64 = 4.0;

/// Probability that the AP decodes one client's ROP subchannel, given the
/// client's symbol SNR (vs noise + external interference) and its RSS gap
/// to the strongest concurrent reporter of the same poll.
pub fn rop_decode_probability(snr_db: f64, gap_to_strongest_db: f64) -> f64 {
    if snr_db < ROP_MIN_SNR_DB {
        return 0.0;
    }
    if gap_to_strongest_db <= ROP_TOLERABLE_GAP_DB {
        0.99
    } else {
        // Beyond the guard budget the decode collapses quickly (Fig 6's
        // post-knee slope): lose ~25 % per extra dB.
        (0.99 - 0.25 * (gap_to_strongest_db - ROP_TOLERABLE_GAP_DB)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_or_fewer_combined_detect_reliably() {
        for k in 1..=4 {
            let p = signature_detection_probability(k, 5.0);
            assert!(p > 0.99, "k={k}: p={p}");
        }
    }

    #[test]
    fn detection_degrades_beyond_four() {
        let p4 = signature_detection_probability(4, 10.0);
        let p5 = signature_detection_probability(5, 10.0);
        let p7 = signature_detection_probability(7, 10.0);
        assert!(p5 < p4 && p7 < p5);
        assert!(p7 < 0.6);
    }

    #[test]
    fn processing_gain_rescues_negative_sinr() {
        // A trigger at -8 dB SINR (e.g. under a colliding data packet)
        // still detects thanks to the 21 dB correlation gain.
        let p = signature_detection_probability(2, -8.0);
        assert!(p > 0.95, "p={p}");
        // But at -21 dB the margin is gone.
        assert_eq!(signature_detection_probability(2, -21.0), 0.0);
    }

    #[test]
    fn monotone_in_sinr() {
        let mut prev = 0.0;
        for s in -25..15 {
            let p = signature_detection_probability(3, s as f64);
            assert!(p >= prev - 1e-12);
            prev = p;
        }
    }

    #[test]
    fn empty_burst_never_detects() {
        assert_eq!(signature_detection_probability(0, 30.0), 0.0);
    }

    #[test]
    fn rop_healthy_case() {
        assert!(rop_decode_probability(20.0, 10.0) > 0.98);
        assert!(rop_decode_probability(4.0, 38.0) > 0.98);
    }

    #[test]
    fn rop_fails_below_4db_snr() {
        assert_eq!(rop_decode_probability(3.9, 0.0), 0.0);
    }

    #[test]
    fn rop_collapses_past_38db_gap() {
        let p39 = rop_decode_probability(20.0, 39.0);
        let p42 = rop_decode_probability(20.0, 42.0);
        assert!(p39 < 0.9);
        assert!(p42 < 0.01);
    }
}
