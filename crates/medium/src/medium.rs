//! The shared wireless channel.
//!
//! [`Medium`] tracks every in-flight transmission, maintains the ambient
//! power each node senses, and adjudicates reception when a transmission
//! ends: packet frames through the SINR→PER model (worst-case
//! interference over the frame's airtime), ROP symbols through the
//! calibrated subchannel model, signature bursts through the calibrated
//! correlation-detection model. Hidden terminals, exposed terminals and
//! capture all *emerge* from the RSS matrix — nothing here knows which
//! links the paper calls hidden.

use crate::frames::{Frame, FrameBody};
use crate::signatures::{rop_decode_probability, signature_detection_probability};
use domino_faults::MediumFaults;
use domino_obs::{FaultKind, TraceEvent, TraceHandle};
use domino_phy::units::Dbm;
use domino_sim::rng::streams;
use domino_sim::{SimRng, SimTime};
use domino_topology::{Network, NodeId};

/// Handle to an in-flight transmission.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TxId(pub u64);

/// Multiply-xor integer mixer for the PER memo table. Collisions are
/// harmless (the map still compares full keys); all that matters is that
/// the route is cheap and spreads `f64::to_bits` patterns, which SipHash
/// does at ~10× the cost.
#[derive(Clone, Copy, Debug, Default)]
struct MixHasher(u64);

impl std::hash::Hasher for MixHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        let mut x = self.0 ^ v;
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = x ^ (x >> 29);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// [`std::hash::BuildHasher`] for [`MixHasher`].
#[derive(Clone, Copy, Debug, Default)]
struct BuildMixHasher;

impl std::hash::BuildHasher for BuildMixHasher {
    type Hasher = MixHasher;

    #[inline]
    fn build_hasher(&self) -> MixHasher {
        MixHasher(0)
    }
}

/// The medium's verdict on one (transmission, receiver) pair.
#[derive(Clone, Debug)]
pub struct Reception {
    /// The transmission.
    pub tx_id: TxId,
    /// The adjudicated receiver.
    pub rx: NodeId,
    /// The frame. Burst targets live inline in the frame, so handing a
    /// copy to each co-receiver's verdict is a flat memcpy — no
    /// allocation, no shared ownership.
    pub frame: Frame,
    /// Did the receiver get it?
    pub success: bool,
    /// The worst-case SINR used for the decision, dB.
    pub sinr_db: f64,
}

#[derive(Debug)]
struct RxTrack {
    rx: NodeId,
    /// Peak interference (mW) observed at `rx` during the transmission,
    /// excluding the transmission's own signal.
    max_interf_mw: f64,
    /// The receiver spent part of the airtime transmitting (half-duplex
    /// loss).
    rx_transmitted: bool,
}

#[derive(Debug)]
struct ActiveTx {
    id: TxId,
    frame: Frame,
    start: SimTime,
    tracks: Vec<RxTrack>,
}

/// Aggregate medium statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MediumCounters {
    /// Transmissions started.
    pub started: u64,
    /// Successful receptions adjudicated.
    pub receptions_ok: u64,
    /// Failed receptions adjudicated.
    pub receptions_failed: u64,
}

/// The shared channel.
#[derive(Debug)]
pub struct Medium {
    net: Network,
    active: Vec<ActiveTx>,
    ambient_mw: Vec<f64>,
    noise_mw: f64,
    cs_threshold_mw: f64,
    /// `rss[tx · n + rx]` in mW with sub-floor entries zeroed — the
    /// adjudication path's view. dBm→mW is a `powf`; the matrix is static,
    /// so both views are precomputed once at construction (bit-identical
    /// to converting on every call: same inputs, same single conversion).
    rss_floor_mw: Vec<f64>,
    /// Same matrix without the floor cut (the interference-update path
    /// historically summed unfloored values; keeping both views preserves
    /// every adjudication bit).
    rss_raw_mw: Vec<f64>,
    /// PER is a pure function of `(sinr_db, bits)` and the run's fixed
    /// rate, so memoizing skips the `powf`/`erfc` per data adjudication.
    /// Keys are exact bit patterns (equality still decides hits — the
    /// hash only routes buckets), and the mixer is a cheap multiply-xor:
    /// SipHash costs more than the saved transcendentals. Lookup only —
    /// never iterated (lint D002).
    per_cache: std::collections::HashMap<(u64, usize), f64, BuildMixHasher>,
    rng: SimRng,
    next_tx: u64,
    counters: MediumCounters,
    /// Peak reporter RSS per in-progress ROP round: (ap, round start ns,
    /// peak dBm).
    rop_peaks: Vec<(NodeId, u64, f64)>,
    /// Clients per AP (empty for client nodes), precomputed so a Poll's
    /// audience is a slice lookup instead of a filtered allocation.
    clients: Vec<Vec<NodeId>>,
    /// Retired track vectors, reused by later transmissions so the
    /// per-transmission bookkeeping settles into steady-state storage.
    track_pool: Vec<Vec<RxTrack>>,
    /// Scratch receiver list for [`Medium::begin`] (same reuse idea).
    rx_scratch: Vec<NodeId>,
    /// Channel/churn fault classes, when the run's fault plane is active.
    /// `None` (the default) costs nothing and draws nothing, so fault-free
    /// runs adjudicate byte-identically to a plane-free build.
    faults: Option<MediumFaults>,
    tracer: TraceHandle,
}

impl Medium {
    /// A quiet medium over `net`.
    pub fn new(net: Network, master_seed: u64) -> Medium {
        let n = net.num_nodes();
        let noise_mw = net.phy().noise_floor.to_milliwatts();
        let cs_threshold_mw = net.phy().cs_threshold.to_milliwatts();
        let mut rss_floor_mw = vec![0.0; n * n];
        let mut rss_raw_mw = vec![0.0; n * n];
        for tx in 0..n {
            for rx in 0..n {
                let rss = net.rss().get(NodeId(tx as u32), NodeId(rx as u32));
                let raw = rss.to_milliwatts();
                rss_raw_mw[tx * n + rx] = raw;
                if rss > Dbm::FLOOR {
                    rss_floor_mw[tx * n + rx] = raw;
                }
            }
        }
        let clients = (0..n).map(|ap| net.clients_of(NodeId(ap as u32))).collect();
        Medium {
            net,
            active: Vec::new(),
            ambient_mw: vec![0.0; n],
            noise_mw,
            cs_threshold_mw,
            rss_floor_mw,
            rss_raw_mw,
            // Sized for a typical run's distinct (SINR, length) pairs so
            // the steady state is reached without growth rehashes.
            per_cache: std::collections::HashMap::with_capacity_and_hasher(512, BuildMixHasher),
            rng: SimRng::derive(master_seed, streams::PHY_ERROR),
            next_tx: 0,
            counters: MediumCounters::default(),
            rop_peaks: Vec::new(),
            clients,
            track_pool: Vec::new(),
            rx_scratch: Vec::new(),
            faults: None,
            tracer: TraceHandle::off(),
        }
    }

    /// Attach a trace sink. Observation only — attaching never changes
    /// adjudication or RNG state; the medium emits
    /// [`TraceEvent::FaultInject`] when an installed fault class (churn,
    /// fade, ROP corruption) actually fires.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// Install the channel- and churn-class fault sources. Fade and
    /// corruption draws come from their own streams and only run *after*
    /// the base PHY draw, so the `PHY_ERROR` sequence is untouched.
    pub fn set_faults(&mut self, faults: MediumFaults) {
        self.faults = Some(faults);
    }

    /// The fault state, when installed (for end-of-run accounting).
    pub fn faults(&self) -> Option<&MediumFaults> {
        self.faults.as_ref()
    }

    /// The network this medium simulates.
    pub fn network(&self) -> &Network {
        &self.net
    }

    /// Statistics so far.
    pub fn counters(&self) -> MediumCounters {
        self.counters
    }

    #[inline]
    fn rss_mw(&self, tx: NodeId, rx: NodeId) -> f64 {
        self.rss_floor_mw[tx.index() * self.net.num_nodes() + rx.index()]
    }

    /// Is `node` currently transmitting?
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.active.iter().any(|t| t.frame.src == node)
    }

    /// Does `node` sense the channel busy (energy above the carrier-sense
    /// threshold)? A transmitting node always senses busy.
    pub fn is_busy(&self, node: NodeId) -> bool {
        self.is_transmitting(node)
            || self.ambient_mw[node.index()] >= self.cs_threshold_mw
    }

    /// Like [`Medium::is_busy`], but ignoring transmissions that began at
    /// exactly `now`. CENTAUR-style aligned starts need this: two APs
    /// whose fixed backoffs expire at the same instant both transmit;
    /// neither could have sensed the other yet (sensing is causal).
    pub fn is_busy_before_instant(&self, node: NodeId, now: SimTime) -> bool {
        if self.is_transmitting(node) {
            return true;
        }
        let mw: f64 = self
            .active
            .iter()
            .filter(|t| t.start < now)
            .map(|t| self.rss_mw(t.frame.src, node))
            // lint: allow(D009) sequential left fold over the insertion-ordered `active` Vec; order already pinned
            .sum();
        mw >= self.cs_threshold_mw
    }

    /// Ambient received power at `node` from all in-flight transmissions.
    pub fn ambient_at(&self, node: NodeId) -> Dbm {
        let total = self.ambient_mw[node.index()] + self.noise_mw;
        Dbm::from_milliwatts(total)
    }

    /// Append `frame`'s intended receivers to `out` (no allocation on the
    /// steady-state path: Poll audiences come from the precomputed
    /// per-AP client table, burst targets live inline in the frame).
    fn push_receivers(&self, frame: &Frame, out: &mut Vec<NodeId>) {
        match &frame.body {
            FrameBody::Data { packet, .. } => out.push(self.net.link(packet.link).receiver),
            FrameBody::MacAck { link, .. } => out.push(self.net.link(*link).sender),
            FrameBody::Poll { ap } => out.extend_from_slice(&self.clients[ap.index()]),
            FrameBody::RopReport { ap, .. } => out.push(*ap),
            FrameBody::SignatureBurst(b) => out.extend_from_slice(&b.targets),
        }
    }

    /// Put `frame` on the air at `now`. The caller schedules the matching
    /// [`Medium::end`] at `now + airtime` (airtime policy lives in
    /// `domino-mac::timing`).
    pub fn begin(&mut self, now: SimTime, frame: Frame) -> TxId {
        assert!(
            !self.is_transmitting(frame.src),
            "{} is already transmitting",
            frame.src
        );
        let id = TxId(self.next_tx);
        self.next_tx += 1;
        self.counters.started += 1;
        // ROP round bookkeeping: record the strongest reporter per (ap,
        // start instant).
        if let FrameBody::RopReport { client, ap, .. } = frame.body {
            let rss = self.net.rss().get(client, ap).value();
            let key = (ap, now.as_nanos());
            match self.rop_peaks.iter_mut().find(|(a, t, _)| *a == ap && *t == key.1) {
                Some(entry) => entry.2 = entry.2.max(rss),
                None => self.rop_peaks.push((ap, key.1, rss)),
            }
            // Prune stale rounds (> 1 ms old).
            let cutoff = now.as_nanos().saturating_sub(1_000_000);
            self.rop_peaks.retain(|&(_, t, _)| t >= cutoff);
        }

        // The new signal raises ambient power everywhere (split at the
        // source index so its own entry is skipped without a per-element
        // branch).
        {
            let n = self.net.num_nodes();
            let src = frame.src.index();
            let row = &self.rss_floor_mw[src * n..(src + 1) * n];
            let (amb_lo, amb_hi) = self.ambient_mw.split_at_mut(src);
            for (a, &r) in amb_lo.iter_mut().zip(&row[..src]) {
                *a += r;
            }
            for (a, &r) in amb_hi[1..].iter_mut().zip(&row[src + 1..]) {
                *a += r;
            }
        }

        // Existing transmissions see more interference now.
        let src = frame.src;
        let num_nodes = self.net.num_nodes();
        for tx in &mut self.active {
            for track in &mut tx.tracks {
                if track.rx == src {
                    track.rx_transmitted = true;
                }
                let own = if tx.frame.src == track.rx {
                    0.0
                } else {
                    self.rss_raw_mw[tx.frame.src.index() * num_nodes + track.rx.index()]
                };
                let interf = (self.ambient_mw[track.rx.index()] - own).max(0.0);
                track.max_interf_mw = track.max_interf_mw.max(interf);
            }
        }

        // Tracks for the new transmission, in recycled storage.
        let mut rxs = std::mem::take(&mut self.rx_scratch);
        rxs.clear();
        self.push_receivers(&frame, &mut rxs);
        let mut tracks = self.track_pool.pop().unwrap_or_default();
        debug_assert!(tracks.is_empty());
        for &rx in &rxs {
            let own = self.rss_mw(frame.src, rx);
            let interf = (self.ambient_mw[rx.index()] - own).max(0.0);
            tracks.push(RxTrack {
                rx,
                max_interf_mw: interf,
                rx_transmitted: self.is_transmitting(rx),
            });
        }
        self.rx_scratch = rxs;

        self.active.push(ActiveTx { id, frame, start: now, tracks });
        id
    }

    /// Take `tx` off the air and adjudicate reception at every intended
    /// receiver.
    pub fn end(&mut self, tx: TxId, now: SimTime) -> Vec<Reception> {
        let mut out = Vec::new();
        self.end_into(tx, now, &mut out);
        out
    }

    /// [`Medium::end`], appending verdicts to a caller-owned buffer so a
    /// hot event loop can reuse one allocation across every transmission.
    pub fn end_into(&mut self, tx: TxId, now: SimTime, out: &mut Vec<Reception>) {
        let pos = self
            .active
            .iter()
            .position(|t| t.id == tx)
            .unwrap_or_else(|| panic!("ending unknown transmission {tx:?}"));
        let done = self.active.swap_remove(pos);
        debug_assert!(now >= done.start, "transmission ends before it starts");

        // Remove the signal from the ambient field (same split-at-source
        // traversal as `begin`; element order and arithmetic unchanged).
        {
            let n = self.net.num_nodes();
            let src = done.frame.src.index();
            let row = &self.rss_floor_mw[src * n..(src + 1) * n];
            let (amb_lo, amb_hi) = self.ambient_mw.split_at_mut(src);
            for (a, &r) in amb_lo.iter_mut().zip(&row[..src]) {
                *a = (*a - r).max(0.0);
            }
            for (a, &r) in amb_hi[1..].iter_mut().zip(&row[src + 1..]) {
                *a = (*a - r).max(0.0);
            }
        }

        out.reserve(done.tracks.len());
        for track in &done.tracks {
            let reception = self.adjudicate(&done, track, now);
            if reception.success {
                self.counters.receptions_ok += 1;
            } else {
                self.counters.receptions_failed += 1;
            }
            out.push(reception);
        }
        // Recycle the track storage for a later transmission.
        let ActiveTx { mut tracks, .. } = done;
        tracks.clear();
        self.track_pool.push(tracks);
    }

    fn adjudicate(&mut self, done: &ActiveTx, track: &RxTrack, now: SimTime) -> Reception {
        let src = done.frame.src;
        let rx = track.rx;
        let sig_mw = self.rss_mw(src, rx);
        let fail = |sinr_db: f64| Reception {
            tx_id: done.id,
            rx,
            frame: done.frame.clone(),
            success: false,
            sinr_db,
        };

        if sig_mw <= 0.0 {
            return fail(f64::NEG_INFINITY);
        }
        if track.rx_transmitted {
            return fail(f64::NEG_INFINITY);
        }
        // Churned-dark endpoints: a departed client neither transmits
        // usefully nor receives; either end dark fails the reception.
        if let Some(f) = &mut self.faults {
            let src_dark = f.churn.check_dark(src.index() as u32, now);
            if src_dark || f.churn.check_dark(rx.index() as u32, now) {
                let node = if src_dark { src.0 } else { rx.0 };
                self.tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                    kind: FaultKind::ChurnDrop,
                    node,
                });
                return fail(f64::NEG_INFINITY);
            }
        }

        let mut interf_mw = track.max_interf_mw;
        // Same-round ROP reporters do not interfere with each other: they
        // occupy orthogonal subchannels by construction (paper §3.1).
        if let FrameBody::RopReport { ap, .. } = done.frame.body {
            for other in &self.active {
                if let FrameBody::RopReport { ap: oap, client: oc, .. } = other.frame.body {
                    if oap == ap && other.start == done.start {
                        interf_mw -= self.rss_mw(oc, rx);
                    }
                }
            }
            interf_mw = interf_mw.max(0.0);
        }

        let sinr_db = 10.0 * (sig_mw / (interf_mw + self.noise_mw)).log10();

        let success = match &done.frame.body {
            FrameBody::Data { .. } | FrameBody::MacAck { .. } | FrameBody::Poll { .. } => {
                let bits = done.frame.bits.max(1);
                let key = (sinr_db.to_bits(), bits);
                let per = match self.per_cache.get(&key) {
                    Some(&p) => p,
                    None => {
                        let p = self.net.phy().data_rate.per(sinr_db, bits);
                        self.per_cache.insert(key, p);
                        p
                    }
                };
                !self.rng.chance(per)
            }
            FrameBody::RopReport { client, ap, .. } => {
                let snr_db = sinr_db; // external interference already folded in
                let own_rss = self.net.rss().get(*client, *ap).value();
                let peak = self
                    .rop_peaks
                    .iter()
                    .find(|&&(a, t, _)| a == *ap && t == done.start.as_nanos())
                    .map(|&(_, _, p)| p)
                    .unwrap_or(own_rss);
                let gap = (peak - own_rss).max(0.0);
                let p = rop_decode_probability(snr_db, gap);
                let mut ok = self.rng.chance(p);
                if ok {
                    if let Some(f) = &mut self.faults {
                        // Decoded but corrupted: the integrity check at
                        // the AP discards it, same as a decode failure.
                        if f.channel.rop_corrupts() {
                            ok = false;
                            self.tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                                kind: FaultKind::RopCorrupt,
                                node: client.0,
                            });
                        }
                    }
                }
                ok
            }
            FrameBody::SignatureBurst(b) => {
                let p = signature_detection_probability(b.combined(), sinr_db);
                let mut ok = self.rng.chance(p);
                if ok {
                    if let Some(f) = &mut self.faults {
                        // Correlated fade: suppress this and the next
                        // fade_len − 1 would-be detections.
                        if f.channel.fade_suppresses() {
                            ok = false;
                            self.tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                                kind: FaultKind::Fade,
                                node: rx.0,
                            });
                        }
                    }
                }
                ok
            }
        };

        Reception {
            tx_id: done.id,
            rx,
            frame: done.frame.clone(),
            success,
            sinr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frames::{Burst, BurstMarker, InlineVec, BURST_CAP};
    use domino_topology::network::{make_node, PhyParams};
    use domino_topology::node::{NodeRole, Position};
    use domino_topology::rss::RssMatrix;
    use domino_topology::LinkId;
    use domino_traffic::{FlowId, Packet, PacketId, PacketKind};

    /// Two AP-client pairs; cross-RSS injected per test.
    fn net(cross: &[(u32, u32, f64)]) -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
            make_node(2, NodeRole::Ap, None, Position::default()),
            make_node(3, NodeRole::Client, Some(2), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(4);
        rss.set_symmetric(NodeId(0), NodeId(1), Dbm(-55.0));
        rss.set_symmetric(NodeId(2), NodeId(3), Dbm(-55.0));
        for &(a, b, v) in cross {
            rss.set_symmetric(NodeId(a), NodeId(b), Dbm(v));
        }
        Network::new(nodes, rss, PhyParams::default())
    }

    fn data_frame(net: &Network, link: u32) -> Frame {
        let l = net.link(LinkId(link));
        Frame {
            src: l.sender,
            body: FrameBody::Data {
                packet: Packet {
                    id: PacketId(1),
                    flow: FlowId(0),
                    link: LinkId(link),
                    payload_bytes: 512,
                    created_at: SimTime::ZERO,
                    kind: PacketKind::Udp,
                    seq: 0,
                },
                fake: false,
                client_burst: None,
            },
            bits: 4096,
        }
    }

    #[test]
    fn clean_transmission_succeeds() {
        let n = net(&[]);
        let mut m = Medium::new(n.clone(), 1);
        let t = m.begin(SimTime::ZERO, data_frame(&n, 0));
        let rx = m.end(t, SimTime::from_micros(341));
        assert_eq!(rx.len(), 1);
        assert!(rx[0].success);
        assert!(rx[0].sinr_db > 30.0);
        assert_eq!(rx[0].rx, NodeId(1));
        assert_eq!(m.counters().receptions_ok, 1);
    }

    #[test]
    fn hidden_terminal_collision_fails() {
        // AP2's signal is loud at C1: concurrent transmissions collide
        // there.
        let n = net(&[(2, 1, -58.0)]);
        let mut m = Medium::new(n.clone(), 2);
        let t0 = m.begin(SimTime::ZERO, data_frame(&n, 0)); // AP0 -> C1
        let t1 = m.begin(SimTime::from_micros(10), data_frame(&n, 2)); // AP2 -> C3
        let rx0 = m.end(t0, SimTime::from_micros(341));
        assert!(!rx0[0].success, "SINR {} should break reception", rx0[0].sinr_db);
        // AP2's own link is clean (nothing loud near C3).
        let rx1 = m.end(t1, SimTime::from_micros(351));
        assert!(rx1[0].success);
    }

    #[test]
    fn interference_peak_is_remembered() {
        // Interferer overlaps only the middle of the victim frame; the
        // victim must still see the peak interference.
        let n = net(&[(2, 1, -58.0)]);
        let mut m = Medium::new(n.clone(), 3);
        let t0 = m.begin(SimTime::ZERO, data_frame(&n, 0));
        let t1 = m.begin(SimTime::from_micros(100), data_frame(&n, 2));
        let _ = m.end(t1, SimTime::from_micros(200)); // interferer gone
        let rx0 = m.end(t0, SimTime::from_micros(341));
        assert!(rx0[0].sinr_db < 8.0, "peak interference forgotten: {}", rx0[0].sinr_db);
    }

    #[test]
    fn exposed_transmissions_both_succeed() {
        // APs hear each other, receivers are clean.
        let n = net(&[(0, 2, -70.0)]);
        let mut m = Medium::new(n.clone(), 4);
        let t0 = m.begin(SimTime::ZERO, data_frame(&n, 0));
        let t1 = m.begin(SimTime::ZERO, data_frame(&n, 2));
        assert!(m.end(t0, SimTime::from_micros(341))[0].success);
        assert!(m.end(t1, SimTime::from_micros(341))[0].success);
    }

    #[test]
    fn carrier_sense_reflects_audible_transmitters() {
        let n = net(&[(0, 2, -70.0)]);
        let mut m = Medium::new(n.clone(), 5);
        assert!(!m.is_busy(NodeId(2)));
        let t = m.begin(SimTime::ZERO, data_frame(&n, 0));
        assert!(m.is_busy(NodeId(2)), "AP2 hears AP0 at -70 dBm");
        assert!(!m.is_busy(NodeId(3)), "C3 hears nothing");
        assert!(m.is_busy(NodeId(0)), "a transmitter senses itself busy");
        m.end(t, SimTime::from_micros(341));
        assert!(!m.is_busy(NodeId(2)));
    }

    #[test]
    fn half_duplex_receiver_misses_frame() {
        let n = net(&[]);
        let mut m = Medium::new(n.clone(), 6);
        // C1 transmits its uplink while AP0 sends it a downlink frame.
        let _up = m.begin(SimTime::ZERO, data_frame(&n, 1)); // C1 -> AP0
        let down = m.begin(SimTime::ZERO, data_frame(&n, 0)); // AP0 -> C1
        let rx = m.end(down, SimTime::from_micros(341));
        assert!(!rx[0].success, "a transmitting node cannot receive");
    }

    #[test]
    fn signature_burst_detected_under_data_interference() {
        // A burst to C1 while AP2 blasts a packet whose signal at C1 is
        // as loud as the burst: raw SINR ~0 dB, but correlation gain
        // carries it.
        let n = net(&[(2, 1, -55.0)]);
        let mut m = Medium::new(n.clone(), 7);
        let _jam = m.begin(SimTime::ZERO, data_frame(&n, 2));
        let burst = Frame {
            src: NodeId(0),
            body: FrameBody::SignatureBurst(Burst {
                codes: InlineVec::of(1),
                targets: InlineVec::of(NodeId(1)),
                marker: BurstMarker::Start,
                slot: 0,
                continues: false,
            }),
            bits: 0,
        };
        let mut ok = 0;
        for i in 0..50 {
            let t = m.begin(SimTime::from_micros(1 + i), burst.clone());
            if m.end(t, SimTime::from_micros(1 + i))[0].success {
                ok += 1;
            }
        }
        assert!(ok >= 45, "burst detection under interference: {ok}/50");
    }

    #[test]
    fn full_cap_burst_stays_reliable() {
        // BURST_CAP is exactly the paper's 4-combined-signature operating
        // point (the converter clamps `max_outbound` to it, so a larger
        // burst can never reach the air). The degradation beyond 4 is
        // pinned directly on `signature_detection_probability` in
        // `signatures::tests::detection_degrades_beyond_four`; here we
        // pin the other side through the full adjudication path: a burst
        // at the cap still detects reliably.
        let n = net(&[]);
        let mut m = Medium::new(n.clone(), 8);
        let burst = Frame {
            src: NodeId(0),
            body: FrameBody::SignatureBurst(Burst {
                codes: (1..=BURST_CAP as u32).collect(),
                targets: std::iter::repeat_n(NodeId(1), BURST_CAP).collect(),
                marker: BurstMarker::Start,
                slot: 0,
                continues: false,
            }),
            bits: 0,
        };
        let mut ok = 0;
        for i in 0..100 {
            let t = m.begin(SimTime::from_micros(i), burst.clone());
            ok += m.end(t, SimTime::from_micros(i)).iter().filter(|r| r.success).count();
        }
        assert!(ok > 380, "4-signature bursts should be reliable: {ok}/400");
    }

    #[test]
    fn rop_reports_share_a_symbol_without_colliding() {
        // Both clients of AP0... our fixture has one client per AP, so
        // use both pairs' clients reporting to their own APs at once.
        let n = net(&[]);
        let mut m = Medium::new(n.clone(), 9);
        let rep = |client: u32, ap: u32| Frame {
            src: NodeId(client),
            body: FrameBody::RopReport { client: NodeId(client), ap: NodeId(ap), queue: 5 },
            bits: 0,
        };
        let t0 = m.begin(SimTime::ZERO, rep(1, 0));
        let t1 = m.begin(SimTime::ZERO, rep(3, 2));
        assert!(m.end(t0, SimTime::from_micros(16))[0].success);
        assert!(m.end(t1, SimTime::from_micros(16))[0].success);
    }

    #[test]
    fn poll_reaches_all_clients() {
        let n = net(&[]);
        let mut m = Medium::new(n.clone(), 10);
        let poll = Frame { src: NodeId(0), body: FrameBody::Poll { ap: NodeId(0) }, bits: 256 };
        let t = m.begin(SimTime::ZERO, poll);
        let rx = m.end(t, SimTime::from_micros(30));
        assert_eq!(rx.len(), 1); // AP0 has one client
        assert!(rx[0].success);
        assert_eq!(rx[0].rx, NodeId(1));
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_transmit_panics() {
        let n = net(&[]);
        let mut m = Medium::new(n.clone(), 11);
        let _ = m.begin(SimTime::ZERO, data_frame(&n, 0));
        let _ = m.begin(SimTime::ZERO, data_frame(&n, 0));
    }

    #[test]
    #[should_panic(expected = "unknown transmission")]
    fn ending_unknown_tx_panics() {
        let n = net(&[]);
        let mut m = Medium::new(n, 12);
        let _ = m.end(TxId(99), SimTime::ZERO);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::frames::{Burst, BurstMarker, InlineVec};
    use domino_topology::network::{make_node, PhyParams};
    use domino_topology::node::{NodeRole, Position};
    use domino_topology::rss::RssMatrix;
    use domino_topology::LinkId;
    use domino_traffic::{FlowId, Packet, PacketId, PacketKind};

    /// One AP with three clients at controllable RSS.
    fn star(rss_values: &[f64]) -> Network {
        let mut nodes = vec![make_node(0, NodeRole::Ap, None, Position::default())];
        for (i, _) in rss_values.iter().enumerate() {
            nodes.push(make_node(i as u32 + 1, NodeRole::Client, Some(0), Position::default()));
        }
        let mut rss = RssMatrix::disconnected(nodes.len());
        for (i, &v) in rss_values.iter().enumerate() {
            rss.set_symmetric(NodeId(0), NodeId(i as u32 + 1), Dbm(v));
        }
        Network::new(nodes, rss, PhyParams::default())
    }

    fn report(net: &Network, client: u32, queue: u32) -> Frame {
        let _ = net;
        Frame {
            src: NodeId(client),
            body: FrameBody::RopReport { client: NodeId(client), ap: NodeId(0), queue },
            bits: 0,
        }
    }

    #[test]
    fn rop_gap_over_38db_breaks_the_weak_reporter() {
        // Two clients 45 dB apart answer the same poll: the strong one
        // decodes, the weak one collapses (Fig 6 calibration).
        let net = star(&[-50.0, -95.0 + 9.0]); // -50 vs -86: 36 dB... use 45
        let net = {
            let _ = net;
            star(&[-45.0, -90.0])
        };
        let mut m = Medium::new(net.clone(), 3);
        let mut weak_ok = 0;
        let mut strong_ok = 0;
        for i in 0..100u64 {
            let t0 = SimTime::from_micros(i * 100);
            let a = m.begin(t0, report(&net, 1, 5));
            let b = m.begin(t0, report(&net, 2, 7));
            let end = t0 + domino_sim::SimDuration::from_micros(16);
            strong_ok += usize::from(m.end(a, end)[0].success);
            weak_ok += usize::from(m.end(b, end)[0].success);
        }
        assert!(strong_ok > 95, "strong reporter: {strong_ok}/100");
        assert!(weak_ok < 20, "45 dB gap should break the weak reporter: {weak_ok}/100");
    }

    #[test]
    fn rop_rounds_at_different_times_do_not_interact() {
        let net = star(&[-55.0, -60.0]);
        let mut m = Medium::new(net.clone(), 4);
        // Client 1 reports alone at t0; client 2 alone much later: both
        // are their round's peak, both succeed.
        let a = m.begin(SimTime::from_micros(0), report(&net, 1, 5));
        assert!(m.end(a, SimTime::from_micros(16))[0].success);
        let b = m.begin(SimTime::from_millis(2), report(&net, 2, 9));
        assert!(m.end(b, SimTime::from_millis(2) + domino_sim::SimDuration::from_micros(16))[0].success);
    }

    #[test]
    fn ambient_power_returns_to_noise_after_all_ends() {
        let net = star(&[-55.0, -60.0, -65.0]);
        let mut m = Medium::new(net.clone(), 5);
        let noise_before = m.ambient_at(NodeId(0)).value();
        let mut txs = Vec::new();
        for c in 1..=3u32 {
            let p = Packet {
                id: PacketId(u64::from(c)),
                flow: FlowId(0),
                link: LinkId((c - 1) * 2 + 1), // uplinks
                payload_bytes: 512,
                created_at: SimTime::ZERO,
                kind: PacketKind::Udp,
                seq: 0,
            };
            txs.push(m.begin(
                SimTime::from_micros(u64::from(c)),
                Frame {
                    src: NodeId(c),
                    body: FrameBody::Data { packet: p, fake: false, client_burst: None },
                    bits: 4096,
                },
            ));
        }
        assert!(m.ambient_at(NodeId(0)).value() > noise_before + 10.0);
        for t in txs {
            m.end(t, SimTime::from_micros(400));
        }
        let after = m.ambient_at(NodeId(0)).value();
        assert!((after - noise_before).abs() < 0.1, "{noise_before} -> {after}");
    }

    #[test]
    fn burst_to_out_of_range_target_fails_cleanly() {
        let net = star(&[-55.0]);
        let m = Medium::new(net.clone(), 6);
        // A burst targeting a node the sender cannot reach at all: the
        // medium adjudicates failure rather than panicking. Client 1
        // bursts at... itself is the only other node; use a fabricated
        // two-node disconnected net instead.
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
        ];
        let rss = RssMatrix::disconnected(2); // not even the pair link
        let net2 = Network::new(nodes, rss, PhyParams::default());
        let mut m2 = Medium::new(net2, 7);
        let burst = Frame {
            src: NodeId(0),
            body: FrameBody::SignatureBurst(Burst {
                codes: InlineVec::of(1),
                targets: InlineVec::of(NodeId(1)),
                marker: BurstMarker::Start,
                slot: 0,
                continues: false,
            }),
            bits: 0,
        };
        let t = m2.begin(SimTime::ZERO, burst);
        let rx = m2.end(t, SimTime::from_micros(13));
        assert_eq!(rx.len(), 1);
        assert!(!rx[0].success);
        assert_eq!(rx[0].sinr_db, f64::NEG_INFINITY);
        let _ = m;
    }

    #[test]
    fn counters_track_outcomes() {
        let net = star(&[-55.0]);
        let mut m = Medium::new(net.clone(), 8);
        let p = Packet {
            id: PacketId(1),
            flow: FlowId(0),
            link: LinkId(0),
            payload_bytes: 512,
            created_at: SimTime::ZERO,
            kind: PacketKind::Udp,
            seq: 0,
        };
        let t = m.begin(
            SimTime::ZERO,
            Frame { src: NodeId(0), body: FrameBody::Data { packet: p, fake: false, client_burst: None }, bits: 4096 },
        );
        m.end(t, SimTime::from_micros(385));
        let c = m.counters();
        assert_eq!(c.started, 1);
        assert_eq!(c.receptions_ok + c.receptions_failed, 1);
    }

    fn data_on_link0(n: &Network) -> Frame {
        let _ = n;
        Frame {
            src: NodeId(0),
            body: FrameBody::Data {
                packet: Packet {
                    id: PacketId(1),
                    flow: FlowId(0),
                    link: LinkId(0),
                    payload_bytes: 512,
                    created_at: SimTime::ZERO,
                    kind: PacketKind::Udp,
                    seq: 0,
                },
                fake: false,
                client_burst: None,
            },
            bits: 4096,
        }
    }

    #[test]
    fn churned_dark_endpoint_fails_reception() {
        use domino_faults::{FaultConfig, FaultPlane};
        let n = star(&[-55.0]);
        // Client 1 leaves constantly: near-certain dark at any instant.
        let cfg = FaultConfig {
            churn_rate_hz: 1_000.0,
            churn_downtime_us: 100_000.0,
            ..FaultConfig::off()
        };
        let plane = FaultPlane::new(&cfg, 5, &[1], 1.0);
        let mut m = Medium::new(n.clone(), 1);
        m.set_faults(plane.medium);
        let mut failed = 0u32;
        for i in 0..20u64 {
            let at = SimTime::from_millis(10 + i * 40);
            let t = m.begin(at, data_on_link0(&n));
            if !m.end(t, at)[0].success {
                failed += 1;
            }
        }
        assert!(failed >= 15, "dark client kept receiving: {failed}/20 failed");
        let f = m.faults().expect("installed");
        assert_eq!(u64::from(failed), f.churn.drops);
        assert!(f.churn.events > 0);
    }

    #[test]
    fn fade_bursts_suppress_otherwise_good_detections() {
        use domino_faults::{FaultConfig, FaultPlane};
        let n = star(&[-55.0]);
        let burst = Frame {
            src: NodeId(0),
            body: FrameBody::SignatureBurst(Burst {
                codes: InlineVec::of(1),
                targets: InlineVec::of(NodeId(1)),
                marker: BurstMarker::Start,
                slot: 0,
                continues: false,
            }),
            bits: 0,
        };
        let run = |faded: bool| {
            let mut m = Medium::new(n.clone(), 6);
            if faded {
                let cfg = FaultConfig { fade: 0.2, fade_len: 5, ..FaultConfig::off() };
                m.set_faults(FaultPlane::new(&cfg, 6, &[], 1.0).medium);
            }
            let mut ok = 0u32;
            for i in 0..200u64 {
                let t = m.begin(SimTime::from_micros(i * 20), burst.clone());
                if m.end(t, SimTime::from_micros(i * 20))[0].success {
                    ok += 1;
                }
            }
            (ok, m.faults().map(|f| f.channel.detections_suppressed).unwrap_or(0))
        };
        let (clean_ok, _) = run(false);
        let (faded_ok, suppressed) = run(true);
        // Fades only ever subtract, and by exactly the suppression count.
        assert_eq!(u64::from(clean_ok - faded_ok), suppressed);
        assert!(suppressed > 30, "fades barely fired: {suppressed}");
    }

    #[test]
    fn rop_corruption_discards_decoded_reports() {
        use domino_faults::{FaultConfig, FaultPlane};
        let n = star(&[-55.0]);
        let rep = report(&n, 1, 5);
        let run = |corrupt: bool| {
            let mut m = Medium::new(n.clone(), 7);
            if corrupt {
                let cfg = FaultConfig { rop_corrupt: 0.4, ..FaultConfig::off() };
                m.set_faults(FaultPlane::new(&cfg, 7, &[], 1.0).medium);
            }
            let mut ok = 0u64;
            for i in 0..500u64 {
                let t = m.begin(SimTime::from_micros(i * 20), rep.clone());
                if m.end(t, SimTime::from_micros(i * 20 + 16))[0].success {
                    ok += 1;
                }
            }
            (ok, m.faults().map(|f| f.channel.rops_corrupted).unwrap_or(0))
        };
        let (clean_ok, _) = run(false);
        let (corrupt_ok, corrupted) = run(true);
        assert_eq!(clean_ok - corrupt_ok, corrupted);
        let rate = corrupted as f64 / clean_ok as f64;
        assert!((rate - 0.4).abs() < 0.08, "corruption rate {rate}");
    }
}
