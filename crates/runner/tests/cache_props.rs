//! Property tests for the shard result cache (ISSUE 8 satellite):
//!
//! 1. **Round-trip transparency** — for arbitrary (experiment, scale,
//!    seed), a cold cached run, a warm cached run, and an uncached run
//!    all render byte-identical text, and the warm run executes zero
//!    shards.
//! 2. **Corruption safety** — corrupted or truncated cache entries are
//!    detected and recomputed, never served: the output bytes still
//!    match and the store reports evictions/misses, not hits.
//! 3. **Key sensitivity** — changing any keyed input (experiment, code
//!    fingerprint, scale, seed, shard index, params) changes the cache
//!    key, so no entry written under one identity can be read under
//!    another.
//!
//! The generator drives real registry experiments; to keep the suite
//! fast it draws from the cheap end of the registry (the full matrix is
//! exercised by `scripts/ci.sh`'s warm-cache gate over all 15).

use domino_campaign::store::{CacheKey, Store};
use domino_runner::cache::{run_experiment_cached, CacheSession};
use domino_runner::registry;
use domino_runner::scale::Scale;
use domino_runner::run_experiment;
use domino_testkit::{prop, prop_assert, prop_assert_eq};
use std::path::{Path, PathBuf};

/// Cheap experiments only: every one finishes in well under a second at
/// quick scale, so the property loop stays within test-suite budget.
const CHEAP: &[&str] = &["table1_params", "fig05_rop_samples", "fig10_timeline"];

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("domino-cache-props-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn session(dir: &Path, fp: &str) -> CacheSession {
    CacheSession::with(Store::open(dir).unwrap(), fp.to_string())
}

#[test]
fn cached_runs_are_byte_identical_for_arbitrary_inputs() {
    let dir = tmp_dir("roundtrip");
    prop::check("cache round-trip is byte-identical", |g| {
        let name = *g.pick(CHEAP);
        let seed = g.u64(1, 50);
        let jobs = g.usize(1, 3);
        let exp = registry::find(name).unwrap();
        let scale = Scale::Quick;

        let plain = run_experiment(exp, scale, seed, jobs);
        let mut s = session(&dir, &"c".repeat(64));
        let cold = run_experiment_cached(&mut s, exp, scale, seed, jobs);
        let warm = run_experiment_cached(&mut s, exp, scale, seed, jobs);

        prop_assert_eq!(&cold.run.text, &plain.text, "cold cached text != uncached text");
        prop_assert_eq!(&warm.run.text, &plain.text, "warm cached text != uncached text");
        prop_assert_eq!(warm.shards_executed, 0, "warm run executed shards");
        prop_assert_eq!(warm.shards_cached, cold.shards_cached + cold.shards_executed);
        prop_assert_eq!(&cold.run.digest, &plain.digest);
        prop_assert_eq!(&warm.run.digest, &plain.digest);
    });
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn corrupted_entries_are_recomputed_never_served() {
    let dir = tmp_dir("corrupt");
    prop::check("corrupt cache entries recompute", |g| {
        let name = *g.pick(CHEAP);
        let seed = g.u64(1, 50);
        let exp = registry::find(name).unwrap();
        let fp = "d".repeat(64);

        let mut s = session(&dir, &fp);
        let cold = run_experiment_cached(&mut s, exp, Scale::Quick, seed, 1);
        s.flush().unwrap();

        // Damage one stored object: truncate or flip bytes, chosen by the
        // generator, for a generator-chosen shard.
        let shard = g.u64(0, cold.shards_executed.max(1) as u64 - 1) as u32;
        let key = CacheKey {
            experiment: name.to_string(),
            fingerprint: fp.clone(),
            scale: "quick".to_string(),
            seed,
            shard,
            params: String::new(),
        };
        let digest = key.digest();
        let two = digest.get(..2).unwrap().to_string();
        let obj = dir.join("objects").join(two).join(format!("{digest}.bin"));
        prop_assert!(obj.is_file(), "expected object file for shard {}", shard);
        let bytes = std::fs::read(&obj).unwrap();
        if g.bool() && bytes.len() > 4 {
            // Truncate somewhere inside the payload.
            let cut = g.usize(1, bytes.len() - 1);
            std::fs::write(&obj, bytes.get(..cut).unwrap()).unwrap();
        } else {
            // Flip one byte.
            let mut b = bytes.clone();
            let at = g.usize(0, b.len() - 1);
            if let Some(v) = b.get_mut(at) {
                *v ^= 0xa5;
            }
            std::fs::write(&obj, b).unwrap();
        }

        let mut s2 = session(&dir, &fp);
        let after = run_experiment_cached(&mut s2, exp, Scale::Quick, seed, 1);
        prop_assert_eq!(&after.run.text, &cold.run.text, "output changed after corruption");
        prop_assert!(after.shards_executed >= 1, "damaged shard was not recomputed");
        let stats = s2.stats();
        prop_assert!(stats.misses >= 1, "corruption must surface as a miss");
        prop_assert_eq!(stats.evictions, 1, "damaged entry must be evicted");
    });
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn cache_key_changes_when_any_keyed_input_changes() {
    prop::check("cache key is sensitive to every field", |g| {
        let base = CacheKey {
            experiment: g.pick(CHEAP).to_string(),
            fingerprint: format!("{:064x}", g.u64(0, u64::MAX)),
            scale: if g.bool() { "quick" } else { "full" }.to_string(),
            seed: g.u64(0, u64::MAX),
            shard: g.u64(0, 1 << 20) as u32,
            params: String::new(),
        };
        let d = base.digest();
        prop_assert_eq!(d.len(), 64);
        prop_assert_eq!(&d, &base.digest(), "digest must be deterministic");

        let mut other_fp = base.fingerprint.clone();
        other_fp.replace_range(..1, if other_fp.starts_with('0') { "1" } else { "0" });
        let variants = [
            CacheKey { experiment: format!("{}x", base.experiment), ..base.clone() },
            CacheKey { fingerprint: other_fp, ..base.clone() },
            CacheKey {
                scale: if base.scale == "quick" { "full" } else { "quick" }.to_string(),
                ..base.clone()
            },
            CacheKey { seed: base.seed.wrapping_add(g.u64(1, 1 << 40)), ..base.clone() },
            CacheKey { shard: base.shard.wrapping_add(1), ..base.clone() },
            CacheKey { params: "rop=7".to_string(), ..base.clone() },
        ];
        for (i, v) in variants.iter().enumerate() {
            prop_assert!(v.digest() != d, "field {} did not move the key", i);
        }
    });
}
