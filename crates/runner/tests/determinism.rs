//! Integration pins for the runner's central promise: the rendered bytes
//! are a pure function of `(experiment, scale, seed)` — the worker count
//! and shard completion order never show through.

use domino_runner::registry;
use domino_runner::run_experiment;
use domino_runner::scale::Scale;

/// A cheap-but-representative slice of the registry: a constant table, a
/// stochastic render, a multi-shard sweep, the per-shard-seeded detection
/// matrix, and a single-shard timeline.
const MATRIX: &[&str] = &[
    "table1_params",
    "fig05_rop_samples",
    "fig06_guard_sweep",
    "fig09_signature_detection",
    "fig10_timeline",
];

#[test]
fn jobs_count_never_changes_a_byte() {
    for name in MATRIX {
        let exp = registry::find(name).expect("matrix names a registered experiment");
        let serial = run_experiment(exp, Scale::Quick, registry::DEFAULT_SEED, 1);
        let parallel = run_experiment(exp, Scale::Quick, registry::DEFAULT_SEED, 8);
        assert_eq!(serial.text, parallel.text, "{name}: jobs=1 vs jobs=8");
        assert!(!serial.text.is_empty(), "{name}: rendered something");
        assert!(serial.text.ends_with('\n'), "{name}: text ends in newline");
        assert_eq!(serial.shard_ns.len(), parallel.shard_ns.len(), "{name}: shard count");
    }
}

#[test]
fn runs_are_reproducible_and_seed_sensitive() {
    let exp = registry::find("fig06_guard_sweep").expect("registered");
    let a = run_experiment(exp, Scale::Quick, 7, 4);
    let b = run_experiment(exp, Scale::Quick, 7, 4);
    assert_eq!(a.text, b.text, "same seed, same bytes");
    let c = run_experiment(exp, Scale::Quick, 8, 4);
    assert_ne!(a.text, c.text, "a different master seed must change the sweep");
}
