//! Byte-exact shard serialization for the result cache.
//!
//! The shard cache (`crate::cache`, backed by `domino_campaign::store`)
//! stores each shard's *result value*, not its rendered text — the merge
//! function still runs on every invocation so cached and fresh shards
//! flow through the identical code path. That requires every shard type
//! to round-trip through bytes **losslessly**: floats are encoded via
//! [`f64::to_bits`], never formatted, so a decoded shard is
//! bit-for-bit the value the shard function returned and the merged text
//! is byte-identical whether zero, some, or all shards came from the
//! cache.
//!
//! [`Codec`] is a *mandatory* bound on [`Plan::new`](crate::plan::Plan::new):
//! an experiment that cannot serialize its shards cannot be registered,
//! so cacheability is enforced at compile time rather than discovered as
//! a runtime gap. Encodings are length-prefixed little-endian with no
//! self-description — the cache key already pins experiment, code
//! fingerprint, scale, seed, and shard index, so a decode is only ever
//! attempted against bytes produced by the same type. Any malformed or
//! truncated input decodes to `None` (the caller treats it as a cache
//! miss and recomputes).

use domino_core::{FaultStats, Scheme};
use domino_phy::ofdm::GuardSweepPoint;

/// Append-only little-endian byte sink.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Fresh, empty writer.
    pub fn new() -> ByteWriter {
        ByteWriter::default()
    }

    /// Consume the writer, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (lossless).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u64` length prefix followed by raw bytes.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }
}

/// Cursor over encoded bytes; every read is bounds-checked and returns
/// `None` past the end.
#[derive(Debug)]
pub struct ByteReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Read from the start of `bytes`.
    pub fn new(bytes: &'a [u8]) -> ByteReader<'a> {
        ByteReader { bytes, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.bytes.len()
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.bytes.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }

    /// Read one byte.
    pub fn get_u8(&mut self) -> Option<u8> {
        self.take(1)?.first().copied()
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self) -> Option<u32> {
        self.take(4).map(|s| u32::from_le_bytes(s.try_into().unwrap_or([0; 4])))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self) -> Option<u64> {
        self.take(8).map(|s| u64::from_le_bytes(s.try_into().unwrap_or([0; 8])))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self) -> Option<f64> {
        self.get_u64().map(f64::from_bits)
    }

    /// Read a `u64`-length-prefixed byte run.
    pub fn get_bytes(&mut self) -> Option<&'a [u8]> {
        let len: usize = self.get_u64()?.try_into().ok()?;
        self.take(len)
    }
}

/// Lossless byte round-trip for shard result values.
///
/// Contract (pinned by the cache property tests in `tests/cache_props.rs`):
/// `Self::from_bytes(&v.to_bytes()) == Some(v)` for every value an
/// experiment's shard can produce, and `from_bytes` returns `None` —
/// never panics, never invents a value — on input it did not write.
pub trait Codec: Sized {
    /// Append this value's encoding to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// Decode one value from the reader, or `None` if the bytes don't
    /// parse.
    fn decode(r: &mut ByteReader<'_>) -> Option<Self>;

    /// Encode to an owned buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.encode(&mut w);
        w.into_bytes()
    }

    /// Decode from a complete buffer; trailing bytes are a decode error.
    fn from_bytes(bytes: &[u8]) -> Option<Self> {
        let mut r = ByteReader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.is_exhausted().then_some(v)
    }
}

impl Codec for u32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u32(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.get_u32()
    }
}

impl Codec for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.get_u64()
    }
}

impl Codec for usize {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(*self as u64);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.get_u64()?.try_into().ok()
    }
}

impl Codec for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(*self);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        r.get_f64()
    }
}

impl Codec for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u8(u8::from(*self));
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        match r.get_u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for String {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_bytes(self.as_bytes());
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        String::from_utf8(r.get_bytes()?.to_vec()).ok()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let len: usize = r.get_u64()?.try_into().ok()?;
        // Guard the pre-allocation: a corrupt length must not OOM.
        let mut out = Vec::with_capacity(len.min(4096));
        for _ in 0..len {
            out.push(T::decode(r)?);
        }
        Some(out)
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, w: &mut ByteWriter) {
        self.0.encode(w);
        self.1.encode(w);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let a = A::decode(r)?;
        let b = B::decode(r)?;
        Some((a, b))
    }
}

impl<T: Codec, const N: usize> Codec for [T; N] {
    fn encode(&self, w: &mut ByteWriter) {
        for item in self {
            item.encode(w);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into().ok()
    }
}

impl Codec for Scheme {
    fn encode(&self, w: &mut ByteWriter) {
        let idx = Scheme::ALL.iter().position(|s| s == self).unwrap_or(0);
        w.put_u8(idx as u8);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Scheme::ALL.get(usize::from(r.get_u8()?)).copied()
    }
}

impl Codec for FaultStats {
    fn encode(&self, w: &mut ByteWriter) {
        for v in [
            self.wired_msgs_lost,
            self.wired_spikes,
            self.ap_crashes,
            self.crash_recoveries,
            self.compute_stalls,
            self.fades_opened,
            self.detections_suppressed,
            self.rops_corrupted,
            self.stale_reports,
            self.churn_events,
            self.churn_drops,
            self.livelocks,
        ] {
            w.put_u64(v);
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(FaultStats {
            wired_msgs_lost: r.get_u64()?,
            wired_spikes: r.get_u64()?,
            ap_crashes: r.get_u64()?,
            crash_recoveries: r.get_u64()?,
            compute_stalls: r.get_u64()?,
            fades_opened: r.get_u64()?,
            detections_suppressed: r.get_u64()?,
            rops_corrupted: r.get_u64()?,
            stale_reports: r.get_u64()?,
            churn_events: r.get_u64()?,
            churn_drops: r.get_u64()?,
            livelocks: r.get_u64()?,
        })
    }
}

impl Codec for GuardSweepPoint {
    fn encode(&self, w: &mut ByteWriter) {
        self.guard.encode(w);
        w.put_f64(self.rss_diff_db);
        w.put_f64(self.decode_ratio);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(GuardSweepPoint {
            guard: usize::decode(r)?,
            rss_diff_db: r.get_f64()?,
            decode_ratio: r.get_f64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = v.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Some(&v), "round-trip failed");
        // Truncation at every prefix length must fail cleanly, not panic
        // or succeed (the full-buffer decode demands exhaustion).
        for cut in 0..bytes.len() {
            let prefix = bytes.get(..cut).unwrap_or(&[]);
            assert!(T::from_bytes(prefix).is_none(), "truncated decode at {cut} succeeded");
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u32);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip(String::new());
        roundtrip("fig05_rop_samples — öutput\n".to_string());
        roundtrip((1.5f64, u64::MAX));
    }

    #[test]
    fn floats_roundtrip_by_bits() {
        for v in [0.0, -0.0, 1.0 / 3.0, f64::MIN_POSITIVE, f64::MAX, f64::NEG_INFINITY] {
            let back = f64::from_bytes(&v.to_bytes()).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "bit pattern must survive");
        }
        let nan = f64::from_bytes(&f64::NAN.to_bytes()).unwrap();
        assert!(nan.is_nan());
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(Vec::<f64>::new());
        roundtrip(vec![1.0f64, -2.5, 3.25]);
        roundtrip(vec!["a".to_string(), String::new(), "c\n".to_string()]);
        roundtrip([1.0f64, 2.0, 3.0]);
        roundtrip(vec![vec![1u64, 2], vec![], vec![3]]);
    }

    #[test]
    fn corrupt_length_is_a_decode_error_not_an_alloc() {
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd element count
        assert!(Vec::<u64>::from_bytes(&w.into_bytes()).is_none());
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX); // absurd string length
        assert!(String::from_bytes(&w.into_bytes()).is_none());
    }

    #[test]
    fn invalid_utf8_and_bool_fail() {
        let mut w = ByteWriter::new();
        w.put_bytes(&[0xff, 0xfe]);
        assert!(String::from_bytes(&w.into_bytes()).is_none());
        assert!(bool::from_bytes(&[2]).is_none());
    }

    #[test]
    fn domain_types_roundtrip() {
        for scheme in Scheme::ALL {
            roundtrip(scheme);
        }
        assert!(Scheme::from_bytes(&[200]).is_none(), "out-of-range scheme tag");
        roundtrip(GuardSweepPoint { guard: 4, rss_diff_db: -12.5, decode_ratio: 0.875 });
        let stats = FaultStats {
            wired_msgs_lost: 1,
            wired_spikes: 2,
            ap_crashes: 3,
            crash_recoveries: 4,
            compute_stalls: 5,
            fades_opened: 6,
            detections_suppressed: 7,
            rops_corrupted: 8,
            stale_reports: 9,
            churn_events: 10,
            churn_drops: 11,
            livelocks: 12,
        };
        roundtrip(stats);
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = 7u64.to_bytes();
        bytes.push(0);
        assert!(u64::from_bytes(&bytes).is_none());
    }
}
