//! The shard plan of one experiment: tasks plus an index-ordered merge.

use crate::codec::Codec;
use crate::pool::Task;
use std::any::Any;

/// Type-erased shard result, so the registry can hold heterogeneous
/// experiments behind one function-pointer type.
pub(crate) type ShardData = Box<dyn Any + Send>;

/// The merge half of a plan: shard results in index order → output text
/// plus the machine-readable digest of the run.
pub(crate) type Finish = Box<dyn FnOnce(Vec<ShardData>) -> (String, RunDigest) + Send>;

/// Serialize one type-erased shard value. `None` only if the box holds a
/// different type than the plan's — impossible for values produced by the
/// plan's own shards or its own `decode`.
pub(crate) type EncodeShard = fn(&ShardData) -> Option<Vec<u8>>;

/// Deserialize one shard value from cached bytes; `None` on any
/// malformed input (the cache layer recomputes the shard).
pub(crate) type DecodeShard = fn(&[u8]) -> Option<ShardData>;

fn encode_shard<T: Codec + 'static>(data: &ShardData) -> Option<Vec<u8>> {
    data.downcast_ref::<T>().map(Codec::to_bytes)
}

fn decode_shard<T: Codec + Send + 'static>(bytes: &[u8]) -> Option<ShardData> {
    T::from_bytes(bytes).map(|v| Box::new(v) as ShardData)
}

/// Machine-readable summary of one experiment run, surfaced in the
/// `domino-run --json` manifest. Everything here is deterministic (a pure
/// function of experiment, scale, and seed) — unlike the wall times that
/// accompany it in the manifest.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RunDigest {
    /// Runs aborted by the engine's liveness monitor, summed over shards.
    pub livelocks: u64,
    /// DOMINO watchdog-restart storms, summed over shards.
    pub watchdog_storms: u64,
    /// Per-fault-class injection totals as `(class, count)`, in
    /// `FaultStats::classes` declaration order, summed over shards.
    /// Empty when the experiment does not digest faults.
    pub fault_classes: Vec<(&'static str, u64)>,
}

impl RunDigest {
    /// Fold another digest (e.g. one shard's) into this one, matching
    /// fault classes by name.
    pub fn merge(&mut self, other: &RunDigest) {
        self.livelocks += other.livelocks;
        self.watchdog_storms += other.watchdog_storms;
        for &(name, count) in &other.fault_classes {
            match self.fault_classes.iter_mut().find(|(n, _)| *n == name) {
                Some((_, c)) => *c += count,
                None => self.fault_classes.push((name, count)),
            }
        }
    }
}

/// An experiment instantiated at a concrete scale and seed: a list of
/// independent shards and a merge that renders their results — consumed
/// strictly in shard-index order — into the experiment's output text.
pub struct Plan {
    shards: Vec<Task<ShardData>>,
    encode: EncodeShard,
    decode: DecodeShard,
    finish: Finish,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan").field("shards", &self.shards.len()).finish()
    }
}

impl Plan {
    /// Build a plan from typed shards and a typed merge. The type erasure
    /// stays inside this constructor: `finish` receives shard values in
    /// shard-index order, whatever order the pool completed them in.
    ///
    /// `T: Codec` is deliberate and mandatory — it is what makes every
    /// registered experiment shard-cacheable (see [`crate::codec`]); the
    /// monomorphic encode/decode function pointers the cache layer uses
    /// are captured here, so type erasure never leaks to callers.
    pub fn new<T: Send + Codec + 'static>(
        shards: Vec<Box<dyn FnOnce() -> T + Send>>,
        finish: impl FnOnce(Vec<T>) -> String + Send + 'static,
    ) -> Plan {
        Plan::new_digested(shards, move |data| (finish(data), RunDigest::default()))
    }

    /// [`Plan::new`] for experiments that also report a [`RunDigest`]:
    /// the merge returns the rendered text together with the digest the
    /// `--json` manifest surfaces (livelocks, watchdog storms,
    /// per-fault-class counts).
    pub fn new_digested<T: Send + Codec + 'static>(
        shards: Vec<Box<dyn FnOnce() -> T + Send>>,
        finish: impl FnOnce(Vec<T>) -> (String, RunDigest) + Send + 'static,
    ) -> Plan {
        Plan {
            shards: shards
                .into_iter()
                .map(|shard| -> Task<ShardData> { Box::new(move || Box::new(shard()) as ShardData) })
                .collect(),
            encode: encode_shard::<T>,
            decode: decode_shard::<T>,
            finish: Box::new(move |data| {
                let typed: Vec<T> = data
                    .into_iter()
                    .map(|d| *d.downcast::<T>().expect("shard returned the plan's own type"))
                    .collect();
                finish(typed)
            }),
        }
    }

    /// A one-shard plan whose only shard renders the whole output.
    pub fn single(render: impl FnOnce() -> String + Send + 'static) -> Plan {
        Plan::new(
            vec![Box::new(render) as Box<dyn FnOnce() -> String + Send>],
            |mut parts: Vec<String>| parts.pop().unwrap_or_default(),
        )
    }

    /// Number of shards in this plan.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn into_parts(self) -> (Vec<Task<ShardData>>, Finish) {
        (self.shards, self.finish)
    }

    /// Decompose for cache-aware execution: tasks, the shard codec pair,
    /// and the merge. Used by [`crate::cache::run_experiment_cached`].
    pub(crate) fn into_cache_parts(self) -> (Vec<Task<ShardData>>, EncodeShard, DecodeShard, Finish) {
        (self.shards, self.encode, self.decode, self.finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip_in_index_order() {
        let shards: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            (0..5u32).map(|i| -> Box<dyn FnOnce() -> u32 + Send> { Box::new(move || i * 10) }).collect();
        let plan = Plan::new(shards, |values: Vec<u32>| format!("{values:?}"));
        assert_eq!(plan.num_shards(), 5);
        let (tasks, finish) = plan.into_parts();
        let data: Vec<ShardData> = tasks.into_iter().map(|t| t()).collect();
        let (text, digest) = finish(data);
        assert_eq!(text, "[0, 10, 20, 30, 40]");
        assert_eq!(digest, RunDigest::default());
    }

    #[test]
    fn cache_parts_roundtrip_shard_values() {
        let shards: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            (0..5u32).map(|i| -> Box<dyn FnOnce() -> u32 + Send> { Box::new(move || i * 10) }).collect();
        let plan = Plan::new(shards, |values: Vec<u32>| format!("{values:?}"));
        let (tasks, encode, decode, finish) = plan.into_cache_parts();
        let data: Vec<ShardData> = tasks.into_iter().map(|t| t()).collect();
        let bytes: Vec<Vec<u8>> = data.iter().map(|d| encode(d).unwrap()).collect();
        let decoded: Vec<ShardData> = bytes.iter().map(|b| decode(b).unwrap()).collect();
        let (text, _) = finish(decoded);
        assert_eq!(text, "[0, 10, 20, 30, 40]", "decoded shards must merge identically");
        assert!(decode(&[1, 2, 3]).is_none(), "garbage bytes must not decode");
    }

    #[test]
    fn single_shard_plan() {
        let plan = Plan::single(|| "hello\n".to_string());
        assert_eq!(plan.num_shards(), 1);
        let (tasks, finish) = plan.into_parts();
        let data: Vec<ShardData> = tasks.into_iter().map(|t| t()).collect();
        assert_eq!(finish(data).0, "hello\n");
    }

    #[test]
    fn digested_plan_carries_its_digest() {
        let shards: Vec<Box<dyn FnOnce() -> u64 + Send>> =
            (1..=3u64).map(|i| -> Box<dyn FnOnce() -> u64 + Send> { Box::new(move || i) }).collect();
        let plan = Plan::new_digested(shards, |values: Vec<u64>| {
            let digest = RunDigest {
                livelocks: values.iter().sum(),
                watchdog_storms: 2,
                fault_classes: vec![("ap_crashes", 4)],
            };
            ("text\n".to_string(), digest)
        });
        let (tasks, finish) = plan.into_parts();
        let data: Vec<ShardData> = tasks.into_iter().map(|t| t()).collect();
        let (text, digest) = finish(data);
        assert_eq!(text, "text\n");
        assert_eq!(digest.livelocks, 6);
        assert_eq!(digest.fault_classes, vec![("ap_crashes", 4)]);
    }

    #[test]
    fn digest_merge_sums_by_class() {
        let mut a = RunDigest {
            livelocks: 1,
            watchdog_storms: 0,
            fault_classes: vec![("ap_crashes", 2)],
        };
        let b = RunDigest {
            livelocks: 0,
            watchdog_storms: 3,
            fault_classes: vec![("ap_crashes", 1), ("churn_drops", 5)],
        };
        a.merge(&b);
        assert_eq!(a.livelocks, 1);
        assert_eq!(a.watchdog_storms, 3);
        assert_eq!(a.fault_classes, vec![("ap_crashes", 3), ("churn_drops", 5)]);
    }
}
