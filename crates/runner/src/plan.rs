//! The shard plan of one experiment: tasks plus an index-ordered merge.

use crate::pool::Task;
use std::any::Any;

/// Type-erased shard result, so the registry can hold heterogeneous
/// experiments behind one function-pointer type.
pub(crate) type ShardData = Box<dyn Any + Send>;

/// The merge half of a plan: shard results in index order → output text.
pub(crate) type Finish = Box<dyn FnOnce(Vec<ShardData>) -> String + Send>;

/// An experiment instantiated at a concrete scale and seed: a list of
/// independent shards and a merge that renders their results — consumed
/// strictly in shard-index order — into the experiment's output text.
pub struct Plan {
    shards: Vec<Task<ShardData>>,
    finish: Finish,
}

impl std::fmt::Debug for Plan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Plan").field("shards", &self.shards.len()).finish()
    }
}

impl Plan {
    /// Build a plan from typed shards and a typed merge. The type erasure
    /// stays inside this constructor: `finish` receives shard values in
    /// shard-index order, whatever order the pool completed them in.
    pub fn new<T: Send + 'static>(
        shards: Vec<Box<dyn FnOnce() -> T + Send>>,
        finish: impl FnOnce(Vec<T>) -> String + Send + 'static,
    ) -> Plan {
        Plan {
            shards: shards
                .into_iter()
                .map(|shard| -> Task<ShardData> { Box::new(move || Box::new(shard()) as ShardData) })
                .collect(),
            finish: Box::new(move |data| {
                let typed: Vec<T> = data
                    .into_iter()
                    .map(|d| *d.downcast::<T>().expect("shard returned the plan's own type"))
                    .collect();
                finish(typed)
            }),
        }
    }

    /// A one-shard plan whose only shard renders the whole output.
    pub fn single(render: impl FnOnce() -> String + Send + 'static) -> Plan {
        Plan::new(
            vec![Box::new(render) as Box<dyn FnOnce() -> String + Send>],
            |mut parts: Vec<String>| parts.pop().unwrap_or_default(),
        )
    }

    /// Number of shards in this plan.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    pub(crate) fn into_parts(self) -> (Vec<Task<ShardData>>, Finish) {
        (self.shards, self.finish)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_roundtrip_in_index_order() {
        let shards: Vec<Box<dyn FnOnce() -> u32 + Send>> =
            (0..5u32).map(|i| -> Box<dyn FnOnce() -> u32 + Send> { Box::new(move || i * 10) }).collect();
        let plan = Plan::new(shards, |values: Vec<u32>| format!("{values:?}"));
        assert_eq!(plan.num_shards(), 5);
        let (tasks, finish) = plan.into_parts();
        let data: Vec<ShardData> = tasks.into_iter().map(|t| t()).collect();
        assert_eq!(finish(data), "[0, 10, 20, 30, 40]");
    }

    #[test]
    fn single_shard_plan() {
        let plan = Plan::single(|| "hello\n".to_string());
        assert_eq!(plan.num_shards(), 1);
        let (tasks, finish) = plan.into_parts();
        let data: Vec<ShardData> = tasks.into_iter().map(|t| t()).collect();
        assert_eq!(finish(data), "hello\n");
    }
}
