//! Quick-vs-paper experiment scale.

/// The two scales every experiment runs at.
///
/// Quick keeps the full suite in tens of seconds (the committed
/// `results/` pins and the CI `--check` gate use it); full is the paper's
/// scale — 50 s simulations and 1000-trial sweeps.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Scale {
    /// Reduced-but-representative scale (seconds per experiment).
    #[default]
    Quick,
    /// The paper's scale.
    Full,
}

impl Scale {
    /// Simulation duration: the paper's 50 s at full scale, else `quick_s`.
    pub fn duration(self, quick_s: f64) -> f64 {
        match self {
            Scale::Full => 50.0,
            Scale::Quick => quick_s,
        }
    }

    /// Stable lower-case name (`"quick"` / `"full"`) used in the `--json`
    /// manifest and in trace-file metadata.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }

    /// Trial count: `full` at full scale, else `quick`.
    pub fn trials(self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Full => full,
            Scale::Quick => quick,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_matches_harness_args_semantics() {
        assert_eq!(Scale::Quick.duration(4.0), 4.0);
        assert_eq!(Scale::Full.duration(4.0), 50.0);
        assert_eq!(Scale::Quick.trials(80, 1000), 80);
        assert_eq!(Scale::Full.trials(80, 1000), 1000);
        assert_eq!(Scale::Quick.name(), "quick");
        assert_eq!(Scale::Full.name(), "full");
    }
}
