//! The single authoritative list of experiments. The `domino-run` CLI,
//! the thin per-experiment binaries in `crates/bench/src/bin/`, and the
//! `--check` gate all iterate this table, so adding an experiment here
//! is the only registration step.

use crate::experiments as exp;
use crate::plan::Plan;
use crate::scale::Scale;

/// Master seed used when the caller does not override it.
pub const DEFAULT_SEED: u64 = 1;

/// One registered experiment: a stable name, its output file under
/// `results/`, and a plan constructor.
#[derive(Clone, Copy)]
pub struct Experiment {
    /// Registry key; also the name of the thin binary in `crates/bench`.
    pub name: &'static str,
    /// File written under the results directory.
    pub output: &'static str,
    /// Builds the sharded execution plan for a given scale and seed.
    pub plan: fn(Scale, u64) -> Plan,
    /// One-line description shown by `domino-run --list`.
    pub title: &'static str,
    /// Renders a JSONL event trace of the experiment's representative run
    /// (`domino-run --trace <dir>` writes it to `<dir>/<name>.jsonl`).
    /// `None` for experiments without a designated trace run.
    pub trace: Option<fn(Scale, u64) -> String>,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("name", &self.name)
            .field("output", &self.output)
            .field("title", &self.title)
            .finish_non_exhaustive()
    }
}

/// Every experiment, in the canonical regeneration order (the slowest
/// sweep runs last, matching the retired `run_all` sequence).
pub const REGISTRY: [Experiment; 15] = [
    Experiment {
        name: exp::table1_params::NAME,
        output: exp::table1_params::OUTPUT,
        plan: exp::table1_params::plan,
        title: "Table 1 — ROP symbol parameters",
        trace: None,
    },
    Experiment {
        name: exp::fig05_rop_samples::NAME,
        output: exp::fig05_rop_samples::OUTPUT,
        plan: exp::fig05_rop_samples::plan,
        title: "Fig 5 — ROP sample spectra for three occupancy scenarios",
        trace: None,
    },
    Experiment {
        name: exp::fig06_guard_sweep::NAME,
        output: exp::fig06_guard_sweep::OUTPUT,
        plan: exp::fig06_guard_sweep::plan,
        title: "Fig 6 — ROP decoding error vs guard band width",
        trace: None,
    },
    Experiment {
        name: exp::fig09_signature_detection::NAME,
        output: exp::fig09_signature_detection::OUTPUT,
        plan: exp::fig09_signature_detection::plan,
        title: "Fig 9 — signature detection vs concurrent transmitters",
        trace: None,
    },
    Experiment {
        name: exp::fig02_motivation::NAME,
        output: exp::fig02_motivation::OUTPUT,
        plan: exp::fig02_motivation::plan,
        title: "Fig 2 — motivating 3-link scenario across schemes",
        trace: None,
    },
    Experiment {
        name: exp::table2_usrp::NAME,
        output: exp::table2_usrp::OUTPUT,
        plan: exp::table2_usrp::plan,
        title: "Table 2 — USRP-scale testbed scenarios",
        trace: None,
    },
    Experiment {
        name: exp::fig10_timeline::NAME,
        output: exp::fig10_timeline::OUTPUT,
        plan: exp::fig10_timeline::plan,
        title: "Fig 10 — slot timeline and misalignment trace",
        trace: Some(exp::fig10_timeline::trace),
    },
    Experiment {
        name: exp::fig11_misalignment::NAME,
        output: exp::fig11_misalignment::OUTPUT,
        plan: exp::fig11_misalignment::plan,
        title: "Fig 11 — slot misalignment vs wired jitter",
        trace: None,
    },
    Experiment {
        name: exp::fig12_tput_delay_fairness::NAME,
        output: exp::fig12_tput_delay_fairness::OUTPUT,
        plan: exp::fig12_tput_delay_fairness::plan,
        title: "Fig 12 — throughput/delay/fairness vs offered load",
        trace: None,
    },
    Experiment {
        name: exp::table3_exposed::NAME,
        output: exp::table3_exposed::OUTPUT,
        plan: exp::table3_exposed::plan,
        title: "Table 3 — exposed-terminal topologies",
        trace: None,
    },
    Experiment {
        name: exp::fig14_gain_cdf::NAME,
        output: exp::fig14_gain_cdf::OUTPUT,
        plan: exp::fig14_gain_cdf::plan,
        title: "Fig 14 — CDF of DOMINO/DCF gain over random topologies",
        trace: None,
    },
    Experiment {
        name: exp::sec5_light_traffic::NAME,
        output: exp::sec5_light_traffic::OUTPUT,
        plan: exp::sec5_light_traffic::plan,
        title: "§5 — delay under light traffic",
        trace: None,
    },
    Experiment {
        name: exp::ablations::NAME,
        output: exp::ablations::OUTPUT,
        plan: exp::ablations::plan,
        title: "Ablations — converter mechanisms, batching, signatures",
        trace: None,
    },
    Experiment {
        name: exp::sec5_polling_sweep::NAME,
        output: exp::sec5_polling_sweep::OUTPUT,
        plan: exp::sec5_polling_sweep::plan,
        title: "§5 — polling-frequency sweep",
        trace: None,
    },
    Experiment {
        name: exp::chaos_degradation::NAME,
        output: exp::chaos_degradation::OUTPUT,
        plan: exp::chaos_degradation::plan,
        title: "Chaos — degradation under injected faults vs intensity",
        trace: Some(exp::chaos_degradation::trace),
    },
];

/// Look up an experiment by registry key.
pub fn find(name: &str) -> Option<&'static Experiment> {
    REGISTRY.iter().find(|e| e.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_and_outputs_are_unique_and_consistent() {
        let mut names = std::collections::BTreeSet::new();
        let mut outputs = std::collections::BTreeSet::new();
        for e in &REGISTRY {
            assert!(names.insert(e.name), "duplicate name {}", e.name);
            assert!(outputs.insert(e.output), "duplicate output {}", e.output);
            assert_eq!(e.output, format!("{}.txt", e.name));
        }
    }

    #[test]
    fn find_hits_and_misses() {
        assert_eq!(find("ablations").map(|e| e.output), Some("ablations.txt"));
        assert!(find("no_such_experiment").is_none());
    }

    #[test]
    fn every_plan_reports_shards() {
        for e in &REGISTRY {
            let plan = (e.plan)(Scale::Quick, DEFAULT_SEED);
            assert!(plan.num_shards() >= 1, "{} has no shards", e.name);
        }
    }
}
