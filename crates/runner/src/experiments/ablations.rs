//! Ablations of DOMINO's design choices (DESIGN.md §5): fake-link
//! insertion, the redundant second trigger (inbound cap), the outbound
//! cap, batch size × wired jitter, and signature length.
//!
//! One shard per simulation: 4 converter variants + 9 batch × jitter
//! cells, plus a cheap closed-form shard for the signature-length table.

use super::util::{mbps, push_block};
use crate::codec::{ByteReader, ByteWriter, Codec};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_mac::domino::DominoConfig;
use domino_phy::signature::SIGNATURE_DURATION_NS;
use domino_phy::GoldFamily;
use domino_scheduler::ConverterConfig;
use domino_stats::Table;
use domino_wired::WiredLatency;

/// Registry key.
pub const NAME: &str = "ablations";
/// Output file under `results/`.
pub const OUTPUT: &str = "ablations.txt";

const BATCHES: [usize; 3] = [2, 5, 10];
const JITTERS: [f64; 3] = [22.0, 60.0, 120.0];

enum ShardOut {
    Variant { tput: f64, fairness: f64, delay_ms: f64 },
    BatchCell(f64),
    SignatureTable(String),
}

impl Codec for ShardOut {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ShardOut::Variant { tput, fairness, delay_ms } => {
                w.put_u8(0);
                w.put_f64(*tput);
                w.put_f64(*fairness);
                w.put_f64(*delay_ms);
            }
            ShardOut::BatchCell(tput) => {
                w.put_u8(1);
                w.put_f64(*tput);
            }
            ShardOut::SignatureTable(table) => {
                w.put_u8(2);
                table.encode(w);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        match r.get_u8()? {
            0 => Some(ShardOut::Variant {
                tput: r.get_f64()?,
                fairness: r.get_f64()?,
                delay_ms: r.get_f64()?,
            }),
            1 => Some(ShardOut::BatchCell(r.get_f64()?)),
            2 => Some(ShardOut::SignatureTable(String::decode(r)?)),
            _ => None,
        }
    }
}

fn variants() -> Vec<(&'static str, ConverterConfig)> {
    vec![
        ("baseline (paper defaults)", ConverterConfig::default()),
        (
            "no fake links",
            ConverterConfig { insert_fake_links: false, ..ConverterConfig::default() },
        ),
        (
            "single trigger (inbound 1)",
            ConverterConfig { max_inbound: 1, ..ConverterConfig::default() },
        ),
        (
            "outbound cap 2",
            ConverterConfig { max_outbound: 2, ..ConverterConfig::default() },
        ),
    ]
}

fn run_once(seed: u64, duration: f64, cfg: DominoConfig) -> domino_core::RunReport {
    let net = scenarios::standard_t(10, 2, seed);
    SimulationBuilder::new(net)
        .udp(10e6, 4e6)
        .duration_s(duration)
        .seed(seed)
        .domino_config(cfg)
        .run(Scheme::Domino)
}

fn signature_table() -> String {
    let mut t = Table::new(
        "Signature-length trade-off (§5)",
        &["family", "codes", "chips", "airtime (us)", "per-slot overhead"],
    );
    let slot_us = 492.0;
    for (name, fam) in [("degree-7 (paper)", GoldFamily::degree7()), ("degree-9", GoldFamily::degree9())]
    {
        let chips = fam.code(0).len();
        let airtime_us = chips as f64 * (SIGNATURE_DURATION_NS as f64 / 127.0) / 1000.0;
        // Two signature phases per slot (instruction appendix + burst).
        let overhead = 4.0 * airtime_us / slot_us;
        t.row(&[
            name.to_string(),
            fam.len().to_string(),
            chips.to_string(),
            format!("{airtime_us:.2}"),
            format!("{:.1}%", overhead * 100.0),
        ]);
    }
    t.render()
}

/// Build the plan: 4 + 9 simulation shards plus the signature table.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(3.0);
    let mut shards: Vec<Box<dyn FnOnce() -> ShardOut + Send>> = Vec::new();
    for (_, conv) in variants() {
        shards.push(Box::new(move || {
            let r = run_once(seed, duration, DominoConfig { converter: conv, ..DominoConfig::default() });
            ShardOut::Variant {
                tput: r.aggregate_mbps(),
                fairness: r.fairness(),
                delay_ms: r.mean_delay_us() / 1000.0,
            }
        }));
    }
    for &batch in &BATCHES {
        for &std_us in &JITTERS {
            shards.push(Box::new(move || {
                let r = run_once(
                    seed,
                    duration,
                    DominoConfig {
                        batch_slots: batch,
                        wired: WiredLatency::with_std(std_us),
                        ..DominoConfig::default()
                    },
                );
                ShardOut::BatchCell(r.aggregate_mbps())
            }));
        }
    }
    shards.push(Box::new(|| ShardOut::SignatureTable(signature_table())));

    Plan::new(shards, |outs: Vec<ShardOut>| {
        let mut outs = outs.into_iter();
        let mut out = String::new();

        // --- Converter mechanisms.
        let mut t = Table::new(
            "Ablation — converter mechanisms on T(10,2), UDP 10/4 Mb/s",
            &["variant", "throughput (Mb/s)", "fairness", "mean delay (ms)"],
        );
        for (name, _) in variants() {
            if let Some(ShardOut::Variant { tput, fairness, delay_ms }) = outs.next() {
                t.row(&[
                    name.to_string(),
                    mbps(tput),
                    format!("{fairness:.2}"),
                    format!("{delay_ms:.1}"),
                ]);
            }
        }
        push_block(&mut out, &t.render());

        // --- Batch size x wired jitter.
        let mut t = Table::new(
            "Ablation — batch size x wired jitter (throughput, Mb/s)",
            &["batch slots", "jitter 22 us", "jitter 60 us", "jitter 120 us"],
        );
        for &batch in &BATCHES {
            let mut row = vec![batch.to_string()];
            for _ in &JITTERS {
                if let Some(ShardOut::BatchCell(tput)) = outs.next() {
                    row.push(mbps(tput));
                }
            }
            t.row(&row);
        }
        push_block(&mut out, &t.render());

        // --- Signature length (§5): overhead per slot vs supportable nodes.
        if let Some(ShardOut::SignatureTable(table)) = outs.next() {
            push_block(&mut out, &table);
        }
        out
    })
}
