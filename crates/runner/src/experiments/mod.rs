//! One module per experiment. Each exposes `NAME`, `OUTPUT`, and
//! `plan(scale, seed) -> Plan`; the registry ties them together.

pub mod ablations;
pub mod chaos_degradation;
pub mod fig02_motivation;
pub mod fig05_rop_samples;
pub mod fig06_guard_sweep;
pub mod fig09_signature_detection;
pub mod fig10_timeline;
pub mod fig11_misalignment;
pub mod fig12_tput_delay_fairness;
pub mod fig14_gain_cdf;
pub mod sec5_light_traffic;
pub mod sec5_polling_sweep;
pub mod table1_params;
pub mod table2_usrp;
pub mod table3_exposed;

pub(crate) mod util;
