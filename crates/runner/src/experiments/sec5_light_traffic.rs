//! §5 "Light traffic load": packet delay of DOMINO vs DCF on T(6,5) with
//! 6 kB/s (48 kb/s) per-link traffic — far below saturation, where
//! DOMINO's control overhead costs delay instead of buying throughput.
//!
//! One shard per scheme.

use super::util::{outln, push_block};
use crate::codec::{ByteReader, ByteWriter, Codec};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "sec5_light_traffic";
/// Output file under `results/`.
pub const OUTPUT: &str = "sec5_light_traffic.txt";

struct Cell {
    scheme: Scheme,
    tput: f64,
    delay_us: f64,
    drops: u64,
}

impl Codec for Cell {
    fn encode(&self, w: &mut ByteWriter) {
        self.scheme.encode(w);
        w.put_f64(self.tput);
        w.put_f64(self.delay_us);
        w.put_u64(self.drops);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(Cell {
            scheme: Scheme::decode(r)?,
            tput: r.get_f64()?,
            delay_us: r.get_f64()?,
            drops: r.get_u64()?,
        })
    }
}

/// Build the plan: DOMINO and DCF shards on T(6,5) at 6 kB/s per link.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(5.0);
    let rate = 6.0 * 8.0 * 1000.0; // 6 kB/s per link
    let shards: Vec<Box<dyn FnOnce() -> Cell + Send>> = [Scheme::Domino, Scheme::Dcf]
        .into_iter()
        .map(|scheme| -> Box<dyn FnOnce() -> Cell + Send> {
            Box::new(move || {
                let net = scenarios::standard_t(6, 5, seed);
                let r = SimulationBuilder::new(net)
                    .udp(rate, rate)
                    .duration_s(duration)
                    .seed(seed)
                    .run(scheme);
                Cell {
                    scheme,
                    tput: r.aggregate_mbps(),
                    delay_us: r.mean_delay_us(),
                    drops: r.stats.drops,
                }
            })
        })
        .collect();
    Plan::new(shards, |cells: Vec<Cell>| {
        let mut t = Table::new(
            "§5 light traffic — T(6,5) at 6 kB/s per link",
            &["scheme", "throughput (Mb/s)", "mean delay (ms)", "drops"],
        );
        for c in &cells {
            t.row(&[
                c.scheme.label().to_string(),
                format!("{:.3}", c.tput),
                format!("{:.2}", c.delay_us / 1000.0),
                c.drops.to_string(),
            ]);
        }
        let mut out = String::new();
        push_block(&mut out, &t.render());
        outln!(
            out,
            "DOMINO/DCF delay ratio: {:.2} (paper: 1.14)",
            cells[0].delay_us / cells[1].delay_us.max(1e-9)
        );
        out
    })
}
