//! Table 1: the OFDM symbol parameters of ROP vs plain WiFi, printed from
//! the implementation's own constants (so the table cannot drift from the
//! code).

use super::util::{outln, push_block};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_phy::ofdm::{RopSymbolConfig, SAMPLE_RATE_HZ};
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "table1_params";
/// Output file under `results/`.
pub const OUTPUT: &str = "table1_params.txt";

/// Build the plan: a single cheap shard (pure constants, no simulation).
pub fn plan(_scale: Scale, _seed: u64) -> Plan {
    Plan::single(|| {
        let cfg = RopSymbolConfig::default();
        let layout = cfg.layout();
        let wifi_cp_us = 16.0 / SAMPLE_RATE_HZ * 1e6;
        let wifi_sym_us = 80.0 / SAMPLE_RATE_HZ * 1e6;

        let mut t = Table::new("Table 1 — OFDM symbol parameters", &["parameter", "WiFi", "ROP"]);
        t.row(&["number of subcarriers".into(), "64".into(), cfg.n_fft.to_string()]);
        t.row(&[
            "subcarriers per subchannel".into(),
            "-".into(),
            cfg.data_per_subchannel.to_string(),
        ]);
        t.row(&["guard subcarriers".into(), "-".into(), cfg.guard_subcarriers.to_string()]);
        t.row(&[
            "number of subchannels".into(),
            "-".into(),
            layout.num_subchannels().to_string(),
        ]);
        t.row(&[
            "CP duration".into(),
            format!("{wifi_cp_us:.1} us"),
            format!("{:.1} us", cfg.cp_duration_us()),
        ]);
        t.row(&[
            "symbol duration".into(),
            format!("{wifi_sym_us:.0} us"),
            format!("{:.0} us", cfg.symbol_duration_us()),
        ]);
        let mut out = String::new();
        push_block(&mut out, &t.render());
        outln!(
            out,
            "max queue report per subchannel: {} packets (6-bit 2-ASK)",
            cfg.max_queue_report()
        );
        out
    })
}
