//! Fig 9: signature detection ratio vs number of combined signatures
//! (1–7), for the paper's five sender setups, from the sample-level
//! Gold-code correlator.
//!
//! One shard per combined-signature count. The serial binary threaded a
//! single RNG through all 35 cells; here each shard derives its own
//! stream from `(experiment, combined)`, so cell values are shard-local
//! and independent of execution order. The paper-facing claims (≈100 %
//! detection through 4 combined signatures, false positives < 1 %) are
//! unchanged — they are also asserted independently by
//! `domino-phy`'s unit tests.

use super::util::{outln, shard_rng};
use crate::codec::{ByteReader, ByteWriter, Codec};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_phy::signature::{detection_experiment, Fig9Setup};
use domino_phy::GoldFamily;
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "fig09_signature_detection";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig09_signature_detection.txt";

struct Row {
    combined: usize,
    /// Detection ratio per setup, in `Fig9Setup::ALL` order.
    detection: Vec<f64>,
    /// Worst false-positive ratio across this row's setups.
    worst_fp: f64,
}

impl Codec for Row {
    fn encode(&self, w: &mut ByteWriter) {
        self.combined.encode(w);
        self.detection.encode(w);
        w.put_f64(self.worst_fp);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(Row {
            combined: usize::decode(r)?,
            detection: Vec::<f64>::decode(r)?,
            worst_fp: r.get_f64()?,
        })
    }
}

/// Build the plan: one shard per combined-signature count (1–7).
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let runs = scale.trials(200, 1000);
    let shards: Vec<Box<dyn FnOnce() -> Row + Send>> = (1..=7usize)
        .map(|k| -> Box<dyn FnOnce() -> Row + Send> {
            Box::new(move || {
                let family = GoldFamily::degree7();
                let mut rng = shard_rng(seed, NAME, k as u64);
                let mut detection = Vec::with_capacity(Fig9Setup::ALL.len());
                let mut worst_fp: f64 = 0.0;
                for setup in Fig9Setup::ALL {
                    let stats = detection_experiment(&family, setup, k, 10.0, runs, &mut rng);
                    detection.push(stats.detection_ratio);
                    worst_fp = worst_fp.max(stats.false_positive_ratio);
                }
                Row { combined: k, detection, worst_fp }
            })
        })
        .collect();
    Plan::new(shards, move |rows: Vec<Row>| {
        let header: Vec<String> = std::iter::once("combined".to_string())
            .chain(Fig9Setup::ALL.iter().map(|s| s.label().to_string()))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            &format!("Fig 9 — signature detection ratio (% of {runs} runs)"),
            &header_refs,
        );
        let mut worst_fp: f64 = 0.0;
        for row in &rows {
            let mut cells = vec![row.combined.to_string()];
            cells.extend(row.detection.iter().map(|d| format!("{:.1}", d * 100.0)));
            t.row(&cells);
            worst_fp = worst_fp.max(row.worst_fp);
        }
        let mut out = String::new();
        super::util::push_block(&mut out, &t.render());
        outln!(
            out,
            "worst false-positive ratio: {:.2}% (paper: below 1% throughout)",
            worst_fp * 100.0
        );
        out
    })
}
