//! §5 "Polling frequency": delay and throughput of UDP on T(10,2) as the
//! batch size (the reciprocal of polling frequency — ROP runs once per
//! batch) varies, under heavy (5 Mb/s per link) and light (500 kb/s per
//! link) traffic.
//!
//! One shard per (load, batch size) simulation — 8 shards.

use super::util::{mbps, outln, push_block};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_mac::domino::DominoConfig;
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "sec5_polling_sweep";
/// Output file under `results/`.
pub const OUTPUT: &str = "sec5_polling_sweep.txt";

const BATCH_SIZES: [usize; 4] = [2, 5, 10, 20];
const LOADS: [(&str, f64); 2] =
    [("heavy (5 Mb/s per link)", 5e6), ("light (500 kb/s per link)", 0.5e6)];

/// Build the plan: 2 loads × 4 batch sizes = 8 shards.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(4.0);
    let mut shards: Vec<Box<dyn FnOnce() -> (f64, f64) + Send>> = Vec::new();
    for &(_, rate) in &LOADS {
        for &batch in &BATCH_SIZES {
            shards.push(Box::new(move || {
                let net = scenarios::standard_t(10, 2, seed);
                let cfg = DominoConfig { batch_slots: batch, ..DominoConfig::default() };
                let report = SimulationBuilder::new(net)
                    .udp(rate, rate)
                    .duration_s(duration)
                    .seed(seed)
                    .domino_config(cfg)
                    .run(Scheme::Domino);
                (report.aggregate_mbps(), report.mean_delay_us() / 1000.0)
            }));
        }
    }
    Plan::new(shards, |cells: Vec<(f64, f64)>| {
        let mut out = String::new();
        for (i, (label, _)) in LOADS.iter().enumerate() {
            let mut t = Table::new(
                &format!("§5 polling-frequency sweep — {label}"),
                &["batch size (slots)", "throughput (Mb/s)", "mean delay (ms)"],
            );
            for (j, &batch) in BATCH_SIZES.iter().enumerate() {
                let (tput, delay_ms) = cells[i * BATCH_SIZES.len() + j];
                t.row(&[batch.to_string(), mbps(tput), format!("{delay_ms:.2}")]);
            }
            push_block(&mut out, &t.render());
        }
        outln!(out, "paper: heavy traffic — delay slightly decreases / throughput slightly increases with batch size; light traffic — delay increases with batch size");
        out
    })
}
