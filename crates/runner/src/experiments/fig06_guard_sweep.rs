//! Fig 6: correct-decoding ratio of the weaker of two adjacent ROP
//! clients vs their RSS difference (15–40 dB), for 0–4 guard subcarriers.
//!
//! One shard per guard count. `guard_sweep` already derives a fresh RNG
//! per `(guard, diff)` point from the master seed, so splitting the sweep
//! across shards reproduces the serial binary byte-for-byte.

use super::util::outln;
use crate::plan::Plan;
use crate::scale::Scale;
use domino_phy::ofdm::{guard_sweep, GuardSweepPoint};
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "fig06_guard_sweep";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig06_guard_sweep.txt";

const GUARDS: [usize; 5] = [0, 1, 2, 3, 4];

fn diffs() -> Vec<f64> {
    (0..=10).map(|i| 15.0 + 2.5 * i as f64).collect()
}

/// Build the plan: one shard per guard count, merged into one table.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let trials = scale.trials(80, 1000);
    let shards: Vec<Box<dyn FnOnce() -> Vec<GuardSweepPoint> + Send>> = GUARDS
        .iter()
        .map(|&g| -> Box<dyn FnOnce() -> Vec<GuardSweepPoint> + Send> {
            Box::new(move || guard_sweep(&[g], &diffs(), trials, seed))
        })
        .collect();
    Plan::new(shards, |columns: Vec<Vec<GuardSweepPoint>>| {
        let points: Vec<GuardSweepPoint> = columns.into_iter().flatten().collect();
        let diffs = diffs();
        let header: Vec<String> = std::iter::once("RSS diff (dB)".to_string())
            .chain(GUARDS.iter().map(|g| format!("{g} guards")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new(
            "Fig 6 — weak-client correct-decode ratio (%) vs RSS difference",
            &header_refs,
        );
        for &d in &diffs {
            let mut row = vec![format!("{d:.1}")];
            for &g in &GUARDS {
                let p = points
                    .iter()
                    .find(|p| p.guard == g && (p.rss_diff_db - d).abs() < 1e-9)
                    .expect("sweep point");
                row.push(format!("{:.0}", p.decode_ratio * 100.0));
            }
            t.row(&row);
        }
        let mut out = String::new();
        super::util::push_block(&mut out, &t.render());

        // The paper's headline number: the tolerance of 3 guard subcarriers.
        let tol3 = points
            .iter()
            .filter(|p| p.guard == 3 && p.decode_ratio >= 0.95)
            .map(|p| p.rss_diff_db)
            .fold(0.0, f64::max);
        outln!(out, "3-guard tolerance (>=95% decode): {tol3:.1} dB (paper: 38 dB)");
        out
    })
}
