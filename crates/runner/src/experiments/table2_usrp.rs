//! Table 2: aggregate throughput of DOMINO vs DCF in the three USRP
//! prototype scenarios — same contention domain (SC), hidden terminals
//! (HT), exposed terminals (ET) — two saturated AP→client pairs.
//!
//! One shard per (scenario, scheme) simulation; see the original
//! experiment notes in DESIGN.md for the documented USRP-slowdown
//! substitution.

use super::util::{mbps, outln, push_block, ratio};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino_mac::domino::DominoConfig;
use domino_scheduler::ConverterConfig;
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "table2_usrp";
/// Output file under `results/`.
pub const OUTPUT: &str = "table2_usrp.txt";

/// Throughput scale between our 12 Mb/s PHY simulation and the paper's
/// USRP prototype (their DCF-SC measured 2.76 kb/s vs our ~7.4 Mb/s).
const USRP_SLOWDOWN: f64 = 2680.0;

/// Build the plan: 3 scenarios × {DOMINO, DCF} = 6 shards.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(5.0);
    let mut shards: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for scenario in scenarios::UsrpScenario::ALL {
        for scheme in [Scheme::Domino, Scheme::Dcf] {
            shards.push(Box::new(move || {
                let net = scenarios::usrp_scenario(scenario);
                let downlinks: Vec<_> = net
                    .links()
                    .iter()
                    .filter(|l| l.is_downlink())
                    .map(|l| l.id)
                    .collect();
                // The prototype preloads schedules and has saturated queues; no
                // ROP runs (paper §4.1: "the transmission schedules are already
                // loaded in each AP").
                let domino_cfg = DominoConfig {
                    converter: ConverterConfig { insert_rop: false, ..ConverterConfig::default() },
                    ..DominoConfig::default()
                };
                SimulationBuilder::new(net)
                    .workload(Workload::udp_saturated(&downlinks))
                    .duration_s(duration)
                    .seed(seed)
                    .domino_config(domino_cfg)
                    .run(scheme)
                    .aggregate_mbps()
            }));
        }
    }
    Plan::new(shards, |cells: Vec<f64>| {
        let mut t = Table::new(
            "Table 2 — aggregate throughput, 2 saturated downlink pairs",
            &["scenario", "DOMINO (Mb/s)", "DCF (Mb/s)", "gain", "DOMINO (USRP-eq kb/s)", "DCF (USRP-eq kb/s)"],
        );
        for (i, scenario) in scenarios::UsrpScenario::ALL.iter().enumerate() {
            let (domino, dcf) = (cells[2 * i], cells[2 * i + 1]);
            t.row(&[
                scenario.label().to_string(),
                mbps(domino),
                mbps(dcf),
                ratio(domino / dcf),
                format!("{:.2}", domino * 1000.0 / USRP_SLOWDOWN),
                format!("{:.2}", dcf * 1000.0 / USRP_SLOWDOWN),
            ]);
        }
        let mut out = String::new();
        push_block(&mut out, &t.render());
        outln!(out, "paper (kb/s): SC 4.25/2.76 (1.54x), HT 5.42/1.62 (3.35x), ET 9.18/2.72 (3.38x)");
        out
    })
}
