//! Chaos degradation: throughput, delay and fairness vs fault intensity
//! on T(6,2) for all four schemes, plus DOMINO's fault-plane ledger.
//!
//! Intensity `x` maps through [`FaultConfig::chaos`] to a correlated dose
//! of wired loss/delay spikes, AP crashes, controller compute stalls,
//! signature fade bursts, stale/corrupted ROP reports and client churn.
//! Intensity 0.0 is the all-off plane and must reproduce the unfaulted
//! run byte-for-byte; the gate here is that DOMINO *degrades* with the
//! dose instead of collapsing at the first lost trigger, and that no
//! scheme ever trips the engine's liveness monitor.

use super::util::{mbps, push_block};
use crate::plan::{Plan, RunDigest};
use crate::scale::Scale;
use crate::codec::{ByteReader, ByteWriter, Codec};
use domino_core::{scenarios, FaultConfig, FaultStats, Scheme, SimulationBuilder};
use domino_obs::jsonl::{self, TraceMeta};
use domino_obs::TraceHandle;
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "chaos_degradation";
/// Output file under `results/`.
pub const OUTPUT: &str = "chaos_degradation.txt";

struct Cell {
    tput: f64,
    delay_ms: f64,
    fairness: f64,
    faults: FaultStats,
    watchdog_storms: u64,
}

impl Codec for Cell {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_f64(self.tput);
        w.put_f64(self.delay_ms);
        w.put_f64(self.fairness);
        self.faults.encode(w);
        w.put_u64(self.watchdog_storms);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(Cell {
            tput: r.get_f64()?,
            delay_ms: r.get_f64()?,
            fairness: r.get_f64()?,
            faults: FaultStats::decode(r)?,
            watchdog_storms: r.get_u64()?,
        })
    }
}

/// Build the plan: one shard per (intensity, scheme) cell.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let intensities: Vec<f64> = match scale {
        Scale::Full => (0..=5).map(|i| 0.2 * i as f64).collect(),
        Scale::Quick => vec![0.0, 0.25, 0.5, 1.0],
    };
    let duration = scale.duration(2.0);

    let mut shards: Vec<Box<dyn FnOnce() -> Cell + Send>> = Vec::new();
    for &x in &intensities {
        for &scheme in &Scheme::ALL {
            shards.push(Box::new(move || {
                let net = scenarios::standard_t(6, 2, seed);
                let faults =
                    if x > 0.0 { FaultConfig::chaos(x) } else { FaultConfig::off() };
                let r = SimulationBuilder::new(net)
                    .udp(8e6, 2e6)
                    .duration_s(duration)
                    .seed(seed)
                    .faults(faults)
                    .run(scheme);
                Cell {
                    tput: r.aggregate_mbps(),
                    delay_ms: r.mean_delay_us() / 1000.0,
                    fairness: r.fairness(),
                    faults: r.stats.faults,
                    watchdog_storms: r.stats.domino.watchdog_storms,
                }
            }));
        }
    }

    Plan::new_digested(shards, move |outs: Vec<Cell>| {
        // Cells arrive intensity-major, scheme-minor (Scheme::ALL order).
        let rows: Vec<&[Cell]> = outs.chunks(Scheme::ALL.len()).collect();
        let labels: Vec<&str> = Scheme::ALL.iter().map(|s| s.label()).collect();

        let mut tput = Table::new(
            "Chaos degradation on T(6,2) — aggregate throughput (Mb/s)",
            &[&["intensity"], &labels[..]].concat(),
        );
        let mut delay = Table::new(
            "Chaos degradation — average delay per link (ms)",
            &[&["intensity"], &labels[..]].concat(),
        );
        let mut fair = Table::new(
            "Chaos degradation — Jain's fairness index",
            &[&["intensity"], &labels[..]].concat(),
        );
        let mut ledger = Table::new(
            "DOMINO fault-plane ledger (injections and recoveries per run)",
            &["intensity", "injected", "AP crashes", "recovered", "wd storms", "livelocks"],
        );
        for (x, cells) in intensities.iter().zip(&rows) {
            let label = format!("{x:.2}");
            let metric = |f: fn(&Cell) -> f64, fmt: fn(f64) -> String| -> Vec<String> {
                std::iter::once(label.clone())
                    .chain(cells.iter().map(|c| fmt(f(c))))
                    .collect()
            };
            tput.row(&metric(|c| c.tput, mbps));
            delay.row(&metric(|c| c.delay_ms, |v| format!("{v:.2}")));
            fair.row(&metric(|c| c.fairness, |v| format!("{v:.2}")));
            let d = &cells[2]; // Scheme::ALL[2] == Domino
            ledger.row(&[
                label,
                d.faults.injections().to_string(),
                d.faults.ap_crashes.to_string(),
                d.faults.crash_recoveries.to_string(),
                d.watchdog_storms.to_string(),
                d.faults.livelocks.to_string(),
            ]);
        }

        // The digest sums every cell (all schemes, all intensities), so
        // the --json manifest reflects the whole grid's fault exposure.
        let mut digest = RunDigest::default();
        for c in &outs {
            digest.merge(&RunDigest {
                livelocks: c.faults.livelocks,
                watchdog_storms: c.watchdog_storms,
                fault_classes: c.faults.classes().to_vec(),
            });
        }

        let mut out = String::new();
        push_block(&mut out, &tput.render());
        push_block(&mut out, &delay.render());
        push_block(&mut out, &fair.render());
        push_block(&mut out, &ledger.render());
        out.push_str(&format!(
            "liveness: {} run(s) aborted by the engine monitor (gate: 0)\n",
            digest.livelocks
        ));
        (out, digest)
    })
}

/// Render the designated trace of this experiment (`domino-run --trace`):
/// one DOMINO run on the same T(6,2) network and seed at full chaos
/// intensity (1.0), serialized as versioned JSONL. This is the trace the
/// EXPERIMENTS.md walkthrough dissects with `domino-trace`.
pub fn trace(scale: Scale, seed: u64) -> String {
    let (handle, sink) = TraceHandle::mem();
    let net = scenarios::standard_t(6, 2, seed);
    let _ = SimulationBuilder::new(net)
        .udp(8e6, 2e6)
        .duration_s(scale.duration(2.0))
        .seed(seed)
        .faults(FaultConfig::chaos(1.0))
        .run_traced(Scheme::Domino, handle);
    let meta = TraceMeta {
        experiment: NAME.to_string(),
        scheme: "domino".to_string(),
        seed,
        scale: scale.name().to_string(),
    };
    jsonl::write_trace(&meta, &sink.take())
}
