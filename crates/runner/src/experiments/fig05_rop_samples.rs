//! Fig 5: the received OFDM spectrum at the AP for two clients on
//! adjacent subchannels — (a) similar RSS, no guard; (b) 30 dB RSS gap,
//! no guard; (c) 30 dB gap with 3 guard subcarriers.
//!
//! One shard per snapshot. The seeds (`seed`, `seed+1`, `seed+2`) match
//! the original serial binary exactly, so the output is byte-identical to
//! the pre-runner regenerator.

use crate::plan::Plan;
use crate::scale::Scale;
use domino_phy::ofdm::{received_spectrum, SpectrumScenario};
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "fig05_rop_samples";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig05_rop_samples.txt";

fn render_scenario(name: &str, scenario: SpectrumScenario, seed: u64) -> String {
    let spec = received_spectrum(scenario, seed);
    let peak = spec.iter().map(|&(_, a)| a).fold(f64::MIN, f64::max);
    let mut t = Table::new(name, &["bin", "amplitude (dB rel. peak)", ""]);
    for (bin, amp) in &spec {
        let db = 20.0 * (amp / peak).max(1e-9).log10();
        let bars = ((db + 60.0).max(0.0) / 2.0) as usize;
        t.row(&[bin.to_string(), format!("{db:7.1}"), "#".repeat(bars)]);
    }
    t.render()
}

/// Build the plan: three shards, one per Fig 5 snapshot.
pub fn plan(_scale: Scale, seed: u64) -> Plan {
    let scenarios: [(&'static str, SpectrumScenario, u64); 3] = [
        (
            "Fig 5a — adjacent subchannels, similar RSS, no guard (bits 111111 / 011111)",
            SpectrumScenario::SimilarRssNoGuard,
            seed,
        ),
        (
            "Fig 5b — adjacent subchannels, 30 dB RSS difference, no guard",
            SpectrumScenario::Unequal30DbNoGuard,
            seed + 1,
        ),
        (
            "Fig 5c — adjacent subchannels, 30 dB RSS difference, 3 guard subcarriers",
            SpectrumScenario::Unequal30DbWithGuard,
            seed + 2,
        ),
    ];
    let shards: Vec<Box<dyn FnOnce() -> String + Send>> = scenarios
        .into_iter()
        .map(|(name, scenario, s)| -> Box<dyn FnOnce() -> String + Send> {
            Box::new(move || render_scenario(name, scenario, s))
        })
        .collect();
    Plan::new(shards, |blocks: Vec<String>| {
        let mut out = String::new();
        for block in blocks {
            super::util::push_block(&mut out, &block);
        }
        out
    })
}
