//! Table 3: aggregate throughput with four pairs of exposed downlinks —
//! Fig 13(a), where all links are mutually exposed, vs Fig 13(b), where
//! three senders share one common exposed neighbour.
//!
//! One shard per (topology, scheme) simulation.

use super::util::{mbps, outln, push_block};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino_stats::Table;
use domino_topology::PhyParams;

/// Registry key.
pub const NAME: &str = "table3_exposed";
/// Output file under `results/`.
pub const OUTPUT: &str = "table3_exposed.txt";

const TOPOLOGIES: [&str; 2] = ["Fig 13(a)", "Fig 13(b)"];
const SCHEMES: [Scheme; 3] = [Scheme::Domino, Scheme::Centaur, Scheme::Dcf];

/// Build the plan: 2 topologies × 3 schemes = 6 shards.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(5.0);
    let mut shards: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for topo in 0..TOPOLOGIES.len() {
        for &scheme in &SCHEMES {
            shards.push(Box::new(move || {
                let net = if topo == 0 {
                    scenarios::fig13a(PhyParams::default())
                } else {
                    scenarios::fig13b(PhyParams::default())
                };
                let downlinks: Vec<_> = net
                    .links()
                    .iter()
                    .filter(|l| l.is_downlink())
                    .map(|l| l.id)
                    .collect();
                SimulationBuilder::new(net)
                    .workload(Workload::udp_saturated(&downlinks))
                    .duration_s(duration)
                    .seed(seed)
                    .run(scheme)
                    .aggregate_mbps()
            }));
        }
    }
    Plan::new(shards, |cells: Vec<f64>| {
        let mut t = Table::new(
            "Table 3 — aggregate throughput with 4 exposed downlink pairs (Mb/s)",
            &["topology", "DOMINO", "CENTAUR", "DCF"],
        );
        for (i, name) in TOPOLOGIES.iter().enumerate() {
            let row: Vec<String> = std::iter::once(name.to_string())
                .chain((0..SCHEMES.len()).map(|j| mbps(cells[i * SCHEMES.len() + j])))
                .collect();
            t.row(&row);
        }
        let mut out = String::new();
        push_block(&mut out, &t.render());
        outln!(out, "paper: 13a 32.72/28.60/9.97, 13b 33.85/18.35/22.13");
        out
    })
}
