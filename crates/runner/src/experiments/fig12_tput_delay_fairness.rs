//! Fig 12: UDP and TCP aggregate throughput, mean per-link delay and
//! Jain's fairness on T(10,2), downlink fixed at 10 Mb/s per link and the
//! uplink rate swept 0–10 Mb/s — DOMINO vs CENTAUR vs DCF.
//!
//! The heaviest experiment of the suite: one shard per
//! (protocol, uplink rate, scheme) simulation plus a cheap conflict-graph
//! preamble shard — 19 shards quick, 37 at full scale.

use super::util::{mbps, outln, push_block};
use crate::codec::{ByteReader, ByteWriter, Codec};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_stats::Table;

/// Registry key.
pub const NAME: &str = "fig12_tput_delay_fairness";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig12_tput_delay_fairness.txt";

const SCHEMES: [Scheme; 3] = [Scheme::Domino, Scheme::Centaur, Scheme::Dcf];

enum ShardOut {
    Preamble(String),
    Cell { tput: f64, delay_ms: f64, fairness: f64 },
}

impl Codec for ShardOut {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            ShardOut::Preamble(text) => {
                w.put_u8(0);
                text.encode(w);
            }
            ShardOut::Cell { tput, delay_ms, fairness } => {
                w.put_u8(1);
                w.put_f64(*tput);
                w.put_f64(*delay_ms);
                w.put_f64(*fairness);
            }
        }
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        match r.get_u8()? {
            0 => Some(ShardOut::Preamble(String::decode(r)?)),
            1 => Some(ShardOut::Cell {
                tput: r.get_f64()?,
                delay_ms: r.get_f64()?,
                fairness: r.get_f64()?,
            }),
            _ => None,
        }
    }
}

struct Metrics {
    tput: f64,
    delay_ms: f64,
    fairness: f64,
}

fn render_block(title: &str, rates: &[f64], rows: &[Vec<Metrics>], out: &mut String) {
    let mut tput = Table::new(
        &format!("{title} — aggregate throughput (Mb/s)"),
        &["uplink (Mb/s)", "DOMINO", "CENTAUR", "DCF", "DOMINO/DCF"],
    );
    let mut delay = Table::new(
        &format!("{title} — average delay per link (ms)"),
        &["uplink (Mb/s)", "DOMINO", "CENTAUR", "DCF"],
    );
    let mut fair = Table::new(
        &format!("{title} — Jain's fairness index"),
        &["uplink (Mb/s)", "DOMINO", "CENTAUR", "DCF"],
    );
    for (up, reports) in rates.iter().zip(rows) {
        let (d, c, f) = (&reports[0], &reports[1], &reports[2]);
        tput.row(&[
            format!("{up:.0}", up = up / 1e6),
            mbps(d.tput),
            mbps(c.tput),
            mbps(f.tput),
            format!("{:.2}", d.tput / f.tput.max(1e-9)),
        ]);
        delay.row(&[
            format!("{:.0}", up / 1e6),
            format!("{:.2}", d.delay_ms),
            format!("{:.2}", c.delay_ms),
            format!("{:.2}", f.delay_ms),
        ]);
        fair.row(&[
            format!("{:.0}", up / 1e6),
            format!("{:.2}", d.fairness),
            format!("{:.2}", c.fairness),
            format!("{:.2}", f.fairness),
        ]);
    }
    push_block(out, &tput.render());
    push_block(out, &delay.render());
    push_block(out, &fair.render());
}

/// Build the plan: a preamble shard plus one shard per simulation cell.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let rates: Vec<f64> = match scale {
        Scale::Full => (0..=5).map(|i| 2e6 * i as f64).collect(),
        Scale::Quick => vec![0.0, 4e6, 10e6],
    };
    let duration = scale.duration(4.0);

    let mut shards: Vec<Box<dyn FnOnce() -> ShardOut + Send>> = Vec::new();
    shards.push(Box::new(move || {
        use domino_topology::conflict::{pair_stats, ConflictGraph};
        let net = scenarios::standard_t(10, 2, seed);
        let g = ConflictGraph::build(&net);
        let stats = pair_stats(&net, &g);
        let mut text = String::new();
        outln!(
            text,
            "T(10,2): {} links, {} hidden and {} exposed of {} non-sharing link pairs (paper: 10 hidden, 62 exposed of 720)\n",
            net.links().len(),
            stats.hidden,
            stats.exposed,
            stats.total
        );
        ShardOut::Preamble(text)
    }));
    for tcp in [false, true] {
        for &up in &rates {
            for &scheme in &SCHEMES {
                shards.push(Box::new(move || {
                    let net = scenarios::standard_t(10, 2, seed);
                    let builder =
                        SimulationBuilder::new(net).duration_s(duration).seed(seed);
                    let builder =
                        if tcp { builder.tcp(10e6, up) } else { builder.udp(10e6, up) };
                    let r = builder.run(scheme);
                    ShardOut::Cell {
                        tput: r.aggregate_mbps(),
                        delay_ms: r.mean_delay_us() / 1000.0,
                        fairness: r.fairness(),
                    }
                }));
            }
        }
    }

    Plan::new(shards, move |outs: Vec<ShardOut>| {
        let mut outs = outs.into_iter();
        let Some(ShardOut::Preamble(preamble)) = outs.next() else {
            return String::from("fig12: malformed shard order\n");
        };
        // Cells arrive in the exact nested order they were registered:
        // protocol-major, then rate, then scheme.
        let mut cells = outs.filter_map(|o| match o {
            ShardOut::Cell { tput, delay_ms, fairness } => {
                Some(Metrics { tput, delay_ms, fairness })
            }
            ShardOut::Preamble(_) => None,
        });
        let mut out = preamble;
        for (tcp, title) in [(false, "Fig 12(a-c) UDP"), (true, "Fig 12(d-f) TCP")] {
            let _ = tcp;
            let rows: Vec<Vec<Metrics>> = rates
                .iter()
                .map(|_| (0..SCHEMES.len()).filter_map(|_| cells.next()).collect())
                .collect();
            render_block(title, &rates, &rows, &mut out);
        }
        out
    })
}
