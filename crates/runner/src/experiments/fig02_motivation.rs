//! Fig 2: per-link and overall throughput on the Fig 1 motivation
//! topology (AP1→C1, C2→AP2, AP3→C3 saturated) under all four schemes.
//!
//! One shard per scheme; each run is a pure function of `(config, seed)`,
//! so the merged table is byte-identical to the serial binary.

use super::util::{mbps, outln, push_block};
use crate::codec::{ByteReader, ByteWriter, Codec};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino_stats::Table;
use domino_topology::{LinkId, NodeId};

/// Registry key.
pub const NAME: &str = "fig02_motivation";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig02_motivation.txt";

const SCHEMES: [Scheme; 4] = [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient];

struct Cell {
    scheme: Scheme,
    link_mbps: [f64; 3],
    overall: f64,
}

impl Codec for Cell {
    fn encode(&self, w: &mut ByteWriter) {
        self.scheme.encode(w);
        self.link_mbps.encode(w);
        w.put_f64(self.overall);
    }
    fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        Some(Cell {
            scheme: Scheme::decode(r)?,
            link_mbps: <[f64; 3]>::decode(r)?,
            overall: r.get_f64()?,
        })
    }
}

fn flow_links(net: &domino_topology::Network) -> [LinkId; 3] {
    let l_ap1 = net
        .links()
        .iter()
        .find(|l| l.is_downlink() && l.sender == NodeId(0))
        .expect("fig1 AP1 downlink")
        .id;
    let l_c2 = net
        .links()
        .iter()
        .find(|l| !l.is_downlink() && l.ap == NodeId(2))
        .expect("fig1 C2 uplink")
        .id;
    let l_ap3 = net
        .links()
        .iter()
        .find(|l| l.is_downlink() && l.sender == NodeId(4))
        .expect("fig1 AP3 downlink")
        .id;
    [l_ap1, l_c2, l_ap3]
}

/// Build the plan: one shard per scheme on the Fig 1 network.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(5.0);
    let shards: Vec<Box<dyn FnOnce() -> Cell + Send>> = SCHEMES
        .iter()
        .map(|&scheme| -> Box<dyn FnOnce() -> Cell + Send> {
            Box::new(move || {
                let net = scenarios::fig1();
                let links = flow_links(&net);
                let builder = SimulationBuilder::new(net)
                    .workload(Workload::udp_saturated(&links))
                    .duration_s(duration)
                    .seed(seed);
                let r = builder.run(scheme);
                Cell {
                    scheme,
                    link_mbps: [
                        r.link_mbps(links[0]),
                        r.link_mbps(links[1]),
                        r.link_mbps(links[2]),
                    ],
                    overall: r.aggregate_mbps(),
                }
            })
        })
        .collect();
    Plan::new(shards, |cells: Vec<Cell>| {
        let mut table = Table::new(
            "Fig 2 — throughput on the Fig 1 network (Mb/s)",
            &["scheme", "AP1->C1", "C2->AP2", "AP3->C3", "overall"],
        );
        for c in &cells {
            table.row(&[
                c.scheme.label().to_string(),
                mbps(c.link_mbps[0]),
                mbps(c.link_mbps[1]),
                mbps(c.link_mbps[2]),
                mbps(c.overall),
            ]);
        }
        let mut out = String::new();
        push_block(&mut out, &table.render());

        let get = |s: Scheme| cells.iter().find(|c| c.scheme == s).map(|c| c.overall).unwrap_or(0.0);
        outln!(
            out,
            "omniscient/DCF = {:.2} (paper: 1.76), omniscient/CENTAUR = {:.2} (paper: 1.61), DOMINO/omniscient = {:.2} (paper: ~close)",
            get(Scheme::Omniscient) / get(Scheme::Dcf),
            get(Scheme::Omniscient) / get(Scheme::Centaur),
            get(Scheme::Domino) / get(Scheme::Omniscient),
        );
        out
    })
}
