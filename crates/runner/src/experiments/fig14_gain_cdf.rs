//! Fig 14: CDF of the DOMINO/DCF throughput gain over repeated random
//! T(20,3) topologies (80 nodes in an 800 m × 800 m area, ns-3 default
//! path loss, saturated-ish UDP).
//!
//! One shard per (topology, scheme) simulation — the per-topology seeds
//! (`seed + i*1000`) match the original serial binary exactly, so the
//! output is byte-identical at equal scale.

use super::util::outln;
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_stats::Cdf;

/// Registry key.
pub const NAME: &str = "fig14_gain_cdf";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig14_gain_cdf.txt";

/// Build the plan: `runs` random topologies × {DOMINO, DCF} shards.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let runs = scale.trials(10, 50);
    let duration = scale.duration(2.0);

    let mut shards: Vec<Box<dyn FnOnce() -> f64 + Send>> = Vec::new();
    for i in 0..runs {
        let topo_seed = seed + i as u64 * 1000;
        for scheme in [Scheme::Domino, Scheme::Dcf] {
            shards.push(Box::new(move || {
                let net = scenarios::random_t(20, 3, topo_seed);
                SimulationBuilder::new(net)
                    .udp(10e6, 10e6)
                    .duration_s(duration)
                    .seed(topo_seed)
                    .run(scheme)
                    .aggregate_mbps()
            }));
        }
    }
    Plan::new(shards, move |cells: Vec<f64>| {
        let mut out = String::new();
        let mut gains = Vec::with_capacity(runs);
        for i in 0..runs {
            let (domino, dcf) = (cells[2 * i], cells[2 * i + 1]);
            let gain = domino / dcf;
            outln!(
                out,
                "run {i:>2}: DOMINO {domino:.2} Mb/s, DCF {dcf:.2} Mb/s, gain {gain:.2}x"
            );
            gains.push(gain);
        }

        let cdf = Cdf::from_samples(gains);
        outln!(
            out,
            "\n## Fig 14 — CDF of DOMINO/DCF throughput gain ({runs} random T(20,3) topologies)\n"
        );
        for (x, p) in cdf.points() {
            outln!(out, "{x:5.2}x  {p:4.2}  {}", "#".repeat((p * 50.0) as usize));
        }
        let (lo, hi) = cdf.range();
        outln!(
            out,
            "\nrange {lo:.2}x – {hi:.2}x, median {:.2}x (paper: 1.22x – 1.96x, median 1.58x)",
            cdf.median()
        );
        out
    })
}
