//! Fig 10: the transmission timeline of the Fig 7 network under DOMINO
//! with all uplink and downlink flows saturated — the paper's
//! "microscope" view showing triggers between slots, fake packets, ROP
//! slots and the self-healing of the initial wired-jitter misalignment.
//!
//! A single short simulation: one shard renders the whole view.

use super::util::outln;
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_obs::jsonl::{self, TraceMeta};
use domino_obs::TraceHandle;

/// Registry key.
pub const NAME: &str = "fig10_timeline";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig10_timeline.txt";

/// Render the designated trace of this experiment (`domino-run --trace`):
/// the same single DOMINO run as [`plan`], with a memory sink attached,
/// serialized as versioned JSONL. The run itself is unperturbed — tracing
/// is observation-only, so the rendered `results/` text stays
/// byte-identical whether or not a trace is being captured.
pub fn trace(scale: Scale, seed: u64) -> String {
    let (handle, sink) = TraceHandle::mem();
    let net = scenarios::fig7();
    let _ = SimulationBuilder::new(net)
        .udp(10e6, 10e6)
        .duration_s(scale.duration(0.2))
        .seed(seed)
        .run_traced(Scheme::Domino, handle);
    let meta = TraceMeta {
        experiment: NAME.to_string(),
        scheme: "domino".to_string(),
        seed,
        scale: scale.name().to_string(),
    };
    jsonl::write_trace(&meta, &sink.take())
}

/// Build the plan: a single shard (one 0.2 s quick-scale simulation).
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(0.2);
    Plan::single(move || {
        let net = scenarios::fig7();
        let report = SimulationBuilder::new(net.clone())
            .udp(10e6, 10e6)
            .duration_s(duration)
            .seed(seed)
            .run(Scheme::Domino);

        let mut out = String::new();
        outln!(out, "## Fig 10 — DOMINO timeline on the Fig 7 network (first 40 slot transmissions)\n");
        outln!(out, "{:>10}  {:>5}  {:<18} kind", "start(us)", "slot", "link");
        for rec in report.stats.slot_starts.iter().take(40) {
            let l = net.link(rec.link);
            let dir = if l.is_downlink() { "->" } else { "<-" };
            outln!(
                out,
                "{:>10.1}  {:>5}  AP{} {} client{:<5} {}",
                rec.start_ns as f64 / 1000.0,
                rec.slot,
                l.ap.0 / 2 + 1,
                dir,
                l.client().0,
                if rec.fake { "fake (header only)" } else { "data" },
            );
        }

        outln!(out, "\n## Misalignment per slot (µs) — §4.2.2's healing in action\n");
        for (slot, mis) in report.misalignment_by_slot().iter().take(12) {
            outln!(out, "slot {slot:>3}: {mis:7.2} us  {}", "#".repeat((*mis as usize).min(60)));
        }
        let fakes = report.stats.slot_starts.iter().filter(|r| r.fake).count();
        outln!(
            out,
            "\ntotal slot transmissions: {}, of which fake keep-alives: {} ({:.1}%)",
            report.stats.slot_starts.len(),
            fakes,
            100.0 * fakes as f64 / report.stats.slot_starts.len().max(1) as f64
        );
        out
    })
}
