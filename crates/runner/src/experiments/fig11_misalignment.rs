//! Fig 11: maximum transmission misalignment at the start of the
//! contention-free period vs slot index, for wired latency jitter of
//! 20/40/60/80 µs on T(10,2).
//!
//! One shard per jitter level.

use super::util::{outln, push_block};
use crate::plan::Plan;
use crate::scale::Scale;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_mac::domino::DominoConfig;
use domino_stats::Table;
use domino_wired::WiredLatency;

/// Registry key.
pub const NAME: &str = "fig11_misalignment";
/// Output file under `results/`.
pub const OUTPUT: &str = "fig11_misalignment.txt";

const JITTERS: [f64; 4] = [20.0, 40.0, 60.0, 80.0];
const SLOTS: usize = 8;

/// Build the plan: one shard per wired-jitter level.
pub fn plan(scale: Scale, seed: u64) -> Plan {
    let duration = scale.duration(0.5);
    let shards: Vec<Box<dyn FnOnce() -> Vec<f64> + Send>> = JITTERS
        .iter()
        .map(|&std_us| -> Box<dyn FnOnce() -> Vec<f64> + Send> {
            Box::new(move || {
                let net = scenarios::standard_t(10, 2, seed);
                let cfg =
                    DominoConfig { wired: WiredLatency::with_std(std_us), ..DominoConfig::default() };
                let report = SimulationBuilder::new(net)
                    .udp(10e6, 10e6)
                    .duration_s(duration)
                    .seed(seed)
                    .domino_config(cfg)
                    .run(Scheme::Domino);
                let mis = report.misalignment_by_slot();
                (0..SLOTS as u64)
                    .map(|s| mis.iter().find(|&&(idx, _)| idx == s).map(|&(_, m)| m).unwrap_or(0.0))
                    .collect()
            })
        })
        .collect();
    Plan::new(shards, |series: Vec<Vec<f64>>| {
        let header: Vec<String> = std::iter::once("slot".to_string())
            .chain(JITTERS.iter().map(|j| format!("{j:.0} us jitter")))
            .collect();
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = Table::new("Fig 11 — max TX misalignment (µs) vs slot index", &header_refs);
        for s in 0..SLOTS {
            let mut row = vec![s.to_string()];
            for col in &series {
                row.push(format!("{:.2}", col[s]));
            }
            t.row(&row);
        }
        let mut out = String::new();
        push_block(&mut out, &t.render());
        outln!(out, "paper: initial 10–20 us, reduced to 1–2 us within 4 slots");
        out
    })
}
