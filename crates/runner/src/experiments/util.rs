//! Shared helpers for the experiment ports.

use domino_sim::SimRng;
use domino_testkit::rng::shard_stream;

/// Format a Mb/s value for a table cell (same convention the original
/// `crates/bench` binaries used).
pub fn mbps(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio/gain for a table cell.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

/// Derive the RNG of one shard: a pure function of the master seed and
/// the `(experiment, shard)` identity, independent of worker scheduling.
pub fn shard_rng(master_seed: u64, experiment: &str, shard: u64) -> SimRng {
    SimRng::derive(master_seed, shard_stream(experiment, shard))
}

/// Append a rendered table the way the original binaries printed it:
/// `println!("{}", table.render())` emits the render plus one newline.
pub fn push_block(out: &mut String, block: &str) {
    out.push_str(block);
    out.push('\n');
}

/// `writeln!`-style append that cannot fail on `String`.
macro_rules! outln {
    ($out:expr) => { $out.push('\n') };
    ($out:expr, $($arg:tt)*) => {{
        use std::fmt::Write as _;
        let _ = writeln!($out, $($arg)*);
    }};
}
pub(crate) use outln;
