//! Entry point shared by the thin per-experiment binaries in
//! `crates/bench/src/bin/`. Each binary is ~10 lines: it forwards its
//! argv here and prints whatever comes back, preserving the flag surface
//! of the retired ad-hoc harness (`--full`, `--seed`) plus `--jobs`.

use crate::registry;
use crate::scale::Scale;

/// Usage text for the per-experiment binaries (printed to stderr on
/// `--help`, exit 0).
pub const USAGE: &str = "flags: --full (paper scale), --seed <n>, --jobs <n>";

/// What a thin binary should do with the parse/run result.
#[derive(Debug)]
pub enum SingleOutcome {
    /// Rendered experiment text — write to stdout verbatim, exit 0.
    Text(String),
    /// `--help` was requested — write [`USAGE`] to stderr, exit 0.
    Help,
}

/// Parse a thin binary's argv (without the program name) and run its
/// experiment. An `Err` is a diagnostic for stderr; the binary should
/// exit 2.
pub fn run_single(
    name: &str,
    argv: impl IntoIterator<Item = String>,
) -> Result<SingleOutcome, String> {
    let Some(exp) = registry::find(name) else {
        return Err(format!("experiment {name} is not registered"));
    };
    let mut scale = Scale::Quick;
    let mut seed = registry::DEFAULT_SEED;
    let mut jobs = crate::pool::default_jobs();
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => scale = Scale::Full,
            "--seed" => {
                seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| "--seed needs an integer".to_string())?;
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| "--jobs needs a positive integer".to_string())?;
            }
            "--help" | "-h" => return Ok(SingleOutcome::Help),
            other => return Err(format!("unknown flag {other}; try --help")),
        }
    }
    let run = crate::run_experiment(exp, scale, seed, jobs);
    Ok(SingleOutcome::Text(run.text))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_and_errors() {
        assert!(matches!(run_single("table1_params", args(&["--help"])), Ok(SingleOutcome::Help)));
        assert!(run_single("table1_params", args(&["--bogus"])).is_err());
        assert!(run_single("table1_params", args(&["--seed"])).is_err());
        assert!(run_single("table1_params", args(&["--jobs", "0"])).is_err());
        assert!(run_single("not_an_experiment", args(&[])).is_err());
    }

    #[test]
    fn runs_a_cheap_experiment() {
        let Ok(SingleOutcome::Text(text)) = run_single("table1_params", args(&[])) else {
            panic!("expected rendered text");
        };
        assert!(text.contains("Table 1"));
        assert!(text.ends_with('\n'));
    }
}
