//! # domino-runner
//!
//! The deterministic parallel experiment runner of the DOMINO
//! reproduction. Every table and figure of the paper's evaluation is
//! registered here as an [`Experiment`](registry::Experiment): a function
//! that, given a [`Scale`](scale::Scale) and a master seed, builds a
//! [`Plan`](plan::Plan) — a list of independent *shards* (one per sweep
//! point or trial block) plus a merge function that renders the shard
//! results into the experiment's `results/*.txt` text.
//!
//! Three properties make the runner's output trustworthy:
//!
//! * **Shard-local randomness.** Every shard that needs randomness derives
//!   its generator as `SimRng::derive(master_seed,
//!   shard_stream(experiment, shard))` (see
//!   [`domino_testkit::rng::shard_stream`]), so a shard's draws depend only
//!   on what it computes — never on which worker thread ran it.
//! * **Index-ordered merge.** The [work pool](pool) hands results back
//!   tagged with their shard index and the merge consumes them in index
//!   order, so the rendered text is **byte-identical for any `--jobs`
//!   count and any completion order**.
//! * **Byte-exact pinning.** `domino-run --check` regenerates every
//!   experiment in memory and byte-diffs it against the committed
//!   `results/` files, turning them into golden pins that CI enforces.
//!
//! The library is lint-clean under rules D001 and D006: wall time is
//! measured only through [`domino_testkit::bench::Stopwatch`], and nothing
//! here prints — rendered text and the `--json` manifest are returned as
//! strings for the `domino-run` binary (which may print) to emit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod codec;
pub mod experiments;
pub mod plan;
pub mod pool;
pub mod registry;
pub mod scale;
pub mod single;
pub mod sweep;

use plan::RunDigest;
use registry::Experiment;
use scale::Scale;

/// One executed experiment: rendered output plus per-shard wall times.
#[derive(Debug)]
pub struct ExperimentRun {
    /// Experiment name (registry key, also the `src/bin` name it replaced).
    pub name: &'static str,
    /// File name under `results/` this experiment renders.
    pub output: &'static str,
    /// The rendered output text (what `results/<output>` should contain).
    pub text: String,
    /// Machine-readable run summary (livelocks, watchdog storms,
    /// per-fault-class counts) — deterministic, unlike the wall times.
    pub digest: RunDigest,
    /// Wall time of each shard in nanoseconds, in shard-index order.
    pub shard_ns: Vec<u64>,
    /// Wall time of plan construction in nanoseconds.
    pub build_ns: u64,
    /// Wall time of the pooled shard phase in nanoseconds.
    pub run_ns: u64,
    /// Wall time of the index-ordered merge in nanoseconds.
    pub merge_ns: u64,
    /// Wall time of the whole experiment (build + shards + merge).
    pub elapsed_ns: u64,
}

/// Run one experiment at the given scale/seed across `jobs` workers.
///
/// The returned text is a pure function of `(experiment, scale, seed)` —
/// `jobs` affects wall time only. Per-phase wall times (build, run,
/// merge) are measured with the testkit bench clock, keeping rule D001's
/// wall-clock boundary at the runner.
pub fn run_experiment(exp: &Experiment, scale: Scale, seed: u64, jobs: usize) -> ExperimentRun {
    let watch = domino_testkit::bench::Stopwatch::start();
    let built = (exp.plan)(scale, seed);
    let (shards, finish) = built.into_parts();
    let build_ns = watch.elapsed_ns();
    let runs = pool::run_indexed(jobs, shards);
    let run_ns = watch.elapsed_ns() - build_ns;
    let mut shard_ns = Vec::with_capacity(runs.len());
    let mut data = Vec::with_capacity(runs.len());
    for run in runs {
        shard_ns.push(run.elapsed_ns);
        data.push(run.value);
    }
    let (text, digest) = finish(data);
    let elapsed_ns = watch.elapsed_ns();
    ExperimentRun {
        name: exp.name,
        output: exp.output,
        text,
        digest,
        shard_ns,
        build_ns,
        run_ns,
        merge_ns: elapsed_ns - build_ns - run_ns,
        elapsed_ns,
    }
}

/// How one experiment's regenerated text compares to the committed file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckStatus {
    /// Byte-identical to the committed file.
    Match,
    /// The committed file does not exist (or is unreadable).
    Missing,
    /// Differs; carries the first differing 1-based line with both sides.
    Differs {
        /// First line number (1-based) where the texts diverge.
        line: usize,
        /// That line as committed (empty if the committed file is shorter).
        expected: String,
        /// That line as regenerated (empty if the regenerated text is shorter).
        actual: String,
    },
}

/// Byte-compare a run's text against `<dir>/<output>`.
pub fn check_against(dir: &std::path::Path, run: &ExperimentRun) -> CheckStatus {
    let Ok(committed) = std::fs::read_to_string(dir.join(run.output)) else {
        return CheckStatus::Missing;
    };
    if committed == run.text {
        return CheckStatus::Match;
    }
    let mut want = committed.lines();
    let mut got = run.text.lines();
    let mut line = 0usize;
    loop {
        line += 1;
        match (want.next(), got.next()) {
            (Some(w), Some(g)) if w == g => continue,
            (w, g) => {
                return CheckStatus::Differs {
                    line,
                    expected: w.unwrap_or_default().to_string(),
                    actual: g.unwrap_or_default().to_string(),
                };
            }
        }
    }
}

/// Render the `--json` manifest for a set of experiment runs.
///
/// Shard wall times come from the testkit bench clock
/// ([`domino_testkit::bench::Stopwatch`]); everything else in the manifest
/// is deterministic, so diffs between manifests isolate timing changes.
pub fn render_manifest(
    scale: Scale,
    seed: u64,
    jobs: usize,
    host_cpus: usize,
    runs: &[ExperimentRun],
    wall_ns: u64,
) -> String {
    use std::fmt::Write;
    let mut out = String::from("{\n");
    let _ = writeln!(out, "  \"tool\": \"domino-run\",");
    let _ = writeln!(out, "  \"scale\": \"{}\",", scale.name());
    let _ = writeln!(out, "  \"seed\": {seed},");
    let _ = writeln!(out, "  \"jobs\": {jobs},");
    let _ = writeln!(out, "  \"host_cpus\": {host_cpus},");
    let _ = writeln!(out, "  \"wall_ms\": {:.1},", wall_ns as f64 / 1e6);
    let _ = writeln!(out, "  \"experiments\": [");
    for (i, run) in runs.iter().enumerate() {
        let _ = writeln!(out, "    {{");
        let _ = writeln!(out, "      \"name\": \"{}\",", run.name);
        let _ = writeln!(out, "      \"output\": \"{}\",", run.output);
        let _ = writeln!(out, "      \"bytes\": {},", run.text.len());
        let _ = writeln!(out, "      \"wall_ms\": {:.1},", run.elapsed_ns as f64 / 1e6);
        let _ = writeln!(
            out,
            "      \"phase_ms\": {{ \"build\": {:.1}, \"run\": {:.1}, \"merge\": {:.1} }},",
            run.build_ns as f64 / 1e6,
            run.run_ns as f64 / 1e6,
            run.merge_ns as f64 / 1e6,
        );
        let _ = writeln!(out, "      \"livelocks\": {},", run.digest.livelocks);
        let _ = writeln!(out, "      \"watchdog_storms\": {},", run.digest.watchdog_storms);
        let classes: Vec<String> = run
            .digest
            .fault_classes
            .iter()
            .map(|(name, count)| format!("\"{name}\": {count}"))
            .collect();
        let _ = writeln!(out, "      \"fault_classes\": {{ {} }},", classes.join(", "));
        let shards: Vec<String> =
            run.shard_ns.iter().map(|ns| format!("{:.1}", *ns as f64 / 1e6)).collect();
        let _ = writeln!(out, "      \"shard_ms\": [{}]", shards.join(", "));
        let _ = writeln!(out, "    }}{}", if i + 1 == runs.len() { "" } else { "," });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the `--list` table: one `name  title` line per registered
/// experiment. All user-facing formatting lives here (rule D006: the
/// binary prints pre-rendered strings only).
pub fn render_list() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for e in &registry::REGISTRY {
        let _ = writeln!(out, "{:<28} {}", e.name, e.title);
    }
    out
}

/// Render the progress line `domino-run` prints after each experiment.
pub fn render_progress(run: &ExperimentRun, verdict: &str) -> String {
    format!(
        "{:<28} {:>9.1} ms  {:>3} shard{}  {verdict}",
        run.name,
        run.elapsed_ns as f64 / 1e6,
        run.shard_ns.len(),
        if run.shard_ns.len() == 1 { " " } else { "s" },
    )
}

/// Render the closing summary line of a `domino-run` invocation.
pub fn render_summary(count: usize, wall_ns: u64, jobs: usize) -> String {
    format!(
        "{} experiment{} in {:.1} s (jobs={})",
        count,
        if count == 1 { "" } else { "s" },
        wall_ns as f64 / 1e9,
        jobs,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy_run(text: &str) -> ExperimentRun {
        ExperimentRun {
            name: "dummy",
            output: "dummy.txt",
            text: text.to_string(),
            digest: RunDigest {
                livelocks: 0,
                watchdog_storms: 1,
                fault_classes: vec![("ap_crashes", 2)],
            },
            shard_ns: vec![1_000_000, 2_000_000],
            build_ns: 100_000,
            run_ns: 2_500_000,
            merge_ns: 400_000,
            elapsed_ns: 3_000_000,
        }
    }

    #[test]
    fn check_reports_first_differing_line() {
        let dir = std::env::temp_dir().join("domino-runner-check-test");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("dummy.txt"), "a\nb\nc\n").unwrap();
        assert_eq!(check_against(&dir, &dummy_run("a\nb\nc\n")), CheckStatus::Match);
        assert_eq!(
            check_against(&dir, &dummy_run("a\nX\nc\n")),
            CheckStatus::Differs {
                line: 2,
                expected: "b".to_string(),
                actual: "X".to_string()
            }
        );
        // Same lines, different trailing bytes: still flagged (byte-exact).
        assert!(matches!(
            check_against(&dir, &dummy_run("a\nb\nc")),
            CheckStatus::Differs { .. }
        ));
        assert_eq!(
            check_against(&dir, &dummy_run("a\nb\nc\nd\n")),
            CheckStatus::Differs {
                line: 4,
                expected: String::new(),
                actual: "d".to_string()
            }
        );
    }

    #[test]
    fn manifest_shape() {
        let m = render_manifest(Scale::Quick, 1, 4, 8, &[dummy_run("hi\n")], 5_000_000);
        assert!(m.contains("\"scale\": \"quick\""));
        assert!(m.contains("\"jobs\": 4"));
        assert!(m.contains("\"name\": \"dummy\""));
        assert!(m.contains("\"shard_ms\": [1.0, 2.0]"));
        assert!(m.contains("\"livelocks\": 0"));
        assert!(m.contains("\"watchdog_storms\": 1"));
        assert!(m.contains("\"fault_classes\": { \"ap_crashes\": 2 }"));
        assert!(m.contains("\"phase_ms\": { \"build\": 0.1, \"run\": 2.5, \"merge\": 0.4 }"));
    }

    #[test]
    fn render_helpers_are_print_ready() {
        let line = render_progress(&dummy_run("hi\n"), "check: match");
        assert!(line.starts_with("dummy"));
        assert!(line.contains("2 shards"));
        assert!(line.ends_with("check: match"));
        assert_eq!(render_summary(1, 2_000_000_000, 4), "1 experiment in 2.0 s (jobs=4)");
        assert_eq!(render_summary(3, 500_000_000, 2), "3 experiments in 0.5 s (jobs=2)");
        let list = render_list();
        assert!(list.lines().count() >= 15);
        assert!(list.contains("fig10_timeline"));
    }
}
