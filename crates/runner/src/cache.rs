//! Cache-aware experiment execution: skip shards whose results are
//! already in the content-addressed store.
//!
//! This is the execution half of the `domino-campaign` subsystem (the
//! store, keys, and fingerprint live there; the registry and the shard
//! pool live here). [`run_experiment_cached`] probes the store once per
//! shard of a [`Plan`](crate::plan::Plan), decodes the hits through the
//! plan's own [`Codec`](crate::codec::Codec) pair, runs only the misses
//! across the pool, stores their encodings, and reassembles everything
//! **in shard-index order** before the merge — so the rendered text is
//! byte-identical to an uncached run at any `--jobs` count, whether
//! zero, some, or all shards came from the cache.
//!
//! Staleness is impossible by construction: the workspace code
//! fingerprint ([`domino_campaign::fingerprint`]) is part of every key,
//! so editing any crate that can reach shard computation silently turns
//! every prior entry into a miss. Corruption is handled below the key
//! layer — the store digest-verifies each object and evicts on mismatch
//! — and a hit whose bytes fail to *decode* is likewise demoted to a
//! recompute, never propagated.

use crate::plan::ShardData;
use crate::registry::Experiment;
use crate::scale::Scale;
use crate::{pool, ExperimentRun};
use domino_campaign::fingerprint;
use domino_campaign::store::{CacheKey, Store, StoreStats};
use domino_obs::metrics::MetricsRegistry;
use std::path::Path;

/// An open cache plus the code fingerprint all its keys are derived
/// under. One session spans one CLI invocation (or one campaign).
#[derive(Debug)]
pub struct CacheSession {
    store: Store,
    fingerprint: String,
}

impl CacheSession {
    /// Open the store at `dir` and fingerprint the live workspace tree.
    /// Fails if the workspace sources cannot be found or read — a cache
    /// without a trustworthy fingerprint could serve stale results.
    pub fn open(dir: &Path) -> Result<CacheSession, String> {
        let crates_root = fingerprint::workspace_crates_root()
            .ok_or_else(|| "cache: cannot locate workspace crates/ directory".to_string())?;
        let entries = fingerprint::scan(&crates_root)?;
        let fp = fingerprint::fingerprint(&entries)?;
        Ok(CacheSession { store: Store::open(dir)?, fingerprint: fp })
    }

    /// Build a session over an already-open store with a caller-chosen
    /// fingerprint. Used by tests to exercise hit/miss/invalidation
    /// without scanning the real tree.
    pub fn with(store: Store, fingerprint: String) -> CacheSession {
        CacheSession { store, fingerprint }
    }

    /// The code fingerprint every key of this session embeds.
    pub fn fingerprint(&self) -> &str {
        &self.fingerprint
    }

    /// Cache traffic counters accumulated so far.
    pub fn stats(&self) -> StoreStats {
        self.store.stats()
    }

    /// Render the session counters via the obs metrics registry
    /// (`campaign.cache.<name> <value>` lines, byte-stable ordering).
    pub fn render_stats(&self) -> String {
        let mut reg = MetricsRegistry::new();
        self.stats().publish(&mut reg);
        reg.render()
    }

    /// Persist the store index.
    pub fn flush(&mut self) -> Result<(), String> {
        self.store.flush()
    }

    fn key(&self, exp: &str, scale: Scale, seed: u64, shard: u32) -> CacheKey {
        CacheKey {
            experiment: exp.to_string(),
            fingerprint: self.fingerprint.clone(),
            scale: scale.name().to_string(),
            seed,
            shard,
            params: String::new(),
        }
    }
}

/// One cache-aware experiment execution.
#[derive(Debug)]
pub struct CachedRun {
    /// The run itself — same shape and same text as `run_experiment`.
    pub run: ExperimentRun,
    /// Shards served from the store.
    pub shards_cached: usize,
    /// Shards actually executed (cache misses).
    pub shards_executed: usize,
}

/// Run one experiment, sourcing every shard it can from the cache and
/// executing only the misses. The returned text is byte-identical to
/// [`crate::run_experiment`] for the same `(experiment, scale, seed)` —
/// the cache can change wall time only. Freshly computed shards are
/// stored back best-effort (a full disk degrades to recompute-next-time,
/// never to a wrong result); call [`CacheSession::flush`] afterwards to
/// persist the index.
pub fn run_experiment_cached(
    session: &mut CacheSession,
    exp: &Experiment,
    scale: Scale,
    seed: u64,
    jobs: usize,
) -> CachedRun {
    let watch = domino_testkit::bench::Stopwatch::start();
    let built = (exp.plan)(scale, seed);
    let (tasks, encode, decode, finish) = built.into_cache_parts();
    let build_ns = watch.elapsed_ns();

    let total = tasks.len();
    let mut slots: Vec<Option<ShardData>> = Vec::with_capacity(total);
    let mut miss_indices: Vec<usize> = Vec::new();
    let mut miss_tasks: Vec<pool::Task<ShardData>> = Vec::new();
    for (index, task) in tasks.into_iter().enumerate() {
        let key = session.key(exp.name, scale, seed, index as u32);
        let cached = session.store.get(&key).and_then(|bytes| decode(&bytes));
        match cached {
            Some(data) => slots.push(Some(data)),
            None => {
                slots.push(None);
                miss_indices.push(index);
                miss_tasks.push(task);
            }
        }
    }

    let shards_cached = total - miss_indices.len();
    let shards_executed = miss_indices.len();
    let runs = pool::run_indexed(jobs, miss_tasks);
    let run_ns = watch.elapsed_ns() - build_ns;

    let mut shard_ns = vec![0u64; total];
    for (&index, shard_run) in miss_indices.iter().zip(runs) {
        let key = session.key(exp.name, scale, seed, index as u32);
        if let Some(bytes) = encode(&shard_run.value) {
            let _ = session.store.put(&key, &bytes);
        }
        shard_ns[index] = shard_run.elapsed_ns;
        slots[index] = Some(shard_run.value);
    }

    let data: Vec<ShardData> = slots
        .into_iter()
        .map(|slot| slot.expect("every shard is either cached or executed"))
        .collect();
    let (text, digest) = finish(data);
    let elapsed_ns = watch.elapsed_ns();
    CachedRun {
        run: ExperimentRun {
            name: exp.name,
            output: exp.output,
            text,
            digest,
            shard_ns,
            build_ns,
            run_ns,
            merge_ns: elapsed_ns - build_ns - run_ns,
            elapsed_ns,
        },
        shards_cached,
        shards_executed,
    }
}

/// Render the one-line cache summary the CLI prints per experiment.
pub fn render_cache_line(run: &CachedRun) -> String {
    format!(
        "{:<28} cache: {} hit{}, {} executed",
        run.run.name,
        run.shards_cached,
        if run.shards_cached == 1 { "" } else { "s" },
        run.shards_executed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry;
    use std::path::PathBuf;

    fn tmp_session(tag: &str, fp: &str) -> (PathBuf, CacheSession) {
        let dir =
            std::env::temp_dir().join(format!("domino-runner-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir.clone(), CacheSession::with(store, fp.to_string()))
    }

    fn exp(name: &str) -> &'static Experiment {
        registry::find(name).unwrap()
    }

    #[test]
    fn warm_rerun_executes_zero_shards_and_matches_bytes() {
        let (dir, mut session) = tmp_session("warm", &"a".repeat(64));
        let e = exp("fig06_guard_sweep");
        let cold = run_experiment_cached(&mut session, e, Scale::Quick, 1, 2);
        assert_eq!(cold.shards_cached, 0);
        assert!(cold.shards_executed > 0);
        let plain = crate::run_experiment(e, Scale::Quick, 1, 2);
        assert_eq!(cold.run.text, plain.text, "cached path must not change output");
        assert_eq!(cold.run.digest, plain.digest);

        let warm = run_experiment_cached(&mut session, e, Scale::Quick, 1, 1);
        assert_eq!(warm.shards_executed, 0, "warm rerun must execute nothing");
        assert_eq!(warm.shards_cached, cold.shards_executed);
        assert_eq!(warm.run.text, cold.run.text);
        assert_eq!(warm.run.digest, cold.run.digest);
        assert!(render_cache_line(&warm).contains("0 executed"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fingerprint_change_invalidates_everything() {
        let (dir, mut session) = tmp_session("inval", &"a".repeat(64));
        let e = exp("table1_params");
        let first = run_experiment_cached(&mut session, e, Scale::Quick, 1, 1);
        session.flush().unwrap();
        let executed = first.shards_executed;
        assert!(executed > 0);

        // Same store, different code fingerprint: all misses again.
        let store = Store::open(&dir).unwrap();
        let mut other = CacheSession::with(store, "b".repeat(64));
        let again = run_experiment_cached(&mut other, e, Scale::Quick, 1, 1);
        assert_eq!(again.shards_cached, 0);
        assert_eq!(again.shards_executed, executed);
        assert_eq!(again.run.text, first.run.text);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn seed_and_scale_partition_the_cache() {
        let (dir, mut session) = tmp_session("part", &"a".repeat(64));
        let e = exp("fig05_rop_samples");
        let s1 = run_experiment_cached(&mut session, e, Scale::Quick, 1, 1);
        let s2 = run_experiment_cached(&mut session, e, Scale::Quick, 2, 1);
        assert_eq!(s2.shards_cached, 0, "different seed must not hit");
        assert_ne!(s1.run.text, s2.run.text);
        let s1_again = run_experiment_cached(&mut session, e, Scale::Quick, 1, 1);
        assert_eq!(s1_again.shards_executed, 0);
        assert_eq!(s1_again.run.text, s1.run.text);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn stats_render_through_obs_registry() {
        let (dir, mut session) = tmp_session("stats", &"a".repeat(64));
        let e = exp("table1_params");
        let _ = run_experiment_cached(&mut session, e, Scale::Quick, 1, 1);
        let _ = run_experiment_cached(&mut session, e, Scale::Quick, 1, 1);
        let text = session.render_stats();
        assert!(text.contains("campaign.cache.hits"), "{text}");
        assert!(text.contains("campaign.cache.stores"), "{text}");
        let _ = std::fs::remove_dir_all(dir);
    }
}
