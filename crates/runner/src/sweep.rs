//! The incremental campaign driver: expand a manifest grid, run every
//! cell through the shard cache, and merge a deterministic report —
//! resumable at any interruption point.
//!
//! A campaign directory looks like:
//!
//! ```text
//! <out>/
//!   ledger.txt        append-only completion log (see campaign::ledger)
//!   cells/<id>.txt    one rendered output per grid cell
//!   report.txt        merged report (see campaign::report)
//! ```
//!
//! Three determinism guarantees, each checked end-to-end by
//! `scripts/ci.sh`:
//!
//! * **Cache transparency** — a cell's text is byte-identical whether
//!   its shards were computed, cached, or mixed (`cache` module).
//! * **Resume transparency** — `--resume` skips cells whose ledger entry
//!   *and* on-disk file digest both check out; a cell file that was
//!   tampered with or torn mid-write is re-run, never trusted. The
//!   ledger binds to the campaign name and the code fingerprint, so a
//!   resume under edited sources is refused rather than spliced.
//! * **Report purity** — the merged report contains no wall times and no
//!   cache counters, so cold, warm, and interrupted-then-resumed runs of
//!   the same grid produce byte-identical `report.txt`.
//!
//! Per rule D006 this module never prints: progress lines go through the
//! caller's callback and the binary decides what to do with them.

use crate::cache::{run_experiment_cached, CacheSession};
use crate::registry;
use crate::scale::Scale;
use domino_campaign::store::StoreStats;
use domino_campaign::{fingerprint, ledger, manifest, report};
use domino_testkit::digest::sha256_hex;
use std::io::Write;
use std::path::{Path, PathBuf};

/// How one campaign invocation should execute.
#[derive(Debug)]
pub struct CampaignConfig {
    /// Campaign output directory (ledger, cell files, report).
    pub out_dir: PathBuf,
    /// Shard cache directory; `None` disables the cache entirely.
    pub cache_dir: Option<PathBuf>,
    /// Worker threads for shard execution.
    pub jobs: usize,
    /// Resume from an existing ledger instead of starting fresh.
    pub resume: bool,
}

/// What a campaign invocation did.
#[derive(Debug)]
pub struct CampaignOutcome {
    /// Campaign name from the manifest.
    pub name: String,
    /// Total grid cells.
    pub cells_total: usize,
    /// Cells skipped because the ledger + cell file verified.
    pub cells_resumed: usize,
    /// Cells executed by this invocation.
    pub cells_executed: usize,
    /// Shards served from the cache, summed over executed cells.
    pub shards_cached: usize,
    /// Shards computed, summed over executed cells.
    pub shards_executed: usize,
    /// Where the merged report was written.
    pub report_path: PathBuf,
    /// Cache counters, when a cache was in use.
    pub cache_stats: Option<StoreStats>,
}

fn parse_scale(name: &str) -> Result<Scale, String> {
    match name {
        "quick" => Ok(Scale::Quick),
        "full" => Ok(Scale::Full),
        other => Err(format!("campaign: unknown scale `{other}`")),
    }
}

fn write_atomic(path: &Path, text: &str) -> Result<(), String> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, text).map_err(|e| format!("campaign: cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("campaign: cannot commit {}: {e}", path.display()))
}

/// A resumed cell is only trusted if its file still hashes to what the
/// ledger recorded.
fn verify_resumed(cells_dir: &Path, entry: &ledger::Entry) -> Option<String> {
    let text = std::fs::read_to_string(cells_dir.join(format!("{}.txt", entry.cell))).ok()?;
    (sha256_hex(text.as_bytes()) == entry.digest).then_some(text)
}

/// Run (or resume) the campaign described by `manifest_text`. Progress
/// lines are handed to `on_progress` as cells complete; nothing is
/// printed here.
pub fn run_campaign(
    manifest_text: &str,
    cfg: &CampaignConfig,
    on_progress: &mut dyn FnMut(&str),
) -> Result<CampaignOutcome, String> {
    let spec = manifest::parse(manifest_text)?;
    for name in &spec.experiments {
        if registry::find(name).is_none() {
            return Err(format!(
                "campaign: unknown experiment `{name}` (see `domino-run --list`)"
            ));
        }
    }
    for scale in &spec.scales {
        parse_scale(scale)?;
    }

    // The ledger binds to the code fingerprint even when the shard cache
    // is off, so resume can always refuse to splice across code changes.
    let mut session = match &cfg.cache_dir {
        Some(dir) => Some(CacheSession::open(dir)?),
        None => None,
    };
    let fp = match &session {
        Some(s) => s.fingerprint().to_string(),
        None => {
            let root = fingerprint::workspace_crates_root()
                .ok_or_else(|| "campaign: cannot locate workspace crates/ directory".to_string())?;
            fingerprint::fingerprint(&fingerprint::scan(&root)?)?
        }
    };

    let cells_dir = cfg.out_dir.join("cells");
    std::fs::create_dir_all(&cells_dir)
        .map_err(|e| format!("campaign: cannot create {}: {e}", cells_dir.display()))?;
    let ledger_path = cfg.out_dir.join("ledger.txt");

    let previous = if cfg.resume {
        let text = std::fs::read_to_string(&ledger_path).map_err(|e| {
            format!("campaign: --resume but no ledger at {}: {e}", ledger_path.display())
        })?;
        let led = ledger::parse(&text)?;
        if led.name != spec.name {
            return Err(format!(
                "campaign: ledger belongs to campaign `{}`, manifest says `{}`",
                led.name, spec.name
            ));
        }
        if led.fingerprint != fp {
            return Err(
                "campaign: sources changed since the ledger was written; \
                 re-run without --resume to start over"
                    .to_string(),
            );
        }
        Some(led)
    } else {
        std::fs::write(&ledger_path, ledger::render_header(&spec.name, &fp))
            .map_err(|e| format!("campaign: cannot write {}: {e}", ledger_path.display()))?;
        None
    };
    let mut ledger_file = std::fs::OpenOptions::new()
        .append(true)
        .open(&ledger_path)
        .map_err(|e| format!("campaign: cannot open {}: {e}", ledger_path.display()))?;

    let grid = spec.cells();
    let mut results: Vec<report::CellResult> = Vec::with_capacity(grid.len());
    let mut cells_resumed = 0usize;
    let mut cells_executed = 0usize;
    let mut shards_cached = 0usize;
    let mut shards_executed = 0usize;

    for cell in &grid {
        let id = cell.id();
        let resumed = previous
            .as_ref()
            .and_then(|led| led.get(&id))
            .and_then(|entry| verify_resumed(&cells_dir, entry).map(|text| (entry, text)));
        if let Some((entry, text)) = resumed {
            results.push(report::CellResult {
                cell: id.clone(),
                experiment: cell.experiment.clone(),
                digest: entry.digest.clone(),
                bytes: text.len() as u64,
                livelocks: entry.livelocks,
                watchdog_storms: entry.watchdog_storms,
                fault_classes: entry.fault_classes.clone(),
            });
            cells_resumed += 1;
            on_progress(&format!("{id:<40} resumed (verified)"));
            continue;
        }

        let exp = registry::find(&cell.experiment)
            .ok_or_else(|| format!("campaign: unknown experiment `{}`", cell.experiment))?;
        let scale = parse_scale(&cell.scale)?;
        let (run, cached, executed) = match session.as_mut() {
            Some(s) => {
                let c = run_experiment_cached(s, exp, scale, cell.seed, cfg.jobs);
                (c.run, c.shards_cached, c.shards_executed)
            }
            None => {
                let r = crate::run_experiment(exp, scale, cell.seed, cfg.jobs);
                let n = r.shard_ns.len();
                (r, 0, n)
            }
        };
        shards_cached += cached;
        shards_executed += executed;

        // Durability order matters: cell file first, ledger line second —
        // a crash between the two re-runs the cell, never trusts a
        // missing file.
        write_atomic(&cells_dir.join(format!("{id}.txt")), &run.text)?;
        let entry = ledger::Entry {
            cell: id.clone(),
            digest: sha256_hex(run.text.as_bytes()),
            livelocks: run.digest.livelocks,
            watchdog_storms: run.digest.watchdog_storms,
            fault_classes: run
                .digest
                .fault_classes
                .iter()
                .map(|(name, count)| (name.to_string(), *count))
                .collect(),
        };
        ledger_file
            .write_all(ledger::render_entry(&entry).as_bytes())
            .and_then(|()| ledger_file.flush())
            .map_err(|e| format!("campaign: cannot append ledger: {e}"))?;
        results.push(report::CellResult {
            cell: id.clone(),
            experiment: cell.experiment.clone(),
            digest: entry.digest,
            bytes: run.text.len() as u64,
            livelocks: entry.livelocks,
            watchdog_storms: entry.watchdog_storms,
            fault_classes: entry.fault_classes,
        });
        cells_executed += 1;
        on_progress(&format!(
            "{id:<40} {executed} shard{} executed, {cached} cached",
            if executed == 1 { "" } else { "s" }
        ));
    }

    let report_path = cfg.out_dir.join("report.txt");
    write_atomic(&report_path, &report::render(&spec.name, &fp, &results))?;
    let cache_stats = match session.as_mut() {
        Some(s) => {
            s.flush()?;
            Some(s.stats())
        }
        None => None,
    };
    Ok(CampaignOutcome {
        name: spec.name,
        cells_total: grid.len(),
        cells_resumed,
        cells_executed,
        shards_cached,
        shards_executed,
        report_path,
        cache_stats,
    })
}

/// Render the closing summary of a campaign invocation (printed by the
/// binary, composed here per rule D006).
pub fn render_campaign_summary(outcome: &CampaignOutcome) -> String {
    let mut line = format!(
        "campaign {}: {} cells ({} resumed, {} executed); shards: {} cached, {} executed",
        outcome.name,
        outcome.cells_total,
        outcome.cells_resumed,
        outcome.cells_executed,
        outcome.shards_cached,
        outcome.shards_executed,
    );
    if let Some(stats) = &outcome.cache_stats {
        line.push_str(&format!(
            "; cache: {} hits, {} misses, {} stores, {} evictions",
            stats.hits, stats.misses, stats.stores, stats.evictions
        ));
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "campaign smoke\n\
                            experiments table1_params fig05_rop_samples\n\
                            seeds 1 2\n";

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("domino-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(root: &Path, resume: bool) -> CampaignConfig {
        CampaignConfig {
            out_dir: root.join("out"),
            cache_dir: Some(root.join("cache")),
            jobs: 2,
            resume,
        }
    }

    #[test]
    fn cold_then_warm_reports_are_identical_and_warm_runs_nothing() {
        let root = tmp_dir("warm");
        let mut lines = Vec::new();
        let cold =
            run_campaign(MANIFEST, &cfg(&root, false), &mut |l| lines.push(l.to_string()))
                .unwrap();
        assert_eq!(cold.cells_total, 4);
        assert_eq!(cold.cells_executed, 4);
        assert!(cold.shards_executed > 0);
        let cold_report = std::fs::read_to_string(&cold.report_path).unwrap();

        let warm = run_campaign(MANIFEST, &cfg(&root, false), &mut |_| {}).unwrap();
        assert_eq!(warm.shards_executed, 0, "warm rerun must compute nothing");
        assert_eq!(warm.cache_stats.unwrap().misses, 0);
        let warm_report = std::fs::read_to_string(&warm.report_path).unwrap();
        assert_eq!(cold_report, warm_report, "reports must be byte-identical");
        assert!(render_campaign_summary(&warm).contains("cache:"));
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn interrupted_campaign_resumes_to_identical_report() {
        let root = tmp_dir("resume");
        let cold = run_campaign(MANIFEST, &cfg(&root, false), &mut |_| {}).unwrap();
        let cold_report = std::fs::read_to_string(&cold.report_path).unwrap();

        // Simulate an interruption after three cells: drop the last
        // ledger line and its cell file, and the report.
        let fresh = tmp_dir("resume2");
        let c = cfg(&fresh, false);
        let _ = run_campaign(MANIFEST, &c, &mut |_| {}).unwrap();
        let ledger_path = c.out_dir.join("ledger.txt");
        let text = std::fs::read_to_string(&ledger_path).unwrap();
        let kept: Vec<&str> = text.lines().collect();
        let (last, head) = kept.split_last().unwrap();
        let lost_cell = last.split_ascii_whitespace().nth(1).unwrap().to_string();
        std::fs::write(&ledger_path, format!("{}\n", head.join("\n"))).unwrap();
        std::fs::remove_file(c.out_dir.join("cells").join(format!("{lost_cell}.txt"))).unwrap();
        std::fs::remove_file(c.out_dir.join("report.txt")).unwrap();

        let resumed = run_campaign(MANIFEST, &cfg(&fresh, true), &mut |_| {}).unwrap();
        assert_eq!(resumed.cells_resumed, 3);
        assert_eq!(resumed.cells_executed, 1);
        let resumed_report = std::fs::read_to_string(&resumed.report_path).unwrap();
        assert_eq!(cold_report, resumed_report, "resume must reproduce the cold report");
        let _ = std::fs::remove_dir_all(root);
        let _ = std::fs::remove_dir_all(fresh);
    }

    #[test]
    fn tampered_cell_file_is_rerun_on_resume() {
        let root = tmp_dir("tamper");
        let c = cfg(&root, false);
        let _ = run_campaign(MANIFEST, &c, &mut |_| {}).unwrap();
        let victim = c.out_dir.join("cells/table1_params.quick.s1.txt");
        std::fs::write(&victim, "tampered\n").unwrap();
        let resumed = run_campaign(MANIFEST, &cfg(&root, true), &mut |_| {}).unwrap();
        assert_eq!(resumed.cells_executed, 1, "tampered cell must re-run");
        assert_ne!(std::fs::read_to_string(&victim).unwrap(), "tampered\n");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn resume_refuses_foreign_ledgers() {
        let root = tmp_dir("foreign");
        let c = cfg(&root, false);
        let _ = run_campaign(MANIFEST, &c, &mut |_| {}).unwrap();
        let other = "campaign other\nexperiments table1_params\n";
        let err = run_campaign(other, &cfg(&root, true), &mut |_| {}).unwrap_err();
        assert!(err.contains("belongs to campaign"), "{err}");

        // Fingerprint mismatch: rewrite the binding line.
        let ledger_path = c.out_dir.join("ledger.txt");
        let text = std::fs::read_to_string(&ledger_path).unwrap();
        let swapped = text.replacen(
            text.lines().nth(1).unwrap(),
            &format!("campaign smoke {}", "0".repeat(64)),
            1,
        );
        std::fs::write(&ledger_path, swapped).unwrap();
        let err = run_campaign(MANIFEST, &cfg(&root, true), &mut |_| {}).unwrap_err();
        assert!(err.contains("sources changed"), "{err}");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn campaign_without_cache_still_completes_and_reports() {
        let root = tmp_dir("nocache");
        let c = CampaignConfig {
            out_dir: root.join("out"),
            cache_dir: None,
            jobs: 1,
            resume: false,
        };
        let small = "campaign tiny\nexperiments table1_params\n";
        let outcome = run_campaign(small, &c, &mut |_| {}).unwrap();
        assert_eq!(outcome.cells_total, 1);
        assert!(outcome.cache_stats.is_none());
        assert!(outcome.report_path.is_file());
        let err = run_campaign("campaign x\nexperiments nope\n", &c, &mut |_| {}).unwrap_err();
        assert!(err.contains("unknown experiment"), "{err}");
        let _ = std::fs::remove_dir_all(root);
    }
}
