//! An in-tree work pool: `std::thread::scope` workers over a shared queue.
//!
//! The build stays hermetic (no rayon/crossbeam); plain threads and an
//! `mpsc` channel are enough because shards are coarse (milliseconds to
//! seconds each). Results come back tagged with their submission index and
//! [`run_indexed`] returns them **in submission order**, which is what
//! makes the runner's merged output independent of completion order.
//!
//! A panicking shard does not poison the pool: every task runs under
//! `catch_unwind`, remaining tasks still execute, and the first panic (by
//! shard index, for determinism) is resumed on the caller's thread after
//! all workers have drained.

use domino_testkit::bench::Stopwatch;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Mutex;

/// A unit of work: runs once, on some worker, returning its shard data.
pub type Task<T> = Box<dyn FnOnce() -> T + Send>;

/// One completed task: its value plus the wall time it took (measured
/// through the testkit bench clock — rule D001 keeps `Instant` out of
/// this crate).
#[derive(Debug)]
pub struct ShardRun<T> {
    /// The task's return value.
    pub value: T,
    /// Wall time of the task body in nanoseconds.
    pub elapsed_ns: u64,
}

/// The default worker count: every hardware thread the host exposes.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execute `tasks` across up to `jobs` worker threads; results are
/// returned in submission order regardless of completion order.
pub fn run_indexed<T: Send>(jobs: usize, tasks: Vec<Task<T>>) -> Vec<ShardRun<T>> {
    let n = tasks.len();
    let workers = jobs.clamp(1, n.max(1));
    if workers <= 1 {
        return tasks
            .into_iter()
            .map(|task| {
                let watch = Stopwatch::start();
                let value = task();
                ShardRun { value, elapsed_ns: watch.elapsed_ns() }
            })
            .collect();
    }

    type Outcome<T> = Result<T, Box<dyn std::any::Any + Send>>;
    let queue: Mutex<VecDeque<(usize, Task<T>)>> =
        Mutex::new(tasks.into_iter().enumerate().collect());
    let (tx, rx) = mpsc::channel::<(usize, u64, Outcome<T>)>();

    let mut slots: Vec<Option<(u64, Outcome<T>)>> = std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let queue = &queue;
            scope.spawn(move || loop {
                // A poisoned lock means another worker panicked *outside*
                // catch_unwind, which cannot happen for task bodies; treat
                // it as queue-empty and wind down.
                let job = match queue.lock() {
                    Ok(mut q) => q.pop_front(),
                    Err(_) => None,
                };
                let Some((index, task)) = job else { break };
                let watch = Stopwatch::start();
                let outcome = panic::catch_unwind(AssertUnwindSafe(task));
                // The receiver outlives the scope; a send failure would
                // mean the caller vanished, which scoped threads preclude.
                let _ = tx.send((index, watch.elapsed_ns(), outcome));
            });
        }
        drop(tx);
        for (index, elapsed_ns, outcome) in rx.iter() {
            slots[index] = Some((elapsed_ns, outcome));
        }
    });

    let mut out = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        let Some((elapsed_ns, outcome)) = slot else {
            unreachable!("shard {index} produced no result");
        };
        match outcome {
            Ok(value) => out.push(ShardRun { value, elapsed_ns }),
            Err(payload) => panic::resume_unwind(payload),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tasks_squaring(n: usize) -> Vec<Task<usize>> {
        (0..n)
            .map(|i| -> Task<usize> {
                Box::new(move || {
                    // Uneven busy work so completion order scrambles.
                    let spin = (n - i) * 2000;
                    let mut acc = 0u64;
                    for k in 0..spin as u64 {
                        acc = acc.wrapping_add(k * k);
                    }
                    std::hint::black_box(acc);
                    i * i
                })
            })
            .collect()
    }

    #[test]
    fn preserves_submission_order_across_job_counts() {
        let expected: Vec<usize> = (0..40).map(|i| i * i).collect();
        for jobs in [1, 2, 8, 64] {
            let got: Vec<usize> =
                run_indexed(jobs, tasks_squaring(40)).into_iter().map(|r| r.value).collect();
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn empty_and_single() {
        assert!(run_indexed::<u8>(4, Vec::new()).is_empty());
        let one = run_indexed(4, vec![Box::new(|| 7u8) as Task<u8>]);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].value, 7);
    }

    #[test]
    fn first_panic_by_index_is_resumed_after_drain() {
        let tasks: Vec<Task<u32>> = (0..8)
            .map(|i| -> Task<u32> {
                Box::new(move || {
                    if i == 3 || i == 5 {
                        panic!("shard {i} failed");
                    }
                    i
                })
            })
            .collect();
        let err = panic::catch_unwind(AssertUnwindSafe(|| run_indexed(4, tasks)))
            .expect_err("pool must propagate the shard panic");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert_eq!(msg, "shard 3 failed");
    }
}
