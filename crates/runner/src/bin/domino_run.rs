//! `domino-run` — regenerate and verify the paper's evaluation outputs.
//!
//! ```text
//! domino-run [all | <experiment>...] [flags]
//!
//!   --full         paper scale (50 s simulations, 1000-trial sweeps)
//!   --seed <n>     master seed (default 1)
//!   --jobs <n>     worker threads (default: all hardware threads)
//!   --check        byte-diff regenerated output against results/ instead
//!                  of writing; exit 1 on any mismatch
//!   --json <path>  write a JSON manifest with per-shard wall times
//!   --trace <dir>  also write each selected experiment's designated
//!                  JSONL event trace to <dir>/<name>.jsonl (experiments
//!                  without one are skipped); analyze with `domino-trace`
//!   --out <dir>    results directory (default: ./results, falling back
//!                  to the directory committed next to the workspace)
//!   --cache        serve shards from the content-addressed result cache,
//!                  executing only misses (bytes are identical either way)
//!   --cache-dir <dir>  cache location (default: .domino-cache)
//!   --list         list registered experiments and exit
//!
//! domino-run campaign <manifest> [--jobs <n>] [--resume] [--report]
//!                                [--out <dir>] [--no-cache] [--cache-dir <dir>]
//!
//!   Expand the manifest's experiment × scale × seed grid and run every
//!   cell through the shard cache, writing <out>/cells/*.txt, an
//!   append-only ledger, and a deterministic merged report.txt.
//!   --resume skips ledger-verified cells; --report prints the report.
//!
//! domino-run fingerprint
//!
//!   Print the per-crate source manifest (the committed
//!   results/source_manifest.txt must byte-match it).
//! ```
//!
//! Output text is a pure function of `(experiment, scale, seed)`; the
//! jobs count, shard completion order, and the cache never change a
//! byte. Tracing is observation-only: `--trace` never changes the
//! rendered results.

use domino_campaign::fingerprint;
use domino_runner::cache::{render_cache_line, run_experiment_cached, CacheSession};
use domino_runner::registry::{self, Experiment, REGISTRY};
use domino_runner::scale::Scale;
use domino_runner::sweep::{render_campaign_summary, run_campaign, CampaignConfig};
use domino_runner::{
    check_against, pool, render_list, render_manifest, render_progress, render_summary,
    run_experiment, CheckStatus,
};
use domino_testkit::bench::Stopwatch;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    names: Vec<String>,
    scale: Scale,
    seed: u64,
    jobs: usize,
    check: bool,
    json: Option<PathBuf>,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
    cache: bool,
    cache_dir: PathBuf,
    list: bool,
}

const USAGE: &str = "usage: domino-run [all | <experiment>...] \
[--full] [--seed <n>] [--jobs <n>] [--check] [--json <path>] [--trace <dir>] \
[--out <dir>] [--cache] [--cache-dir <dir>] [--list]\n\
       domino-run campaign <manifest> [--jobs <n>] [--resume] [--report] \
[--out <dir>] [--no-cache] [--cache-dir <dir>]\n\
       domino-run fingerprint";

fn parse(argv: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        names: Vec::new(),
        scale: Scale::Quick,
        seed: registry::DEFAULT_SEED,
        jobs: pool::default_jobs(),
        check: false,
        json: None,
        trace: None,
        out: None,
        cache: false,
        cache_dir: PathBuf::from(".domino-cache"),
        list: false,
    };
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => cli.scale = Scale::Full,
            "--seed" => {
                cli.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--jobs" => {
                cli.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--jobs needs a positive integer")?;
            }
            "--check" => cli.check = true,
            "--json" => cli.json = Some(it.next().ok_or("--json needs a path")?.into()),
            "--trace" => cli.trace = Some(it.next().ok_or("--trace needs a directory")?.into()),
            "--out" => cli.out = Some(it.next().ok_or("--out needs a directory")?.into()),
            "--cache" => cli.cache = true,
            "--no-cache" => cli.cache = false,
            "--cache-dir" => {
                cli.cache_dir = it.next().ok_or("--cache-dir needs a directory")?.into();
            }
            "--list" => cli.list = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            name => cli.names.push(name.to_string()),
        }
    }
    Ok(cli)
}

/// Resolve the positional names into registry entries, in registry order
/// for `all`/empty and in the order given otherwise.
fn select(names: &[String]) -> Result<Vec<&'static Experiment>, String> {
    if names.is_empty() || names.iter().any(|n| n == "all") {
        return Ok(REGISTRY.iter().collect());
    }
    names
        .iter()
        .map(|n| {
            registry::find(n).ok_or_else(|| {
                format!("unknown experiment {n}; `domino-run --list` shows the registry")
            })
        })
        .collect()
}

/// `--out` if given, else `./results` when present, else the `results/`
/// directory committed next to this workspace.
fn results_dir(cli: &Cli) -> PathBuf {
    if let Some(dir) = &cli.out {
        return dir.clone();
    }
    let cwd = PathBuf::from("results");
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

/// `domino-run campaign …` — parse the subcommand's own flags and drive
/// the sweep engine.
fn campaign_main(args: &[String]) -> ExitCode {
    let mut manifest_path: Option<PathBuf> = None;
    let mut out: Option<PathBuf> = None;
    let mut cache_dir = PathBuf::from(".domino-cache");
    let mut use_cache = true;
    let mut jobs = pool::default_jobs();
    let mut resume = false;
    let mut report = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--jobs" => {
                jobs = match it.next().and_then(|v| v.parse().ok()).filter(|&n| n >= 1) {
                    Some(n) => n,
                    None => {
                        eprintln!("--jobs needs a positive integer\n{USAGE}");
                        return ExitCode::from(2);
                    }
                };
            }
            "--resume" => resume = true,
            "--report" => report = true,
            "--no-cache" => use_cache = false,
            "--cache-dir" => match it.next() {
                Some(d) => cache_dir = d.into(),
                None => {
                    eprintln!("--cache-dir needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--out" => match it.next() {
                Some(d) => out = Some(d.into()),
                None => {
                    eprintln!("--out needs a directory\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            path if manifest_path.is_none() => manifest_path = Some(path.into()),
            extra => {
                eprintln!("unexpected argument {extra}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(manifest_path) = manifest_path else {
        eprintln!("campaign needs a manifest path\n{USAGE}");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(&manifest_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {}: {e}", manifest_path.display());
            return ExitCode::FAILURE;
        }
    };
    // Default output directory: campaigns/out/<campaign name>.
    let out_dir = match out {
        Some(dir) => dir,
        None => match domino_campaign::manifest::parse(&text) {
            Ok(spec) => PathBuf::from("campaigns/out").join(spec.name),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
    };
    let cfg = CampaignConfig {
        out_dir,
        cache_dir: use_cache.then_some(cache_dir),
        jobs,
        resume,
    };
    let total = Stopwatch::start();
    match run_campaign(&text, &cfg, &mut |line| println!("{line}")) {
        Ok(outcome) => {
            println!("{}", render_campaign_summary(&outcome));
            println!("{}", render_summary(outcome.cells_total, total.elapsed_ns(), cfg.jobs));
            println!("report: {}", outcome.report_path.display());
            if report {
                match std::fs::read_to_string(&outcome.report_path) {
                    Ok(t) => print!("{t}"),
                    Err(e) => {
                        eprintln!("cannot read {}: {e}", outcome.report_path.display());
                        return ExitCode::FAILURE;
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

/// `domino-run fingerprint` — print the live per-crate source manifest.
fn fingerprint_main() -> ExitCode {
    let Some(root) = fingerprint::workspace_crates_root() else {
        eprintln!("cannot locate workspace crates/ directory");
        return ExitCode::FAILURE;
    };
    match fingerprint::scan(&root) {
        Ok(entries) => {
            print!("{}", fingerprint::render(&entries));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match argv.split_first() {
        Some((cmd, rest)) if cmd == "campaign" => return campaign_main(rest),
        Some((cmd, rest)) if cmd == "fingerprint" && rest.is_empty() => {
            return fingerprint_main();
        }
        _ => {}
    }
    let cli = match parse(argv) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if cli.list {
        print!("{}", render_list());
        return ExitCode::SUCCESS;
    }
    let selected = match select(&cli.names) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let dir = results_dir(&cli);
    if !cli.check {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(trace_dir) = &cli.trace {
        if let Err(e) = std::fs::create_dir_all(trace_dir) {
            eprintln!("cannot create {}: {e}", trace_dir.display());
            return ExitCode::FAILURE;
        }
    }

    let mut session = if cli.cache {
        match CacheSession::open(&cli.cache_dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        None
    };

    let total = Stopwatch::start();
    let mut runs = Vec::with_capacity(selected.len());
    let mut mismatches = 0usize;
    for exp in selected {
        let run = match session.as_mut() {
            Some(s) => {
                let cached = run_experiment_cached(s, exp, cli.scale, cli.seed, cli.jobs);
                println!("{}", render_cache_line(&cached));
                cached.run
            }
            None => run_experiment(exp, cli.scale, cli.seed, cli.jobs),
        };
        let verdict = if cli.check {
            match check_against(&dir, &run) {
                CheckStatus::Match => "check: match".to_string(),
                CheckStatus::Missing => {
                    mismatches += 1;
                    format!("check: MISSING {}", dir.join(run.output).display())
                }
                CheckStatus::Differs { line, expected, actual } => {
                    mismatches += 1;
                    format!(
                        "check: DIFFERS at line {line}\n  committed:   {expected}\n  regenerated: {actual}"
                    )
                }
            }
        } else {
            match std::fs::write(dir.join(run.output), &run.text) {
                Ok(()) => format!("wrote {}", dir.join(run.output).display()),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", dir.join(run.output).display());
                    return ExitCode::FAILURE;
                }
            }
        };
        println!("{}", render_progress(&run, &verdict));
        if let Some(trace_dir) = &cli.trace {
            if let Some(render_trace) = exp.trace {
                let path = trace_dir.join(format!("{}.jsonl", exp.name));
                let jsonl = render_trace(cli.scale, cli.seed);
                if let Err(e) = std::fs::write(&path, jsonl) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("trace: {}", path.display());
            }
        }
        runs.push(run);
    }
    let wall_ns = total.elapsed_ns();

    if let Some(path) = &cli.json {
        let manifest =
            render_manifest(cli.scale, cli.seed, cli.jobs, pool::default_jobs(), &runs, wall_ns);
        if let Err(e) = std::fs::write(path, manifest) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("manifest: {}", path.display());
    }

    if let Some(s) = session.as_mut() {
        if let Err(e) = s.flush() {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
        print!("{}", s.render_stats());
    }

    println!("{}", render_summary(runs.len(), wall_ns, cli.jobs));
    if mismatches > 0 {
        eprintln!("{mismatches} experiment(s) differ from {}", dir.display());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
