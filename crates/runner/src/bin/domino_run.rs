//! `domino-run` — regenerate and verify the paper's evaluation outputs.
//!
//! ```text
//! domino-run [all | <experiment>...] [flags]
//!
//!   --full         paper scale (50 s simulations, 1000-trial sweeps)
//!   --seed <n>     master seed (default 1)
//!   --jobs <n>     worker threads (default: all hardware threads)
//!   --check        byte-diff regenerated output against results/ instead
//!                  of writing; exit 1 on any mismatch
//!   --json <path>  write a JSON manifest with per-shard wall times
//!   --trace <dir>  also write each selected experiment's designated
//!                  JSONL event trace to <dir>/<name>.jsonl (experiments
//!                  without one are skipped); analyze with `domino-trace`
//!   --out <dir>    results directory (default: ./results, falling back
//!                  to the directory committed next to the workspace)
//!   --list         list registered experiments and exit
//! ```
//!
//! Output text is a pure function of `(experiment, scale, seed)`; the
//! jobs count and shard completion order never change a byte. Tracing is
//! observation-only: `--trace` never changes the rendered results.

use domino_runner::registry::{self, Experiment, REGISTRY};
use domino_runner::scale::Scale;
use domino_runner::{
    check_against, pool, render_list, render_manifest, render_progress, render_summary,
    run_experiment, CheckStatus,
};
use domino_testkit::bench::Stopwatch;
use std::path::PathBuf;
use std::process::ExitCode;

struct Cli {
    names: Vec<String>,
    scale: Scale,
    seed: u64,
    jobs: usize,
    check: bool,
    json: Option<PathBuf>,
    trace: Option<PathBuf>,
    out: Option<PathBuf>,
    list: bool,
}

const USAGE: &str = "usage: domino-run [all | <experiment>...] \
[--full] [--seed <n>] [--jobs <n>] [--check] [--json <path>] [--trace <dir>] \
[--out <dir>] [--list]";

fn parse(argv: impl IntoIterator<Item = String>) -> Result<Cli, String> {
    let mut cli = Cli {
        names: Vec::new(),
        scale: Scale::Quick,
        seed: registry::DEFAULT_SEED,
        jobs: pool::default_jobs(),
        check: false,
        json: None,
        trace: None,
        out: None,
        list: false,
    };
    let mut it = argv.into_iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--full" => cli.scale = Scale::Full,
            "--seed" => {
                cli.seed = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs an integer")?;
            }
            "--jobs" => {
                cli.jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--jobs needs a positive integer")?;
            }
            "--check" => cli.check = true,
            "--json" => cli.json = Some(it.next().ok_or("--json needs a path")?.into()),
            "--trace" => cli.trace = Some(it.next().ok_or("--trace needs a directory")?.into()),
            "--out" => cli.out = Some(it.next().ok_or("--out needs a directory")?.into()),
            "--list" => cli.list = true,
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag}")),
            name => cli.names.push(name.to_string()),
        }
    }
    Ok(cli)
}

/// Resolve the positional names into registry entries, in registry order
/// for `all`/empty and in the order given otherwise.
fn select(names: &[String]) -> Result<Vec<&'static Experiment>, String> {
    if names.is_empty() || names.iter().any(|n| n == "all") {
        return Ok(REGISTRY.iter().collect());
    }
    names
        .iter()
        .map(|n| {
            registry::find(n).ok_or_else(|| {
                format!("unknown experiment {n}; `domino-run --list` shows the registry")
            })
        })
        .collect()
}

/// `--out` if given, else `./results` when present, else the `results/`
/// directory committed next to this workspace.
fn results_dir(cli: &Cli) -> PathBuf {
    if let Some(dir) = &cli.out {
        return dir.clone();
    }
    let cwd = PathBuf::from("results");
    if cwd.is_dir() {
        return cwd;
    }
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

fn main() -> ExitCode {
    let cli = match parse(std::env::args().skip(1)) {
        Ok(cli) => cli,
        Err(msg) => {
            if msg.is_empty() {
                eprintln!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("{msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if cli.list {
        print!("{}", render_list());
        return ExitCode::SUCCESS;
    }
    let selected = match select(&cli.names) {
        Ok(s) => s,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };
    let dir = results_dir(&cli);
    if !cli.check {
        if let Err(e) = std::fs::create_dir_all(&dir) {
            eprintln!("cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    if let Some(trace_dir) = &cli.trace {
        if let Err(e) = std::fs::create_dir_all(trace_dir) {
            eprintln!("cannot create {}: {e}", trace_dir.display());
            return ExitCode::FAILURE;
        }
    }

    let total = Stopwatch::start();
    let mut runs = Vec::with_capacity(selected.len());
    let mut mismatches = 0usize;
    for exp in selected {
        let run = run_experiment(exp, cli.scale, cli.seed, cli.jobs);
        let verdict = if cli.check {
            match check_against(&dir, &run) {
                CheckStatus::Match => "check: match".to_string(),
                CheckStatus::Missing => {
                    mismatches += 1;
                    format!("check: MISSING {}", dir.join(run.output).display())
                }
                CheckStatus::Differs { line, expected, actual } => {
                    mismatches += 1;
                    format!(
                        "check: DIFFERS at line {line}\n  committed:   {expected}\n  regenerated: {actual}"
                    )
                }
            }
        } else {
            match std::fs::write(dir.join(run.output), &run.text) {
                Ok(()) => format!("wrote {}", dir.join(run.output).display()),
                Err(e) => {
                    eprintln!("cannot write {}: {e}", dir.join(run.output).display());
                    return ExitCode::FAILURE;
                }
            }
        };
        println!("{}", render_progress(&run, &verdict));
        if let Some(trace_dir) = &cli.trace {
            if let Some(render_trace) = exp.trace {
                let path = trace_dir.join(format!("{}.jsonl", exp.name));
                let jsonl = render_trace(cli.scale, cli.seed);
                if let Err(e) = std::fs::write(&path, jsonl) {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::FAILURE;
                }
                println!("trace: {}", path.display());
            }
        }
        runs.push(run);
    }
    let wall_ns = total.elapsed_ns();

    if let Some(path) = &cli.json {
        let manifest =
            render_manifest(cli.scale, cli.seed, cli.jobs, pool::default_jobs(), &runs, wall_ns);
        if let Err(e) = std::fs::write(path, manifest) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("manifest: {}", path.display());
    }

    println!("{}", render_summary(runs.len(), wall_ns, cli.jobs));
    if mismatches > 0 {
        eprintln!("{mismatches} experiment(s) differ from {}", dir.display());
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
