//! The on-disk content-addressed shard store (`.domino-cache/`).
//!
//! Layout under the store root:
//!
//! ```text
//! .domino-cache/
//!   index.txt              one line per entry, rewritten atomically
//!   objects/ab/abcdef….bin self-verifying payload objects
//! ```
//!
//! Every entry is addressed by the hex SHA-256 of its [`CacheKey`] — a
//! domain-separated, length-prefixed encoding of (experiment id, code
//! fingerprint, scale, seed, shard index, params). The object file carries
//! a header with the payload's own digest, and the index repeats it, so a
//! read is served **only** when the bytes on disk hash to exactly what was
//! written: a corrupt, truncated, or swapped object is evicted and
//! reported as a miss, never decoded. All failure handling is by value
//! (`Result`/`Option`) — this crate is in the D005 no-panic lint scope.

use domino_obs::metrics::MetricsRegistry;
use domino_testkit::digest::{sha256_hex, Sha256};
use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic first line of an object file; bump on layout change.
const OBJECT_MAGIC: &str = "domino-cache-object-v1";
/// Magic first line of the index; unknown versions are ignored wholesale.
const INDEX_MAGIC: &str = "# domino-cache-index-v1";

/// The identity of one cached shard result. Every field participates in
/// the address: change any one and the entry misses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CacheKey {
    /// Registry experiment id (e.g. `fig12_tput_delay_fairness`).
    pub experiment: String,
    /// Code fingerprint from the source manifest ([`crate::fingerprint`]).
    pub fingerprint: String,
    /// Scale name (`quick` / `full`).
    pub scale: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Shard index within the experiment's plan.
    pub shard: u32,
    /// Extra parameter string; empty today, reserved for parameterized
    /// plans so the key grammar never changes shape.
    pub params: String,
}

impl CacheKey {
    /// Hex SHA-256 address of this key: domain-separated and
    /// length-prefixed, so no two distinct keys can collide by
    /// concatenation tricks (`("ab","c")` vs `("a","bc")`).
    pub fn digest(&self) -> String {
        let mut h = Sha256::new();
        h.update(b"domino-shard-key-v1\0");
        for field in [&self.experiment, &self.fingerprint, &self.scale, &self.params] {
            h.update(&(field.len() as u64).to_le_bytes());
            h.update(field.as_bytes());
        }
        h.update(&self.seed.to_le_bytes());
        h.update(&self.shard.to_le_bytes());
        domino_testkit::digest::to_hex(&h.finalize())
    }
}

/// One index row: what is stored where, plus human-auditable identity.
#[derive(Clone, Debug, PartialEq, Eq)]
struct IndexEntry {
    payload_digest: String,
    len: u64,
    experiment: String,
    scale: String,
    seed: u64,
    shard: u32,
}

/// Monotonic cache traffic counters for one store session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Reads served from a digest-verified object.
    pub hits: u64,
    /// Reads that found no (valid) entry.
    pub misses: u64,
    /// Objects written.
    pub stores: u64,
    /// Entries removed because their bytes failed verification.
    pub evictions: u64,
}

impl StoreStats {
    /// Surface the counters through the deterministic obs metrics
    /// registry (`campaign.cache.*`).
    pub fn publish(&self, reg: &mut MetricsRegistry) {
        reg.counter_add("campaign.cache.hits", self.hits);
        reg.counter_add("campaign.cache.misses", self.misses);
        reg.counter_add("campaign.cache.stores", self.stores);
        reg.counter_add("campaign.cache.evictions", self.evictions);
    }
}

/// The content-addressed shard store.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    index: BTreeMap<String, IndexEntry>,
    stats: StoreStats,
    dirty: bool,
}

impl Store {
    /// Open (creating if needed) a store rooted at `root`. A missing or
    /// malformed index starts empty — the objects are still on disk and a
    /// future index rewrite re-homes nothing, so the worst case of index
    /// loss is recomputation, never a wrong result.
    pub fn open(root: &Path) -> Result<Store, String> {
        std::fs::create_dir_all(root.join("objects"))
            .map_err(|e| format!("cache: cannot create {}: {e}", root.display()))?;
        let mut index = BTreeMap::new();
        if let Ok(text) = std::fs::read_to_string(root.join("index.txt")) {
            let mut lines = text.lines();
            if lines.next() == Some(INDEX_MAGIC) {
                for line in lines {
                    if let Some((key, entry)) = parse_index_line(line) {
                        index.insert(key, entry);
                    }
                }
            }
        }
        Ok(Store { root: root.to_path_buf(), index, stats: StoreStats::default(), dirty: false })
    }

    /// Number of indexed entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// True when no entries are indexed.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Session counters so far.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    fn object_path(&self, key_digest: &str) -> PathBuf {
        let shard_dir = key_digest.get(..2).unwrap_or("xx");
        self.root.join("objects").join(shard_dir).join(format!("{key_digest}.bin"))
    }

    /// Fetch the payload for `key`, verifying its digest. Any
    /// inconsistency — missing object, bad magic, mismatched or
    /// truncated bytes — evicts the entry and returns `None` (a miss):
    /// corruption is always recomputed, never served.
    pub fn get(&mut self, key: &CacheKey) -> Option<Vec<u8>> {
        let key_digest = key.digest();
        let Some(expected) = self.index.get(&key_digest).map(|e| (e.payload_digest.clone(), e.len))
        else {
            self.stats.misses += 1;
            return None;
        };
        match read_object(&self.object_path(&key_digest)) {
            Some((payload_digest, payload))
                if payload_digest == expected.0
                    && payload.len() as u64 == expected.1
                    && sha256_hex(&payload) == payload_digest =>
            {
                self.stats.hits += 1;
                Some(payload)
            }
            _ => {
                self.evict(&key_digest);
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Store `payload` under `key` (atomic write: temp file + rename).
    pub fn put(&mut self, key: &CacheKey, payload: &[u8]) -> Result<(), String> {
        let key_digest = key.digest();
        let payload_digest = sha256_hex(payload);
        let path = self.object_path(&key_digest);
        if let Some(dir) = path.parent() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cache: cannot create {}: {e}", dir.display()))?;
        }
        let tmp = path.with_extension("tmp");
        let write = |tmp: &Path| -> std::io::Result<()> {
            let mut f = std::fs::File::create(tmp)?;
            f.write_all(OBJECT_MAGIC.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload_digest.as_bytes())?;
            f.write_all(b"\n")?;
            f.write_all(payload)?;
            f.flush()
        };
        write(&tmp).map_err(|e| format!("cache: cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("cache: cannot commit {}: {e}", path.display()))?;
        self.index.insert(
            key_digest,
            IndexEntry {
                payload_digest,
                len: payload.len() as u64,
                experiment: key.experiment.clone(),
                scale: key.scale.clone(),
                seed: key.seed,
                shard: key.shard,
            },
        );
        self.stats.stores += 1;
        self.dirty = true;
        Ok(())
    }

    /// Drop one entry (index row + object file) and count the eviction.
    fn evict(&mut self, key_digest: &str) {
        if self.index.remove(key_digest).is_some() {
            self.stats.evictions += 1;
            self.dirty = true;
        }
        let _ = std::fs::remove_file(self.object_path(key_digest));
    }

    /// Persist the index (atomic rewrite, sorted rows — byte-stable for
    /// identical contents). A no-op when nothing changed.
    pub fn flush(&mut self) -> Result<(), String> {
        if !self.dirty {
            return Ok(());
        }
        let mut text = String::from(INDEX_MAGIC);
        text.push('\n');
        for (key_digest, e) in &self.index {
            text.push_str(&format!(
                "{key_digest} {} {} {} {} {} {}\n",
                e.payload_digest, e.len, e.experiment, e.scale, e.seed, e.shard
            ));
        }
        let tmp = self.root.join("index.txt.tmp");
        std::fs::write(&tmp, text)
            .map_err(|e| format!("cache: cannot write {}: {e}", tmp.display()))?;
        std::fs::rename(&tmp, self.root.join("index.txt"))
            .map_err(|e| format!("cache: cannot commit index: {e}"))?;
        self.dirty = false;
        Ok(())
    }

    /// Human-auditable listing: `experiment scale seed shard len digest…`
    /// rows in index order.
    pub fn render_listing(&self) -> String {
        let mut out = String::new();
        for (key_digest, e) in &self.index {
            let short = key_digest.get(..12).unwrap_or(key_digest);
            out.push_str(&format!(
                "{} {} seed={} shard={} {}B {short}\n",
                e.experiment, e.scale, e.seed, e.shard, e.len
            ));
        }
        out
    }
}

/// Read one object file: `(payload_digest, payload)` or `None` on any
/// structural problem.
fn read_object(path: &Path) -> Option<(String, Vec<u8>)> {
    let bytes = std::fs::read(path).ok()?;
    let rest = bytes.strip_prefix(OBJECT_MAGIC.as_bytes())?.strip_prefix(b"\n")?;
    let digest = rest.get(..64)?;
    let payload = rest.get(64..)?.strip_prefix(b"\n")?;
    Some((String::from_utf8(digest.to_vec()).ok()?, payload.to_vec()))
}

/// Parse one index row back into `(key_digest, entry)`.
fn parse_index_line(line: &str) -> Option<(String, IndexEntry)> {
    let mut it = line.split_ascii_whitespace();
    let key_digest = it.next()?;
    let payload_digest = it.next()?;
    let len = it.next()?.parse().ok()?;
    let experiment = it.next()?;
    let scale = it.next()?;
    let seed = it.next()?.parse().ok()?;
    let shard = it.next()?.parse().ok()?;
    if key_digest.len() != 64 || payload_digest.len() != 64 || it.next().is_some() {
        return None;
    }
    Some((
        key_digest.to_string(),
        IndexEntry {
            payload_digest: payload_digest.to_string(),
            len,
            experiment: experiment.to_string(),
            scale: scale.to_string(),
            seed,
            shard,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let dir = std::env::temp_dir()
            .join(format!("domino-campaign-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Store::open(&dir).unwrap();
        (dir, store)
    }

    fn key(shard: u32) -> CacheKey {
        CacheKey {
            experiment: "fig06_guard_sweep".into(),
            fingerprint: "f".repeat(64),
            scale: "quick".into(),
            seed: 1,
            shard,
            params: String::new(),
        }
    }

    #[test]
    fn roundtrip_and_counters() {
        let (dir, mut s) = tmp_store("roundtrip");
        assert_eq!(s.get(&key(0)), None);
        s.put(&key(0), b"payload-bytes").unwrap();
        assert_eq!(s.get(&key(0)).as_deref(), Some(&b"payload-bytes"[..]));
        assert_eq!(s.get(&key(1)), None);
        let st = s.stats();
        assert_eq!((st.hits, st.misses, st.stores, st.evictions), (1, 2, 1, 0));
        let mut reg = MetricsRegistry::new();
        st.publish(&mut reg);
        assert_eq!(reg.counter("campaign.cache.hits"), 1);
        assert_eq!(reg.counter("campaign.cache.misses"), 2);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn index_persists_across_open() {
        let (dir, mut s) = tmp_store("persist");
        s.put(&key(0), b"alpha").unwrap();
        s.put(&key(1), b"beta").unwrap();
        s.flush().unwrap();
        drop(s);
        let mut s2 = Store::open(&dir).unwrap();
        assert_eq!(s2.len(), 2);
        assert_eq!(s2.get(&key(1)).as_deref(), Some(&b"beta"[..]));
        assert!(s2.render_listing().contains("fig06_guard_sweep quick seed=1 shard=0"));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn corrupted_object_is_evicted_not_served() {
        let (dir, mut s) = tmp_store("corrupt");
        s.put(&key(0), b"important-bytes").unwrap();
        // Flip one payload byte on disk.
        let obj = s.object_path(&key(0).digest());
        let mut bytes = std::fs::read(&obj).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&obj, bytes).unwrap();
        assert_eq!(s.get(&key(0)), None, "corrupt payload must miss");
        assert_eq!(s.stats().evictions, 1);
        assert!(!obj.exists(), "evicted object is deleted");
        // And the slot is reusable.
        s.put(&key(0), b"important-bytes").unwrap();
        assert_eq!(s.get(&key(0)).as_deref(), Some(&b"important-bytes"[..]));
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn truncated_object_is_evicted_not_served() {
        let (dir, mut s) = tmp_store("truncate");
        s.put(&key(0), &[7u8; 100]).unwrap();
        let obj = s.object_path(&key(0).digest());
        let bytes = std::fs::read(&obj).unwrap();
        std::fs::write(&obj, &bytes[..bytes.len() - 40]).unwrap();
        assert_eq!(s.get(&key(0)), None);
        assert_eq!(s.stats().evictions, 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn missing_object_with_index_entry_misses() {
        let (dir, mut s) = tmp_store("missing");
        s.put(&key(0), b"x").unwrap();
        std::fs::remove_file(s.object_path(&key(0).digest())).unwrap();
        assert_eq!(s.get(&key(0)), None);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn malformed_index_lines_are_skipped() {
        let (dir, mut s) = tmp_store("badindex");
        s.put(&key(0), b"x").unwrap();
        s.flush().unwrap();
        let idx = dir.join("index.txt");
        let mut text = std::fs::read_to_string(&idx).unwrap();
        text.push_str("not a valid line\nshort deadbeef 1 e s 1 0\n");
        std::fs::write(&idx, text).unwrap();
        drop(s);
        let s2 = Store::open(&dir).unwrap();
        assert_eq!(s2.len(), 1);
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn key_digest_is_stable_and_field_sensitive() {
        let base = key(3);
        let d = base.digest();
        assert_eq!(d.len(), 64);
        assert_eq!(d, key(3).digest());
        let mut k = base.clone();
        k.experiment = "fig09_signature_detection".into();
        assert_ne!(k.digest(), d);
        let mut k = base.clone();
        k.fingerprint = "0".repeat(64);
        assert_ne!(k.digest(), d);
        let mut k = base.clone();
        k.scale = "full".into();
        assert_ne!(k.digest(), d);
        let mut k = base.clone();
        k.seed = 2;
        assert_ne!(k.digest(), d);
        let mut k = base.clone();
        k.shard = 4;
        assert_ne!(k.digest(), d);
        let mut k = base.clone();
        k.params = "x=1".into();
        assert_ne!(k.digest(), d);
        // Length-prefixing: shifting bytes between fields changes the key.
        let mut a = base.clone();
        a.experiment = "ab".into();
        a.scale = "c".into();
        let mut b = base.clone();
        b.experiment = "a".into();
        b.scale = "bc".into();
        assert_ne!(a.digest(), b.digest());
    }
}
