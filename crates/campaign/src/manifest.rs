//! The declarative campaign manifest: a hand-rolled, line-based grammar
//! for parameter grids.
//!
//! A campaign file names a set of experiments and the scales and seeds to
//! sweep them over; the grid expands into a deterministic, duplicate-free
//! cell list. The grammar is deliberately tiny (no external parser
//! dependencies, trivially diffable in a PR):
//!
//! ```text
//! # comment                    blank lines and #-comments are skipped
//! campaign nightly             display name (single token)
//! experiments fig05 table1     appends to the experiment list
//! scales quick full            appends scales (quick | full)
//! seeds 1 2 5..8               appends seeds; a..b is inclusive
//! ```
//!
//! Repeated directives append, so long grids can be split across lines.
//! Defaults when a directive is absent: `scales quick`, `seeds 1`. The
//! expansion order is experiment-major, then scale, then seed — the same
//! order every time, which is what makes the resume ledger and the merged
//! report deterministic.
//!
//! Experiment names are *not* validated here — the registry lives in
//! `domino-runner`, which sits above this crate; `runner::sweep` rejects
//! unknown names against the registry before any cell runs.

/// One point of the expanded grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cell {
    /// Experiment name, e.g. `fig05_rop_samples`.
    pub experiment: String,
    /// Scale name: `quick` or `full`.
    pub scale: String,
    /// PRNG seed for the run.
    pub seed: u64,
}

impl Cell {
    /// Stable identifier used in ledger lines, cell file names, and the
    /// merged report: `<experiment>.<scale>.s<seed>`.
    pub fn id(&self) -> String {
        format!("{}.{}.s{}", self.experiment, self.scale, self.seed)
    }
}

/// A parsed campaign manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spec {
    /// Display name from the `campaign` directive.
    pub name: String,
    /// Experiments, in declaration order, de-duplicated.
    pub experiments: Vec<String>,
    /// Scales, in declaration order, de-duplicated.
    pub scales: Vec<String>,
    /// Seeds, in declaration order, de-duplicated.
    pub seeds: Vec<u64>,
}

impl Spec {
    /// Expand the grid: experiment-major, then scale, then seed.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::with_capacity(self.experiments.len() * self.scales.len() * self.seeds.len());
        for experiment in &self.experiments {
            for scale in &self.scales {
                for &seed in &self.seeds {
                    out.push(Cell {
                        experiment: experiment.clone(),
                        scale: scale.clone(),
                        seed,
                    });
                }
            }
        }
        out
    }
}

/// Push `item` unless already present (grids stay duplicate-free while
/// preserving declaration order).
fn push_unique<T: PartialEq>(list: &mut Vec<T>, item: T) {
    if !list.contains(&item) {
        list.push(item);
    }
}

/// Parse one `seeds` token: either a single integer or an inclusive
/// `a..b` range.
fn parse_seed_token(tok: &str, line_no: usize) -> Result<Vec<u64>, String> {
    if let Some((lo, hi)) = tok.split_once("..") {
        let lo: u64 = lo
            .parse()
            .map_err(|_| format!("manifest line {line_no}: bad seed range `{tok}`"))?;
        let hi: u64 = hi
            .parse()
            .map_err(|_| format!("manifest line {line_no}: bad seed range `{tok}`"))?;
        if lo > hi {
            return Err(format!("manifest line {line_no}: empty seed range `{tok}`"));
        }
        if hi - lo >= 10_000 {
            return Err(format!("manifest line {line_no}: seed range `{tok}` too large"));
        }
        Ok((lo..=hi).collect())
    } else {
        let seed: u64 = tok
            .parse()
            .map_err(|_| format!("manifest line {line_no}: bad seed `{tok}`"))?;
        Ok(vec![seed])
    }
}

/// Parse a campaign manifest from its text.
pub fn parse(text: &str) -> Result<Spec, String> {
    let mut name = None;
    let mut experiments = Vec::new();
    let mut scales = Vec::new();
    let mut seeds = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_ascii_whitespace();
        let directive = toks.next().unwrap_or("");
        let args: Vec<&str> = toks.collect();
        match directive {
            "campaign" => match args.as_slice() {
                [n] => {
                    if name.replace(n.to_string()).is_some() {
                        return Err(format!(
                            "manifest line {line_no}: duplicate `campaign` directive"
                        ));
                    }
                }
                _ => {
                    return Err(format!(
                        "manifest line {line_no}: `campaign` takes exactly one name"
                    ))
                }
            },
            "experiments" => {
                if args.is_empty() {
                    return Err(format!("manifest line {line_no}: `experiments` needs names"));
                }
                for a in args {
                    push_unique(&mut experiments, a.to_string());
                }
            }
            "scales" => {
                if args.is_empty() {
                    return Err(format!("manifest line {line_no}: `scales` needs values"));
                }
                for a in args {
                    if a != "quick" && a != "full" {
                        return Err(format!(
                            "manifest line {line_no}: unknown scale `{a}` (quick|full)"
                        ));
                    }
                    push_unique(&mut scales, a.to_string());
                }
            }
            "seeds" => {
                if args.is_empty() {
                    return Err(format!("manifest line {line_no}: `seeds` needs values"));
                }
                for a in args {
                    for s in parse_seed_token(a, line_no)? {
                        push_unique(&mut seeds, s);
                    }
                }
            }
            other => {
                return Err(format!("manifest line {line_no}: unknown directive `{other}`"));
            }
        }
    }
    let name = name.ok_or_else(|| "manifest: missing `campaign <name>` directive".to_string())?;
    if experiments.is_empty() {
        return Err("manifest: no `experiments` declared".to_string());
    }
    if scales.is_empty() {
        scales.push("quick".to_string());
    }
    if seeds.is_empty() {
        seeds.push(1);
    }
    Ok(Spec { name, experiments, scales, seeds })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar_and_expands_in_order() {
        let spec = parse(
            "# nightly sweep\n\
             campaign nightly\n\
             experiments fig05_rop_samples table1_params\n\
             experiments fig05_rop_samples   # duplicate is dropped\n\
             scales quick full\n\
             seeds 1 2 5..7\n",
        )
        .unwrap();
        assert_eq!(spec.name, "nightly");
        assert_eq!(spec.experiments, ["fig05_rop_samples", "table1_params"]);
        assert_eq!(spec.scales, ["quick", "full"]);
        assert_eq!(spec.seeds, [1, 2, 5, 6, 7]);
        let cells = spec.cells();
        assert_eq!(cells.len(), 2 * 2 * 5);
        assert_eq!(cells[0].id(), "fig05_rop_samples.quick.s1");
        assert_eq!(cells.last().unwrap().id(), "table1_params.full.s7");
        // Experiment-major: all fig05 cells precede all table1 cells.
        let split = cells.iter().position(|c| c.experiment == "table1_params").unwrap();
        assert!(cells.iter().take(split).all(|c| c.experiment == "fig05_rop_samples"));
    }

    #[test]
    fn defaults_apply_when_directives_absent() {
        let spec = parse("campaign tiny\nexperiments fig14_control_cost\n").unwrap();
        assert_eq!(spec.scales, ["quick"]);
        assert_eq!(spec.seeds, [1]);
        assert_eq!(spec.cells().len(), 1);
    }

    #[test]
    fn rejects_malformed_manifests() {
        assert!(parse("experiments x\n").is_err(), "missing campaign name");
        assert!(parse("campaign a\ncampaign b\nexperiments x\n").is_err(), "dup name");
        assert!(parse("campaign a\n").is_err(), "no experiments");
        assert!(parse("campaign a\nexperiments x\nscales huge\n").is_err(), "bad scale");
        assert!(parse("campaign a\nexperiments x\nseeds 9..2\n").is_err(), "empty range");
        assert!(parse("campaign a\nexperiments x\nseeds zero\n").is_err(), "bad seed");
        assert!(parse("campaign a\nexperiments x\nfrobnicate y\n").is_err(), "unknown directive");
        assert!(parse("campaign a b\nexperiments x\n").is_err(), "campaign arity");
        assert!(parse("campaign a\nexperiments x\nseeds 0..100000\n").is_err(), "huge range");
    }

    #[test]
    fn comments_and_blanks_are_ignored_everywhere() {
        let a = parse("campaign c\nexperiments x y\nseeds 3\n").unwrap();
        let b = parse("\n# head\ncampaign c # trail\n\nexperiments x y#tight\nseeds 3\n# tail\n")
            .unwrap();
        assert_eq!(a, b);
    }
}
