//! The per-crate source manifest and the cache's code fingerprint.
//!
//! A cached shard result is only valid while the code that produced it is
//! unchanged. Rather than trusting build timestamps, every workspace
//! crate is hashed over its `Cargo.toml` plus every `src/**.rs` file
//! (sorted, path + length + content — so renames and moves invalidate
//! too), and the crates that can reach shard computation fold into one
//! **fingerprint** that is part of every [`CacheKey`]
//! (`crate::store::CacheKey`).
//!
//! The rendered manifest is committed as `results/source_manifest.txt`
//! and `scripts/ci.sh` byte-diffs it against a fresh scan
//! (`domino-run fingerprint`), so the committed file doubles as a
//! human-readable record of *which crate's change* invalidated a cache.
//! The runtime always fingerprints the live tree, never the committed
//! file — a stale manifest can therefore never serve a stale result.

use domino_testkit::digest::{to_hex, Sha256};
use std::path::{Path, PathBuf};

/// Header line of the rendered manifest.
const MANIFEST_MAGIC: &str = "# domino source manifest v1";

/// Crates whose code can reach shard computation and therefore fold into
/// the cache fingerprint. Excluded by design: `bench` (thin CLI wrappers
/// over the runner), `lint` (never linked into the runner), and
/// `campaign` itself (it moves shard bytes verbatim; the round-trip
/// property tests in `crates/runner/tests` pin that it cannot alter
/// them).
pub const KEY_CRATES: &[&str] = &[
    "core", "faults", "mac", "medium", "obs", "phy", "runner", "scheduler", "sim", "stats",
    "testkit", "topology", "traffic", "wired",
];

/// One crate's row in the source manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CrateEntry {
    /// Directory name under `crates/`.
    pub name: String,
    /// Hex SHA-256 over the crate's manifest and sources.
    pub digest: String,
    /// Number of files hashed.
    pub files: u64,
    /// Total bytes hashed.
    pub bytes: u64,
}

/// Recursively collect `.rs` files under `dir`, root-relative with `/`
/// separators, sorted.
fn rust_files(dir: &Path) -> Result<Vec<(String, PathBuf)>, String> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = std::fs::read_dir(&d)
            .map_err(|e| format!("fingerprint: cannot read {}: {e}", d.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("fingerprint: {e}"))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|x| x == "rs") {
                let rel = path
                    .strip_prefix(dir)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                out.push((rel, path));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Hash one crate directory (its `Cargo.toml` + `src/**.rs`).
fn scan_crate(name: &str, crate_dir: &Path) -> Result<CrateEntry, String> {
    let mut h = Sha256::new();
    h.update(b"domino-crate-v1\0");
    let mut files = 0u64;
    let mut bytes = 0u64;
    let mut absorb = |rel: &str, path: &Path| -> Result<(), String> {
        let content = std::fs::read(path)
            .map_err(|e| format!("fingerprint: cannot read {}: {e}", path.display()))?;
        h.update(&(rel.len() as u64).to_le_bytes());
        h.update(rel.as_bytes());
        h.update(&(content.len() as u64).to_le_bytes());
        h.update(&content);
        files += 1;
        bytes += content.len() as u64;
        Ok(())
    };
    let cargo = crate_dir.join("Cargo.toml");
    if cargo.is_file() {
        absorb("Cargo.toml", &cargo)?;
    }
    let src = crate_dir.join("src");
    if src.is_dir() {
        for (rel, path) in rust_files(&src)? {
            absorb(&format!("src/{rel}"), &path)?;
        }
    }
    // Integration tests ship golden pins and replay seeds; include them so
    // a changed expectation is visible in the manifest (the fingerprint
    // subset still decides what invalidates the cache).
    let tests = crate_dir.join("tests");
    if tests.is_dir() {
        for (rel, path) in rust_files(&tests)? {
            absorb(&format!("tests/{rel}"), &path)?;
        }
    }
    Ok(CrateEntry { name: name.to_string(), digest: to_hex(&h.finalize()), files, bytes })
}

/// Scan every crate directory under `crates_root`, sorted by name.
pub fn scan(crates_root: &Path) -> Result<Vec<CrateEntry>, String> {
    let mut names = Vec::new();
    let entries = std::fs::read_dir(crates_root)
        .map_err(|e| format!("fingerprint: cannot read {}: {e}", crates_root.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("fingerprint: {e}"))?;
        if entry.path().is_dir() {
            names.push(entry.file_name().to_string_lossy().into_owned());
        }
    }
    names.sort();
    let mut out = Vec::with_capacity(names.len());
    for name in names {
        out.push(scan_crate(&name, &crates_root.join(&name))?);
    }
    Ok(out)
}

/// Render entries as the committed manifest text.
pub fn render(entries: &[CrateEntry]) -> String {
    let mut out = String::from(MANIFEST_MAGIC);
    out.push('\n');
    for e in entries {
        out.push_str(&format!("{} {} {} {}\n", e.name, e.digest, e.files, e.bytes));
    }
    out
}

/// Parse a rendered manifest back into entries.
pub fn parse(text: &str) -> Result<Vec<CrateEntry>, String> {
    let mut lines = text.lines();
    if lines.next() != Some(MANIFEST_MAGIC) {
        return Err("fingerprint: not a source manifest (bad header)".to_string());
    }
    let mut out = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_ascii_whitespace();
        let (name, digest, files, bytes) = (it.next(), it.next(), it.next(), it.next());
        match (name, digest, files, bytes) {
            (Some(n), Some(d), Some(f), Some(b)) if d.len() == 64 && it.next().is_none() => {
                let files = f.parse().map_err(|_| format!("fingerprint: bad line: {line}"))?;
                let bytes = b.parse().map_err(|_| format!("fingerprint: bad line: {line}"))?;
                out.push(CrateEntry {
                    name: n.to_string(),
                    digest: d.to_string(),
                    files,
                    bytes,
                });
            }
            _ => return Err(format!("fingerprint: bad line: {line}")),
        }
    }
    Ok(out)
}

/// Fold the [`KEY_CRATES`] subset of `entries` into the single hex
/// fingerprint that enters every cache key. Errors if a key crate is
/// missing from the scan — caching with a partial fingerprint could serve
/// stale results.
pub fn fingerprint(entries: &[CrateEntry]) -> Result<String, String> {
    let mut h = Sha256::new();
    h.update(b"domino-fingerprint-v1\0");
    for name in KEY_CRATES {
        let Some(e) = entries.iter().find(|e| e.name == *name) else {
            return Err(format!("fingerprint: key crate `{name}` missing from source scan"));
        };
        h.update(&(e.name.len() as u64).to_le_bytes());
        h.update(e.name.as_bytes());
        h.update(e.digest.as_bytes());
    }
    Ok(to_hex(&h.finalize()))
}

/// Locate the workspace `crates/` directory: the current directory's
/// `crates/` when present, else the tree this library was built from.
pub fn workspace_crates_root() -> Option<PathBuf> {
    let cwd = PathBuf::from("crates");
    if cwd.is_dir() {
        return Some(cwd);
    }
    let built = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("..");
    if built.is_dir() {
        return Some(built);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_tree(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("domino-fp-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        for (path, content) in [
            ("alpha/Cargo.toml", "[package]\nname = \"alpha\"\n"),
            ("alpha/src/lib.rs", "pub fn a() {}\n"),
            ("alpha/src/sub/deep.rs", "pub fn d() {}\n"),
            ("beta/Cargo.toml", "[package]\nname = \"beta\"\n"),
            ("beta/src/lib.rs", "pub fn b() {}\n"),
        ] {
            let p = root.join(path);
            std::fs::create_dir_all(p.parent().unwrap()).unwrap();
            std::fs::write(p, content).unwrap();
        }
        root
    }

    #[test]
    fn scan_is_sorted_and_content_sensitive() {
        let root = fixture_tree("scan");
        let a = scan(&root).unwrap();
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].name, "alpha");
        assert_eq!(a[0].files, 3);
        assert_eq!(a[1].name, "beta");
        let before = a[0].digest.clone();
        std::fs::write(root.join("alpha/src/lib.rs"), "pub fn a() { /* changed */ }\n").unwrap();
        let b = scan(&root).unwrap();
        assert_ne!(b[0].digest, before, "content change must move the digest");
        assert_eq!(b[1].digest, a[1].digest, "unrelated crate unchanged");
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn rename_moves_the_digest() {
        let root = fixture_tree("rename");
        let before = scan(&root).unwrap();
        std::fs::rename(root.join("alpha/src/sub/deep.rs"), root.join("alpha/src/sub/deeper.rs"))
            .unwrap();
        let after = scan(&root).unwrap();
        assert_ne!(before[0].digest, after[0].digest);
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn render_parse_roundtrip() {
        let root = fixture_tree("render");
        let entries = scan(&root).unwrap();
        let text = render(&entries);
        assert!(text.starts_with(MANIFEST_MAGIC));
        assert_eq!(parse(&text).unwrap(), entries);
        assert!(parse("bogus\n").is_err());
        assert!(parse(&format!("{MANIFEST_MAGIC}\nname short 1 2\n")).is_err());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn fingerprint_needs_every_key_crate() {
        // The real workspace scan must contain all KEY_CRATES; a fixture
        // tree does not, and that must be a hard error.
        let root = fixture_tree("fp");
        let entries = scan(&root).unwrap();
        assert!(fingerprint(&entries).is_err());
        let _ = std::fs::remove_dir_all(root);
    }

    #[test]
    fn real_workspace_fingerprint_is_stable() {
        let Some(root) = workspace_crates_root() else {
            return;
        };
        let a = scan(&root).unwrap();
        let b = scan(&root).unwrap();
        assert_eq!(a, b);
        assert_eq!(fingerprint(&a).unwrap(), fingerprint(&b).unwrap());
        assert_eq!(fingerprint(&a).unwrap().len(), 64);
    }
}
