//! The merged campaign report.
//!
//! One text artifact summarising an entire campaign: a per-cell digest
//! table (so any two campaign runs can be compared with `diff`) followed
//! by per-experiment rollups — nearest-rank quantiles over the cells'
//! output sizes and run-digest counters, and summed fault-class totals.
//!
//! The report is deliberately a **pure function of the grid and the
//! cells' outputs**: it contains no wall-clock times, no cache hit/miss
//! counts, and no machine identifiers. That is what makes the headline
//! guarantees checkable with `diff` — a warm-cache rerun and an
//! interrupted-then-resumed campaign must both reproduce the cold run's
//! report byte-for-byte.

/// Everything the report needs to know about one completed cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CellResult {
    /// Cell id, `<experiment>.<scale>.s<seed>`.
    pub cell: String,
    /// Experiment name (rollup grouping key).
    pub experiment: String,
    /// Hex SHA-256 of the cell's rendered output text.
    pub digest: String,
    /// Size of the rendered output in bytes.
    pub bytes: u64,
    /// Livelock count from the run digest.
    pub livelocks: u64,
    /// Watchdog-storm count from the run digest.
    pub watchdog_storms: u64,
    /// Fault-class counters from the run digest.
    pub fault_classes: Vec<(String, u64)>,
}

/// Nearest-rank quantile over an unsorted sample (q in [0, 1]).
fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    let idx = rank.max(1).saturating_sub(1).min(sorted.len().saturating_sub(1));
    sorted.get(idx).copied().unwrap_or(0)
}

fn quantile_row(label: &str, samples: &mut [u64]) -> String {
    samples.sort_unstable();
    let q = |p: f64| quantile(samples, p);
    format!(
        "{label} min={} p25={} p50={} p75={} p90={} max={}\n",
        q(0.0),
        q(0.25),
        q(0.50),
        q(0.75),
        q(0.90),
        q(1.0),
    )
}

/// Render the merged report. `cells` must already be in grid order —
/// the sweep driver passes the expansion order of the manifest, so the
/// report is identical regardless of which cells came from the cache,
/// the ledger, or fresh execution.
pub fn render(campaign: &str, fingerprint: &str, cells: &[CellResult]) -> String {
    let mut out = String::from("# domino campaign report v1\n");
    out.push_str(&format!("campaign {campaign}\n"));
    out.push_str(&format!("fingerprint {fingerprint}\n"));
    out.push_str(&format!("cells {}\n\n## cells\n", cells.len()));
    for c in cells {
        out.push_str(&format!(
            "{} {} {} livelocks={} storms={}",
            c.cell, c.digest, c.bytes, c.livelocks, c.watchdog_storms
        ));
        for (class, n) in &c.fault_classes {
            if *n > 0 {
                out.push_str(&format!(" {class}={n}"));
            }
        }
        out.push('\n');
    }

    // Rollups group by experiment, in first-appearance (grid) order.
    let mut order: Vec<&str> = Vec::new();
    for c in cells {
        if !order.contains(&c.experiment.as_str()) {
            order.push(&c.experiment);
        }
    }
    for exp in order {
        let group: Vec<&CellResult> = cells.iter().filter(|c| c.experiment == exp).collect();
        out.push_str(&format!("\n## rollup {exp}\ncells {}\n", group.len()));
        let mut bytes: Vec<u64> = group.iter().map(|c| c.bytes).collect();
        let mut livelocks: Vec<u64> = group.iter().map(|c| c.livelocks).collect();
        let mut storms: Vec<u64> = group.iter().map(|c| c.watchdog_storms).collect();
        out.push_str(&quantile_row("bytes    ", &mut bytes));
        out.push_str(&quantile_row("livelocks", &mut livelocks));
        out.push_str(&quantile_row("storms   ", &mut storms));
        // Fault classes: summed per class, declaration order of the first
        // cell that reports each class.
        let mut classes: Vec<(String, u64)> = Vec::new();
        for c in &group {
            for (class, n) in &c.fault_classes {
                match classes.iter_mut().find(|(k, _)| k == class) {
                    Some((_, total)) => *total += n,
                    None => classes.push((class.clone(), *n)),
                }
            }
        }
        for (class, total) in classes.iter().filter(|(_, t)| *t > 0) {
            out.push_str(&format!("fault {class} total={total}\n"));
        }
        let distinct = group.iter().map(|c| c.digest.as_str()).collect::<std::collections::BTreeSet<_>>();
        out.push_str(&format!("distinct_outputs {}\n", distinct.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell(exp: &str, seed: u64, bytes: u64, livelocks: u64) -> CellResult {
        CellResult {
            cell: format!("{exp}.quick.s{seed}"),
            experiment: exp.to_string(),
            digest: format!("{seed:064x}"),
            bytes,
            livelocks,
            watchdog_storms: seed % 2,
            fault_classes: vec![("ap_crashes".to_string(), seed), ("quiet".to_string(), 0)],
        }
    }

    #[test]
    fn report_is_deterministic_and_grouped() {
        let cells = vec![cell("fig05", 1, 100, 0), cell("fig05", 2, 110, 3), cell("table1", 1, 50, 1)];
        let a = render("nightly", &"ab".repeat(32), &cells);
        let b = render("nightly", &"ab".repeat(32), &cells);
        assert_eq!(a, b);
        assert!(a.contains("cells 3"));
        assert!(a.contains("## rollup fig05\ncells 2"));
        assert!(a.contains("## rollup table1\ncells 1"));
        assert!(a.contains("fault ap_crashes total=3\n"), "summed per experiment:\n{a}");
        assert!(!a.contains("quiet"), "zero-total classes omitted");
        assert!(a.contains("distinct_outputs 2"));
    }

    #[test]
    fn quantiles_are_nearest_rank() {
        assert_eq!(quantile(&[], 0.5), 0);
        let v = [1, 2, 3, 4, 5, 6, 7, 8, 9, 10];
        assert_eq!(quantile(&v, 0.0), 1);
        assert_eq!(quantile(&v, 0.25), 3);
        assert_eq!(quantile(&v, 0.50), 5);
        assert_eq!(quantile(&v, 0.90), 9);
        assert_eq!(quantile(&v, 1.0), 10);
        assert_eq!(quantile(&[7], 0.5), 7);
    }

    #[test]
    fn no_wall_clock_fields_appear() {
        let text = render("c", &"00".repeat(32), &[cell("x", 1, 10, 0)]);
        for banned in ["ns", "elapsed", "hit", "miss"] {
            for line in text.lines() {
                for word in line.split_ascii_whitespace() {
                    assert_ne!(word, banned, "report leaked `{banned}`");
                }
            }
        }
    }
}
