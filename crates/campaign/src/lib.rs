//! # domino-campaign
//!
//! The content-addressed result cache and declarative campaign layer of
//! the DOMINO reproduction (ROADMAP item 4: the runner as an incremental
//! sweep engine).
//!
//! PR 3 proved that every experiment's output bytes are a **pure function
//! of (experiment, code, scale, seed)** — `domino-run --check` pins it in
//! CI. This crate exploits that purity the way a build system exploits
//! pure compilation: work is split at the shard boundary the runner
//! already has, every shard result is keyed by a digest of everything that
//! could change it, and a rerun re-executes only invalidated shards.
//!
//! Four pieces, all deterministic and all free of registry dependencies:
//!
//! * [`store`] — the on-disk shard cache (`.domino-cache/`): SHA-256
//!   content addressing via [`domino_testkit::digest`], an index file,
//!   digest-verified reads that *evict and miss* on any corruption, and
//!   hit/miss/store/evict counters surfaced through the
//!   [`domino_obs`](domino_obs::metrics::MetricsRegistry) metrics
//!   registry.
//! * [`fingerprint`] — the per-crate source manifest: each workspace
//!   crate hashed over its `Cargo.toml` + sorted `src/**.rs` files. The
//!   subset of crates that can reach shard computation folds into every
//!   cache key, so *any* code change invalidates exactly the cached
//!   results it could have produced. The rendered manifest is committed
//!   (`results/source_manifest.txt`) and re-pinned by `scripts/ci.sh`.
//! * [`manifest`] — the hand-rolled campaign grammar: a line-based file
//!   declaring parameter grids (`experiments` × `scales` × `seeds`) that
//!   expand into a deterministic cell list.
//! * [`ledger`] + [`report`] — resume and reporting: an append-only
//!   ledger records each completed cell with the digest of its output, so
//!   an interrupted campaign resumes to a byte-identical merged report;
//!   the report itself (per-cell digests plus per-experiment CDF rollups)
//!   contains no wall times and is a pure function of the grid.
//!
//! The execution half — probing the cache per shard of a
//! `runner::Plan`, running only the misses, and merging cached + fresh
//! results byte-identically — lives in `domino-runner::cache` and
//! `domino-runner::sweep`, because the experiment registry and the shard
//! pool live there; this crate deliberately sits *below* the runner in
//! the crate DAG so both the runner and its tests can layer on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fingerprint;
pub mod ledger;
pub mod manifest;
pub mod report;
pub mod store;
