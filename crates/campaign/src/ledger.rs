//! The append-only resume ledger.
//!
//! While a campaign runs, every completed cell is recorded as one line in
//! `<out>/ledger.txt` *after* its cell file is durably written. On
//! `--resume`, cells present in the ledger are skipped — provided the
//! cell file on disk still hashes to the digest the ledger recorded, so a
//! tampered or half-written cell file re-runs instead of poisoning the
//! merged report.
//!
//! Format (line-oriented, append-only):
//!
//! ```text
//! # domino campaign ledger v1
//! campaign <name> <fingerprint>
//! done <cell_id> <sha256 of cell text> <livelocks> <watchdog_storms> [<class>=<n>…]
//! ```
//!
//! The header binds the ledger to the code fingerprint that produced it:
//! resuming under different code would splice results from two different
//! programs into one report, so the sweep driver refuses it. Because
//! writes are append-only, only the *final* line can ever be torn by an
//! interruption; a malformed final line is therefore dropped silently,
//! while a malformed interior line is a hard error (the file is not a
//! ledger this code wrote).
//!
//! This module is pure text — parsing and rendering only. File IO stays
//! in `domino-runner::sweep`, which owns the campaign directory.

/// Header line of every ledger file.
pub const LEDGER_MAGIC: &str = "# domino campaign ledger v1";

/// One completed cell.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry {
    /// Cell identifier, `<experiment>.<scale>.s<seed>`.
    pub cell: String,
    /// Hex SHA-256 of the cell's rendered output text.
    pub digest: String,
    /// Livelock count from the run digest.
    pub livelocks: u64,
    /// Watchdog-storm count from the run digest.
    pub watchdog_storms: u64,
    /// Fault-class counters, in the order the run digest reported them.
    pub fault_classes: Vec<(String, u64)>,
}

/// A parsed ledger.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ledger {
    /// Campaign name from the binding line.
    pub name: String,
    /// Code fingerprint the recorded cells were produced under.
    pub fingerprint: String,
    /// Completed cells, in completion order.
    pub entries: Vec<Entry>,
}

impl Ledger {
    /// Look up a completed cell by id. The **last** matching entry wins:
    /// if a cell was re-run (e.g. its file failed digest verification on
    /// a previous resume), the newer append supersedes the old one.
    pub fn get(&self, cell_id: &str) -> Option<&Entry> {
        self.entries.iter().rev().find(|e| e.cell == cell_id)
    }
}

/// Render the two header lines that open a fresh ledger.
pub fn render_header(name: &str, fingerprint: &str) -> String {
    format!("{LEDGER_MAGIC}\ncampaign {name} {fingerprint}\n")
}

/// Render one `done` line (including the trailing newline).
pub fn render_entry(e: &Entry) -> String {
    let mut line = format!("done {} {} {} {}", e.cell, e.digest, e.livelocks, e.watchdog_storms);
    for (class, n) in &e.fault_classes {
        line.push_str(&format!(" {class}={n}"));
    }
    line.push('\n');
    line
}

fn parse_entry(line: &str) -> Option<Entry> {
    let mut toks = line.split_ascii_whitespace();
    if toks.next() != Some("done") {
        return None;
    }
    let cell = toks.next()?.to_string();
    let digest = toks.next()?.to_string();
    if digest.len() != 64 {
        return None;
    }
    let livelocks = toks.next()?.parse().ok()?;
    let watchdog_storms = toks.next()?.parse().ok()?;
    let mut fault_classes = Vec::new();
    for tok in toks {
        let (class, n) = tok.split_once('=')?;
        fault_classes.push((class.to_string(), n.parse().ok()?));
    }
    Some(Entry { cell, digest, livelocks, watchdog_storms, fault_classes })
}

/// Parse a ledger file's text. A malformed final line is treated as a
/// torn append and dropped; any other malformed line is an error.
pub fn parse(text: &str) -> Result<Ledger, String> {
    let lines: Vec<&str> = text.lines().collect();
    let mut it = lines.iter().enumerate();
    if it.next().map(|(_, l)| *l) != Some(LEDGER_MAGIC) {
        return Err("ledger: bad header (not a campaign ledger)".to_string());
    }
    let Some((_, binding)) = it.next() else {
        return Err("ledger: missing campaign binding line".to_string());
    };
    let mut btoks = binding.split_ascii_whitespace();
    let (name, fingerprint) = match (btoks.next(), btoks.next(), btoks.next(), btoks.next()) {
        (Some("campaign"), Some(n), Some(f), None) if f.len() == 64 => {
            (n.to_string(), f.to_string())
        }
        _ => return Err("ledger: bad campaign binding line".to_string()),
    };
    let last = lines.len() - 1;
    let mut entries = Vec::new();
    for (idx, line) in it {
        if line.trim().is_empty() {
            continue;
        }
        match parse_entry(line) {
            Some(e) => entries.push(e),
            None if idx == last => {
                // Torn final append: the cell was never acknowledged, so
                // dropping it just means that cell re-runs on resume.
            }
            None => return Err(format!("ledger: malformed line {}: {line}", idx + 1)),
        }
    }
    Ok(Ledger { name, fingerprint, entries })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> String {
        "ab".repeat(32)
    }

    fn entry(cell: &str) -> Entry {
        Entry {
            cell: cell.to_string(),
            digest: "cd".repeat(32),
            livelocks: 2,
            watchdog_storms: 1,
            fault_classes: vec![("ap_crashes".to_string(), 3), ("stale_reports".to_string(), 0)],
        }
    }

    #[test]
    fn roundtrip() {
        let mut text = render_header("nightly", &fp());
        text.push_str(&render_entry(&entry("fig05_rop_samples.quick.s1")));
        text.push_str(&render_entry(&Entry { fault_classes: vec![], ..entry("table1_params.quick.s2") }));
        let ledger = parse(&text).unwrap();
        assert_eq!(ledger.name, "nightly");
        assert_eq!(ledger.fingerprint, fp());
        assert_eq!(ledger.entries.len(), 2);
        assert_eq!(ledger.entries[0], entry("fig05_rop_samples.quick.s1"));
        assert!(ledger.get("table1_params.quick.s2").is_some());
        assert!(ledger.get("missing.quick.s1").is_none());
    }

    #[test]
    fn torn_final_line_is_dropped_but_interior_garbage_is_fatal() {
        let mut text = render_header("nightly", &fp());
        text.push_str(&render_entry(&entry("a.quick.s1")));
        let torn = format!("{text}done b.quick.s2 deadbeef"); // truncated mid-line
        let ledger = parse(&torn).unwrap();
        assert_eq!(ledger.entries.len(), 1, "torn tail dropped");

        let interior = format!("{text}garbage line\n{}", render_entry(&entry("c.quick.s3")));
        assert!(parse(&interior).is_err(), "interior garbage is fatal");
    }

    #[test]
    fn rejects_bad_headers() {
        assert!(parse("").is_err());
        assert!(parse("not a ledger\n").is_err());
        assert!(parse(LEDGER_MAGIC).is_err(), "missing binding");
        assert!(parse(&format!("{LEDGER_MAGIC}\ncampaign n short\n")).is_err());
        assert!(parse(&format!("{LEDGER_MAGIC}\nbound n {}\n", fp())).is_err());
    }
}
