//! Fig 2 — motivating 3-link scenario across schemes.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig02_motivation`; this binary only
//! parses flags and prints. Prefer `domino-run fig02_motivation`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig02_motivation", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
