//! Fig 2: per-link and overall throughput on the Fig 1 motivation
//! topology (AP1→C1, C2→AP2, AP3→C3 saturated) under all four schemes.
//!
//! Paper's claims: the omniscient scheme is 76 % above DCF and 61 % above
//! CENTAUR; DOMINO performs close to omniscient; DCF starves the hidden
//! link AP3→C3 and serializes the exposed uplink C2→AP2.

use domino_bench::{mbps, HarnessArgs};
use domino_core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino_stats::Table;
use domino_topology::NodeId;

fn main() {
    let args = HarnessArgs::parse();
    let net = scenarios::fig1();
    let l_ap1 = net
        .links()
        .iter()
        .find(|l| l.is_downlink() && l.sender == NodeId(0))
        .unwrap()
        .id;
    let l_c2 = net
        .links()
        .iter()
        .find(|l| !l.is_downlink() && l.ap == NodeId(2))
        .unwrap()
        .id;
    let l_ap3 = net
        .links()
        .iter()
        .find(|l| l.is_downlink() && l.sender == NodeId(4))
        .unwrap()
        .id;

    let builder = SimulationBuilder::new(net)
        .workload(Workload::udp_saturated(&[l_ap1, l_c2, l_ap3]))
        .duration_s(args.duration(5.0))
        .seed(args.seed);

    let mut table = Table::new(
        "Fig 2 — throughput on the Fig 1 network (Mb/s)",
        &["scheme", "AP1->C1", "C2->AP2", "AP3->C3", "overall"],
    );
    let mut overall = Vec::new();
    for scheme in [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient] {
        let r = builder.run(scheme);
        table.row(&[
            scheme.label().to_string(),
            mbps(r.link_mbps(l_ap1)),
            mbps(r.link_mbps(l_c2)),
            mbps(r.link_mbps(l_ap3)),
            mbps(r.aggregate_mbps()),
        ]);
        overall.push((scheme, r.aggregate_mbps()));
    }
    println!("{}", table.render());

    let get = |s: Scheme| overall.iter().find(|(x, _)| *x == s).unwrap().1;
    println!(
        "omniscient/DCF = {:.2} (paper: 1.76), omniscient/CENTAUR = {:.2} (paper: 1.61), DOMINO/omniscient = {:.2} (paper: ~close)",
        get(Scheme::Omniscient) / get(Scheme::Dcf),
        get(Scheme::Omniscient) / get(Scheme::Centaur),
        get(Scheme::Domino) / get(Scheme::Omniscient),
    );
}
