//! Fig 5: the received OFDM spectrum at the AP for two clients on
//! adjacent subchannels — (a) similar RSS, no guard; (b) 30 dB RSS gap,
//! no guard; (c) 30 dB gap with 3 guard subcarriers.
//!
//! Sample-level DSP: real encode → channel impairments → FFT → amplitude
//! per bin. The paper's observation: in (b) the first three subcarriers
//! of the weak subchannel are buried by the strong neighbour's leakage;
//! in (c) the guard bins absorb it.

use domino_bench::HarnessArgs;
use domino_phy::ofdm::{received_spectrum, SpectrumScenario};
use domino_stats::Table;

fn print_scenario(name: &str, scenario: SpectrumScenario, seed: u64) {
    let spec = received_spectrum(scenario, seed);
    let peak = spec.iter().map(|&(_, a)| a).fold(f64::MIN, f64::max);
    let mut t = Table::new(name, &["bin", "amplitude (dB rel. peak)", ""]);
    for (bin, amp) in &spec {
        let db = 20.0 * (amp / peak).max(1e-9).log10();
        let bars = ((db + 60.0).max(0.0) / 2.0) as usize;
        t.row(&[bin.to_string(), format!("{db:7.1}"), "#".repeat(bars)]);
    }
    println!("{}", t.render());
}

fn main() {
    let args = HarnessArgs::parse();
    print_scenario(
        "Fig 5a — adjacent subchannels, similar RSS, no guard (bits 111111 / 011111)",
        SpectrumScenario::SimilarRssNoGuard,
        args.seed,
    );
    print_scenario(
        "Fig 5b — adjacent subchannels, 30 dB RSS difference, no guard",
        SpectrumScenario::Unequal30DbNoGuard,
        args.seed + 1,
    );
    print_scenario(
        "Fig 5c — adjacent subchannels, 30 dB RSS difference, 3 guard subcarriers",
        SpectrumScenario::Unequal30DbWithGuard,
        args.seed + 2,
    );
}
