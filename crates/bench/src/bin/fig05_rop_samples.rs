//! Fig 5 — ROP sample spectra for three occupancy scenarios.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig05_rop_samples`; this binary only
//! parses flags and prints. Prefer `domino-run fig05_rop_samples`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig05_rop_samples", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
