//! Fig 6: correct-decoding ratio of the weaker of two adjacent ROP
//! clients vs their RSS difference (15–40 dB), for 0–4 guard subcarriers.
//!
//! Paper's claim: "a separation of three subcarriers is sufficient as
//! long as the RSS difference is no more than 38 dB".

use domino_bench::HarnessArgs;
use domino_phy::ofdm::guard_sweep;
use domino_stats::Table;

fn main() {
    let args = HarnessArgs::parse();
    let trials = args.trials(80, 1000);
    let guards = [0usize, 1, 2, 3, 4];
    let diffs: Vec<f64> = (0..=10).map(|i| 15.0 + 2.5 * i as f64).collect();
    let points = guard_sweep(&guards, &diffs, trials, args.seed);

    let header: Vec<String> = std::iter::once("RSS diff (dB)".to_string())
        .chain(guards.iter().map(|g| format!("{g} guards")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        "Fig 6 — weak-client correct-decode ratio (%) vs RSS difference",
        &header_refs,
    );
    for &d in &diffs {
        let mut row = vec![format!("{d:.1}")];
        for &g in &guards {
            let p = points
                .iter()
                .find(|p| p.guard == g && (p.rss_diff_db - d).abs() < 1e-9)
                .expect("sweep point");
            row.push(format!("{:.0}", p.decode_ratio * 100.0));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    // The paper's headline number: the tolerance of 3 guard subcarriers.
    let tol3 = points
        .iter()
        .filter(|p| p.guard == 3 && p.decode_ratio >= 0.95)
        .map(|p| p.rss_diff_db)
        .fold(0.0, f64::max);
    println!("3-guard tolerance (>=95% decode): {tol3:.1} dB (paper: 38 dB)");
}
