//! Fig 6 — ROP decoding error vs guard band width.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig06_guard_sweep`; this binary only
//! parses flags and prints. Prefer `domino-run fig06_guard_sweep`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig06_guard_sweep", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
