//! §5 "Light traffic load": packet delay of DOMINO vs DCF on T(6,5) with
//! 6 kB/s (48 kb/s) per-link traffic — far below saturation, where
//! DOMINO's control overhead costs delay instead of buying throughput.
//!
//! Paper's claim: "the delay of DOMINO is only 1.14× higher than the
//! delay of DCF, which is not extremely high."

use domino_bench::HarnessArgs;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_stats::Table;

fn main() {
    let args = HarnessArgs::parse();
    let net = scenarios::standard_t(6, 5, args.seed);
    let rate = 6.0 * 8.0 * 1000.0; // 6 kB/s per link
    let builder = SimulationBuilder::new(net)
        .udp(rate, rate)
        .duration_s(args.duration(5.0))
        .seed(args.seed);

    let domino = builder.run(Scheme::Domino);
    let dcf = builder.run(Scheme::Dcf);

    let mut t = Table::new(
        "§5 light traffic — T(6,5) at 6 kB/s per link",
        &["scheme", "throughput (Mb/s)", "mean delay (ms)", "drops"],
    );
    for r in [&domino, &dcf] {
        t.row(&[
            r.scheme.label().to_string(),
            format!("{:.3}", r.aggregate_mbps()),
            format!("{:.2}", r.mean_delay_us() / 1000.0),
            r.stats.drops.to_string(),
        ]);
    }
    println!("{}", t.render());
    println!(
        "DOMINO/DCF delay ratio: {:.2} (paper: 1.14)",
        domino.mean_delay_us() / dcf.mean_delay_us().max(1e-9)
    );
}
