//! Fig 10 — slot timeline and misalignment trace.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig10_timeline`; this binary only
//! parses flags and prints. Prefer `domino-run fig10_timeline`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig10_timeline", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
