//! Fig 11: maximum transmission misalignment at the start of the
//! contention-free period vs slot index, for wired latency jitter of
//! 20/40/60/80 µs on T(10,2).
//!
//! Paper's claim: the initial misalignment (10–20 µs depending on jitter)
//! is reduced to 1–2 µs within 4 slots, because each transmitter
//! re-anchors to the last correctly received trigger.

use domino_bench::HarnessArgs;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_mac::domino::DominoConfig;
use domino_stats::Table;
use domino_wired::WiredLatency;

fn main() {
    let args = HarnessArgs::parse();
    let net = scenarios::standard_t(10, 2, args.seed);
    let jitters = [20.0, 40.0, 60.0, 80.0];
    let slots = 8usize;

    let mut series: Vec<Vec<f64>> = Vec::new();
    for &std_us in &jitters {
        let cfg = DominoConfig { wired: WiredLatency::with_std(std_us), ..DominoConfig::default() };
        let report = SimulationBuilder::new(net.clone())
            .udp(10e6, 10e6)
            .duration_s(args.duration(0.5))
            .seed(args.seed)
            .domino_config(cfg)
            .run(Scheme::Domino);
        let mis = report.misalignment_by_slot();
        series.push((0..slots as u64)
            .map(|s| mis.iter().find(|&&(idx, _)| idx == s).map(|&(_, m)| m).unwrap_or(0.0))
            .collect());
    }

    let header: Vec<String> = std::iter::once("slot".to_string())
        .chain(jitters.iter().map(|j| format!("{j:.0} us jitter")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new("Fig 11 — max TX misalignment (µs) vs slot index", &header_refs);
    for s in 0..slots {
        let mut row = vec![s.to_string()];
        for col in &series {
            row.push(format!("{:.2}", col[s]));
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!("paper: initial 10–20 us, reduced to 1–2 us within 4 slots");
}
