//! Ablations of DOMINO's design choices (DESIGN.md §5): fake-link
//! insertion, the redundant second trigger (inbound cap), the outbound
//! cap, batch size × wired jitter, and signature length.
//!
//! Each row answers "what does this mechanism buy?" on the trace-driven
//! T(10,2) with the paper's default workload (10 Mb/s downlink, 4 Mb/s
//! uplink UDP).

use domino_bench::{mbps, HarnessArgs};
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_mac::domino::DominoConfig;
use domino_phy::signature::SIGNATURE_DURATION_NS;
use domino_phy::GoldFamily;
use domino_scheduler::ConverterConfig;
use domino_stats::Table;
use domino_wired::WiredLatency;

fn main() {
    let args = HarnessArgs::parse();
    let net = scenarios::standard_t(10, 2, args.seed);
    let duration = args.duration(3.0);
    let run = |cfg: DominoConfig| {
        SimulationBuilder::new(net.clone())
            .udp(10e6, 4e6)
            .duration_s(duration)
            .seed(args.seed)
            .domino_config(cfg)
            .run(Scheme::Domino)
    };

    // --- Converter mechanisms.
    let mut t = Table::new(
        "Ablation — converter mechanisms on T(10,2), UDP 10/4 Mb/s",
        &["variant", "throughput (Mb/s)", "fairness", "mean delay (ms)"],
    );
    let variants: Vec<(&str, ConverterConfig)> = vec![
        ("baseline (paper defaults)", ConverterConfig::default()),
        (
            "no fake links",
            ConverterConfig { insert_fake_links: false, ..ConverterConfig::default() },
        ),
        (
            "single trigger (inbound 1)",
            ConverterConfig { max_inbound: 1, ..ConverterConfig::default() },
        ),
        (
            "outbound cap 2",
            ConverterConfig { max_outbound: 2, ..ConverterConfig::default() },
        ),
    ];
    for (name, conv) in variants {
        let r = run(DominoConfig { converter: conv, ..DominoConfig::default() });
        t.row(&[
            name.to_string(),
            mbps(r.aggregate_mbps()),
            format!("{:.2}", r.fairness()),
            format!("{:.1}", r.mean_delay_us() / 1000.0),
        ]);
    }
    println!("{}", t.render());

    // --- Batch size x wired jitter.
    let mut t = Table::new(
        "Ablation — batch size x wired jitter (throughput, Mb/s)",
        &["batch slots", "jitter 22 us", "jitter 60 us", "jitter 120 us"],
    );
    for batch in [2usize, 5, 10] {
        let mut row = vec![batch.to_string()];
        for std_us in [22.0, 60.0, 120.0] {
            let r = run(DominoConfig {
                batch_slots: batch,
                wired: WiredLatency::with_std(std_us),
                ..DominoConfig::default()
            });
            row.push(mbps(r.aggregate_mbps()));
        }
        t.row(&row);
    }
    println!("{}", t.render());

    // --- Signature length (§5): overhead per slot vs supportable nodes.
    let mut t = Table::new(
        "Signature-length trade-off (§5)",
        &["family", "codes", "chips", "airtime (us)", "per-slot overhead"],
    );
    let slot_us = 492.0;
    for (name, fam) in [("degree-7 (paper)", GoldFamily::degree7()), ("degree-9", GoldFamily::degree9())] {
        let chips = fam.code(0).len();
        let airtime_us = chips as f64 * (SIGNATURE_DURATION_NS as f64 / 127.0) / 1000.0;
        // Two signature phases per slot (instruction appendix + burst).
        let overhead = 4.0 * airtime_us / slot_us;
        t.row(&[
            name.to_string(),
            fam.len().to_string(),
            chips.to_string(),
            format!("{airtime_us:.2}"),
            format!("{:.1}%", overhead * 100.0),
        ]);
    }
    println!("{}", t.render());
}
