//! Chaos — degradation under injected faults vs intensity.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::chaos_degradation`; this binary only
//! parses flags and prints. Prefer `domino-run chaos_degradation`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("chaos_degradation", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
