//! Fig 9 — signature detection vs concurrent transmitters.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig09_signature_detection`; this binary only
//! parses flags and prints. Prefer `domino-run fig09_signature_detection`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig09_signature_detection", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
