//! Fig 9: signature detection ratio vs number of combined signatures
//! (1–7), for the paper's five sender setups, from the sample-level
//! Gold-code correlator.
//!
//! Paper's claims: detection is nearly 100 % for up to 4 combined
//! signatures in every setup, degrades beyond, and false positives stay
//! below 1 %. This experiment is why DOMINO caps the outbound signature
//! count at 4.

use domino_bench::HarnessArgs;
use domino_phy::signature::{detection_experiment, Fig9Setup};
use domino_phy::GoldFamily;
use domino_sim::rng::streams;
use domino_sim::SimRng;
use domino_stats::Table;

fn main() {
    let args = HarnessArgs::parse();
    let runs = args.trials(200, 1000);
    let family = GoldFamily::degree7();
    let mut rng = SimRng::derive(args.seed, streams::PHY_SAMPLES);

    let header: Vec<String> = std::iter::once("combined".to_string())
        .chain(Fig9Setup::ALL.iter().map(|s| s.label().to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = Table::new(
        &format!("Fig 9 — signature detection ratio (% of {runs} runs)"),
        &header_refs,
    );
    let mut worst_fp: f64 = 0.0;
    for k in 1..=7 {
        let mut row = vec![k.to_string()];
        for setup in Fig9Setup::ALL {
            let stats = detection_experiment(&family, setup, k, 10.0, runs, &mut rng);
            row.push(format!("{:.1}", stats.detection_ratio * 100.0));
            worst_fp = worst_fp.max(stats.false_positive_ratio);
        }
        t.row(&row);
    }
    println!("{}", t.render());
    println!(
        "worst false-positive ratio: {:.2}% (paper: below 1% throughout)",
        worst_fp * 100.0
    );
}
