//! Table 3: aggregate throughput with four pairs of exposed downlinks —
//! Fig 13(a), where all links are mutually exposed, vs Fig 13(b), where
//! three senders share one common exposed neighbour.
//!
//! Paper's numbers (Mb/s): 13a — DOMINO 32.72, CENTAUR 28.60, DCF 9.97;
//! 13b — DOMINO 33.85, CENTAUR 18.35, DCF 22.13. The point: CENTAUR's
//! carrier-sense alignment collapses in 13(b) (below DCF) while DOMINO is
//! topology-insensitive.

use domino_bench::{mbps, HarnessArgs};
use domino_core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino_stats::Table;
use domino_topology::PhyParams;

fn main() {
    let args = HarnessArgs::parse();
    let mut t = Table::new(
        "Table 3 — aggregate throughput with 4 exposed downlink pairs (Mb/s)",
        &["topology", "DOMINO", "CENTAUR", "DCF"],
    );
    for (name, net) in [
        ("Fig 13(a)", scenarios::fig13a(PhyParams::default())),
        ("Fig 13(b)", scenarios::fig13b(PhyParams::default())),
    ] {
        let downlinks: Vec<_> = net
            .links()
            .iter()
            .filter(|l| l.is_downlink())
            .map(|l| l.id)
            .collect();
        let builder = SimulationBuilder::new(net)
            .workload(Workload::udp_saturated(&downlinks))
            .duration_s(args.duration(5.0))
            .seed(args.seed);
        let row: Vec<String> = std::iter::once(name.to_string())
            .chain(
                [Scheme::Domino, Scheme::Centaur, Scheme::Dcf]
                    .iter()
                    .map(|&s| mbps(builder.run(s).aggregate_mbps())),
            )
            .collect();
        t.row(&row);
    }
    println!("{}", t.render());
    println!("paper: 13a 32.72/28.60/9.97, 13b 33.85/18.35/22.13");
}
