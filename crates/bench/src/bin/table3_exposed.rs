//! Table 3 — exposed-terminal topologies.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::table3_exposed`; this binary only
//! parses flags and prints. Prefer `domino-run table3_exposed`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("table3_exposed", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
