//! §5 — polling-frequency sweep.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::sec5_polling_sweep`; this binary only
//! parses flags and prints. Prefer `domino-run sec5_polling_sweep`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("sec5_polling_sweep", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
