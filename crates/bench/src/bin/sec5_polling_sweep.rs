//! §5 "Polling frequency": delay and throughput of UDP on T(10,2) as the
//! batch size (the reciprocal of polling frequency — ROP runs once per
//! batch) varies, under heavy (5 Mb/s per link) and light (500 kb/s per
//! link) traffic.
//!
//! Paper's observation: under heavy traffic, larger batches slightly
//! lower delay and raise throughput; under light traffic, delay *grows*
//! with the batch size.

use domino_bench::{mbps, HarnessArgs};
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_mac::domino::DominoConfig;
use domino_stats::Table;

fn main() {
    let args = HarnessArgs::parse();
    let net = scenarios::standard_t(10, 2, args.seed);
    let batch_sizes = [2usize, 5, 10, 20];
    let duration = args.duration(4.0);

    for (label, rate) in [("heavy (5 Mb/s per link)", 5e6), ("light (500 kb/s per link)", 0.5e6)] {
        let mut t = Table::new(
            &format!("§5 polling-frequency sweep — {label}"),
            &["batch size (slots)", "throughput (Mb/s)", "mean delay (ms)"],
        );
        for &batch in &batch_sizes {
            let cfg = DominoConfig { batch_slots: batch, ..DominoConfig::default() };
            let report = SimulationBuilder::new(net.clone())
                .udp(rate, rate)
                .duration_s(duration)
                .seed(args.seed)
                .domino_config(cfg)
                .run(Scheme::Domino);
            t.row(&[
                batch.to_string(),
                mbps(report.aggregate_mbps()),
                format!("{:.2}", report.mean_delay_us() / 1000.0),
            ]);
        }
        println!("{}", t.render());
    }
    println!("paper: heavy traffic — delay slightly decreases / throughput slightly increases with batch size; light traffic — delay increases with batch size");
}
