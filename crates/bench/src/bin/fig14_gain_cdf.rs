//! Fig 14 — CDF of DOMINO/DCF gain over random topologies.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig14_gain_cdf`; this binary only
//! parses flags and prints. Prefer `domino-run fig14_gain_cdf`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig14_gain_cdf", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
