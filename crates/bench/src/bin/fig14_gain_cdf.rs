//! Fig 14: CDF of the DOMINO/DCF throughput gain over repeated random
//! T(20,3) topologies (80 nodes in an 800 m × 800 m area, ns-3 default
//! path loss, saturated-ish UDP).
//!
//! Paper's claim: the gain varies from 1.22× to 1.96× with a median of
//! 1.58×.

use domino_bench::HarnessArgs;
use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_stats::Cdf;

fn main() {
    let args = HarnessArgs::parse();
    let runs = args.trials(10, 50);
    let duration = args.duration(2.0);

    let mut gains = Vec::with_capacity(runs);
    for i in 0..runs {
        let seed = args.seed + i as u64 * 1000;
        let net = scenarios::random_t(20, 3, seed);
        let builder = SimulationBuilder::new(net).udp(10e6, 10e6).duration_s(duration).seed(seed);
        let domino = builder.run(Scheme::Domino);
        let dcf = builder.run(Scheme::Dcf);
        let gain = domino.gain_over(&dcf);
        println!("run {i:>2}: DOMINO {:.2} Mb/s, DCF {:.2} Mb/s, gain {gain:.2}x",
            domino.aggregate_mbps(), dcf.aggregate_mbps());
        gains.push(gain);
    }

    let cdf = Cdf::from_samples(gains);
    println!("\n## Fig 14 — CDF of DOMINO/DCF throughput gain ({runs} random T(20,3) topologies)\n");
    for (x, p) in cdf.points() {
        println!("{x:5.2}x  {p:4.2}  {}", "#".repeat((p * 50.0) as usize));
    }
    let (lo, hi) = cdf.range();
    println!(
        "\nrange {lo:.2}x – {hi:.2}x, median {:.2}x (paper: 1.22x – 1.96x, median 1.58x)",
        cdf.median()
    );
}
