//! Fig 12 — throughput/delay/fairness vs offered load.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::fig12_tput_delay_fairness`; this binary only
//! parses flags and prints. Prefer `domino-run fig12_tput_delay_fairness`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("fig12_tput_delay_fairness", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
