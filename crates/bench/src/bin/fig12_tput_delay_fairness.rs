//! Fig 12: UDP and TCP aggregate throughput, mean per-link delay and
//! Jain's fairness on T(10,2), downlink fixed at 10 Mb/s per link and the
//! uplink rate swept 0–10 Mb/s — DOMINO vs CENTAUR vs DCF.
//!
//! Paper's claims: DOMINO outperforms DCF by 74 % at zero uplink UDP,
//! decreasing to 24 % at 10 Mb/s uplink; fairness ≈ 0.78 vs 0.47 for
//! DCF; DCF delay ≈ 2× DOMINO; CENTAUR can fall below DCF at low uplink
//! rates; TCP gains are 10–15 % with fairness gains of 17–39 %.

use domino_bench::{mbps, HarnessArgs};
use domino_core::{scenarios, RunReport, Scheme, SimulationBuilder};
use domino_stats::Table;

fn sweep(
    net: &domino_topology::Network,
    tcp: bool,
    rates: &[f64],
    duration: f64,
    seed: u64,
) -> Vec<(f64, Vec<RunReport>)> {
    rates
        .iter()
        .map(|&up| {
            let builder = SimulationBuilder::new(net.clone()).duration_s(duration).seed(seed);
            let builder = if tcp { builder.tcp(10e6, up) } else { builder.udp(10e6, up) };
            let reports = [Scheme::Domino, Scheme::Centaur, Scheme::Dcf]
                .iter()
                .map(|&s| builder.run(s))
                .collect();
            (up, reports)
        })
        .collect()
}

fn print_block(title: &str, rows: &[(f64, Vec<RunReport>)]) {
    let mut tput = Table::new(
        &format!("{title} — aggregate throughput (Mb/s)"),
        &["uplink (Mb/s)", "DOMINO", "CENTAUR", "DCF", "DOMINO/DCF"],
    );
    let mut delay = Table::new(
        &format!("{title} — average delay per link (ms)"),
        &["uplink (Mb/s)", "DOMINO", "CENTAUR", "DCF"],
    );
    let mut fair = Table::new(
        &format!("{title} — Jain's fairness index"),
        &["uplink (Mb/s)", "DOMINO", "CENTAUR", "DCF"],
    );
    for (up, reports) in rows {
        let (d, c, f) = (&reports[0], &reports[1], &reports[2]);
        tput.row(&[
            format!("{up:.0}", up = up / 1e6),
            mbps(d.aggregate_mbps()),
            mbps(c.aggregate_mbps()),
            mbps(f.aggregate_mbps()),
            format!("{:.2}", d.aggregate_mbps() / f.aggregate_mbps().max(1e-9)),
        ]);
        delay.row(&[
            format!("{:.0}", up / 1e6),
            format!("{:.2}", d.mean_delay_us() / 1000.0),
            format!("{:.2}", c.mean_delay_us() / 1000.0),
            format!("{:.2}", f.mean_delay_us() / 1000.0),
        ]);
        fair.row(&[
            format!("{:.0}", up / 1e6),
            format!("{:.2}", d.fairness()),
            format!("{:.2}", c.fairness()),
            format!("{:.2}", f.fairness()),
        ]);
    }
    println!("{}", tput.render());
    println!("{}", delay.render());
    println!("{}", fair.render());
}

fn main() {
    let args = HarnessArgs::parse();
    let net = scenarios::standard_t(10, 2, args.seed);
    {
        use domino_topology::conflict::{pair_stats, ConflictGraph};
        let g = ConflictGraph::build(&net);
        let stats = pair_stats(&net, &g);
        println!(
            "T(10,2): {} links, {} hidden and {} exposed of {} non-sharing link pairs (paper: 10 hidden, 62 exposed of 720)\n",
            net.links().len(),
            stats.hidden,
            stats.exposed,
            stats.total
        );
    }
    let rates: Vec<f64> = if args.full {
        (0..=5).map(|i| 2e6 * i as f64).collect()
    } else {
        vec![0.0, 4e6, 10e6]
    };
    let duration = args.duration(4.0);

    let udp = sweep(&net, false, &rates, duration, args.seed);
    print_block("Fig 12(a-c) UDP", &udp);
    let tcp = sweep(&net, true, &rates, duration, args.seed);
    print_block("Fig 12(d-f) TCP", &tcp);
}
