//! Table 1 — ROP symbol parameters.
//!
//! Thin wrapper: the experiment logic (sharding, seeding, rendering)
//! lives in `domino_runner::experiments::table1_params`; this binary only
//! parses flags and prints. Prefer `domino-run table1_params`.

use domino_runner::single::{run_single, SingleOutcome, USAGE};
use std::process::ExitCode;

fn main() -> ExitCode {
    match run_single("table1_params", std::env::args().skip(1)) {
        Ok(SingleOutcome::Text(text)) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Ok(SingleOutcome::Help) => {
            eprintln!("{USAGE}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
