//! Table 2: aggregate throughput of DOMINO vs DCF in the three USRP
//! prototype scenarios — same contention domain (SC), hidden terminals
//! (HT), exposed terminals (ET) — two saturated AP→client pairs.
//!
//! The paper's absolute numbers are kb/s because the USRP/GNURadio host
//! path is ~3 orders of magnitude slower than an ASIC; what transfers is
//! the *ratio* structure: DOMINO ≈ 1.5× DCF even without hidden/exposed
//! effects (no backoff overhead), and > 3× under HT/ET. We run the same
//! scenario structure at full 802.11g speed and report both Mb/s and the
//! kb/s-equivalent under the measured USRP slowdown (documented
//! substitution; see DESIGN.md).

use domino_bench::{mbps, ratio, HarnessArgs};
use domino_core::{scenarios, Scheme, SimulationBuilder, Workload};
use domino_mac::domino::DominoConfig;
use domino_scheduler::ConverterConfig;
use domino_stats::Table;

/// Throughput scale between our 12 Mb/s PHY simulation and the paper's
/// USRP prototype (their DCF-SC measured 2.76 kb/s vs our ~7.4 Mb/s).
const USRP_SLOWDOWN: f64 = 2680.0;

fn main() {
    let args = HarnessArgs::parse();
    let mut t = Table::new(
        "Table 2 — aggregate throughput, 2 saturated downlink pairs",
        &["scenario", "DOMINO (Mb/s)", "DCF (Mb/s)", "gain", "DOMINO (USRP-eq kb/s)", "DCF (USRP-eq kb/s)"],
    );
    for scenario in scenarios::UsrpScenario::ALL {
        let net = scenarios::usrp_scenario(scenario);
        let downlinks: Vec<_> = net
            .links()
            .iter()
            .filter(|l| l.is_downlink())
            .map(|l| l.id)
            .collect();
        // The prototype preloads schedules and has saturated queues; no
        // ROP runs (paper §4.1: "the transmission schedules are already
        // loaded in each AP").
        let domino_cfg = DominoConfig {
            converter: ConverterConfig { insert_rop: false, ..ConverterConfig::default() },
            ..DominoConfig::default()
        };
        let builder = SimulationBuilder::new(net)
            .workload(Workload::udp_saturated(&downlinks))
            .duration_s(args.duration(5.0))
            .seed(args.seed)
            .domino_config(domino_cfg);
        let domino = builder.run(Scheme::Domino).aggregate_mbps();
        let dcf = builder.run(Scheme::Dcf).aggregate_mbps();
        t.row(&[
            scenario.label().to_string(),
            mbps(domino),
            mbps(dcf),
            ratio(domino / dcf),
            format!("{:.2}", domino * 1000.0 / USRP_SLOWDOWN),
            format!("{:.2}", dcf * 1000.0 / USRP_SLOWDOWN),
        ]);
    }
    println!("{}", t.render());
    println!("paper (kb/s): SC 4.25/2.76 (1.54x), HT 5.42/1.62 (3.35x), ET 9.18/2.72 (3.38x)");
}
