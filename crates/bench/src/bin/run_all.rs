//! Alias kept for muscle memory: forwards to `domino-run all`, which owns
//! the experiment registry, the work pool, and the `--check` gate. The
//! list of experiments lives in exactly one place
//! (`domino_runner::registry::REGISTRY`) — this binary knows none of it.

use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let runner = match std::env::current_exe() {
        Ok(exe) => match exe.parent() {
            Some(dir) => dir.join("domino-run"),
            None => {
                eprintln!("cannot locate own directory to find domino-run");
                return ExitCode::FAILURE;
            }
        },
        Err(e) => {
            eprintln!("cannot locate own path: {e}");
            return ExitCode::FAILURE;
        }
    };
    match Command::new(&runner).arg("all").args(&passthrough).status() {
        Ok(status) if status.success() => ExitCode::SUCCESS,
        Ok(status) => ExitCode::from(status.code().unwrap_or(1).clamp(0, 255) as u8),
        Err(e) => {
            eprintln!(
                "cannot run {}: {e}\nbuild it first: cargo build --release --workspace",
                runner.display()
            );
            ExitCode::FAILURE
        }
    }
}
