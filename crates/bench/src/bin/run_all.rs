//! Run every experiment regenerator in sequence (quick scale unless
//! `--full`). This is the one command that reproduces the paper's whole
//! evaluation section.

use std::process::Command;

const BINS: [&str; 13] = [
    "table1_params",
    "fig05_rop_samples",
    "fig06_guard_sweep",
    "fig09_signature_detection",
    "fig02_motivation",
    "table2_usrp",
    "fig10_timeline",
    "fig11_misalignment",
    "fig12_tput_delay_fairness",
    "table3_exposed",
    "fig14_gain_cdf",
    "sec5_light_traffic",
    "ablations",
];

fn main() {
    let passthrough: Vec<String> = std::env::args().skip(1).collect();
    let exe = std::env::current_exe().expect("own path");
    let dir = exe.parent().expect("bin dir");
    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n=================== {bin} ===================\n");
        let status = Command::new(dir.join(bin))
            .args(&passthrough)
            .status()
            .unwrap_or_else(|e| panic!("failed to spawn {bin}: {e}"));
        if !status.success() {
            failures.push(bin);
        }
    }
    // The polling sweep is the slowest; keep it last.
    println!("\n=================== sec5_polling_sweep ===================\n");
    let status = Command::new(dir.join("sec5_polling_sweep"))
        .args(&passthrough)
        .status()
        .expect("spawn sec5_polling_sweep");
    if !status.success() {
        failures.push("sec5_polling_sweep");
    }
    if failures.is_empty() {
        println!("\nall experiments completed");
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
