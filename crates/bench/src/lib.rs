//! # domino-bench
//!
//! Benchmarks and experiment entry points:
//!
//! * `benches/*` — micro-benchmarks of the substrates (engine, PHY DSP,
//!   scheduling, medium, end-to-end), run via `cargo bench` or the
//!   testkit harness (`TESTKIT_BENCH_JSON` writes machine-readable
//!   results).
//! * `src/bin/*` — one thin binary per table and figure of the paper's
//!   evaluation, kept for `cargo run --bin <name>` muscle memory. Each
//!   delegates to [`domino_runner::single::run_single`]; the experiment
//!   logic itself (sharding, seed derivation, rendering) lives in
//!   `domino_runner::experiments`, and `run_all` forwards to
//!   `domino-run all`.
//!
//! The flag surface is unchanged from the old in-binary harness —
//! `--full` for paper scale, `--seed <n>` — plus `--jobs <n>` for the
//! worker count. Output bytes are a pure function of
//! `(experiment, scale, seed)`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The crate's substance is in `benches/` and `src/bin/`; the library
// target exists so the doc above has a home and the bins share an edition.
pub use domino_runner as runner;
