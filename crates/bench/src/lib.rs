//! # domino-bench
//!
//! The experiment harness of the DOMINO reproduction: one binary per
//! table and figure of the paper's evaluation (`src/bin/*`), plus
//! Criterion micro-benchmarks of the substrates (`benches/*`).
//!
//! Every binary accepts two optional flags:
//!
//! * `--full` — run at the paper's scale (50 s simulations, 1000-trial
//!   sweeps). Without it, a reduced-but-representative scale runs in
//!   seconds.
//! * `--seed <n>` — override the master seed.
//!
//! Output is plain-text tables whose rows mirror the paper's; the
//! expected shape per experiment is recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Command-line configuration shared by all experiment binaries.
#[derive(Clone, Copy, Debug)]
pub struct HarnessArgs {
    /// Paper-scale run?
    pub full: bool,
    /// Master seed.
    pub seed: u64,
}

impl HarnessArgs {
    /// Parse from `std::env::args`.
    pub fn parse() -> HarnessArgs {
        let mut args = HarnessArgs { full: false, seed: 1 };
        let mut it = std::env::args().skip(1);
        while let Some(a) = it.next() {
            match a.as_str() {
                "--full" => args.full = true,
                "--seed" => {
                    args.seed = it
                        .next()
                        .and_then(|v| v.parse().ok())
                        .expect("--seed needs an integer");
                }
                "--help" | "-h" => {
                    // lint: allow(D006) CLI usage text for the bench binaries
                    eprintln!("flags: --full (paper scale), --seed <n>");
                    std::process::exit(0);
                }
                other => {
                    // lint: allow(D006) CLI diagnostic for the bench binaries
                    eprintln!("unknown flag {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// Simulation duration: the paper's 50 s with `--full`, else `quick`.
    pub fn duration(&self, quick: f64) -> f64 {
        if self.full {
            50.0
        } else {
            quick
        }
    }

    /// Trial count: `full_trials` with `--full`, else `quick`.
    pub fn trials(&self, quick: usize, full_trials: usize) -> usize {
        if self.full {
            full_trials
        } else {
            quick
        }
    }
}

/// Format a Mb/s value for a table cell.
pub fn mbps(v: f64) -> String {
    format!("{v:.2}")
}

/// Format a ratio/gain for a table cell.
pub fn ratio(v: f64) -> String {
    format!("{v:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_scaling() {
        let quick = HarnessArgs { full: false, seed: 1 };
        let full = HarnessArgs { full: true, seed: 1 };
        assert_eq!(quick.duration(5.0), 5.0);
        assert_eq!(full.duration(5.0), 50.0);
        assert_eq!(quick.trials(100, 1000), 100);
        assert_eq!(full.trials(100, 1000), 1000);
    }

    #[test]
    fn formatting() {
        assert_eq!(mbps(32.719), "32.72");
        assert_eq!(ratio(1.955), "1.96x");
    }
}
