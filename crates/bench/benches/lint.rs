//! Microbenchmark of the semantic linter: a full workspace scan —
//! tokenize, parse, local rules, call graph, waiver resolution — is the
//! first CI gate, so its cost bounds how fast any change can fail.

use domino_lint::{lint_sources, workspace_files};
use domino_testkit::bench::Harness;
use std::path::Path;

fn main() {
    // Load the workspace once; the bench measures analysis, not disk.
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let files = workspace_files(&root).expect("workspace readable");
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|p| {
            let rel = p.strip_prefix(&root).unwrap_or(p).to_string_lossy().replace('\\', "/");
            (rel, std::fs::read_to_string(p).expect("utf-8 source"))
        })
        .collect();

    let mut h = Harness::new("lint");
    h.bench("lint/workspace_scan", || {
        let report = lint_sources(&sources);
        assert!(report.is_clean(), "workspace must stay lint-clean");
        report.violations.len()
    });
    h.finish();
}
