//! Microbenchmarks of the discrete-event engine: how many events per
//! second the substrate can push through (the 50 s T(10,2) runs of the
//! paper's evaluation are tens of millions of events).

use domino_sim::{Engine, SimDuration, SimTime};
use domino_testkit::bench::Harness;

fn main() {
    let mut h = Harness::new("engine");

    h.bench_with_setup("engine/schedule_pop_10k", Engine::<u32>::new, |mut engine| {
        for i in 0..10_000u32 {
            engine.schedule_at(SimTime::from_micros(u64::from(i % 997)), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = engine.pop() {
            sum += u64::from(v);
        }
        sum
    });

    h.bench_with_setup(
        "engine/timer_churn",
        || {
            let mut e = Engine::<u32>::new();
            e.schedule_at(SimTime::from_micros(1), 0);
            e
        },
        |mut engine| {
            // Schedule-then-cancel churn, the pattern of backoff
            // freeze/resume.
            let mut handles = Vec::with_capacity(100);
            for round in 0..100u64 {
                for i in 0..100u32 {
                    handles.push(engine.schedule_at(SimTime::from_micros(10 + round * 10), i));
                }
                for h in handles.drain(..) {
                    engine.cancel(h);
                }
            }
            engine.pending()
        },
    );

    h.bench_with_setup("engine/schedule_pop_100k", Engine::<u32>::new, |mut engine| {
        // Larger working set: exercises multi-level wheel occupancy and
        // cascading, not just the level-0 fast path.
        for i in 0..100_000u32 {
            engine.schedule_at(SimTime::from_micros(u64::from(i.wrapping_mul(2_654_435_761) % 131_071)), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = engine.pop() {
            sum += u64::from(v);
        }
        sum
    });

    h.bench_with_setup("engine/cancel_heavy", Engine::<u32>::new, |mut engine| {
        // 90% of scheduled timers are cancelled before firing — the
        // ACK-timeout / watchdog pattern where most timers never expire.
        let mut handles = Vec::with_capacity(10_000);
        for i in 0..10_000u32 {
            handles.push(engine.schedule_at(SimTime::from_micros(u64::from(i % 8_191) + 1), i));
        }
        for (k, h) in handles.drain(..).enumerate() {
            if k % 10 != 0 {
                engine.cancel(h);
            }
        }
        let mut sum = 0u64;
        while let Some((_, v)) = engine.pop() {
            sum += u64::from(v);
        }
        sum
    });

    h.bench_with_setup("engine/sparse_far_future", Engine::<u32>::new, |mut engine| {
        // A few timers spread across seconds of virtual time: dominated
        // by cascade cost from the upper wheel levels, the worst case for
        // a hierarchical wheel versus a heap.
        for i in 0..256u32 {
            engine.schedule_at(SimTime::from_micros(u64::from(i) * 40_009 + 7), i);
        }
        let mut sum = 0u64;
        while let Some((_, v)) = engine.pop() {
            sum += u64::from(v);
        }
        sum
    });

    h.bench_with_setup("engine/fifo_ties", Engine::<u32>::new, |mut engine| {
        let t = SimTime::from_micros(5);
        for i in 0..1_000u32 {
            engine.schedule_at(t, i);
        }
        let mut last = 0;
        while let Some((_, v)) = engine.pop() {
            last = v;
        }
        last
    });

    let _ = SimDuration::ZERO;
    h.finish();
}
