//! End-to-end engine benchmarks: wall-clock cost of short simulation
//! runs under each scheme (how much simulated time per real second the
//! reproduction delivers).

use criterion::{criterion_group, criterion_main, Criterion};
use domino_core::{scenarios, Scheme, SimulationBuilder};

fn schemes(c: &mut Criterion) {
    let net = scenarios::fig7();
    let builder = SimulationBuilder::new(net).udp(10e6, 5e6).duration_s(0.2).seed(1);
    let mut group = c.benchmark_group("end_to_end/fig7_200ms");
    group.sample_size(10);
    for scheme in [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient] {
        group.bench_function(scheme.label(), |b| {
            b.iter(|| builder.run(scheme).aggregate_mbps())
        });
    }
    group.finish();
}

criterion_group!(benches, schemes);
criterion_main!(benches);
