//! End-to-end engine benchmarks: wall-clock cost of short simulation
//! runs under each scheme (how much simulated time per real second the
//! reproduction delivers).

use domino_core::{scenarios, Scheme, SimulationBuilder};
use domino_testkit::bench::Harness;

fn main() {
    let net = scenarios::fig7();
    let builder = SimulationBuilder::new(net).udp(10e6, 5e6).duration_s(0.2).seed(1);
    let mut h = Harness::new("end_to_end");
    for scheme in [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient] {
        h.bench(&format!("end_to_end/fig7_200ms/{}", scheme.label()), || {
            builder.run(scheme).aggregate_mbps()
        });
    }
    h.finish();
}
