//! Microbenchmark of the SINR medium: begin/end cycles with concurrent
//! interferers — the inner loop of every network-scale experiment.

use domino_medium::{Frame, FrameBody, Medium};
use domino_sim::SimTime;
use domino_testkit::bench::Harness;
use domino_topology::builder::t_topology;
use domino_topology::trace::{generate, TraceConfig};
use domino_topology::{LinkId, PhyParams};
use domino_traffic::{FlowId, Packet, PacketId, PacketKind};

fn main() {
    let trace = generate(&TraceConfig::default(), 0xD0311);
    let net = t_topology(&trace, 10, 2, PhyParams::default(), 1).expect("T(10,2)");

    let data_frame = |link: u32, serial: u64| Frame {
        src: net.link(LinkId(link)).sender,
        body: FrameBody::Data {
            packet: Packet {
                id: PacketId(serial),
                flow: FlowId(0),
                link: LinkId(link),
                payload_bytes: 512,
                created_at: SimTime::ZERO,
                kind: PacketKind::Udp,
                seq: serial,
            },
            fake: false,
            client_burst: None,
        },
        bits: 4096,
    };

    let mut h = Harness::new("medium");

    let mut medium = Medium::new(net.clone(), 1);
    let mut t = 0u64;
    let mut serial = 0u64;
    h.bench("medium/4_concurrent_exchanges_T10_2", || {
        t += 1_000_000;
        let start = SimTime::from_nanos(t);
        let mut txs = Vec::new();
        // Four spatially separate downlinks transmit together.
        for link in [0u32, 8, 16, 24] {
            serial += 1;
            txs.push(medium.begin(start, data_frame(link, serial)));
        }
        let end = SimTime::from_nanos(t + 385_000);
        let mut ok = 0;
        for tx in txs {
            ok += medium.end(tx, end).iter().filter(|r| r.success).count();
        }
        ok
    });

    h.finish();
}
