//! Microbenchmarks of the sample-level PHY: the 256-point FFT, the ROP
//! encode/decode pipeline, and the Gold-code correlator with SIC — the
//! pieces a real-time SDR implementation would care about.

use domino_phy::complex::Complex;
use domino_phy::fft::{fft, ifft};
use domino_phy::gold::GoldFamily;
use domino_phy::ofdm::signalgen::ClientChannel;
use domino_phy::ofdm::{
    combine_at_ap, decode_symbol, encode_queue_symbol, DecoderConfig, RopSymbolConfig,
};
use domino_phy::signature::{synthesize_burst, Correlator, SenderSpec};
use domino_sim::rng::streams;
use domino_sim::SimRng;
use domino_testkit::bench::Harness;

fn main() {
    let mut h = Harness::new("phy_dsp");

    let mut data: Vec<Complex> = (0..256)
        .map(|i| Complex::new((i as f64 * 0.1).sin(), (i as f64 * 0.2).cos()))
        .collect();
    h.bench("phy/fft256_roundtrip", || {
        fft(&mut data);
        ifft(&mut data);
        data[0]
    });

    let cfg = RopSymbolConfig::default();
    let layout = cfg.layout();
    let mut rng = SimRng::derive(1, streams::PHY_SAMPLES);
    h.bench("phy/rop_24_clients_encode_decode", || {
        let symbols: Vec<_> = (0..24)
            .map(|sc| {
                encode_queue_symbol(&cfg, &layout, sc, (sc as u32 * 7) % 64, &ClientChannel::ideal())
            })
            .collect();
        let rx = combine_at_ap(&symbols, 0.001, 10, &mut rng);
        let all: Vec<usize> = (0..24).collect();
        let (reports, _) = decode_symbol(&cfg, &layout, &rx, &all, &DecoderConfig::default());
        reports.len()
    });

    let family = GoldFamily::degree7();
    let mut rng = SimRng::derive(2, streams::PHY_SAMPLES);
    let burst = synthesize_burst(
        &family,
        &[SenderSpec::simple(vec![3, 40, 90, 120])],
        0.05,
        &mut rng,
    );
    let det = Correlator::default();
    h.bench("phy/correlator_detect_4_of_8", || {
        det.detect(&family, &burst, &[3, 40, 90, 120, 7, 55, 99, 11]).len()
    });

    h.bench("phy/gold_family_generation", || GoldFamily::degree7().len());

    h.finish();
}
