//! Microbenchmarks of the controller path: conflict-graph construction,
//! the RAND greedy scheduler, and the strict→relative converter on the
//! paper's T(10,2) topology. The controller must finish a batch well
//! inside one slot (~0.5 ms) for the pipeline to hold.

use domino_scheduler::{Converter, ConverterConfig, RandScheduler, StrictSchedule};
use domino_testkit::bench::Harness;
use domino_topology::builder::t_topology;
use domino_topology::trace::{generate, TraceConfig};
use domino_topology::{ConflictGraph, PhyParams};

fn main() {
    let trace = generate(&TraceConfig::default(), 0xD0311);
    let net = t_topology(&trace, 10, 2, PhyParams::default(), 1).expect("T(10,2)");
    let graph = ConflictGraph::build(&net);

    let mut h = Harness::new("scheduling");

    h.bench("sched/conflict_graph_T10_2", || ConflictGraph::build(&net).len());

    {
        let mut sched = RandScheduler::new(net.links().len());
        h.bench("sched/rand_batch_5_slots", || {
            let mut backlog = vec![10u32; net.links().len()];
            sched.schedule_batch(&graph, &mut backlog, 5).len()
        });
    }

    {
        let mut sched = RandScheduler::new(net.links().len());
        let mut conv = Converter::new(ConverterConfig::default());
        let aps = net.aps();
        h.bench("sched/convert_batch_5_slots", || {
            let mut backlog = vec![10u32; net.links().len()];
            let strict: StrictSchedule = sched.schedule_batch(&graph, &mut backlog, 5);
            conv.convert(&net, &graph, &strict, &aps).batch.total_entries()
        });
    }

    h.finish();
}
