//! Microbenchmarks of the controller path: conflict-graph construction,
//! the RAND greedy scheduler, and the strict→relative converter on the
//! paper's T(10,2) topology. The controller must finish a batch well
//! inside one slot (~0.5 ms) for the pipeline to hold.

use criterion::{criterion_group, criterion_main, Criterion};
use domino_scheduler::{Converter, ConverterConfig, RandScheduler, StrictSchedule};
use domino_topology::builder::t_topology;
use domino_topology::trace::{generate, TraceConfig};
use domino_topology::{ConflictGraph, PhyParams};

fn controller(c: &mut Criterion) {
    let trace = generate(&TraceConfig::default(), 0xD0311);
    let net = t_topology(&trace, 10, 2, PhyParams::default(), 1).expect("T(10,2)");
    let graph = ConflictGraph::build(&net);

    c.bench_function("sched/conflict_graph_T10_2", |b| {
        b.iter(|| ConflictGraph::build(&net).len())
    });

    c.bench_function("sched/rand_batch_5_slots", |b| {
        let mut sched = RandScheduler::new(net.links().len());
        b.iter(|| {
            let mut backlog = vec![10u32; net.links().len()];
            sched.schedule_batch(&graph, &mut backlog, 5).len()
        })
    });

    c.bench_function("sched/convert_batch_5_slots", |b| {
        let mut sched = RandScheduler::new(net.links().len());
        let mut conv = Converter::new(ConverterConfig::default());
        let aps = net.aps();
        b.iter(|| {
            let mut backlog = vec![10u32; net.links().len()];
            let strict: StrictSchedule = sched.schedule_batch(&graph, &mut backlog, 5);
            conv.convert(&net, &graph, &strict, &aps).batch.total_entries()
        })
    });
}

criterion_group!(benches, controller);
criterion_main!(benches);
