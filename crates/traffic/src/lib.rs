//! # domino-traffic
//!
//! Traffic substrate for the DOMINO (CoNEXT'13) reproduction: packets and
//! flows ([`packet`]), bounded per-link MAC queues whose occupancy feeds
//! ROP reports ([`queue`]), constant-bit-rate UDP sources ([`udp`]), and a
//! Reno-style TCP-lite transport ([`tcp`]) for the paper's TCP
//! experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod packet;
pub mod queue;
pub mod tcp;
pub mod udp;

pub use packet::{FlowId, Packet, PacketId, PacketKind, DEFAULT_PACKET_BYTES, TCP_ACK_BYTES};
pub use queue::LinkQueue;
pub use tcp::{TcpConfig, TcpReceiver, TcpSender};
pub use udp::UdpSource;
