//! Per-link FIFO transmit queues.
//!
//! Every sender keeps one queue per outgoing link. Queue length is what
//! ROP reports to the controller (clamped to 63, §3.1) and what drives
//! the RAND scheduler's has-data test.

use crate::packet::Packet;
use std::collections::VecDeque;

/// Default MAC queue capacity in packets.
pub const DEFAULT_QUEUE_CAPACITY: usize = 200;

/// A bounded FIFO of packets awaiting transmission on one link.
#[derive(Clone, Debug)]
pub struct LinkQueue {
    items: VecDeque<Packet>,
    capacity: usize,
    drops: u64,
}

impl LinkQueue {
    /// An empty queue with the given capacity.
    pub fn new(capacity: usize) -> LinkQueue {
        assert!(capacity > 0, "queue capacity must be positive");
        LinkQueue { items: VecDeque::new(), capacity, drops: 0 }
    }

    /// Enqueue; returns `false` (and counts a drop) when full.
    pub fn push(&mut self, packet: Packet) -> bool {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            false
        } else {
            self.items.push_back(packet);
            true
        }
    }

    /// Push to the *front* (a retransmission keeps its place at the head
    /// of the line).
    pub fn push_front(&mut self, packet: Packet) -> bool {
        if self.items.len() >= self.capacity {
            self.drops += 1;
            false
        } else {
            self.items.push_front(packet);
            true
        }
    }

    /// Dequeue the head.
    pub fn pop(&mut self) -> Option<Packet> {
        self.items.pop_front()
    }

    /// The head, if any.
    pub fn peek(&self) -> Option<&Packet> {
        self.items.front()
    }

    /// Packets currently queued.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no packets wait.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Total packets dropped at enqueue so far.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Queue length as ROP reports it: clamped to the 6-bit maximum.
    pub fn rop_report(&self) -> u32 {
        self.items.len().min(63) as u32
    }
}

impl Default for LinkQueue {
    fn default() -> Self {
        LinkQueue::new(DEFAULT_QUEUE_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, PacketId, PacketKind};
    use domino_sim::SimTime;
    use domino_topology::LinkId;

    fn pkt(id: u64) -> Packet {
        Packet {
            id: PacketId(id),
            flow: FlowId(0),
            link: LinkId(0),
            payload_bytes: 512,
            created_at: SimTime::ZERO,
            kind: PacketKind::Udp,
            seq: 0,
        }
    }

    #[test]
    fn fifo_order() {
        let mut q = LinkQueue::new(10);
        for i in 0..5 {
            assert!(q.push(pkt(i)));
        }
        assert_eq!(q.len(), 5);
        for i in 0..5 {
            assert_eq!(q.pop().unwrap().id.0, i);
        }
        assert!(q.is_empty());
    }

    #[test]
    fn capacity_enforced_with_drop_count() {
        let mut q = LinkQueue::new(2);
        assert!(q.push(pkt(0)));
        assert!(q.push(pkt(1)));
        assert!(!q.push(pkt(2)));
        assert!(!q.push(pkt(3)));
        assert_eq!(q.drops(), 2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn push_front_for_retransmissions() {
        let mut q = LinkQueue::new(10);
        q.push(pkt(1));
        q.push_front(pkt(0));
        assert_eq!(q.peek().unwrap().id.0, 0);
    }

    #[test]
    fn rop_report_clamps_at_63() {
        let mut q = LinkQueue::new(100);
        for i in 0..80 {
            q.push(pkt(i));
        }
        assert_eq!(q.rop_report(), 63);
        let mut small = LinkQueue::new(100);
        small.push(pkt(0));
        assert_eq!(small.rop_report(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = LinkQueue::new(0);
    }
}
