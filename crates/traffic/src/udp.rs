//! Constant-bit-rate UDP sources (the paper's default workload).

use crate::packet::{FlowId, Packet, PacketId, PacketKind};
use domino_sim::{SimDuration, SimTime};
use domino_topology::LinkId;

/// A CBR source emitting fixed-size packets at a fixed rate on one link.
#[derive(Clone, Debug)]
pub struct UdpSource {
    flow: FlowId,
    link: LinkId,
    packet_bytes: usize,
    interval: Option<SimDuration>,
    next_arrival: SimTime,
    next_packet_serial: u64,
}

impl UdpSource {
    /// Create a source; `rate_bps == 0` yields a silent source.
    ///
    /// The first packet arrives one full interval after `start` (flows
    /// ramp in rather than bursting at t=0, and distinct flows can be
    /// staggered via `start`).
    pub fn new(
        flow: FlowId,
        link: LinkId,
        rate_bps: f64,
        packet_bytes: usize,
        start: SimTime,
    ) -> UdpSource {
        assert!(rate_bps >= 0.0 && rate_bps.is_finite());
        assert!(packet_bytes > 0);
        let interval = (rate_bps > 0.0).then(|| {
            SimDuration::from_secs_f64(packet_bytes as f64 * 8.0 / rate_bps)
        });
        let next_arrival = match interval {
            Some(i) => start + i,
            None => SimTime::MAX,
        };
        UdpSource {
            flow,
            link,
            packet_bytes,
            interval,
            next_arrival,
            next_packet_serial: 0,
        }
    }

    /// The flow this source feeds.
    pub fn flow(&self) -> FlowId {
        self.flow
    }

    /// The link this source feeds.
    pub fn link(&self) -> LinkId {
        self.link
    }

    /// When the next packet arrives ([`SimTime::MAX`] for a silent
    /// source).
    pub fn next_arrival(&self) -> SimTime {
        self.next_arrival
    }

    /// Emit the packet due at [`UdpSource::next_arrival`] and advance.
    /// `id_base` namespaces packet ids across flows (caller passes a
    /// per-flow prefix).
    pub fn emit(&mut self, id_base: u64) -> Packet {
        let interval = self.interval.expect("emit on a silent source");
        let created_at = self.next_arrival;
        let serial = self.next_packet_serial;
        self.next_packet_serial += 1;
        self.next_arrival = created_at + interval;
        Packet {
            id: PacketId(id_base | serial),
            flow: self.flow,
            link: self.link,
            payload_bytes: self.packet_bytes,
            created_at,
            kind: PacketKind::Udp,
            seq: serial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_interval_for_10mbps_512b() {
        // 4096 bits at 10 Mb/s = 409.6 us per packet.
        let s = UdpSource::new(FlowId(0), LinkId(0), 10e6, 512, SimTime::ZERO);
        assert_eq!(s.next_arrival(), SimTime::from_nanos(409_600));
    }

    #[test]
    fn emission_advances_clock_and_serial() {
        let mut s = UdpSource::new(FlowId(1), LinkId(2), 10e6, 512, SimTime::ZERO);
        let p0 = s.emit(1 << 32);
        let p1 = s.emit(1 << 32);
        assert_eq!(p0.created_at, SimTime::from_nanos(409_600));
        assert_eq!(p1.created_at, SimTime::from_nanos(819_200));
        assert_eq!(p0.seq, 0);
        assert_eq!(p1.seq, 1);
        assert_ne!(p0.id, p1.id);
        assert_eq!(p0.link, LinkId(2));
        assert_eq!(p0.kind, PacketKind::Udp);
    }

    #[test]
    fn silent_source_never_fires() {
        let s = UdpSource::new(FlowId(0), LinkId(0), 0.0, 512, SimTime::ZERO);
        assert_eq!(s.next_arrival(), SimTime::MAX);
    }

    #[test]
    fn staggered_start() {
        let s = UdpSource::new(FlowId(0), LinkId(0), 10e6, 512, SimTime::from_micros(100));
        assert_eq!(s.next_arrival(), SimTime::from_nanos(509_600));
    }

    #[test]
    #[should_panic(expected = "silent source")]
    fn emit_on_silent_source_panics() {
        let mut s = UdpSource::new(FlowId(0), LinkId(0), 0.0, 512, SimTime::ZERO);
        let _ = s.emit(0);
    }

    #[test]
    fn rate_accounting_over_a_second() {
        let mut s = UdpSource::new(FlowId(0), LinkId(0), 6e6, 512, SimTime::ZERO);
        let mut count = 0u64;
        while s.next_arrival() <= SimTime::from_secs(1) {
            let _ = s.emit(0);
            count += 1;
        }
        // 6 Mb/s / 4096 bits ≈ 1464 packets.
        assert!((count as i64 - 1464).abs() <= 1, "count={count}");
    }
}
