//! TCP-lite: a Reno-style transport for the paper's TCP experiments.
//!
//! The paper's Fig 12(d–f) runs TCP flows at a 10 Mb/s offered rate over
//! each scheme, with the TCP ACK treated as a regular packet (under
//! DOMINO it occupies a whole slot, which is why TCP gains are smaller
//! than UDP — §4.2.3). This module provides engine-agnostic sender and
//! receiver state machines: slow start, congestion avoidance, duplicate-ACK
//! fast retransmit, and go-back-N RTO recovery with an adaptive
//! (SRTT + 4·RTTVAR) timer.
//!
//! The MAC harness owns the event loop; it calls [`TcpSender::poll`] when
//! the window may have opened, forwards delivered data segments to
//! [`TcpReceiver::on_data`], turns the returned cumulative ack into a
//! reverse-link packet, and feeds it back into [`TcpSender::on_ack`].

use crate::packet::{FlowId, Packet, PacketId, PacketKind};
use domino_sim::{SimDuration, SimTime};
use domino_topology::LinkId;
use std::collections::BTreeMap;

/// TCP-lite tuning parameters.
#[derive(Clone, Debug)]
pub struct TcpConfig {
    /// Segment payload size (the paper's 512-byte virtual packet).
    pub mss_bytes: usize,
    /// Initial congestion window, packets.
    pub initial_cwnd: f64,
    /// Initial slow-start threshold, packets.
    pub initial_ssthresh: f64,
    /// Congestion-window cap, packets.
    pub max_cwnd: f64,
    /// Application offered rate in bits/s (0 = unlimited/backlogged).
    pub app_rate_bps: f64,
    /// Application buffer bound, packets of accumulated credit.
    pub app_buffer_packets: f64,
    /// RTO clamp, low end.
    pub min_rto: SimDuration,
    /// RTO clamp, high end.
    pub max_rto: SimDuration,
    /// Duplicate ACKs that trigger fast retransmit.
    pub dupack_threshold: u32,
}

impl Default for TcpConfig {
    fn default() -> TcpConfig {
        TcpConfig {
            mss_bytes: 512,
            initial_cwnd: 2.0,
            initial_ssthresh: 32.0,
            max_cwnd: 64.0,
            app_rate_bps: 10e6,
            app_buffer_packets: 128.0,
            min_rto: SimDuration::from_millis(20),
            max_rto: SimDuration::from_secs(2),
            dupack_threshold: 3,
        }
    }
}

/// Sender-side TCP-lite state machine.
#[derive(Clone, Debug)]
pub struct TcpSender {
    flow: FlowId,
    link: LinkId,
    cfg: TcpConfig,
    id_base: u64,
    id_serial: u64,
    /// Next never-sent sequence number (MSS units).
    next_seq: u64,
    /// Lowest unacknowledged sequence number.
    snd_una: u64,
    cwnd: f64,
    ssthresh: f64,
    dup_acks: u32,
    /// seq → send time for RTT sampling.
    in_flight: BTreeMap<u64, SimTime>,
    app_credit: f64,
    credit_updated_at: SimTime,
    srtt_us: Option<f64>,
    rttvar_us: f64,
    rto_backoff: u32,
    rto_deadline: Option<SimTime>,
    retransmissions: u64,
    timeouts: u64,
}

impl TcpSender {
    /// A fresh sender for `flow` over `link`, with `id_base` namespacing
    /// its packet ids.
    pub fn new(flow: FlowId, link: LinkId, cfg: TcpConfig, id_base: u64, start: SimTime) -> TcpSender {
        TcpSender {
            flow,
            link,
            cwnd: cfg.initial_cwnd,
            ssthresh: cfg.initial_ssthresh,
            cfg,
            id_base,
            id_serial: 0,
            next_seq: 0,
            snd_una: 0,
            dup_acks: 0,
            in_flight: BTreeMap::new(),
            app_credit: 0.0,
            credit_updated_at: start,
            srtt_us: None,
            rttvar_us: 0.0,
            rto_backoff: 0,
            rto_deadline: None,
            retransmissions: 0,
            timeouts: 0,
        }
    }

    /// Current congestion window (packets).
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Total fast + timeout retransmissions.
    pub fn retransmissions(&self) -> u64 {
        self.retransmissions
    }

    /// Total RTO events.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Deadline of the pending retransmission timer, if armed. The
    /// harness schedules a check at this instant and calls
    /// [`TcpSender::on_timer`].
    pub fn rto_deadline(&self) -> Option<SimTime> {
        self.rto_deadline
    }

    fn current_rto(&self) -> SimDuration {
        let base_us = match self.srtt_us {
            Some(srtt) => srtt + 4.0 * self.rttvar_us,
            None => 100_000.0, // 100 ms before the first sample
        };
        let scaled = base_us * f64::from(1u32 << self.rto_backoff.min(6));
        let d = SimDuration::from_micros_f64(scaled.max(0.0));
        d.clamp(self.cfg.min_rto, self.cfg.max_rto)
    }

    fn accrue_credit(&mut self, now: SimTime) {
        if self.cfg.app_rate_bps <= 0.0 {
            self.app_credit = self.cfg.app_buffer_packets;
            self.credit_updated_at = now;
            return;
        }
        let dt = now.saturating_since(self.credit_updated_at).as_secs_f64();
        let packets = self.cfg.app_rate_bps * dt / (self.cfg.mss_bytes as f64 * 8.0);
        self.app_credit = (self.app_credit + packets).min(self.cfg.app_buffer_packets);
        self.credit_updated_at = now;
    }

    fn make_packet(&mut self, seq: u64, now: SimTime) -> Packet {
        let serial = self.id_serial;
        self.id_serial += 1;
        Packet {
            id: PacketId(self.id_base | serial),
            flow: self.flow,
            link: self.link,
            payload_bytes: self.cfg.mss_bytes,
            created_at: now,
            kind: PacketKind::TcpData,
            seq,
        }
    }

    /// Release as many segments as the window and application allow.
    /// Call whenever the window may have opened (ack arrival, timer,
    /// periodic app tick).
    pub fn poll(&mut self, now: SimTime) -> Vec<Packet> {
        self.accrue_credit(now);
        let mut out = Vec::new();
        while (self.in_flight.len() as f64) < self.cwnd.floor()
            && self.app_credit >= 1.0
        {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.app_credit -= 1.0;
            self.in_flight.insert(seq, now);
            out.push(self.make_packet(seq, now));
        }
        if !self.in_flight.is_empty() && self.rto_deadline.is_none() {
            self.rto_deadline = Some(now + self.current_rto());
        }
        out
    }

    /// Process a cumulative acknowledgment (`ack` = receiver's next
    /// expected sequence). Returns any segments newly released.
    pub fn on_ack(&mut self, ack: u64, now: SimTime) -> Vec<Packet> {
        if ack > self.snd_una {
            // New data acknowledged.
            let advanced = ack - self.snd_una;
            // RTT sample from the oldest newly-acked segment, if we still
            // have its send time.
            if let Some(&sent) = self.in_flight.get(&self.snd_una) {
                let sample_us = now.saturating_since(sent).as_micros_f64();
                match self.srtt_us {
                    None => {
                        self.srtt_us = Some(sample_us);
                        self.rttvar_us = sample_us / 2.0;
                    }
                    Some(srtt) => {
                        self.rttvar_us =
                            0.75 * self.rttvar_us + 0.25 * (sample_us - srtt).abs();
                        self.srtt_us = Some(0.875 * srtt + 0.125 * sample_us);
                    }
                }
            }
            self.in_flight = self.in_flight.split_off(&ack);
            self.snd_una = ack;
            self.dup_acks = 0;
            self.rto_backoff = 0;
            for _ in 0..advanced {
                if self.cwnd < self.ssthresh {
                    self.cwnd += 1.0; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
            }
            self.cwnd = self.cwnd.min(self.cfg.max_cwnd);
            self.rto_deadline = if self.in_flight.is_empty() {
                None
            } else {
                Some(now + self.current_rto())
            };
            self.poll(now)
        } else {
            // Duplicate ACK.
            self.dup_acks += 1;
            if self.dup_acks == self.cfg.dupack_threshold && self.in_flight.contains_key(&self.snd_una) {
                // Fast retransmit of the missing segment.
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = self.ssthresh;
                self.retransmissions += 1;
                self.in_flight.insert(self.snd_una, now);
                self.rto_deadline = Some(now + self.current_rto());
                let p = self.make_packet(self.snd_una, now);
                let mut out = vec![p];
                out.extend(self.poll(now));
                out
            } else {
                Vec::new()
            }
        }
    }

    /// Check the retransmission timer. Call at (or after) the deadline
    /// returned by [`TcpSender::rto_deadline`]. On expiry: go-back-N —
    /// collapse the window and resend from `snd_una`.
    pub fn on_timer(&mut self, now: SimTime) -> Vec<Packet> {
        match self.rto_deadline {
            Some(deadline) if now >= deadline && !self.in_flight.is_empty() => {
                self.timeouts += 1;
                self.retransmissions += 1;
                self.ssthresh = (self.cwnd / 2.0).max(2.0);
                self.cwnd = 1.0;
                self.dup_acks = 0;
                self.rto_backoff += 1;
                // Go-back-N: everything unacked will be resent in order.
                self.in_flight.clear();
                self.next_seq = self.snd_una;
                let seq = self.next_seq;
                self.next_seq += 1;
                self.in_flight.insert(seq, now);
                self.rto_deadline = Some(now + self.current_rto());
                vec![self.make_packet(seq, now)]
            }
            _ => Vec::new(),
        }
    }
}

/// Receiver-side TCP-lite state: tracks the cumulative ack point.
#[derive(Clone, Debug, Default)]
pub struct TcpReceiver {
    expected: u64,
    out_of_order: std::collections::BTreeSet<u64>,
    delivered: u64,
}

impl TcpReceiver {
    /// A fresh receiver.
    pub fn new() -> TcpReceiver {
        TcpReceiver::default()
    }

    /// Register an arriving data segment; returns the cumulative ack to
    /// send back (the next expected sequence number).
    pub fn on_data(&mut self, seq: u64) -> u64 {
        if seq >= self.expected {
            self.out_of_order.insert(seq);
        }
        while self.out_of_order.remove(&self.expected) {
            self.expected += 1;
            self.delivered += 1;
        }
        self.expected
    }

    /// In-order segments delivered to the application so far.
    pub fn delivered(&self) -> u64 {
        self.delivered
    }

    /// Next expected sequence number.
    pub fn expected(&self) -> u64 {
        self.expected
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sender() -> TcpSender {
        TcpSender::new(FlowId(0), LinkId(0), TcpConfig::default(), 0, SimTime::ZERO)
    }

    fn at_ms(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn initial_poll_respects_cwnd() {
        let mut s = sender();
        let pkts = s.poll(at_ms(100));
        assert_eq!(pkts.len(), 2, "initial cwnd = 2");
        assert_eq!(pkts[0].seq, 0);
        assert_eq!(pkts[1].seq, 1);
        assert!(s.rto_deadline().is_some());
    }

    #[test]
    fn slow_start_doubles_per_rtt() {
        let mut s = sender();
        let p = s.poll(at_ms(100));
        assert_eq!(p.len(), 2);
        // Ack both: cwnd 2 -> 4, window opens by 4.
        let released = s.on_ack(2, at_ms(110));
        assert_eq!(s.cwnd(), 4.0);
        assert_eq!(released.len(), 4);
    }

    #[test]
    fn congestion_avoidance_grows_slowly() {
        let mut s = sender();
        // Push cwnd to ssthresh.
        s.cwnd = 32.0;
        let _ = s.poll(at_ms(100));
        let before = s.cwnd();
        let _ = s.on_ack(1, at_ms(120));
        assert!(s.cwnd() - before < 1.0, "CA growth per ack must be < 1");
    }

    #[test]
    fn dupacks_trigger_fast_retransmit() {
        let mut s = sender();
        s.cwnd = 8.0;
        let sent = s.poll(at_ms(100));
        assert!(sent.len() >= 4);
        assert_eq!(s.on_ack(0, at_ms(110)).len(), 0);
        assert_eq!(s.on_ack(0, at_ms(111)).len(), 0);
        let resent = s.on_ack(0, at_ms(112));
        assert!(!resent.is_empty());
        assert_eq!(resent[0].seq, 0, "fast retransmit resends snd_una");
        assert_eq!(s.retransmissions(), 1);
        assert!(s.cwnd() <= 4.0, "window halved: {}", s.cwnd());
    }

    #[test]
    fn rto_collapses_window() {
        let mut s = sender();
        s.cwnd = 16.0;
        let _ = s.poll(at_ms(100));
        let deadline = s.rto_deadline().unwrap();
        let resent = s.on_timer(deadline);
        assert_eq!(resent.len(), 1);
        assert_eq!(resent[0].seq, 0);
        assert_eq!(s.cwnd(), 1.0);
        assert_eq!(s.timeouts(), 1);
        // Backoff: new deadline further out than the first RTO interval.
        assert!(s.rto_deadline().unwrap() > deadline);
    }

    #[test]
    fn timer_before_deadline_is_noop() {
        let mut s = sender();
        let _ = s.poll(at_ms(100));
        let deadline = s.rto_deadline().unwrap();
        assert!(s.on_timer(deadline - SimDuration::from_millis(1)).is_empty());
        assert_eq!(s.timeouts(), 0);
    }

    #[test]
    fn app_rate_limits_release() {
        let cfg = TcpConfig { app_rate_bps: 4096.0 * 10.0, ..TcpConfig::default() }; // 10 pkt/s
        let mut s = TcpSender::new(FlowId(0), LinkId(0), cfg, 0, SimTime::ZERO);
        s.cwnd = 64.0;
        // After 100 ms only one packet of credit accrued.
        let pkts = s.poll(at_ms(100));
        assert_eq!(pkts.len(), 1);
        // After a further second, ten more.
        let pkts = s.poll(at_ms(1100));
        assert_eq!(pkts.len(), 10);
    }

    #[test]
    fn receiver_cumulative_ack_with_reordering() {
        let mut r = TcpReceiver::new();
        assert_eq!(r.on_data(0), 1);
        assert_eq!(r.on_data(2), 1, "gap holds the ack");
        assert_eq!(r.on_data(1), 3, "filling the gap advances past both");
        assert_eq!(r.delivered(), 3);
        // Duplicate delivery is harmless.
        assert_eq!(r.on_data(1), 3);
    }

    #[test]
    fn full_handshake_loop_transfers_data() {
        // Sender and receiver wired directly: everything delivered
        // instantly; cwnd should open and data flow at the app rate.
        let mut s = sender();
        let mut r = TcpReceiver::new();
        let mut now = SimTime::ZERO;
        let mut delivered = 0u64;
        for _ in 0..200 {
            now += SimDuration::from_millis(5);
            let mut pending = s.poll(now);
            // Deliver until the exchange quiesces (acks release more
            // segments, which are delivered in turn).
            while let Some(p) = pending.pop() {
                let ack = r.on_data(p.seq);
                pending.extend(s.on_ack(ack, now));
            }
            delivered = r.delivered();
        }
        assert!(delivered > 100, "delivered={delivered}");
        assert_eq!(s.timeouts(), 0);
    }
}
