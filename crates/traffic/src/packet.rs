//! Packets and flows.

use domino_sim::SimTime;
use domino_topology::LinkId;

/// Globally unique packet identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PacketId(pub u64);

/// Flow identifier (one flow per directed link in the paper's workloads).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct FlowId(pub u32);

/// What a packet carries.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketKind {
    /// UDP payload.
    Udp,
    /// TCP data segment; `seq` is meaningful.
    TcpData,
    /// TCP cumulative acknowledgment; `seq` holds the ack number.
    TcpAck,
}

/// A network-layer packet traversing one directed link.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Packet {
    /// Unique id.
    pub id: PacketId,
    /// Originating flow.
    pub flow: FlowId,
    /// The directed link this packet must traverse.
    pub link: LinkId,
    /// Payload size in bytes (the paper's evaluation uses 512-byte data
    /// packets).
    pub payload_bytes: usize,
    /// Enqueue time, for delay accounting ("from the time a packet is
    /// queued to the time it is successfully delivered", §4.2.4).
    pub created_at: SimTime,
    /// Payload kind.
    pub kind: PacketKind,
    /// TCP sequence/ack number in MSS units (0 for UDP).
    pub seq: u64,
}

impl Packet {
    /// True for TCP data segments (the only packets counted toward TCP
    /// goodput).
    pub fn counts_toward_goodput(&self) -> bool {
        matches!(self.kind, PacketKind::Udp | PacketKind::TcpData)
    }
}

/// The paper's default data packet size.
pub const DEFAULT_PACKET_BYTES: usize = 512;

/// Size we give TCP ACK packets. Under DCF this is their airtime basis;
/// under DOMINO an ACK still occupies a full fixed slot (§4.2.3 explains
/// the resulting TCP gain loss).
pub const TCP_ACK_BYTES: usize = 40;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_classification() {
        let mk = |kind| Packet {
            id: PacketId(0),
            flow: FlowId(0),
            link: LinkId(0),
            payload_bytes: 512,
            created_at: SimTime::ZERO,
            kind,
            seq: 0,
        };
        assert!(mk(PacketKind::Udp).counts_toward_goodput());
        assert!(mk(PacketKind::TcpData).counts_toward_goodput());
        assert!(!mk(PacketKind::TcpAck).counts_toward_goodput());
    }
}
