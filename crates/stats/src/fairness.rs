//! Jain's fairness index (Jain, Chiu & Hawe 1984), the throughput-fairness
//! metric of the paper's Fig 12(c)/(f).

/// Jain's fairness index over a set of allocations:
/// `(Σx)² / (n · Σx²)`.
///
/// Ranges from `1/n` (one user hogs everything) to `1.0` (perfectly
/// equal). Returns `1.0` for an empty set or all-zero allocations (no one
/// is being treated unfairly when nothing is allocated).
pub fn jain_index(allocations: &[f64]) -> f64 {
    if allocations.is_empty() {
        return 1.0;
    }
    assert!(
        allocations.iter().all(|&x| x.is_finite() && x >= 0.0),
        "allocations must be finite and non-negative"
    );
    let sum: f64 = allocations.iter().sum();
    if sum <= 0.0 {
        return 1.0;
    }
    let sum_sq: f64 = allocations.iter().map(|&x| x * x).sum();
    sum * sum / (allocations.len() as f64 * sum_sq)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_allocations_are_perfectly_fair() {
        assert!((jain_index(&[5.0, 5.0, 5.0, 5.0]) - 1.0).abs() < 1e-12);
        assert!((jain_index(&[0.1, 0.1]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn starvation_hits_lower_bound() {
        let idx = jain_index(&[10.0, 0.0, 0.0, 0.0]);
        assert!((idx - 0.25).abs() < 1e-12);
    }

    #[test]
    fn partial_unfairness_in_between() {
        let idx = jain_index(&[4.0, 2.0, 2.0]);
        assert!(idx > 1.0 / 3.0 && idx < 1.0, "idx={idx}");
        // Known value: 64 / (3*24) = 0.888…
        assert!((idx - 64.0 / 72.0).abs() < 1e-12);
    }

    #[test]
    fn scale_invariant() {
        let a = jain_index(&[1.0, 2.0, 3.0]);
        let b = jain_index(&[10.0, 20.0, 30.0]);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(jain_index(&[]), 1.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_allocation_panics() {
        let _ = jain_index(&[1.0, -1.0]);
    }
}
