//! Throughput and delay accumulators.

/// Counts delivered payload bits over a measurement window and reports
/// throughput.
#[derive(Clone, Debug, Default)]
pub struct ThroughputMeter {
    bits: u64,
    packets: u64,
}

impl ThroughputMeter {
    /// A fresh meter.
    pub fn new() -> ThroughputMeter {
        ThroughputMeter::default()
    }

    /// Record a delivered packet of `payload_bytes`.
    pub fn record_packet(&mut self, payload_bytes: usize) {
        self.bits += payload_bytes as u64 * 8;
        self.packets += 1;
    }

    /// Total delivered bits.
    pub fn bits(&self) -> u64 {
        self.bits
    }

    /// Total delivered packets.
    pub fn packets(&self) -> u64 {
        self.packets
    }

    /// Throughput in Mb/s over a window of `seconds`.
    pub fn mbps(&self, seconds: f64) -> f64 {
        assert!(seconds > 0.0, "empty measurement window");
        self.bits as f64 / seconds / 1e6
    }
}

/// Accumulates per-packet delays (µs) and reports summary statistics.
#[derive(Clone, Debug, Default)]
pub struct DelayMeter {
    samples: Vec<f64>,
}

impl DelayMeter {
    /// A fresh meter.
    pub fn new() -> DelayMeter {
        DelayMeter::default()
    }

    /// Record one packet's delay in microseconds.
    pub fn record_us(&mut self, delay_us: f64) {
        assert!(delay_us.is_finite() && delay_us >= 0.0, "invalid delay {delay_us}");
        self.samples.push(delay_us);
    }

    /// Number of recorded packets.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Mean delay in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; 0 when empty.
    pub fn quantile_us(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
        sorted[idx]
    }

    /// Maximum recorded delay (0 when empty).
    pub fn max_us(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_accounting() {
        let mut m = ThroughputMeter::new();
        for _ in 0..100 {
            m.record_packet(512);
        }
        assert_eq!(m.packets(), 100);
        assert_eq!(m.bits(), 100 * 512 * 8);
        // 409600 bits over 0.1 s = 4.096 Mb/s.
        assert!((m.mbps(0.1) - 4.096).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "empty measurement window")]
    fn zero_window_panics() {
        ThroughputMeter::new().mbps(0.0);
    }

    #[test]
    fn delay_statistics() {
        let mut d = DelayMeter::new();
        for v in [10.0, 20.0, 30.0, 40.0, 100.0] {
            d.record_us(v);
        }
        assert_eq!(d.count(), 5);
        assert!((d.mean_us() - 40.0).abs() < 1e-12);
        assert_eq!(d.quantile_us(0.5), 30.0);
        assert_eq!(d.quantile_us(1.0), 100.0);
        assert_eq!(d.quantile_us(0.0), 10.0);
        assert_eq!(d.max_us(), 100.0);
    }

    #[test]
    fn empty_meters_are_safe() {
        let d = DelayMeter::new();
        assert_eq!(d.mean_us(), 0.0);
        assert_eq!(d.quantile_us(0.9), 0.0);
        assert_eq!(d.max_us(), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid delay")]
    fn negative_delay_panics() {
        DelayMeter::new().record_us(-1.0);
    }
}
