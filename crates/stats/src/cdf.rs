//! Empirical cumulative distribution functions (for Fig 14's
//! throughput-gain CDF).

/// An empirical CDF over a sample set.
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Build from samples (order irrelevant). Panics on NaN.
    pub fn from_samples(mut samples: Vec<f64>) -> Cdf {
        assert!(samples.iter().all(|x| !x.is_nan()), "NaN sample");
        samples.sort_by(|a, b| a.total_cmp(b));
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// P(X ≤ x).
    pub fn probability_at(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (inverse CDF), nearest-rank. Panics when empty or
    /// `q` out of [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let idx = ((self.sorted.len() as f64 - 1.0) * q).round() as usize;
        self.sorted[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Smallest and largest sample. Panics when empty.
    pub fn range(&self) -> (f64, f64) {
        assert!(!self.sorted.is_empty(), "range of empty CDF");
        (self.sorted[0], *self.sorted.last().unwrap())
    }

    /// The full `(x, P(X ≤ x))` staircase, one point per sample — what a
    /// plotting harness prints.
    pub fn points(&self) -> Vec<(f64, f64)> {
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / self.sorted.len() as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cdf() -> Cdf {
        Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0, 5.0])
    }

    #[test]
    fn probability_staircase() {
        let c = cdf();
        assert_eq!(c.probability_at(0.5), 0.0);
        assert_eq!(c.probability_at(1.0), 0.2);
        assert_eq!(c.probability_at(3.5), 0.6);
        assert_eq!(c.probability_at(5.0), 1.0);
        assert_eq!(c.probability_at(99.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let c = cdf();
        assert_eq!(c.median(), 3.0);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.range(), (1.0, 5.0));
    }

    #[test]
    fn points_are_monotone() {
        let pts = cdf().points();
        assert_eq!(pts.len(), 5);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn empty_cdf_probability_is_zero() {
        let c = Cdf::from_samples(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.probability_at(1.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::from_samples(vec![1.0, f64::NAN]);
    }
}
