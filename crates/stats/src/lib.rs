//! # domino-stats
//!
//! Measurement utilities for the DOMINO reproduction's evaluation:
//! throughput/delay accumulators, Jain's fairness index (the paper's
//! fairness metric), empirical CDFs for Fig 14, and plain-text table
//! rendering for the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cdf;
pub mod fairness;
pub mod meters;
pub mod table;

pub use cdf::Cdf;
pub use fairness::jain_index;
pub use meters::{DelayMeter, ThroughputMeter};
pub use table::Table;
