//! Plain-text table rendering for the experiment harness.
//!
//! Every `figNN_*` / `tableN_*` binary in `domino-bench` prints its rows
//! through this type so the regenerated tables read like the paper's.

use core::fmt::Write as _;

/// A simple left-aligned text table.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Table {
        assert!(!header.is_empty(), "table needs at least one column");
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row; must match the header width.
    pub fn row(&mut self, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Append a row of displayable items.
    pub fn row_display<D: core::fmt::Display>(&mut self, cells: &[D]) -> &mut Table {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells)
    }

    /// Number of data rows so far.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render to a string.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "## {}", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:<w$} |");
            }
            s
        };
        let _ = writeln!(out, "{}", line(&self.header, &widths));
        let mut sep = String::from("|");
        for w in &widths {
            let _ = write!(sep, "{:-<1$}|", "", w + 2);
        }
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        let _ = ncols;
        out
    }
}

/// Format a float with fixed decimals (helper for table cells).
pub fn fmt_f(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("Throughput", &["scheme", "Mbps"]);
        t.row(&["DOMINO".into(), "32.72".into()]);
        t.row(&["DCF".into(), "9.97".into()]);
        let s = t.render();
        assert!(s.contains("## Throughput"));
        assert!(s.contains("| scheme | Mbps  |"));
        assert!(s.contains("| DOMINO | 32.72 |"));
        assert!(s.contains("| DCF    | 9.97  |"));
        assert_eq!(t.num_rows(), 2);
    }

    #[test]
    fn row_display_accepts_numbers() {
        let mut t = Table::new("", &["a", "b"]);
        t.row_display(&[1.5, 2.25]);
        assert!(t.render().contains("| 1.5 | 2.25 |"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn fmt_helper() {
        assert_eq!(fmt_f(12.3456, 2), "12.35");
        assert_eq!(fmt_f(10.0, 0), "10");
    }
}
