//! domino-obs: the deterministic observability plane.
//!
//! The repro's hardest claims are temporal — trigger chains fire inside
//! a detection window, epochs stall on a barrier, chaos runs recover
//! from crashes — but scalar end-of-run counters cannot show *when*
//! anything happened. This crate adds the missing layer:
//!
//! * [`TraceEvent`] / [`Tracer`] / [`TraceHandle`] — structured,
//!   sim-time-stamped events threaded through the engine, the medium,
//!   the wired backbone and every MAC. The determinism contract is
//!   absolute: a disabled handle makes **zero RNG draws and zero
//!   allocations**, so committed goldens stay byte-identical whether or
//!   not the instrumentation is compiled in or switched on.
//! * [`MetricsRegistry`] — counters/gauges/histograms with stable names
//!   and sorted iteration, the structured face of `RunStats`.
//! * [`jsonl`] — a versioned JSONL trace format (hand-rolled; the
//!   workspace is hermetic) written by `domino-run --trace` and read by
//!   the `domino-trace` CLI.
//! * [`analysis`] — trigger-chain reconstruction against the paper's
//!   ≤2-inbound/≤4-outbound degree limits, slot timelines, fault
//!   timelines (injection→recovery latency), and trace diffing.

pub mod analysis;
pub mod event;
pub mod jsonl;
pub mod metrics;
pub mod tracer;

pub use event::{FaultKind, TraceEvent};
pub use jsonl::{TraceMeta, SCHEMA_NAME, SCHEMA_VERSION};
pub use metrics::{Histogram, MetricsRegistry};
pub use tracer::{MemTracer, NoopTracer, TraceHandle, TraceRecord, Tracer};
