//! Trace analysis: trigger-chain reconstruction, slot timelines, fault
//! timelines, and trace diffing.
//!
//! Every function here is pure — it consumes parsed records and renders
//! `String`s; printing is the CLI's job (D006 keeps stdout out of
//! library code). All reports iterate `BTreeMap`s, so identical traces
//! render identical bytes.

use crate::event::{FaultKind, TraceEvent};
use crate::jsonl::{parse_trace, ParseError, TraceMeta};
use crate::tracer::TraceRecord;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The paper's outbound-degree cap: one signature burst targets at most
/// four nodes (§3.2).
pub const MAX_OUTBOUND: usize = 4;

/// The paper's inbound-degree cap: at most two bursts target the same
/// node for the same slot (§3.2).
pub const MAX_INBOUND: u64 = 2;

// ----------------------------------------------------------------- check

/// Structural validation of a parsed trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CheckReport {
    /// Run identity from the header.
    pub meta: TraceMeta,
    /// Total events.
    pub events: usize,
    /// Last timestamp minus first, ns (0 for empty traces).
    pub span_ns: u64,
    /// Events per kind, sorted by wire name.
    pub counts: Vec<(String, u64)>,
}

/// Parse `text` and validate its structure: known schema, known events,
/// monotonically non-decreasing timestamps.
pub fn check(text: &str) -> Result<CheckReport, ParseError> {
    let (meta, records) = parse_trace(text)?;
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut last = 0u64;
    for (i, rec) in records.iter().enumerate() {
        if rec.t_ns < last {
            return Err(ParseError {
                line: i + 2,
                msg: format!("timestamp regression: {} after {}", rec.t_ns, last),
            });
        }
        last = rec.t_ns;
        *counts.entry(rec.ev.name()).or_insert(0) += 1;
    }
    let span_ns = match (records.first(), records.last()) {
        (Some(a), Some(b)) => b.t_ns - a.t_ns,
        _ => 0,
    };
    Ok(CheckReport {
        meta,
        events: records.len(),
        span_ns,
        counts: counts.into_iter().map(|(k, v)| (k.to_owned(), v)).collect(),
    })
}

/// Render a [`CheckReport`] for the terminal.
pub fn render_check(r: &CheckReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "trace ok: {} / {} seed={} scale={}",
        r.meta.experiment, r.meta.scheme, r.meta.seed, r.meta.scale
    );
    let _ = writeln!(out, "{} events over {:.3} ms", r.events, r.span_ns as f64 / 1e6);
    for (name, n) in &r.counts {
        let _ = writeln!(out, "  {name:<16} {n}");
    }
    out
}

// ---------------------------------------------------------------- chains

/// Trigger-chain reconstruction over a DOMINO trace.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ChainReport {
    /// Signature bursts emitted.
    pub emits: u64,
    /// Bursts detected by a target.
    pub detects: u64,
    /// Bursts missed by a target.
    pub misses: u64,
    /// Chain roots (bursts emitted by a node with no recorded inbound
    /// trigger — watchdog/kick-off starts).
    pub roots: u64,
    /// Deepest trigger chain observed (a root burst is depth 1).
    pub max_depth: u64,
    /// Largest outbound target set on any single burst.
    pub max_outbound: usize,
    /// Largest number of bursts addressed to one (slot, target) pair.
    pub max_inbound: u64,
    /// Degree-limit violations, rendered.
    pub violations: Vec<String>,
}

/// Reconstruct trigger chains from `records`.
///
/// Depth propagates through detections: a burst emitted by a node whose
/// own trigger was detected at depth `d` creates depth `d + 1` for each
/// target that detects it. Slot ids are globally monotonic, so the
/// inbound count per `(slot, target)` is well-defined over a whole
/// trace.
pub fn chains(records: &[TraceRecord]) -> ChainReport {
    let mut report = ChainReport::default();
    // Depth of the chain that most recently triggered each node.
    let mut node_depth: BTreeMap<u32, u64> = BTreeMap::new();
    // Pending burst depth addressed to (slot, target).
    let mut pending: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    let mut inbound: BTreeMap<(u64, u32), u64> = BTreeMap::new();
    for rec in records {
        match &rec.ev {
            TraceEvent::SigEmit { node, slot, targets } => {
                report.emits += 1;
                let depth = match node_depth.get(node) {
                    Some(d) => d + 1,
                    None => {
                        report.roots += 1;
                        1
                    }
                };
                report.max_depth = report.max_depth.max(depth);
                report.max_outbound = report.max_outbound.max(targets.len());
                if targets.len() > MAX_OUTBOUND {
                    report.violations.push(format!(
                        "t={} node {} burst for slot {} targets {} nodes (limit {})",
                        rec.t_ns,
                        node,
                        slot,
                        targets.len(),
                        MAX_OUTBOUND
                    ));
                }
                for &target in targets {
                    let n = inbound.entry((*slot, target)).or_insert(0);
                    *n += 1;
                    report.max_inbound = report.max_inbound.max(*n);
                    if *n > MAX_INBOUND {
                        report.violations.push(format!(
                            "slot {slot} target {target} has {n} inbound bursts (limit {MAX_INBOUND})"
                        ));
                    }
                    pending.insert((*slot, target), depth);
                }
            }
            TraceEvent::SigDetect { node, slot } => {
                report.detects += 1;
                if let Some(depth) = pending.get(&(*slot, *node)) {
                    node_depth.insert(*node, *depth);
                    report.max_depth = report.max_depth.max(*depth);
                }
            }
            TraceEvent::SigMiss { .. } => {
                report.misses += 1;
            }
            _ => {}
        }
    }
    report
}

/// Render a [`ChainReport`] for the terminal.
pub fn render_chains(r: &ChainReport) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "signature bursts: {} emitted, {} detected, {} missed", r.emits, r.detects, r.misses);
    let _ = writeln!(out, "chain roots: {} (watchdog / kick-off starts)", r.roots);
    let _ = writeln!(out, "max chain depth: {}", r.max_depth);
    let _ = writeln!(out, "max outbound degree: {} (limit {})", r.max_outbound, MAX_OUTBOUND);
    let _ = writeln!(out, "max inbound degree: {} (limit {})", r.max_inbound, MAX_INBOUND);
    if r.violations.is_empty() {
        let _ = writeln!(out, "degree limits respected");
    } else {
        let _ = writeln!(out, "VIOLATIONS:");
        for v in &r.violations {
            let _ = writeln!(out, "  {v}");
        }
    }
    out
}

// -------------------------------------------------------------- timeline

/// Render the slot timeline: one line per `slot_start`, capped at
/// `limit` rows (0 = unlimited).
pub fn timeline(records: &[TraceRecord], limit: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{:>12}  {:>6}  {:>4}  kind", "t_us", "slot", "link");
    let mut shown = 0usize;
    let mut total = 0usize;
    for rec in records {
        if let TraceEvent::SlotStart { slot, link, fake } = &rec.ev {
            total += 1;
            if limit != 0 && shown >= limit {
                continue;
            }
            shown += 1;
            let kind = if *fake { "fake" } else { "data" };
            let _ = writeln!(out, "{:>12.1}  {:>6}  {:>4}  {kind}", rec.t_ns as f64 / 1e3, slot, link);
        }
    }
    if shown < total {
        let _ = writeln!(out, "... {} more slot starts not shown", total - shown);
    }
    let _ = writeln!(out, "{total} slot starts");
    out
}

// ---------------------------------------------------------------- faults

/// Fault-timeline summary: per-class injection counts and
/// injection→recovery latency for the classes that recover.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Injections per class, in wire-name order.
    pub injections: Vec<(FaultKind, u64)>,
    /// Recoveries per class, in wire-name order.
    pub recoveries: Vec<(FaultKind, u64)>,
    /// Paired injection→recovery latencies, ns, per class.
    pub latencies_ns: Vec<(FaultKind, Vec<u64>)>,
    /// Backbone messages dropped.
    pub backbone_drops: u64,
    /// Backbone latency spikes observed.
    pub backbone_spikes: u64,
}

/// Summarize the fault timeline of `records`.
pub fn fault_summary(records: &[TraceRecord]) -> FaultReport {
    let mut injections: BTreeMap<FaultKind, u64> = BTreeMap::new();
    let mut recoveries: BTreeMap<FaultKind, u64> = BTreeMap::new();
    let mut latencies: BTreeMap<FaultKind, Vec<u64>> = BTreeMap::new();
    // Open injections per (kind, node), awaiting recovery.
    let mut open: BTreeMap<(FaultKind, u32), u64> = BTreeMap::new();
    let mut report = FaultReport::default();
    for rec in records {
        match &rec.ev {
            TraceEvent::FaultInject { kind, node } => {
                *injections.entry(*kind).or_insert(0) += 1;
                open.insert((*kind, *node), rec.t_ns);
            }
            TraceEvent::FaultRecover { kind, node } => {
                *recoveries.entry(*kind).or_insert(0) += 1;
                if let Some(at) = open.remove(&(*kind, *node)) {
                    latencies.entry(*kind).or_default().push(rec.t_ns - at);
                }
            }
            TraceEvent::BackboneDrop => report.backbone_drops += 1,
            TraceEvent::BackboneSend { spiked: true, .. } => report.backbone_spikes += 1,
            _ => {}
        }
    }
    report.injections = injections.into_iter().collect();
    report.recoveries = recoveries.into_iter().collect();
    report.latencies_ns = latencies.into_iter().collect();
    report
}

/// Render a [`FaultReport`] for the terminal.
pub fn render_faults(r: &FaultReport) -> String {
    let mut out = String::new();
    if r.injections.is_empty() && r.backbone_drops == 0 && r.backbone_spikes == 0 {
        let _ = writeln!(out, "no faults in trace");
        return out;
    }
    for (kind, n) in &r.injections {
        let recovered = r
            .recoveries
            .iter()
            .find(|(k, _)| k == kind)
            .map(|&(_, n)| n)
            .unwrap_or(0);
        let _ = writeln!(out, "{:<14} injected {n}, recovered {recovered}", kind.name());
        if let Some((_, lats)) = r.latencies_ns.iter().find(|(k, _)| k == kind) {
            if !lats.is_empty() {
                let sum: u64 = lats.iter().sum();
                let max = lats.iter().copied().max().unwrap_or(0);
                let _ = writeln!(
                    out,
                    "{:<14} recovery latency: mean {:.1} us, max {:.1} us over {} pairs",
                    "",
                    sum as f64 / lats.len() as f64 / 1e3,
                    max as f64 / 1e3,
                    lats.len()
                );
            }
        }
    }
    let _ = writeln!(out, "backbone: {} drops, {} latency spikes", r.backbone_drops, r.backbone_spikes);
    out
}

// ------------------------------------------------------------------ diff

/// Compare two traces: report the first diverging record and per-kind
/// count deltas.
pub fn diff(
    a_meta: &TraceMeta,
    a: &[TraceRecord],
    b_meta: &TraceMeta,
    b: &[TraceRecord],
) -> String {
    let mut out = String::new();
    if a_meta != b_meta {
        let _ = writeln!(
            out,
            "headers differ: {}/{} seed={} vs {}/{} seed={}",
            a_meta.experiment, a_meta.scheme, a_meta.seed, b_meta.experiment, b_meta.scheme, b_meta.seed
        );
    }
    let first_divergence = a.iter().zip(b.iter()).position(|(x, y)| x != y);
    match first_divergence {
        Some(i) => {
            let _ = writeln!(out, "first divergence at event {} (of {} / {}):", i + 1, a.len(), b.len());
            let _ = writeln!(out, "  a: t={} {:?}", a[i].t_ns, a[i].ev);
            let _ = writeln!(out, "  b: t={} {:?}", b[i].t_ns, b[i].ev);
        }
        None if a.len() != b.len() => {
            let (longer, name, shorter_len) = if a.len() > b.len() {
                (a, "a", b.len())
            } else {
                (b, "b", a.len())
            };
            let _ = writeln!(
                out,
                "traces identical for {} events; {} continues with t={} {:?}",
                shorter_len, name, longer[shorter_len].t_ns, longer[shorter_len].ev
            );
        }
        None => {
            let _ = writeln!(out, "traces identical ({} events)", a.len());
            return out;
        }
    }
    let mut deltas: BTreeMap<&'static str, i64> = BTreeMap::new();
    for rec in a {
        *deltas.entry(rec.ev.name()).or_insert(0) += 1;
    }
    for rec in b {
        *deltas.entry(rec.ev.name()).or_insert(0) -= 1;
    }
    let changed: Vec<(&str, i64)> = deltas.into_iter().filter(|&(_, d)| d != 0).collect();
    if changed.is_empty() {
        let _ = writeln!(out, "per-kind counts identical");
    } else {
        let _ = writeln!(out, "per-kind count deltas (a - b):");
        for (name, d) in changed {
            let _ = writeln!(out, "  {name:<16} {d:+}");
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(t_ns: u64, ev: TraceEvent) -> TraceRecord {
        TraceRecord { t_ns, ev }
    }

    #[test]
    fn chains_track_depth_and_roots() {
        // Root burst from node 0 triggers node 1; node 1's burst
        // triggers node 2: depth 1 → 2 for the detecting targets.
        let records = vec![
            rec(0, TraceEvent::SigEmit { node: 0, slot: 1, targets: vec![1] }),
            rec(10, TraceEvent::SigDetect { node: 1, slot: 1 }),
            rec(20, TraceEvent::SigEmit { node: 1, slot: 2, targets: vec![2] }),
            rec(30, TraceEvent::SigDetect { node: 2, slot: 2 }),
            rec(40, TraceEvent::SigEmit { node: 3, slot: 3, targets: vec![0] }),
            rec(50, TraceEvent::SigMiss { node: 0, slot: 3 }),
        ];
        let r = chains(&records);
        assert_eq!(r.emits, 3);
        assert_eq!(r.detects, 2);
        assert_eq!(r.misses, 1);
        assert_eq!(r.roots, 2, "node 0 and node 3 start chains");
        assert_eq!(r.max_depth, 2);
        assert_eq!(r.max_outbound, 1);
        assert_eq!(r.max_inbound, 1);
        assert!(r.violations.is_empty());
    }

    #[test]
    fn chains_flag_degree_violations() {
        let records = vec![
            rec(0, TraceEvent::SigEmit { node: 0, slot: 1, targets: vec![1, 2, 3, 4, 5] }),
            rec(1, TraceEvent::SigEmit { node: 6, slot: 1, targets: vec![1] }),
            rec(2, TraceEvent::SigEmit { node: 7, slot: 1, targets: vec![1] }),
        ];
        let r = chains(&records);
        assert_eq!(r.max_outbound, 5);
        assert_eq!(r.max_inbound, 3, "three bursts target (slot 1, node 1)");
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn fault_summary_pairs_recovery_latency() {
        let records = vec![
            rec(100, TraceEvent::FaultInject { kind: FaultKind::ApCrash, node: 2 }),
            rec(150, TraceEvent::BackboneDrop),
            rec(600, TraceEvent::FaultRecover { kind: FaultKind::ApCrash, node: 2 }),
            rec(700, TraceEvent::BackboneSend { delay_ns: 1, spiked: true }),
            rec(800, TraceEvent::FaultInject { kind: FaultKind::Fade, node: 9 }),
        ];
        let r = fault_summary(&records);
        assert_eq!(r.injections, vec![(FaultKind::ApCrash, 1), (FaultKind::Fade, 1)]);
        assert_eq!(r.recoveries, vec![(FaultKind::ApCrash, 1)]);
        assert_eq!(r.latencies_ns, vec![(FaultKind::ApCrash, vec![500])]);
        assert_eq!(r.backbone_drops, 1);
        assert_eq!(r.backbone_spikes, 1);
    }

    #[test]
    fn diff_reports_first_divergence() {
        let meta = TraceMeta { experiment: "x".into(), scheme: "domino".into(), seed: 1, scale: "q".into() };
        let a = vec![rec(0, TraceEvent::RopPoll { ap: 1 }), rec(5, TraceEvent::BackboneDrop)];
        let b = vec![rec(0, TraceEvent::RopPoll { ap: 1 }), rec(6, TraceEvent::BackboneDrop)];
        let d = diff(&meta, &a, &meta, &b);
        assert!(d.contains("first divergence at event 2"), "{d}");
        let same = diff(&meta, &a, &meta, &a);
        assert!(same.contains("traces identical"), "{same}");
    }

    #[test]
    fn check_rejects_time_regressions() {
        let text = "{\"schema\":\"domino-trace\",\"v\":1,\"experiment\":\"x\",\"scheme\":\"s\",\"seed\":1,\"scale\":\"q\"}\n{\"t\":10,\"ev\":\"backbone_drop\"}\n{\"t\":3,\"ev\":\"backbone_drop\"}\n";
        assert!(check(text).is_err());
        let ok = "{\"schema\":\"domino-trace\",\"v\":1,\"experiment\":\"x\",\"scheme\":\"s\",\"seed\":1,\"scale\":\"q\"}\n{\"t\":3,\"ev\":\"backbone_drop\"}\n{\"t\":10,\"ev\":\"rop_poll\",\"ap\":2}\n";
        let report = check(ok).expect("valid trace");
        assert_eq!(report.events, 2);
        assert_eq!(report.span_ns, 7);
        assert_eq!(report.counts, vec![("backbone_drop".to_owned(), 1), ("rop_poll".to_owned(), 1)]);
    }

    #[test]
    fn timeline_caps_rows() {
        let records: Vec<TraceRecord> = (0..5)
            .map(|i| rec(i * 1000, TraceEvent::SlotStart { slot: i, link: 0, fake: i % 2 == 0 }))
            .collect();
        let full = timeline(&records, 0);
        assert!(full.contains("5 slot starts"), "{full}");
        let capped = timeline(&records, 2);
        assert!(capped.contains("... 3 more slot starts not shown"), "{capped}");
    }
}
