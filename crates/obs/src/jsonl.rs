//! The versioned JSONL trace format.
//!
//! One JSON object per line: a header identifying the schema and the
//! run, then one flat object per event. Hand-rolled writer and parser —
//! the workspace is hermetic (no serde); the event objects are flat
//! (string / integer / bool / integer-array values only), so a minimal
//! scanner suffices. Writer output is byte-stable: field order is fixed
//! per event kind.
//!
//! Schema evolution policy: `v` bumps on any breaking change (renamed
//! events, retyped fields); *adding* an event kind or a field is
//! non-breaking and keeps the version. Readers reject headers whose
//! `schema` or `v` they do not know.

use crate::event::{FaultKind, TraceEvent};
use crate::tracer::TraceRecord;
use std::collections::BTreeMap;
use std::fmt;

/// The schema identifier carried by every trace header.
pub const SCHEMA_NAME: &str = "domino-trace";

/// Current schema version.
pub const SCHEMA_VERSION: u64 = 1;

/// Run identity carried by the trace header.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceMeta {
    /// Experiment name (registry key), e.g. `fig10_timeline`.
    pub experiment: String,
    /// Scheme that produced the events, e.g. `domino`.
    pub scheme: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Scale label, e.g. `quick`.
    pub scale: String,
}

/// A trace parse failure, with the 1-based line it occurred on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError { line, msg: msg.into() })
}

// ---------------------------------------------------------------- writer

fn push_str_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_field_u64(out: &mut String, key: &str, v: u64) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&v.to_string());
}

fn push_field_bool(out: &mut String, key: &str, v: bool) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if v { "true" } else { "false" });
}

fn push_field_str(out: &mut String, key: &str, v: &str) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    push_str_escaped(out, v);
}

fn push_field_arr(out: &mut String, key: &str, vs: &[u32]) {
    out.push(',');
    out.push('"');
    out.push_str(key);
    out.push_str("\":[");
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

/// Render the header line for `meta`.
pub fn write_header(meta: &TraceMeta) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":");
    push_str_escaped(&mut out, SCHEMA_NAME);
    push_field_u64(&mut out, "v", SCHEMA_VERSION);
    push_field_str(&mut out, "experiment", &meta.experiment);
    push_field_str(&mut out, "scheme", &meta.scheme);
    push_field_u64(&mut out, "seed", meta.seed);
    push_field_str(&mut out, "scale", &meta.scale);
    out.push('}');
    out
}

/// Render one event line.
pub fn write_record(rec: &TraceRecord) -> String {
    let mut out = String::new();
    out.push_str("{\"t\":");
    out.push_str(&rec.t_ns.to_string());
    push_field_str(&mut out, "ev", rec.ev.name());
    match &rec.ev {
        TraceEvent::SlotStart { slot, link, fake } => {
            push_field_u64(&mut out, "slot", *slot);
            push_field_u64(&mut out, "link", u64::from(*link));
            push_field_bool(&mut out, "fake", *fake);
        }
        TraceEvent::SlotEnd { link, delivered } => {
            push_field_u64(&mut out, "link", u64::from(*link));
            push_field_bool(&mut out, "delivered", *delivered);
        }
        TraceEvent::SigEmit { node, slot, targets } => {
            push_field_u64(&mut out, "node", u64::from(*node));
            push_field_u64(&mut out, "slot", *slot);
            push_field_arr(&mut out, "targets", targets);
        }
        TraceEvent::SigDetect { node, slot } | TraceEvent::SigMiss { node, slot } => {
            push_field_u64(&mut out, "node", u64::from(*node));
            push_field_u64(&mut out, "slot", *slot);
        }
        TraceEvent::TriggerFire { node, slot } => {
            push_field_u64(&mut out, "node", u64::from(*node));
            push_field_u64(&mut out, "slot", *slot);
        }
        TraceEvent::RopPoll { ap } => {
            push_field_u64(&mut out, "ap", u64::from(*ap));
        }
        TraceEvent::RopReport { client, ap, queue } => {
            push_field_u64(&mut out, "client", u64::from(*client));
            push_field_u64(&mut out, "ap", u64::from(*ap));
            push_field_u64(&mut out, "queue", u64::from(*queue));
        }
        TraceEvent::BatchBegin { batch, first_slot, slots } => {
            push_field_u64(&mut out, "batch", *batch);
            push_field_u64(&mut out, "first_slot", *first_slot);
            push_field_u64(&mut out, "slots", u64::from(*slots));
        }
        TraceEvent::BatchEnd { batch } => {
            push_field_u64(&mut out, "batch", *batch);
        }
        TraceEvent::EpochBarrier { epoch, pending } => {
            push_field_u64(&mut out, "epoch", *epoch);
            push_field_u64(&mut out, "pending", u64::from(*pending));
        }
        TraceEvent::BackboneSend { delay_ns, spiked } => {
            push_field_u64(&mut out, "delay_ns", *delay_ns);
            push_field_bool(&mut out, "spiked", *spiked);
        }
        TraceEvent::BackboneDrop => {}
        TraceEvent::FaultInject { kind, node } | TraceEvent::FaultRecover { kind, node } => {
            push_field_str(&mut out, "kind", kind.name());
            push_field_u64(&mut out, "node", u64::from(*node));
        }
        TraceEvent::LivelockCheck { events_in_window } => {
            push_field_u64(&mut out, "events", *events_in_window);
        }
        TraceEvent::Livelock { events_in_window, budget } => {
            push_field_u64(&mut out, "events", *events_in_window);
            push_field_u64(&mut out, "budget", *budget);
        }
    }
    out.push('}');
    out
}

/// Render a full trace: header line plus one line per record.
pub fn write_trace(meta: &TraceMeta, records: &[TraceRecord]) -> String {
    let mut out = write_header(meta);
    out.push('\n');
    for rec in records {
        out.push_str(&write_record(rec));
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------- parser

/// A parsed flat JSON value.
#[derive(Clone, Debug, PartialEq)]
enum Val {
    Str(String),
    Num(u64),
    Bool(bool),
    Arr(Vec<u64>),
}

struct Scanner<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Scanner<'a> {
    fn new(s: &'a str, line: usize) -> Scanner<'a> {
        Scanner { bytes: s.as_bytes(), pos: 0, line }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, want: u8) -> Result<(), ParseError> {
        self.skip_ws();
        match self.bump() {
            Some(b) if b == want => Ok(()),
            other => err(
                self.line,
                format!("expected '{}', found {:?}", want as char, other.map(|b| b as char)),
            ),
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'n') => out.push('\n'),
                    other => {
                        return err(self.line, format!("bad escape {:?}", other.map(|b| b as char)))
                    }
                },
                Some(b) => out.push(b as char),
                None => return err(self.line, "unterminated string"),
            }
        }
    }

    fn number(&mut self) -> Result<u64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == start {
            return err(self.line, "expected a number");
        }
        let digits = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| ParseError { line: self.line, msg: "non-utf8 number".into() })?;
        digits
            .parse::<u64>()
            .map_err(|e| ParseError { line: self.line, msg: format!("bad number: {e}") })
    }

    fn parse_value(&mut self) -> Result<Val, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(Val::Str(self.string()?)),
            Some(b'0'..=b'9') => Ok(Val::Num(self.number()?)),
            Some(b't') => {
                if self.bytes[self.pos..].starts_with(b"true") {
                    self.pos += 4;
                    Ok(Val::Bool(true))
                } else {
                    err(self.line, "bad literal")
                }
            }
            Some(b'f') => {
                if self.bytes[self.pos..].starts_with(b"false") {
                    self.pos += 5;
                    Ok(Val::Bool(false))
                } else {
                    err(self.line, "bad literal")
                }
            }
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                loop {
                    items.push(self.number()?);
                    self.skip_ws();
                    match self.bump() {
                        Some(b',') => continue,
                        Some(b']') => return Ok(Val::Arr(items)),
                        other => {
                            return err(
                                self.line,
                                format!("bad array separator {:?}", other.map(|b| b as char)),
                            )
                        }
                    }
                }
            }
            other => err(self.line, format!("unexpected value start {:?}", other.map(|b| b as char))),
        }
    }

    fn object(&mut self) -> Result<BTreeMap<String, Val>, ParseError> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(map);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect_byte(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(map),
                other => {
                    return err(
                        self.line,
                        format!("bad object separator {:?}", other.map(|b| b as char)),
                    )
                }
            }
        }
    }
}

fn get_num(map: &BTreeMap<String, Val>, key: &str, line: usize) -> Result<u64, ParseError> {
    match map.get(key) {
        Some(Val::Num(n)) => Ok(*n),
        _ => err(line, format!("missing numeric field '{key}'")),
    }
}

fn get_u32(map: &BTreeMap<String, Val>, key: &str, line: usize) -> Result<u32, ParseError> {
    u32::try_from(get_num(map, key, line)?)
        .map_err(|_| ParseError { line, msg: format!("field '{key}' exceeds u32") })
}

fn get_str<'m>(
    map: &'m BTreeMap<String, Val>,
    key: &str,
    line: usize,
) -> Result<&'m str, ParseError> {
    match map.get(key) {
        Some(Val::Str(s)) => Ok(s.as_str()),
        _ => err(line, format!("missing string field '{key}'")),
    }
}

fn get_bool(map: &BTreeMap<String, Val>, key: &str, line: usize) -> Result<bool, ParseError> {
    match map.get(key) {
        Some(Val::Bool(b)) => Ok(*b),
        _ => err(line, format!("missing boolean field '{key}'")),
    }
}

fn get_arr_u32(
    map: &BTreeMap<String, Val>,
    key: &str,
    line: usize,
) -> Result<Vec<u32>, ParseError> {
    match map.get(key) {
        Some(Val::Arr(vs)) => vs
            .iter()
            .map(|&v| {
                u32::try_from(v)
                    .map_err(|_| ParseError { line, msg: format!("'{key}' item exceeds u32") })
            })
            .collect(),
        _ => err(line, format!("missing array field '{key}'")),
    }
}

fn get_fault_kind(
    map: &BTreeMap<String, Val>,
    line: usize,
) -> Result<FaultKind, ParseError> {
    let name = get_str(map, "kind", line)?;
    FaultKind::from_name(name)
        .ok_or_else(|| ParseError { line, msg: format!("unknown fault kind '{name}'") })
}

/// Parse one header line.
pub fn parse_header(text: &str, line: usize) -> Result<TraceMeta, ParseError> {
    let map = Scanner::new(text, line).object()?;
    let schema = get_str(&map, "schema", line)?;
    if schema != SCHEMA_NAME {
        return err(line, format!("unknown schema '{schema}'"));
    }
    let v = get_num(&map, "v", line)?;
    if v != SCHEMA_VERSION {
        return err(line, format!("unsupported schema version {v} (reader knows {SCHEMA_VERSION})"));
    }
    Ok(TraceMeta {
        experiment: get_str(&map, "experiment", line)?.to_owned(),
        scheme: get_str(&map, "scheme", line)?.to_owned(),
        seed: get_num(&map, "seed", line)?,
        scale: get_str(&map, "scale", line)?.to_owned(),
    })
}

/// Parse one event line.
pub fn parse_record(text: &str, line: usize) -> Result<TraceRecord, ParseError> {
    let map = Scanner::new(text, line).object()?;
    let t_ns = get_num(&map, "t", line)?;
    let name = get_str(&map, "ev", line)?;
    let ev = match name {
        "slot_start" => TraceEvent::SlotStart {
            slot: get_num(&map, "slot", line)?,
            link: get_u32(&map, "link", line)?,
            fake: get_bool(&map, "fake", line)?,
        },
        "slot_end" => TraceEvent::SlotEnd {
            link: get_u32(&map, "link", line)?,
            delivered: get_bool(&map, "delivered", line)?,
        },
        "sig_emit" => TraceEvent::SigEmit {
            node: get_u32(&map, "node", line)?,
            slot: get_num(&map, "slot", line)?,
            targets: get_arr_u32(&map, "targets", line)?,
        },
        "sig_detect" => TraceEvent::SigDetect {
            node: get_u32(&map, "node", line)?,
            slot: get_num(&map, "slot", line)?,
        },
        "sig_miss" => TraceEvent::SigMiss {
            node: get_u32(&map, "node", line)?,
            slot: get_num(&map, "slot", line)?,
        },
        "trigger_fire" => TraceEvent::TriggerFire {
            node: get_u32(&map, "node", line)?,
            slot: get_num(&map, "slot", line)?,
        },
        "rop_poll" => TraceEvent::RopPoll { ap: get_u32(&map, "ap", line)? },
        "rop_report" => TraceEvent::RopReport {
            client: get_u32(&map, "client", line)?,
            ap: get_u32(&map, "ap", line)?,
            queue: get_u32(&map, "queue", line)?,
        },
        "batch_begin" => TraceEvent::BatchBegin {
            batch: get_num(&map, "batch", line)?,
            first_slot: get_num(&map, "first_slot", line)?,
            slots: get_u32(&map, "slots", line)?,
        },
        "batch_end" => TraceEvent::BatchEnd { batch: get_num(&map, "batch", line)? },
        "epoch_barrier" => TraceEvent::EpochBarrier {
            epoch: get_num(&map, "epoch", line)?,
            pending: get_u32(&map, "pending", line)?,
        },
        "backbone_send" => TraceEvent::BackboneSend {
            delay_ns: get_num(&map, "delay_ns", line)?,
            spiked: get_bool(&map, "spiked", line)?,
        },
        "backbone_drop" => TraceEvent::BackboneDrop,
        "fault_inject" => TraceEvent::FaultInject {
            kind: get_fault_kind(&map, line)?,
            node: get_u32(&map, "node", line)?,
        },
        "fault_recover" => TraceEvent::FaultRecover {
            kind: get_fault_kind(&map, line)?,
            node: get_u32(&map, "node", line)?,
        },
        "livelock_check" => TraceEvent::LivelockCheck {
            events_in_window: get_num(&map, "events", line)?,
        },
        "livelock" => TraceEvent::Livelock {
            events_in_window: get_num(&map, "events", line)?,
            budget: get_num(&map, "budget", line)?,
        },
        other => return err(line, format!("unknown event '{other}'")),
    };
    Ok(TraceRecord { t_ns, ev })
}

/// Parse a full trace (header + events). Blank lines are ignored.
pub fn parse_trace(text: &str) -> Result<(TraceMeta, Vec<TraceRecord>), ParseError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (i, header) = match lines.next() {
        Some(pair) => pair,
        None => return err(0, "empty trace"),
    };
    let meta = parse_header(header, i + 1)?;
    let mut records = Vec::new();
    for (i, line) in lines {
        records.push(parse_record(line, i + 1)?);
    }
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<TraceRecord> {
        vec![
            TraceRecord { t_ns: 0, ev: TraceEvent::BatchBegin { batch: 1, first_slot: 0, slots: 4 } },
            TraceRecord {
                t_ns: 120,
                ev: TraceEvent::SigEmit { node: 2, slot: 0, targets: vec![1, 3] },
            },
            TraceRecord { t_ns: 150, ev: TraceEvent::SigDetect { node: 1, slot: 0 } },
            TraceRecord { t_ns: 150, ev: TraceEvent::SigMiss { node: 3, slot: 0 } },
            TraceRecord { t_ns: 200, ev: TraceEvent::SlotStart { slot: 0, link: 5, fake: false } },
            TraceRecord { t_ns: 400, ev: TraceEvent::SlotEnd { link: 5, delivered: true } },
            TraceRecord { t_ns: 500, ev: TraceEvent::BackboneSend { delay_ns: 285_000, spiked: true } },
            TraceRecord { t_ns: 510, ev: TraceEvent::BackboneDrop },
            TraceRecord {
                t_ns: 600,
                ev: TraceEvent::FaultInject { kind: FaultKind::ApCrash, node: 4 },
            },
            TraceRecord {
                t_ns: 900,
                ev: TraceEvent::FaultRecover { kind: FaultKind::ApCrash, node: 4 },
            },
            TraceRecord { t_ns: 950, ev: TraceEvent::RopPoll { ap: 0 } },
            TraceRecord { t_ns: 960, ev: TraceEvent::RopReport { client: 1, ap: 0, queue: 9 } },
            TraceRecord { t_ns: 970, ev: TraceEvent::TriggerFire { node: 1, slot: 2 } },
            TraceRecord { t_ns: 980, ev: TraceEvent::EpochBarrier { epoch: 3, pending: 0 } },
            TraceRecord { t_ns: 990, ev: TraceEvent::BatchEnd { batch: 1 } },
            TraceRecord { t_ns: 995, ev: TraceEvent::LivelockCheck { events_in_window: 12 } },
            TraceRecord {
                t_ns: 999,
                ev: TraceEvent::Livelock { events_in_window: 5_000_001, budget: 5_000_000 },
            },
        ]
    }

    #[test]
    fn round_trip_every_event_kind() {
        let meta = TraceMeta {
            experiment: "fig10_timeline".into(),
            scheme: "domino".into(),
            seed: 0xD0311,
            scale: "quick".into(),
        };
        let text = write_trace(&meta, &sample_records());
        let (meta2, recs2) = parse_trace(&text).expect("round trip");
        assert_eq!(meta, meta2);
        assert_eq!(sample_records(), recs2);
    }

    #[test]
    fn writer_is_byte_stable() {
        let meta = TraceMeta {
            experiment: "x".into(),
            scheme: "dcf".into(),
            seed: 1,
            scale: "full".into(),
        };
        assert_eq!(write_trace(&meta, &sample_records()), write_trace(&meta, &sample_records()));
    }

    #[test]
    fn rejects_unknown_schema_and_version() {
        let bad = "{\"schema\":\"other\",\"v\":1,\"experiment\":\"x\",\"scheme\":\"s\",\"seed\":1,\"scale\":\"q\"}";
        assert!(parse_header(bad, 1).is_err());
        let future = "{\"schema\":\"domino-trace\",\"v\":99,\"experiment\":\"x\",\"scheme\":\"s\",\"seed\":1,\"scale\":\"q\"}";
        assert!(parse_header(future, 1).is_err());
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(parse_record("{\"t\":1}", 1).is_err(), "missing ev");
        assert!(parse_record("{\"t\":1,\"ev\":\"mystery\"}", 1).is_err(), "unknown event");
        assert!(parse_record("{\"t\":1,\"ev\":\"rop_poll\"}", 1).is_err(), "missing field");
        assert!(parse_record("not json", 1).is_err());
        assert!(parse_trace("").is_err(), "empty trace");
    }

    #[test]
    fn string_escapes_round_trip() {
        let meta = TraceMeta {
            experiment: "we\"ird\\name".into(),
            scheme: "domino".into(),
            seed: 7,
            scale: "q".into(),
        };
        let parsed = parse_header(&write_header(&meta), 1).expect("escapes");
        assert_eq!(parsed, meta);
    }
}
