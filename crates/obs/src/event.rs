//! The trace event taxonomy.
//!
//! Every event a scheme engine, the sim core, the medium, the backbone,
//! or the fault plane can emit while a run is traced. Events carry only
//! plain integers and booleans — no floats (exact equality must hold for
//! trace diffing) and no references into engine state (a trace outlives
//! its run).

/// Which fault-plane class an injection or recovery belongs to.
///
/// Wired-backbone faults are not listed here: a lost message is a
/// [`TraceEvent::BackboneDrop`] and a latency spike rides on
/// [`TraceEvent::BackboneSend`]'s `spiked` flag.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum FaultKind {
    /// An AP crashed with state loss and went dark for its downtime.
    ApCrash,
    /// The controller's batch computation stalled.
    ComputeStall,
    /// A client answered a ROP poll with a stale queue report.
    StaleRop,
    /// A deep fade suppressed signature detection at a receiver.
    Fade,
    /// A ROP report was corrupted in the air.
    RopCorrupt,
    /// A churn dark interval swallowed a client's transmission.
    ChurnDrop,
}

impl FaultKind {
    /// Stable wire name used in the JSONL schema.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ApCrash => "ap_crash",
            FaultKind::ComputeStall => "compute_stall",
            FaultKind::StaleRop => "stale_rop",
            FaultKind::Fade => "fade",
            FaultKind::RopCorrupt => "rop_corrupt",
            FaultKind::ChurnDrop => "churn_drop",
        }
    }

    /// Inverse of [`FaultKind::name`].
    pub fn from_name(name: &str) -> Option<FaultKind> {
        Some(match name {
            "ap_crash" => FaultKind::ApCrash,
            "compute_stall" => FaultKind::ComputeStall,
            "stale_rop" => FaultKind::StaleRop,
            "fade" => FaultKind::Fade,
            "rop_corrupt" => FaultKind::RopCorrupt,
            "churn_drop" => FaultKind::ChurnDrop,
            _ => return None,
        })
    }

    /// Every kind, in wire-name order (stable iteration for summaries).
    pub const ALL: [FaultKind; 6] = [
        FaultKind::ApCrash,
        FaultKind::ChurnDrop,
        FaultKind::ComputeStall,
        FaultKind::Fade,
        FaultKind::RopCorrupt,
        FaultKind::StaleRop,
    ];
}

/// One structured trace event.
///
/// The taxonomy covers the temporal claims the paper makes: slot
/// transmissions (Fig 10/11), the signature-burst trigger chain (§3.2),
/// ROP polling (§3.5), batch dispatch over the jittery backbone (§3.6),
/// CENTAUR's epoch barrier (§4.2.3), fault injections/recoveries, and
/// the engine's livelock guard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A scheduled slot transmission started.
    SlotStart {
        /// Absolute (globally monotonic) slot index.
        slot: u64,
        /// The transmitting link.
        link: u32,
        /// Header-only fake keep-alive?
        fake: bool,
    },
    /// A slot's data exchange left the air.
    SlotEnd {
        /// The transmitting link.
        link: u32,
        /// Did the payload deliver?
        delivered: bool,
    },
    /// A signature burst was put on the air.
    SigEmit {
        /// Emitting node.
        node: u32,
        /// The slot the burst triggers.
        slot: u64,
        /// Targeted nodes (the paper caps this at 4 outbound).
        targets: Vec<u32>,
    },
    /// A targeted receiver's correlator detected the burst.
    SigDetect {
        /// Detecting node.
        node: u32,
        /// The triggered slot.
        slot: u64,
    },
    /// A targeted receiver missed the burst (SINR / correlator failure).
    SigMiss {
        /// The receiver that missed.
        node: u32,
        /// The slot that went untriggered.
        slot: u64,
    },
    /// A detected trigger actually fired a slot start.
    TriggerFire {
        /// The fired node.
        node: u32,
        /// The fired slot.
        slot: u64,
    },
    /// An AP started a ROP poll of its clients.
    RopPoll {
        /// Polling AP.
        ap: u32,
    },
    /// A client's queue report reached its AP.
    RopReport {
        /// Reporting client.
        client: u32,
        /// Receiving AP.
        ap: u32,
        /// Reported queue length.
        queue: u32,
    },
    /// The controller dispatched a batch of scheduled slots.
    BatchBegin {
        /// Batch counter.
        batch: u64,
        /// First absolute slot index in the batch.
        first_slot: u64,
        /// Number of slots in the batch.
        slots: u32,
    },
    /// The controller observed batch completion.
    BatchEnd {
        /// Batch counter.
        batch: u64,
    },
    /// CENTAUR's epoch barrier released (or timed out).
    EpochBarrier {
        /// Epoch counter.
        epoch: u64,
        /// APs still outstanding when the barrier moved.
        pending: u32,
    },
    /// A message survived the wired backbone.
    BackboneSend {
        /// Wire latency applied, ns.
        delay_ns: u64,
        /// Did a congestion spike inflate the latency?
        spiked: bool,
    },
    /// The wired backbone lost a message.
    BackboneDrop,
    /// The fault plane injected a fault.
    FaultInject {
        /// Fault class.
        kind: FaultKind,
        /// Affected node (0 for node-less classes).
        node: u32,
    },
    /// A previously injected fault recovered.
    FaultRecover {
        /// Fault class.
        kind: FaultKind,
        /// Recovered node.
        node: u32,
    },
    /// The liveness window rolled over (periodic health probe).
    LivelockCheck {
        /// Events processed in the window that just closed.
        events_in_window: u64,
    },
    /// The liveness budget tripped: the run was declared livelocked.
    Livelock {
        /// Events processed inside the fatal window.
        events_in_window: u64,
        /// The budget that was exceeded.
        budget: u64,
    },
}

impl TraceEvent {
    /// Stable wire name used in the JSONL schema.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::SlotStart { .. } => "slot_start",
            TraceEvent::SlotEnd { .. } => "slot_end",
            TraceEvent::SigEmit { .. } => "sig_emit",
            TraceEvent::SigDetect { .. } => "sig_detect",
            TraceEvent::SigMiss { .. } => "sig_miss",
            TraceEvent::TriggerFire { .. } => "trigger_fire",
            TraceEvent::RopPoll { .. } => "rop_poll",
            TraceEvent::RopReport { .. } => "rop_report",
            TraceEvent::BatchBegin { .. } => "batch_begin",
            TraceEvent::BatchEnd { .. } => "batch_end",
            TraceEvent::EpochBarrier { .. } => "epoch_barrier",
            TraceEvent::BackboneSend { .. } => "backbone_send",
            TraceEvent::BackboneDrop => "backbone_drop",
            TraceEvent::FaultInject { .. } => "fault_inject",
            TraceEvent::FaultRecover { .. } => "fault_recover",
            TraceEvent::LivelockCheck { .. } => "livelock_check",
            TraceEvent::Livelock { .. } => "livelock",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_kind_names_round_trip() {
        for k in FaultKind::ALL {
            assert_eq!(FaultKind::from_name(k.name()), Some(k));
        }
        assert_eq!(FaultKind::from_name("nope"), None);
    }

    #[test]
    fn event_names_are_distinct() {
        let evs = [
            TraceEvent::SlotStart { slot: 0, link: 0, fake: false },
            TraceEvent::SlotEnd { link: 0, delivered: true },
            TraceEvent::SigEmit { node: 0, slot: 0, targets: vec![] },
            TraceEvent::SigDetect { node: 0, slot: 0 },
            TraceEvent::SigMiss { node: 0, slot: 0 },
            TraceEvent::TriggerFire { node: 0, slot: 0 },
            TraceEvent::RopPoll { ap: 0 },
            TraceEvent::RopReport { client: 0, ap: 0, queue: 0 },
            TraceEvent::BatchBegin { batch: 0, first_slot: 0, slots: 0 },
            TraceEvent::BatchEnd { batch: 0 },
            TraceEvent::EpochBarrier { epoch: 0, pending: 0 },
            TraceEvent::BackboneSend { delay_ns: 0, spiked: false },
            TraceEvent::BackboneDrop,
            TraceEvent::FaultInject { kind: FaultKind::Fade, node: 0 },
            TraceEvent::FaultRecover { kind: FaultKind::ApCrash, node: 0 },
            TraceEvent::LivelockCheck { events_in_window: 0 },
            TraceEvent::Livelock { events_in_window: 0, budget: 0 },
        ];
        let mut names: Vec<&str> = evs.iter().map(|e| e.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), evs.len());
    }
}
