//! Tracer sinks and the cheap handle engines thread through their state.
//!
//! The determinism contract: a disabled handle ([`TraceHandle::off`],
//! the `Default`) makes **zero RNG draws and zero allocations** — the
//! event constructor closure passed to [`TraceHandle::emit`] is never
//! invoked — so a traced binary with tracing off is byte-identical to
//! one built without any instrumentation. Enabling a tracer only ever
//! *observes* the run; nothing downstream of an `emit` call may branch
//! on the handle.

use crate::event::TraceEvent;
use std::cell::RefCell;
use std::rc::Rc;

/// One recorded event with its simulation-time timestamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Simulation time of the event, ns since run start.
    pub t_ns: u64,
    /// The event.
    pub ev: TraceEvent,
}

/// A sink for trace events.
///
/// `record` takes `&self`: sinks are shared between the engine, the
/// medium, the backbone and the scheme state machine of a single run
/// via [`TraceHandle`] clones, all on one thread.
pub trait Tracer: std::fmt::Debug {
    /// Record one event at simulation time `t_ns`.
    fn record(&self, t_ns: u64, ev: TraceEvent);
}

/// The zero-cost sink: discards everything.
///
/// Exists mostly for documentation value — the idiomatic "tracing off"
/// is [`TraceHandle::off`], which skips event construction entirely and
/// never even calls `record`.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopTracer;

impl Tracer for NoopTracer {
    fn record(&self, _t_ns: u64, _ev: TraceEvent) {}
}

/// An in-memory sink: appends every record to a growable buffer.
#[derive(Debug, Default)]
pub struct MemTracer {
    events: RefCell<Vec<TraceRecord>>,
}

impl MemTracer {
    /// Drain the recorded events (leaves the buffer empty).
    pub fn take(&self) -> Vec<TraceRecord> {
        self.events.take()
    }

    /// Number of records currently buffered.
    pub fn len(&self) -> usize {
        self.events.borrow().len()
    }

    /// Is the buffer empty?
    pub fn is_empty(&self) -> bool {
        self.events.borrow().is_empty()
    }
}

impl Tracer for MemTracer {
    fn record(&self, t_ns: u64, ev: TraceEvent) {
        self.events.borrow_mut().push(TraceRecord { t_ns, ev });
    }
}

/// The handle engines hold. Cloning is cheap (an `Rc` bump or a `None`
/// copy); the disabled handle is a single `Option` check per call site.
///
/// Not `Send` by design: handles are created *inside* a run, after any
/// thread-pool dispatch boundary, and never escape it.
#[derive(Clone, Debug, Default)]
pub struct TraceHandle(Option<Rc<dyn Tracer>>);

impl TraceHandle {
    /// The disabled handle: `emit` never constructs an event.
    pub fn off() -> TraceHandle {
        TraceHandle(None)
    }

    /// Wrap an explicit sink.
    pub fn new(tracer: Rc<dyn Tracer>) -> TraceHandle {
        TraceHandle(Some(tracer))
    }

    /// A fresh in-memory sink plus a handle feeding it.
    pub fn mem() -> (TraceHandle, Rc<MemTracer>) {
        let sink = Rc::new(MemTracer::default());
        (TraceHandle(Some(Rc::<MemTracer>::clone(&sink))), sink)
    }

    /// Is a sink attached?
    pub fn is_on(&self) -> bool {
        self.0.is_some()
    }

    /// Record the event built by `make` — or do nothing at all, without
    /// calling `make`, when the handle is off. Call sites pay one branch
    /// when tracing is disabled.
    pub fn emit(&self, t_ns: u64, make: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = &self.0 {
            sink.record(t_ns, make());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_never_builds_the_event() {
        let handle = TraceHandle::off();
        let mut built = false;
        handle.emit(1, || {
            built = true;
            TraceEvent::BackboneDrop
        });
        assert!(!built, "disabled handle must not invoke the constructor");
        assert!(!handle.is_on());
    }

    #[test]
    fn mem_tracer_captures_in_order() {
        let (handle, sink) = TraceHandle::mem();
        assert!(handle.is_on());
        handle.emit(5, || TraceEvent::RopPoll { ap: 1 });
        let also = handle.clone();
        also.emit(9, || TraceEvent::BackboneDrop);
        assert_eq!(sink.len(), 2);
        let events = sink.take();
        assert!(sink.is_empty());
        assert_eq!(
            events,
            vec![
                TraceRecord { t_ns: 5, ev: TraceEvent::RopPoll { ap: 1 } },
                TraceRecord { t_ns: 9, ev: TraceEvent::BackboneDrop },
            ]
        );
    }

    #[test]
    fn default_handle_is_off() {
        assert!(!TraceHandle::default().is_on());
    }
}
