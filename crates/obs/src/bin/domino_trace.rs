//! domino-trace: analyze JSONL traces written by `domino-run --trace`.
//!
//! Subcommands:
//!   check    <trace>        validate schema, event kinds, timestamps
//!   chains   <trace>        reconstruct trigger chains vs the ≤2/≤4 limits
//!   timeline <trace> [-n N] render the slot timeline (first N rows)
//!   faults   <trace>        fault timeline: injections, recovery latency
//!   diff     <a> <b>        first divergence + per-kind count deltas
//!
//! All rendering lives in `domino_obs::analysis`; this binary only reads
//! files and prints pre-rendered strings.

use domino_obs::analysis;
use domino_obs::jsonl::parse_trace;
use std::process::ExitCode;

const USAGE: &str = "usage: domino-trace <check|chains|timeline|faults|diff> <trace.jsonl> [args]

  check    <trace>          validate schema, event kinds, timestamps
  chains   <trace>          trigger chains vs the paper's degree limits
  timeline <trace> [-n N]   slot timeline (default first 40 rows, 0 = all)
  faults   <trace>          injections, recoveries, recovery latency
  diff     <a> <b>          first divergence + per-kind count deltas";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn load(path: &str) -> Result<(domino_obs::TraceMeta, Vec<domino_obs::TraceRecord>), String> {
    parse_trace(&read(path)?).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().map(String::as_str).unwrap_or("");
    match cmd {
        "check" => {
            let path = args.get(1).ok_or(USAGE.to_owned())?;
            let report = analysis::check(&read(path)?).map_err(|e| format!("{path}: {e}"))?;
            Ok(analysis::render_check(&report))
        }
        "chains" => {
            let path = args.get(1).ok_or(USAGE.to_owned())?;
            let (_, records) = load(path)?;
            Ok(analysis::render_chains(&analysis::chains(&records)))
        }
        "timeline" => {
            let path = args.get(1).ok_or(USAGE.to_owned())?;
            let mut limit = 40usize;
            if let Some(flag) = args.get(2) {
                if flag == "-n" || flag == "--limit" {
                    limit = args
                        .get(3)
                        .and_then(|v| v.parse().ok())
                        .ok_or("timeline: -n needs a number".to_owned())?;
                } else {
                    return Err(format!("unknown flag '{flag}'\n{USAGE}"));
                }
            }
            let (_, records) = load(path)?;
            Ok(analysis::timeline(&records, limit))
        }
        "faults" => {
            let path = args.get(1).ok_or(USAGE.to_owned())?;
            let (_, records) = load(path)?;
            Ok(analysis::render_faults(&analysis::fault_summary(&records)))
        }
        "diff" => {
            let a_path = args.get(1).ok_or(USAGE.to_owned())?;
            let b_path = args.get(2).ok_or(USAGE.to_owned())?;
            let (a_meta, a) = load(a_path)?;
            let (b_meta, b) = load(b_path)?;
            Ok(analysis::diff(&a_meta, &a, &b_meta, &b))
        }
        _ => Err(USAGE.to_owned()),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(out) => {
            print!("{}", out);
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{}", msg);
            ExitCode::FAILURE
        }
    }
}
