//! A deterministic metrics registry.
//!
//! Counters, gauges and histograms addressed by stable string names,
//! stored in `BTreeMap`s so every iteration order is the sorted name
//! order — a registry rendered twice produces identical bytes. The
//! registry is pure bookkeeping: it never reads clocks (D001) and never
//! draws randomness (D004); wall-time measurements are taken runner-side
//! with `testkit::bench::Stopwatch` and *recorded* here.

use std::collections::BTreeMap;

/// A power-of-two-bucket histogram over `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// `buckets[i]` counts samples in `[2^(i-1), 2^i)`; `buckets[0]`
    /// counts zeros and ones.
    buckets: Vec<u64>,
}

/// Index of the bucket a sample falls into.
fn bucket_of(value: u64) -> usize {
    (64 - value.leading_zeros() as usize).saturating_sub(1)
}

impl Histogram {
    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let b = bucket_of(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// The populated buckets as `(bucket_upper_bound, count)` pairs in
    /// ascending order.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 0)
            .map(|(i, &c)| (if i >= 63 { u64::MAX } else { 1u64 << (i + 1) }, c))
            .collect()
    }
}

/// The registry: named counters, gauges and histograms with sorted,
/// deterministic iteration.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_owned()).or_insert(0) += delta;
    }

    /// Current value of a counter (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Set the named gauge to `value`.
    pub fn gauge_set(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_owned(), value);
    }

    /// Current value of a gauge.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Record one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        self.histograms.entry(name.to_owned()).or_default().observe(value);
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All counters in sorted name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All gauges in sorted name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, f64)> {
        self.gauges.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// All histograms in sorted name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Render every metric as `name value` lines in sorted order —
    /// byte-stable across identical runs.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in self.counters() {
            out.push_str(name);
            out.push(' ');
            out.push_str(&v.to_string());
            out.push('\n');
        }
        for (name, v) in self.gauges() {
            out.push_str(name);
            out.push(' ');
            out.push_str(&format!("{v:.6}"));
            out.push('\n');
        }
        for (name, h) in self.histograms() {
            out.push_str(&format!(
                "{name} count={} sum={} min={} max={}\n",
                h.count, h.sum, h.min, h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_iterate_sorted() {
        let mut m = MetricsRegistry::new();
        m.counter_add("z.last", 2);
        m.counter_add("a.first", 1);
        m.counter_add("z.last", 3);
        assert_eq!(m.counter("z.last"), 5);
        assert_eq!(m.counter("missing"), 0);
        let names: Vec<&str> = m.counters().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.first", "z.last"]);
    }

    #[test]
    fn histogram_tracks_shape() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.sum, 1006);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.mean(), 251);
        let buckets = h.buckets();
        assert!(buckets.iter().map(|&(_, c)| c).sum::<u64>() == 4);
        // 1000 lands in the (512, 1024] bucket.
        assert!(buckets.iter().any(|&(ub, c)| ub == 1024 && c == 1));
    }

    #[test]
    fn render_is_stable() {
        let mut m = MetricsRegistry::new();
        m.counter_add("domino.bursts_sent", 7);
        m.gauge_set("run.duration_s", 2.0);
        m.observe("crash.latency_ns", 100);
        assert_eq!(m.render(), m.clone().render());
        assert!(m.render().starts_with("domino.bursts_sent 7\n"));
    }
}
