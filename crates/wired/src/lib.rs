//! # domino-wired
//!
//! The wired backbone between the APs and the central controller.
//!
//! The whole reason Relative Scheduling exists is that this backbone
//! *jitters*: the paper (§4.2.1, following CENTAUR's measurements) models
//! per-message latency as normally distributed with mean 285 µs and a
//! variance of 22 µs, which is orders of magnitude coarser than the 9 µs
//! WiFi slot — so strict schedules cannot be released to APs with slot
//! accuracy. This crate provides that latency model and a typed
//! AP↔controller message layer on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use domino_obs::{TraceEvent, TraceHandle};
use domino_sim::rng::streams;
use domino_sim::{SimDuration, SimRng, SimTime};

/// Latency model of one backbone hop.
#[derive(Clone, Debug)]
pub struct WiredLatency {
    /// Mean one-way latency in microseconds.
    pub mean_us: f64,
    /// Standard deviation of the one-way latency in microseconds.
    pub std_us: f64,
    /// Floor below which no sample is allowed (switch + NIC minimum).
    pub min_us: f64,
}

impl Default for WiredLatency {
    /// The paper's §4.2.1 parameters: Normal(285 µs, 22 µs).
    ///
    /// The paper says "variance 22 µs"; CENTAUR (its cited source)
    /// reports a standard deviation of that magnitude, and Fig 11 sweeps
    /// this knob as "wired latency variance ... 20 µs to 80 µs" with
    /// resulting misalignments of 10–20 µs, which only makes sense as a
    /// standard deviation. We treat it as such.
    fn default() -> WiredLatency {
        WiredLatency { mean_us: 285.0, std_us: 22.0, min_us: 50.0 }
    }
}

impl WiredLatency {
    /// The default model with a different jitter (Fig 11 sweeps 20–80 µs).
    pub fn with_std(std_us: f64) -> WiredLatency {
        WiredLatency { std_us, ..WiredLatency::default() }
    }

    /// Draw one latency sample.
    ///
    /// The sample is a normal deviate clamped from below: `.max(min_us)`
    /// moves all left-tail mass onto the floor, so the *effective* mean of
    /// what this returns is strictly greater than `mean_us` (a truncated-
    /// normal bias). With the default parameters the floor sits more than
    /// 10σ below the mean and the bias is far below a nanosecond, but for
    /// models where the floor bites (e.g. `mean_us` near `min_us`, or the
    /// wide-σ Fig 11 sweeps) the shift is real — the
    /// `clamped_sample_mean_is_biased_upward` test pins it.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let us = rng.normal(self.mean_us, self.std_us).max(self.min_us);
        SimDuration::from_micros_f64(us)
    }
}

/// A message in flight on the backbone, addressed to one AP (downstream)
/// or to the controller (upstream).
#[derive(Clone, Debug, PartialEq)]
pub struct InTransit<M> {
    /// Delivery instant.
    pub deliver_at: SimTime,
    /// Payload.
    pub message: M,
}

/// The backbone: draws an independent latency per message and computes
/// delivery times. The caller (the simulation harness) owns the event
/// queue; this type owns the randomness and the accounting.
#[derive(Debug)]
pub struct Backbone {
    latency: WiredLatency,
    rng: SimRng,
    /// Fault draws (loss, spikes) come from their own stream so that a
    /// fault-free run consumes exactly the same jitter sequence whether or
    /// not the knobs exist.
    faults: SimRng,
    loss: f64,
    spike: f64,
    spike_extra_us: f64,
    sent: u64,
    lost: u64,
    spiked: u64,
    tracer: TraceHandle,
}

impl Backbone {
    /// A backbone with the given latency model, seeded deterministically.
    /// All fault knobs default to off (loss probability 0.0, no spikes).
    pub fn new(latency: WiredLatency, master_seed: u64) -> Backbone {
        Backbone {
            latency,
            rng: SimRng::derive(master_seed, streams::WIRED_JITTER),
            faults: SimRng::derive(master_seed, streams::FAULT_WIRED),
            loss: 0.0,
            spike: 0.0,
            spike_extra_us: 0.0,
            sent: 0,
            lost: 0,
            spiked: 0,
            tracer: TraceHandle::off(),
        }
    }

    /// Attach a trace sink. Observation only — attaching never changes
    /// latency draws, loss decisions, or delivery times; the backbone
    /// emits [`TraceEvent::BackboneSend`] per surviving message and
    /// [`TraceEvent::BackboneDrop`] per loss.
    pub fn set_tracer(&mut self, tracer: TraceHandle) {
        self.tracer = tracer;
    }

    /// Set the per-message loss probability (default 0.0). Only
    /// [`Backbone::try_send`] honors it; with 0.0 no loss draw is made.
    pub fn set_loss(&mut self, probability: f64) {
        self.loss = probability.clamp(0.0, 1.0);
    }

    /// Set the per-message delay-spike probability and the mean extra
    /// delay (exponentially distributed) a spiked message suffers on top
    /// of its [`WiredLatency`] draw. Defaults to off.
    pub fn set_spikes(&mut self, probability: f64, extra_us: f64) {
        self.spike = probability.clamp(0.0, 1.0);
        self.spike_extra_us = extra_us.max(0.0);
    }

    /// Send a message now; returns it stamped with its delivery time.
    /// Loss-exempt: models an ideal (never-dropping) backbone hop.
    pub fn send<M>(&mut self, now: SimTime, message: M) -> InTransit<M> {
        self.sent += 1;
        let deliver_at = now + self.latency.sample(&mut self.rng);
        self.tracer.emit(now.as_nanos(), || TraceEvent::BackboneSend {
            delay_ns: deliver_at.saturating_since(now).as_nanos(),
            spiked: false,
        });
        InTransit { deliver_at, message }
    }

    /// Send a message subject to the fault knobs: `None` means the
    /// backbone dropped it. The latency draw happens first and
    /// unconditionally, so surviving messages see exactly the latencies a
    /// fault-free run would have given them; with all knobs at zero this
    /// is byte-for-byte [`Backbone::send`].
    pub fn try_send<M>(&mut self, now: SimTime, message: M) -> Option<InTransit<M>> {
        let mut deliver_at = now + self.latency.sample(&mut self.rng);
        self.sent += 1;
        if self.loss > 0.0 && self.faults.chance(self.loss) {
            self.lost += 1;
            self.tracer.emit(now.as_nanos(), || TraceEvent::BackboneDrop);
            return None;
        }
        let mut spiked = false;
        if self.spike > 0.0 && self.faults.chance(self.spike) {
            self.spiked += 1;
            spiked = true;
            deliver_at += SimDuration::from_micros_f64(self.faults.exponential(self.spike_extra_us));
        }
        self.tracer.emit(now.as_nanos(), || TraceEvent::BackboneSend {
            delay_ns: deliver_at.saturating_since(now).as_nanos(),
            spiked,
        });
        Some(InTransit { deliver_at, message })
    }

    /// Messages sent so far (including ones the fault knobs dropped).
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// Messages dropped by the loss knob so far.
    pub fn messages_lost(&self) -> u64 {
        self.lost
    }

    /// Messages delayed by the spike knob so far.
    pub fn spikes_injected(&self) -> u64 {
        self.spiked
    }

    /// The latency model in force.
    pub fn latency(&self) -> &WiredLatency {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let l = WiredLatency::default();
        assert_eq!(l.mean_us, 285.0);
        assert_eq!(l.std_us, 22.0);
    }

    #[test]
    fn samples_cluster_around_mean() {
        let l = WiredLatency::default();
        let mut rng = SimRng::derive(1, streams::WIRED_JITTER);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let s = l.sample(&mut rng).as_micros_f64();
            sum += s;
            sumsq += s * s;
        }
        let mean = sum / n as f64;
        let std = (sumsq / n as f64 - mean * mean).sqrt();
        assert!((mean - 285.0).abs() < 1.0, "mean={mean}");
        assert!((std - 22.0).abs() < 1.0, "std={std}");
    }

    #[test]
    fn samples_respect_floor() {
        let l = WiredLatency { mean_us: 60.0, std_us: 100.0, min_us: 50.0 };
        let mut rng = SimRng::derive(2, streams::WIRED_JITTER);
        for _ in 0..5_000 {
            assert!(l.sample(&mut rng).as_micros_f64() >= 50.0);
        }
    }

    #[test]
    fn backbone_stamps_future_delivery() {
        let mut bb = Backbone::new(WiredLatency::default(), 99);
        let now = SimTime::from_millis(3);
        let m = bb.send(now, "schedule-batch-7");
        assert!(m.deliver_at > now);
        assert!(m.deliver_at.saturating_since(now).as_micros_f64() > 100.0);
        assert_eq!(m.message, "schedule-batch-7");
        assert_eq!(bb.messages_sent(), 1);
    }

    #[test]
    fn independent_messages_jitter_independently() {
        let mut bb = Backbone::new(WiredLatency::default(), 7);
        let now = SimTime::ZERO;
        let a = bb.send(now, 1u32).deliver_at;
        let b = bb.send(now, 2u32).deliver_at;
        assert_ne!(a, b, "two messages drew identical latencies");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut bb = Backbone::new(WiredLatency::default(), seed);
            (0..10)
                .map(|i| bb.send(SimTime::ZERO, i).deliver_at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }

    #[test]
    fn clamped_sample_mean_is_biased_upward() {
        // With the floor one σ below the mean, Φ(-1) ≈ 15.9 % of the mass
        // is clamped up; the truncated mean of max(N(µ,σ), µ-σ) is
        // µ + σ(φ(1) - Φ(-1)) ≈ µ + 0.0833σ. Pin that the empirical
        // clamped mean lands on the analytic value, not on µ.
        let l = WiredLatency { mean_us: 100.0, std_us: 40.0, min_us: 60.0 };
        let mut rng = SimRng::derive(11, streams::WIRED_JITTER);
        let n = 200_000;
        let mean =
            (0..n).map(|_| l.sample(&mut rng).as_micros_f64()).sum::<f64>() / n as f64;
        let analytic = 100.0 + 40.0 * 0.083_332; // µ + σ·(φ(1) − Φ(−1))
        assert!((mean - analytic).abs() < 0.2, "mean={mean} analytic={analytic}");
        assert!(mean > 100.0 + 2.0, "clamping must visibly shift the mean: {mean}");
    }

    #[test]
    fn try_send_with_knobs_off_matches_send() {
        let mut ideal = Backbone::new(WiredLatency::default(), 21);
        let mut faulty = Backbone::new(WiredLatency::default(), 21);
        for i in 0..100u32 {
            let a = ideal.send(SimTime::ZERO, i);
            let b = faulty.try_send(SimTime::ZERO, i).expect("no loss configured");
            assert_eq!(a, b);
        }
        assert_eq!(faulty.messages_lost(), 0);
        assert_eq!(faulty.spikes_injected(), 0);
    }

    #[test]
    fn loss_knob_drops_at_the_configured_rate() {
        let mut bb = Backbone::new(WiredLatency::default(), 31);
        bb.set_loss(0.3);
        let n = 20_000;
        let delivered = (0..n).filter(|&i| bb.try_send(SimTime::ZERO, i).is_some()).count();
        assert_eq!(bb.messages_sent(), n as u64);
        assert_eq!(bb.messages_lost(), n as u64 - delivered as u64);
        let rate = bb.messages_lost() as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "loss rate {rate}");
    }

    #[test]
    fn spikes_delay_but_never_drop() {
        let mut plain = Backbone::new(WiredLatency::default(), 41);
        let mut spiky = Backbone::new(WiredLatency::default(), 41);
        spiky.set_spikes(0.5, 3_000.0);
        let mut spiked = 0u32;
        for i in 0..2_000u32 {
            let a = plain.send(SimTime::ZERO, i).deliver_at;
            let b = spiky.try_send(SimTime::ZERO, i).expect("spikes never drop").deliver_at;
            assert!(b >= a, "a spike can only add delay");
            if b > a {
                spiked += 1;
            }
        }
        assert_eq!(u64::from(spiked), spiky.spikes_injected());
        assert!((900..1100).contains(&spiked), "spike count {spiked}");
    }

    #[test]
    fn tracer_observes_sends_and_drops_without_perturbing_them() {
        let mut plain = Backbone::new(WiredLatency::default(), 61);
        plain.set_loss(0.5);
        let mut traced = Backbone::new(WiredLatency::default(), 61);
        traced.set_loss(0.5);
        let (handle, sink) = TraceHandle::mem();
        traced.set_tracer(handle);
        for i in 0..100u32 {
            let a = plain.try_send(SimTime::ZERO, i).map(|m| m.deliver_at);
            let b = traced.try_send(SimTime::ZERO, i).map(|m| m.deliver_at);
            assert_eq!(a, b, "tracing must not perturb the backbone");
        }
        let events = sink.take();
        assert_eq!(events.len(), 100, "one event per message");
        let drops = events.iter().filter(|r| r.ev == TraceEvent::BackboneDrop).count() as u64;
        assert_eq!(drops, traced.messages_lost());
    }

    #[test]
    fn surviving_messages_keep_their_fault_free_latencies() {
        // The loss draw must not perturb the jitter stream: message i gets
        // the same latency in a lossy run as in a clean one.
        let mut clean = Backbone::new(WiredLatency::default(), 51);
        let mut lossy = Backbone::new(WiredLatency::default(), 51);
        lossy.set_loss(0.4);
        for i in 0..1_000u32 {
            let a = clean.send(SimTime::ZERO, i).deliver_at;
            if let Some(b) = lossy.try_send(SimTime::ZERO, i) {
                assert_eq!(a, b.deliver_at);
            }
        }
    }
}
