//! # domino-wired
//!
//! The wired backbone between the APs and the central controller.
//!
//! The whole reason Relative Scheduling exists is that this backbone
//! *jitters*: the paper (§4.2.1, following CENTAUR's measurements) models
//! per-message latency as normally distributed with mean 285 µs and a
//! variance of 22 µs, which is orders of magnitude coarser than the 9 µs
//! WiFi slot — so strict schedules cannot be released to APs with slot
//! accuracy. This crate provides that latency model and a typed
//! AP↔controller message layer on top of it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use domino_sim::rng::streams;
use domino_sim::{SimDuration, SimRng, SimTime};

/// Latency model of one backbone hop.
#[derive(Clone, Debug)]
pub struct WiredLatency {
    /// Mean one-way latency in microseconds.
    pub mean_us: f64,
    /// Standard deviation of the one-way latency in microseconds.
    pub std_us: f64,
    /// Floor below which no sample is allowed (switch + NIC minimum).
    pub min_us: f64,
}

impl Default for WiredLatency {
    /// The paper's §4.2.1 parameters: Normal(285 µs, 22 µs).
    ///
    /// The paper says "variance 22 µs"; CENTAUR (its cited source)
    /// reports a standard deviation of that magnitude, and Fig 11 sweeps
    /// this knob as "wired latency variance ... 20 µs to 80 µs" with
    /// resulting misalignments of 10–20 µs, which only makes sense as a
    /// standard deviation. We treat it as such.
    fn default() -> WiredLatency {
        WiredLatency { mean_us: 285.0, std_us: 22.0, min_us: 50.0 }
    }
}

impl WiredLatency {
    /// The default model with a different jitter (Fig 11 sweeps 20–80 µs).
    pub fn with_std(std_us: f64) -> WiredLatency {
        WiredLatency { std_us, ..WiredLatency::default() }
    }

    /// Draw one latency sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let us = rng.normal(self.mean_us, self.std_us).max(self.min_us);
        SimDuration::from_micros_f64(us)
    }
}

/// A message in flight on the backbone, addressed to one AP (downstream)
/// or to the controller (upstream).
#[derive(Clone, Debug, PartialEq)]
pub struct InTransit<M> {
    /// Delivery instant.
    pub deliver_at: SimTime,
    /// Payload.
    pub message: M,
}

/// The backbone: draws an independent latency per message and computes
/// delivery times. The caller (the simulation harness) owns the event
/// queue; this type owns the randomness and the accounting.
#[derive(Debug)]
pub struct Backbone {
    latency: WiredLatency,
    rng: SimRng,
    sent: u64,
}

impl Backbone {
    /// A backbone with the given latency model, seeded deterministically.
    pub fn new(latency: WiredLatency, master_seed: u64) -> Backbone {
        Backbone {
            latency,
            rng: SimRng::derive(master_seed, streams::WIRED_JITTER),
            sent: 0,
        }
    }

    /// Send a message now; returns it stamped with its delivery time.
    pub fn send<M>(&mut self, now: SimTime, message: M) -> InTransit<M> {
        self.sent += 1;
        InTransit { deliver_at: now + self.latency.sample(&mut self.rng), message }
    }

    /// Messages sent so far.
    pub fn messages_sent(&self) -> u64 {
        self.sent
    }

    /// The latency model in force.
    pub fn latency(&self) -> &WiredLatency {
        &self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_parameters() {
        let l = WiredLatency::default();
        assert_eq!(l.mean_us, 285.0);
        assert_eq!(l.std_us, 22.0);
    }

    #[test]
    fn samples_cluster_around_mean() {
        let l = WiredLatency::default();
        let mut rng = SimRng::derive(1, streams::WIRED_JITTER);
        let n = 20_000;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        for _ in 0..n {
            let s = l.sample(&mut rng).as_micros_f64();
            sum += s;
            sumsq += s * s;
        }
        let mean = sum / n as f64;
        let std = (sumsq / n as f64 - mean * mean).sqrt();
        assert!((mean - 285.0).abs() < 1.0, "mean={mean}");
        assert!((std - 22.0).abs() < 1.0, "std={std}");
    }

    #[test]
    fn samples_respect_floor() {
        let l = WiredLatency { mean_us: 60.0, std_us: 100.0, min_us: 50.0 };
        let mut rng = SimRng::derive(2, streams::WIRED_JITTER);
        for _ in 0..5_000 {
            assert!(l.sample(&mut rng).as_micros_f64() >= 50.0);
        }
    }

    #[test]
    fn backbone_stamps_future_delivery() {
        let mut bb = Backbone::new(WiredLatency::default(), 99);
        let now = SimTime::from_millis(3);
        let m = bb.send(now, "schedule-batch-7");
        assert!(m.deliver_at > now);
        assert!(m.deliver_at.saturating_since(now).as_micros_f64() > 100.0);
        assert_eq!(m.message, "schedule-batch-7");
        assert_eq!(bb.messages_sent(), 1);
    }

    #[test]
    fn independent_messages_jitter_independently() {
        let mut bb = Backbone::new(WiredLatency::default(), 7);
        let now = SimTime::ZERO;
        let a = bb.send(now, 1u32).deliver_at;
        let b = bb.send(now, 2u32).deliver_at;
        assert_ne!(a, b, "two messages drew identical latencies");
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut bb = Backbone::new(WiredLatency::default(), seed);
            (0..10)
                .map(|i| bb.send(SimTime::ZERO, i).deliver_at.as_nanos())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
