//! # domino-faults
//!
//! A seeded, deterministic fault-injection plane for the DOMINO
//! reproduction. Every MAC run owns a [`FaultPlane`]; with the default
//! [`FaultConfig`] (all knobs at zero) the plane draws **nothing** and the
//! run is byte-identical to a plane-free build — the committed goldens in
//! `results/` stay exact.
//!
//! Four fault classes, each on its own [`SimRng`] stream so that turning
//! one class on never perturbs another (and `--jobs N` stays byte-exact):
//!
//! | class | stream | injects |
//! |-------|--------|---------|
//! | wired | `FAULT_WIRED` (inside `domino_wired::Backbone`) | backbone message loss, delay spikes |
//! | node | `FAULT_NODE` | AP crash/restart with state loss, controller compute stalls, stale ROP reports |
//! | channel | `FAULT_CHANNEL` | correlated signature-detection fades, corrupted ROP reports |
//! | churn | `FAULT_CHURN` | client leave/rejoin dark intervals (pre-generated schedule) |
//!
//! The wired class is implemented by the loss/spike knobs on
//! `domino_wired::Backbone` (the plane only carries its parameters); the
//! channel and churn classes ride inside `domino_medium::Medium` via
//! [`MediumFaults`]; the node class is consulted by the DOMINO and CENTAUR
//! state machines directly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use domino_sim::rng::streams;
use domino_sim::{SimDuration, SimRng, SimTime};

/// All fault-plane knobs. `Default` is every fault off: probabilities
/// zero, magnitudes irrelevant. A run with the default config makes zero
/// draws from any fault stream.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultConfig {
    /// Per-message backbone loss probability (wired class).
    pub wired_loss: f64,
    /// Per-message backbone delay-spike probability (wired class).
    pub wired_spike: f64,
    /// Mean extra delay of a spiked message, µs (exponential).
    pub wired_spike_us: f64,
    /// Per-batch-arrival AP crash probability (node class).
    pub ap_crash: f64,
    /// How long a crashed AP stays dark before it can rejoin, µs.
    pub ap_downtime_us: f64,
    /// Per-compute controller stall probability (node class).
    pub compute_stall: f64,
    /// Mean extra compute time of a stalled batch, µs (exponential).
    pub compute_stall_us: f64,
    /// Probability a delivered ROP report is stale — it reflects the
    /// previous round's queue state instead of the current one.
    pub rop_stale: f64,
    /// Probability a successful signature detection opens a fade burst
    /// (channel class).
    pub fade: f64,
    /// Number of would-be detections one fade burst suppresses.
    pub fade_len: u32,
    /// Probability a successfully decoded ROP report is corrupted and
    /// must be discarded (channel class).
    pub rop_corrupt: f64,
    /// Per-client leave rate, events per second (churn class).
    pub churn_rate_hz: f64,
    /// Dark time after each leave before the client rejoins, µs.
    pub churn_downtime_us: f64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            wired_loss: 0.0,
            wired_spike: 0.0,
            wired_spike_us: 0.0,
            ap_crash: 0.0,
            ap_downtime_us: 0.0,
            compute_stall: 0.0,
            compute_stall_us: 0.0,
            rop_stale: 0.0,
            fade: 0.0,
            fade_len: 0,
            rop_corrupt: 0.0,
            churn_rate_hz: 0.0,
            churn_downtime_us: 0.0,
        }
    }
}

impl FaultConfig {
    /// The all-off configuration (same as `Default`).
    pub fn off() -> FaultConfig {
        FaultConfig::default()
    }

    /// True when any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.wired_loss > 0.0
            || self.wired_spike > 0.0
            || self.ap_crash > 0.0
            || self.compute_stall > 0.0
            || self.rop_stale > 0.0
            || self.fade > 0.0
            || self.rop_corrupt > 0.0
            || self.churn_rate_hz > 0.0
    }

    /// The canonical chaos profile at `intensity` ∈ [0, 1]: every class
    /// active, probabilities scaled linearly so the `chaos_degradation`
    /// experiment sweeps one scalar. Intensity 0.0 is exactly
    /// [`FaultConfig::off`] (all probabilities zero).
    pub fn chaos(intensity: f64) -> FaultConfig {
        let x = intensity.clamp(0.0, 1.0);
        FaultConfig {
            wired_loss: 0.12 * x,
            wired_spike: 0.08 * x,
            wired_spike_us: 2_500.0,
            ap_crash: 0.01 * x,
            ap_downtime_us: 15_000.0,
            compute_stall: 0.08 * x,
            compute_stall_us: 1_500.0,
            rop_stale: 0.06 * x,
            fade: 0.04 * x,
            fade_len: 6,
            rop_corrupt: 0.10 * x,
            churn_rate_hz: 1.5 * x,
            churn_downtime_us: 25_000.0,
        }
    }
}

/// Injection and recovery totals of one run, aggregated across all fault
/// classes. Lives on `RunStats` so experiments can report degradation
/// alongside throughput.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Backbone messages dropped by the wired loss knob.
    pub wired_msgs_lost: u64,
    /// Backbone messages delayed by the spike knob.
    pub wired_spikes: u64,
    /// AP crashes injected.
    pub ap_crashes: u64,
    /// APs that rejoined after a crash (recovery side).
    pub crash_recoveries: u64,
    /// Controller compute stalls injected.
    pub compute_stalls: u64,
    /// Signature fades opened.
    pub fades_opened: u64,
    /// Signature detections suppressed by fades.
    pub detections_suppressed: u64,
    /// ROP reports corrupted in flight.
    pub rops_corrupted: u64,
    /// ROP reports delivered stale.
    pub stale_reports: u64,
    /// Client leave events in the churn schedule.
    pub churn_events: u64,
    /// Receptions failed because one endpoint was churned dark.
    pub churn_drops: u64,
    /// Runs aborted by the engine's liveness monitor (always 0 unless a
    /// MAC livelocked; the chaos gate pins this at zero).
    pub livelocks: u64,
}

impl FaultStats {
    /// Fold in the node-class counters.
    pub fn merge_node(&mut self, node: &NodeFaults) {
        self.ap_crashes += node.crashes;
        self.crash_recoveries += node.recoveries;
        self.compute_stalls += node.stalls;
        self.stale_reports += node.stale_reports;
    }

    /// Fold in the medium-resident channel and churn counters.
    pub fn merge_medium(&mut self, mf: &MediumFaults) {
        self.fades_opened += mf.channel.fades_opened;
        self.detections_suppressed += mf.channel.detections_suppressed;
        self.rops_corrupted += mf.channel.rops_corrupted;
        self.churn_events += mf.churn.events;
        self.churn_drops += mf.churn.drops;
    }

    /// Fold in the backbone's wired-class counters.
    pub fn merge_backbone(&mut self, lost: u64, spikes: u64) {
        self.wired_msgs_lost += lost;
        self.wired_spikes += spikes;
    }

    /// Total injections across every class (recoveries excluded).
    pub fn injections(&self) -> u64 {
        self.wired_msgs_lost
            + self.wired_spikes
            + self.ap_crashes
            + self.compute_stalls
            + self.fades_opened
            + self.rops_corrupted
            + self.stale_reports
            + self.churn_events
    }

    /// Every counter as a `(stable name, value)` pair, in declaration
    /// order. The names feed metric registries and run manifests, so
    /// they are part of the output contract — do not rename.
    pub fn classes(&self) -> [(&'static str, u64); 12] {
        [
            ("wired_msgs_lost", self.wired_msgs_lost),
            ("wired_spikes", self.wired_spikes),
            ("ap_crashes", self.ap_crashes),
            ("crash_recoveries", self.crash_recoveries),
            ("compute_stalls", self.compute_stalls),
            ("fades_opened", self.fades_opened),
            ("detections_suppressed", self.detections_suppressed),
            ("rops_corrupted", self.rops_corrupted),
            ("stale_reports", self.stale_reports),
            ("churn_events", self.churn_events),
            ("churn_drops", self.churn_drops),
            ("livelocks", self.livelocks),
        ]
    }
}

/// Node-class faults: AP crashes, controller compute stalls, stale
/// reports. Consulted by the DOMINO/CENTAUR state machines.
#[derive(Clone, Debug)]
pub struct NodeFaults {
    crash_p: f64,
    downtime: SimDuration,
    stall_p: f64,
    stall_mean_us: f64,
    stale_p: f64,
    rng: SimRng,
    /// AP crashes injected so far.
    pub crashes: u64,
    /// Crash recoveries observed so far (counted by the MAC when a
    /// crashed AP accepts its first post-downtime batch).
    pub recoveries: u64,
    /// Compute stalls injected so far.
    pub stalls: u64,
    /// Stale reports injected so far.
    pub stale_reports: u64,
}

impl NodeFaults {
    fn new(cfg: &FaultConfig, master_seed: u64) -> NodeFaults {
        NodeFaults {
            crash_p: cfg.ap_crash.clamp(0.0, 1.0),
            downtime: SimDuration::from_micros_f64(cfg.ap_downtime_us.max(0.0)),
            stall_p: cfg.compute_stall.clamp(0.0, 1.0),
            stall_mean_us: cfg.compute_stall_us.max(0.0),
            stale_p: cfg.rop_stale.clamp(0.0, 1.0),
            rng: SimRng::derive(master_seed, streams::FAULT_NODE),
            crashes: 0,
            recoveries: 0,
            stalls: 0,
            stale_reports: 0,
        }
    }

    /// Does the AP crash at this opportunity? Returns the downtime during
    /// which it stays dark (state already lost). No draw when off.
    pub fn crash(&mut self) -> Option<SimDuration> {
        if self.crash_p > 0.0 && self.rng.chance(self.crash_p) {
            self.crashes += 1;
            Some(self.downtime)
        } else {
            None
        }
    }

    /// Record that a crashed AP came back and accepted a batch.
    pub fn recovered(&mut self) {
        self.recoveries += 1;
    }

    /// Does this controller compute stall? Returns the extra compute time
    /// (exponential around the configured mean). No draw when off.
    pub fn compute_stall(&mut self) -> Option<SimDuration> {
        if self.stall_p > 0.0 && self.rng.chance(self.stall_p) {
            self.stalls += 1;
            Some(SimDuration::from_micros_f64(self.rng.exponential(self.stall_mean_us)))
        } else {
            None
        }
    }

    /// Is this delivered ROP report stale (reflecting the previous
    /// round's queue state)? No draw when off.
    pub fn report_stale(&mut self) -> bool {
        if self.stale_p > 0.0 && self.rng.chance(self.stale_p) {
            self.stale_reports += 1;
            true
        } else {
            false
        }
    }
}

/// Channel-class faults: correlated signature fades (beyond the i.i.d.
/// base detection draw) and corrupted ROP reports. Owned by the medium.
#[derive(Clone, Debug)]
pub struct ChannelFaults {
    fade_p: f64,
    fade_len: u32,
    corrupt_p: f64,
    rng: SimRng,
    fade_remaining: u32,
    /// Fades opened so far.
    pub fades_opened: u64,
    /// Detections suppressed so far (the opening detection included).
    pub detections_suppressed: u64,
    /// ROP reports corrupted so far.
    pub rops_corrupted: u64,
}

impl ChannelFaults {
    fn new(cfg: &FaultConfig, master_seed: u64) -> ChannelFaults {
        ChannelFaults {
            fade_p: cfg.fade.clamp(0.0, 1.0),
            fade_len: cfg.fade_len,
            corrupt_p: cfg.rop_corrupt.clamp(0.0, 1.0),
            rng: SimRng::derive(master_seed, streams::FAULT_CHANNEL),
            fade_remaining: 0,
            fades_opened: 0,
            detections_suppressed: 0,
            rops_corrupted: 0,
        }
    }

    /// Called on each *otherwise successful* signature detection: inside
    /// a fade the detection is suppressed; outside, a new fade may open
    /// (suppressing this detection and the next `fade_len − 1`). The
    /// correlation is what the i.i.d. base draw cannot produce.
    pub fn fade_suppresses(&mut self) -> bool {
        if self.fade_remaining > 0 {
            self.fade_remaining -= 1;
            self.detections_suppressed += 1;
            return true;
        }
        if self.fade_p > 0.0 && self.rng.chance(self.fade_p) {
            self.fades_opened += 1;
            self.detections_suppressed += 1;
            self.fade_remaining = self.fade_len.saturating_sub(1);
            return true;
        }
        false
    }

    /// Called on each *otherwise successful* ROP decode: a corrupted
    /// report fails its integrity check and is discarded by the receiver.
    pub fn rop_corrupts(&mut self) -> bool {
        if self.corrupt_p > 0.0 && self.rng.chance(self.corrupt_p) {
            self.rops_corrupted += 1;
            true
        } else {
            false
        }
    }
}

/// Churn-class faults: a pre-generated, per-client schedule of dark
/// intervals (leave → downtime → rejoin). Pre-generation keeps the
/// schedule independent of event-processing order, so `--jobs N` and any
/// MAC interleaving see the identical timeline.
#[derive(Clone, Debug)]
pub struct ChurnSchedule {
    /// Disjoint, sorted dark intervals per node index.
    intervals: Vec<Vec<(SimTime, SimTime)>>,
    /// Leave events in the schedule.
    pub events: u64,
    /// Receptions failed because an endpoint was dark.
    pub drops: u64,
}

impl ChurnSchedule {
    fn new(cfg: &FaultConfig, master_seed: u64, clients: &[u32], duration_s: f64) -> ChurnSchedule {
        let num_nodes = clients.iter().map(|&c| c as usize + 1).max().unwrap_or(0);
        let mut intervals = vec![Vec::new(); num_nodes];
        let mut events = 0u64;
        if cfg.churn_rate_hz > 0.0 && cfg.churn_downtime_us > 0.0 {
            let mut rng = SimRng::derive(master_seed, streams::FAULT_CHURN);
            let horizon = SimDuration::from_secs_f64(duration_s);
            let downtime = SimDuration::from_micros_f64(cfg.churn_downtime_us);
            let mean_gap_s = 1.0 / cfg.churn_rate_hz;
            for &c in clients {
                let mut t = SimDuration::from_secs_f64(rng.exponential(mean_gap_s));
                while t < horizon {
                    let start = SimTime::ZERO + t;
                    if let Some(v) = intervals.get_mut(c as usize) {
                        v.push((start, start + downtime));
                    }
                    events += 1;
                    t = t + downtime + SimDuration::from_secs_f64(rng.exponential(mean_gap_s));
                }
            }
        }
        ChurnSchedule { intervals, events, drops: 0 }
    }

    /// Is `node` churned dark at `now`? Pure query, no counting.
    pub fn is_dark(&self, node: u32, now: SimTime) -> bool {
        self.intervals
            .get(node as usize)
            .is_some_and(|v| v.iter().any(|&(s, e)| s <= now && now < e))
    }

    /// [`ChurnSchedule::is_dark`] plus drop accounting: call when a dark
    /// endpoint costs a reception.
    pub fn check_dark(&mut self, node: u32, now: SimTime) -> bool {
        if self.is_dark(node, now) {
            self.drops += 1;
            true
        } else {
            false
        }
    }

    /// True when no node ever goes dark (schedule empty).
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }
}

/// The channel + churn classes bundled for the medium to own.
#[derive(Clone, Debug)]
pub struct MediumFaults {
    /// Correlated fades and ROP corruption.
    pub channel: ChannelFaults,
    /// Client dark intervals.
    pub churn: ChurnSchedule,
}

/// One run's fault plane: the configuration plus the per-class fault
/// sources, each on its own RNG stream. Constructed once per MAC run and
/// then split — [`MediumFaults`] moves into the medium, [`NodeFaults`]
/// stays with the MAC state machine, and the wired knobs are applied to
/// the backbone.
#[derive(Clone, Debug)]
pub struct FaultPlane {
    /// The knobs this plane was built from.
    pub cfg: FaultConfig,
    /// Node-class faults (crashes, stalls, stale reports).
    pub node: NodeFaults,
    /// Channel- and churn-class faults, destined for the medium.
    pub medium: MediumFaults,
}

impl FaultPlane {
    /// Build the plane for one run. `clients` are the node indices that
    /// can churn; `duration_s` bounds the pre-generated churn schedule.
    pub fn new(
        cfg: &FaultConfig,
        master_seed: u64,
        clients: &[u32],
        duration_s: f64,
    ) -> FaultPlane {
        FaultPlane {
            cfg: cfg.clone(),
            node: NodeFaults::new(cfg, master_seed),
            medium: MediumFaults {
                channel: ChannelFaults::new(cfg, master_seed),
                churn: ChurnSchedule::new(cfg, master_seed, clients, duration_s),
            },
        }
    }

    /// An all-off plane (zero draws ever).
    pub fn off(master_seed: u64) -> FaultPlane {
        FaultPlane::new(&FaultConfig::off(), master_seed, &[], 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_off() {
        let cfg = FaultConfig::default();
        assert!(!cfg.enabled());
        assert_eq!(cfg, FaultConfig::off());
        assert!(!FaultConfig::chaos(0.0).enabled());
        assert!(FaultConfig::chaos(0.5).enabled());
    }

    #[test]
    fn chaos_profile_scales_linearly() {
        let half = FaultConfig::chaos(0.5);
        let full = FaultConfig::chaos(1.0);
        assert!((full.wired_loss - 2.0 * half.wired_loss).abs() < 1e-12);
        assert!((full.churn_rate_hz - 2.0 * half.churn_rate_hz).abs() < 1e-12);
        // Magnitudes are intensity-independent.
        assert!((full.ap_downtime_us - half.ap_downtime_us).abs() < 1e-12);
        // Out-of-range intensities clamp.
        assert_eq!(FaultConfig::chaos(7.0), FaultConfig::chaos(1.0));
    }

    #[test]
    fn off_plane_never_fires() {
        let mut plane = FaultPlane::off(1);
        for _ in 0..1_000 {
            assert!(plane.node.crash().is_none());
            assert!(plane.node.compute_stall().is_none());
            assert!(!plane.node.report_stale());
            assert!(!plane.medium.channel.fade_suppresses());
            assert!(!plane.medium.channel.rop_corrupts());
        }
        assert!(plane.medium.churn.is_empty());
        let mut stats = FaultStats::default();
        stats.merge_node(&plane.node);
        stats.merge_medium(&plane.medium);
        assert_eq!(stats, FaultStats::default());
        assert_eq!(stats.injections(), 0);
    }

    #[test]
    fn fades_are_correlated_bursts() {
        let cfg = FaultConfig { fade: 0.05, fade_len: 4, ..FaultConfig::off() };
        let mut plane = FaultPlane::new(&cfg, 7, &[], 10.0);
        let ch = &mut plane.medium.channel;
        let n = 50_000u64;
        let suppressed = (0..n).filter(|_| ch.fade_suppresses()).count() as u64;
        assert_eq!(suppressed, ch.detections_suppressed);
        // Each opened fade suppresses exactly fade_len detections.
        assert_eq!(suppressed, ch.fades_opened * 4);
        // Suppression rate ≈ p·len / (1 + p·(len−1)) ≈ 17.4 %.
        let rate = suppressed as f64 / n as f64;
        assert!((0.14..0.21).contains(&rate), "rate {rate}");
    }

    #[test]
    fn churn_schedule_is_deterministic_and_bounded() {
        let cfg = FaultConfig { churn_rate_hz: 2.0, churn_downtime_us: 25_000.0, ..FaultConfig::off() };
        let a = ChurnSchedule::new(&cfg, 9, &[1, 3, 5], 10.0);
        let b = ChurnSchedule::new(&cfg, 9, &[1, 3, 5], 10.0);
        assert_eq!(a.events, b.events);
        assert!(a.events > 0, "2 Hz × 3 clients × 10 s must produce events");
        // ~2 Hz per client for 10 s → ~60 leaves overall, Poisson spread.
        assert!((20..140).contains(&a.events), "events {}", a.events);
        // Dark exactly inside intervals: scan a grid and cross-check.
        let mut dark_ns = 0u64;
        for ms in 0..10_000u64 {
            let t = SimTime::from_millis(ms);
            for &c in &[1u32, 3, 5] {
                assert_eq!(a.is_dark(c, t), b.is_dark(c, t));
                if a.is_dark(c, t) {
                    dark_ns += 1;
                }
            }
        }
        // Expected dark fraction ≈ rate × downtime = 2 × 0.025 = 5 % per
        // client of 30 000 samples ≈ 1500; allow wide slack.
        assert!((300..4_000).contains(&dark_ns), "dark samples {dark_ns}");
        // A node with no schedule is never dark.
        assert!(!a.is_dark(99, SimTime::from_millis(5)));
    }

    #[test]
    fn check_dark_counts_drops() {
        let cfg = FaultConfig { churn_rate_hz: 50.0, churn_downtime_us: 50_000.0, ..FaultConfig::off() };
        let mut s = ChurnSchedule::new(&cfg, 3, &[0], 5.0);
        let mut hits = 0u64;
        for ms in 0..5_000u64 {
            if s.check_dark(0, SimTime::from_millis(ms)) {
                hits += 1;
            }
        }
        assert!(hits > 0);
        assert_eq!(hits, s.drops);
    }

    #[test]
    fn node_faults_draw_only_when_on() {
        // Two planes with different *other* classes enabled must agree on
        // the node stream: class independence.
        let a_cfg = FaultConfig { ap_crash: 0.3, ap_downtime_us: 1_000.0, ..FaultConfig::off() };
        let b_cfg = FaultConfig { fade: 0.9, fade_len: 3, wired_loss: 0.5, ..a_cfg.clone() };
        let mut a = FaultPlane::new(&a_cfg, 13, &[], 1.0);
        let mut b = FaultPlane::new(&b_cfg, 13, &[], 1.0);
        for _ in 0..200 {
            assert_eq!(a.node.crash().is_some(), b.node.crash().is_some());
        }
        assert_eq!(a.node.crashes, b.node.crashes);
    }

    #[test]
    fn stall_durations_are_positive_and_counted() {
        let cfg =
            FaultConfig { compute_stall: 1.0, compute_stall_us: 2_000.0, ..FaultConfig::off() };
        let mut plane = FaultPlane::new(&cfg, 17, &[], 1.0);
        let mut total = SimDuration::ZERO;
        for _ in 0..100 {
            let d = plane.node.compute_stall().expect("p=1 always stalls");
            total += d;
        }
        assert_eq!(plane.node.stalls, 100);
        let mean_us = total.as_micros_f64() / 100.0;
        assert!((500.0..6_000.0).contains(&mean_us), "mean stall {mean_us}");
    }

    #[test]
    fn fault_stats_merge_and_injections() {
        let cfg = FaultConfig::chaos(1.0);
        let mut plane = FaultPlane::new(&cfg, 23, &[1], 2.0);
        for _ in 0..500 {
            let _ = plane.node.crash();
            let _ = plane.node.compute_stall();
            let _ = plane.node.report_stale();
            let _ = plane.medium.channel.fade_suppresses();
            let _ = plane.medium.channel.rop_corrupts();
        }
        plane.node.recovered();
        let mut stats = FaultStats::default();
        stats.merge_node(&plane.node);
        stats.merge_medium(&plane.medium);
        stats.merge_backbone(3, 4);
        assert_eq!(stats.wired_msgs_lost, 3);
        assert_eq!(stats.wired_spikes, 4);
        assert_eq!(stats.crash_recoveries, 1);
        assert!(stats.injections() > 0);
        assert_eq!(
            stats.injections(),
            stats.wired_msgs_lost
                + stats.wired_spikes
                + stats.ap_crashes
                + stats.compute_stalls
                + stats.fades_opened
                + stats.rops_corrupted
                + stats.stale_reports
                + stats.churn_events
        );
    }
}
