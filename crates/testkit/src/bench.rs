//! A lightweight wall-clock benchmark harness (criterion replacement).
//!
//! Each benchmark target is a plain binary (`harness = false`) whose `main`
//! builds a [`Harness`], registers functions with [`Harness::bench`] /
//! [`Harness::bench_with_setup`], and calls [`Harness::finish`]. Measurement
//! is sample-based: after a warmup, the routine runs `samples` batches of a
//! calibrated iteration count and the per-iteration wall time of each batch
//! is recorded; the report gives median / p95 / mean / min over batches.
//!
//! Reporting: a plain-text table on stdout (same spirit as the experiment
//! tables under `results/`), plus a JSON summary written to
//! `$TESTKIT_BENCH_JSON/<group>.json` when that environment variable names a
//! directory.
//!
//! Environment knobs:
//! * `TESTKIT_BENCH_FULL=1` — criterion-like rigor (more samples, longer
//!   batches). Default is a quick mode that keeps every target under a
//!   second so benches stay cheap to smoke-test in CI.
//! * `TESTKIT_BENCH_JSON=<dir>` — write machine-readable results there.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value sink; prevents the optimizer from deleting the benchmarked
/// computation. Re-exported so benches need no direct `std::hint` import.
#[inline]
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// A monotonic stopwatch — the wall-clock handle exported to the rest of
/// the workspace.
///
/// Lint rule D001 confines `std::time` to `testkit` and `bench`: simulated
/// time flows through `sim::time`, and nothing in the model may observe the
/// host clock. Subsystems that legitimately *measure* wall time anyway —
/// `domino-runner` timing its shards for the `--json` manifest — go through
/// this handle instead of `Instant`, so the confinement stays auditable in
/// one place.
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Stopwatch {
        Stopwatch { start: Instant::now() }
    }

    /// Nanoseconds elapsed since [`start`](Stopwatch::start), saturating.
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Milliseconds elapsed since [`start`](Stopwatch::start).
    pub fn elapsed_ms(&self) -> f64 {
        self.elapsed_ns() as f64 / 1e6
    }
}

/// Summary statistics for one benchmarked function (per-iteration times).
#[derive(Clone, Debug)]
pub struct BenchResult {
    /// Function name within the group.
    pub name: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// 95th-percentile per-iteration time in nanoseconds.
    pub p95_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample in nanoseconds.
    pub min_ns: f64,
    /// Iterations per measured sample.
    pub iters_per_sample: u64,
    /// Number of samples taken.
    pub samples: usize,
}

/// Measurement configuration.
#[derive(Clone, Copy, Debug)]
pub struct BenchConfig {
    /// Number of timed samples per function.
    pub samples: usize,
    /// Wall-clock target for one sample; iteration count is calibrated to it.
    pub sample_time: Duration,
    /// Wall-clock spent warming up before calibration.
    pub warmup_time: Duration,
    /// Hard cap on iterations per sample (protects very fast routines).
    pub max_iters_per_sample: u64,
}

impl Default for BenchConfig {
    fn default() -> BenchConfig {
        if std::env::var("TESTKIT_BENCH_FULL").map(|v| v == "1").unwrap_or(false) {
            BenchConfig {
                samples: 60,
                sample_time: Duration::from_millis(50),
                warmup_time: Duration::from_millis(500),
                max_iters_per_sample: 1 << 24,
            }
        } else {
            BenchConfig {
                samples: 15,
                sample_time: Duration::from_millis(8),
                warmup_time: Duration::from_millis(40),
                max_iters_per_sample: 1 << 20,
            }
        }
    }
}

/// A named group of benchmarks; prints its table and writes JSON on
/// [`finish`](Harness::finish).
#[derive(Debug)]
pub struct Harness {
    group: String,
    config: BenchConfig,
    results: Vec<BenchResult>,
}

impl Harness {
    /// Create a harness for a bench group (conventionally the target name).
    pub fn new(group: &str) -> Harness {
        Harness { group: group.to_string(), config: BenchConfig::default(), results: Vec::new() }
    }

    /// Override the measurement configuration.
    pub fn with_config(mut self, config: BenchConfig) -> Harness {
        self.config = config;
        self
    }

    /// Benchmark `routine`, timing repeated calls.
    pub fn bench<R>(&mut self, name: &str, mut routine: impl FnMut() -> R) {
        let result = measure(&self.config, &mut || {
            black_box(routine());
        });
        self.push(name, result);
    }

    /// Benchmark `routine` on a fresh value from `setup` each iteration;
    /// only the routine is timed (criterion's `iter_batched`).
    pub fn bench_with_setup<T, R>(
        &mut self,
        name: &str,
        mut setup: impl FnMut() -> T,
        mut routine: impl FnMut(T) -> R,
    ) {
        // Setup cost is excluded by timing each iteration individually.
        let config = self.config;
        let mut samples = Vec::with_capacity(config.samples);
        let warmup_deadline = Instant::now() + config.warmup_time;
        while Instant::now() < warmup_deadline {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            black_box(start.elapsed());
        }
        let mut taken = 0usize;
        while taken < config.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            samples.push(start.elapsed().as_nanos() as f64);
            taken += 1;
        }
        self.push(name, summarize(samples, 1));
    }

    fn push(&mut self, name: &str, mut result: BenchResult) {
        result.name = name.to_string();
        self.results.push(result);
    }

    /// Print the report table and write the JSON summary; call last.
    pub fn finish(self) {
        // lint: allow(D006) the bench harness reports on stdout by design
        println!("# bench group: {}", self.group);
        // lint: allow(D006) bench report table header
        println!(
            "{:<44} {:>12} {:>12} {:>12} {:>12}",
            "name", "median", "p95", "mean", "min"
        );
        for r in &self.results {
            // lint: allow(D006) bench report table row
            println!(
                "{:<44} {:>12} {:>12} {:>12} {:>12}",
                r.name,
                format_ns(r.median_ns),
                format_ns(r.p95_ns),
                format_ns(r.mean_ns),
                format_ns(r.min_ns),
            );
        }
        if let Ok(dir) = std::env::var("TESTKIT_BENCH_JSON") {
            if !dir.is_empty() {
                if let Err(e) = self.write_json(&dir) {
                    // lint: allow(D006) IO failure diagnostic; the harness has no other channel
                    eprintln!("testkit-bench: failed to write JSON to {dir}: {e}");
                }
            }
        }
    }

    fn write_json(&self, dir: &str) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = std::path::Path::new(dir).join(format!("{}.json", self.group));
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"group\": \"{}\",\n  \"results\": [\n", self.group));
        for (i, r) in self.results.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"median_ns\": {:.1}, \"p95_ns\": {:.1}, \
                 \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"iters_per_sample\": {}, \
                 \"samples\": {}}}{}\n",
                r.name,
                r.median_ns,
                r.p95_ns,
                r.mean_ns,
                r.min_ns,
                r.iters_per_sample,
                r.samples,
                if i + 1 == self.results.len() { "" } else { "," },
            ));
        }
        out.push_str("  ]\n}\n");
        std::fs::write(path, out)
    }
}

/// Warmup, calibrate the per-sample iteration count, then take timed samples.
fn measure(config: &BenchConfig, routine: &mut dyn FnMut()) -> BenchResult {
    // Warmup and cost estimate in one pass.
    let warmup_start = Instant::now();
    let mut warmup_iters = 0u64;
    while warmup_start.elapsed() < config.warmup_time {
        routine();
        warmup_iters += 1;
    }
    let est_ns = (warmup_start.elapsed().as_nanos() as f64 / warmup_iters as f64).max(1.0);
    let iters = ((config.sample_time.as_nanos() as f64 / est_ns).ceil() as u64)
        .clamp(1, config.max_iters_per_sample);

    let mut samples = Vec::with_capacity(config.samples);
    for _ in 0..config.samples {
        let start = Instant::now();
        for _ in 0..iters {
            routine();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    summarize(samples, iters)
}

fn summarize(mut samples: Vec<f64>, iters_per_sample: u64) -> BenchResult {
    assert!(!samples.is_empty());
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = samples.len();
    let percentile = |p: f64| samples[(((n - 1) as f64) * p).round() as usize];
    BenchResult {
        name: String::new(),
        median_ns: percentile(0.5),
        p95_ns: percentile(0.95),
        mean_ns: samples.iter().sum::<f64>() / n as f64,
        min_ns: samples[0],
        iters_per_sample,
        samples: n,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> BenchConfig {
        BenchConfig {
            samples: 5,
            sample_time: Duration::from_micros(200),
            warmup_time: Duration::from_micros(200),
            max_iters_per_sample: 1000,
        }
    }

    #[test]
    fn measures_and_orders_statistics() {
        let mut h = Harness::new("unit").with_config(tiny());
        h.bench("noop_sum", || (0..100u64).sum::<u64>());
        h.bench_with_setup("setup_excluded", || vec![1u64; 64], |v| v.iter().sum::<u64>());
        assert_eq!(h.results.len(), 2);
        for r in &h.results {
            assert!(r.min_ns <= r.median_ns, "{r:?}");
            assert!(r.median_ns <= r.p95_ns, "{r:?}");
            assert!(r.min_ns > 0.0, "{r:?}");
        }
        h.finish();
    }

    #[test]
    fn json_output_is_written() {
        let dir = std::env::temp_dir().join("testkit-bench-test");
        let mut h = Harness::new("jsoncheck").with_config(tiny());
        h.bench("x", || 1u64 + 1);
        h.write_json(dir.to_str().unwrap()).unwrap();
        let text = std::fs::read_to_string(dir.join("jsoncheck.json")).unwrap();
        assert!(text.contains("\"group\": \"jsoncheck\""));
        assert!(text.contains("\"median_ns\""));
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let w = Stopwatch::start();
        let a = w.elapsed_ns();
        let _ = (0..10_000u64).sum::<u64>();
        let b = w.elapsed_ns();
        assert!(b >= a);
        assert!((w.elapsed_ms() - w.elapsed_ns() as f64 / 1e6).abs() < 1.0);
    }

    #[test]
    fn summarize_percentiles() {
        let r = summarize((1..=100).map(|i| i as f64).collect(), 1);
        assert_eq!(r.median_ns, 51.0);
        assert_eq!(r.p95_ns, 95.0);
        assert_eq!(r.min_ns, 1.0);
    }
}
