//! A minimal property-testing harness with input shrinking.
//!
//! Properties are closures that draw their inputs from a [`Gen`]. During
//! normal execution every draw comes from a seeded [`Rng`](crate::rng::Rng)
//! and is recorded as a *choice sequence*. When a case fails, the harness
//! shrinks the recorded sequence (deleting spans, zeroing and halving
//! choices) and replays the property against each candidate, keeping any
//! mutation that still fails. Because draws are mapped from choices so that
//! a zero choice is the minimal value, shrinking the sequence shrinks the
//! input — the same trick Hypothesis uses, which makes shrinking work for
//! arbitrary generation logic without per-type shrinkers.
//!
//! ```
//! use domino_testkit::prop;
//!
//! prop::check("sum is commutative", |g| {
//!     let a = g.u64(0, 1000);
//!     let b = g.u64(0, 1000);
//!     domino_testkit::prop_assert_eq!(a + b, b + a);
//! });
//! ```
//!
//! A failing case panics with the minimal choice sequence; pin it forever
//! with [`replay`].
//!
//! Environment knobs: `TESTKIT_CASES` overrides the case count,
//! `TESTKIT_SEED` the master seed (both decimal).

use crate::rng::{splitmix64, Rng};
use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Once;

/// Harness configuration.
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of random cases to run.
    pub cases: u32,
    /// Master seed; case `i` derives its own stream from it.
    pub seed: u64,
    /// Maximum number of shrink replays after a failure.
    pub max_shrink_replays: u32,
}

impl Default for Config {
    fn default() -> Config {
        let cases = std::env::var("TESTKIT_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(128);
        let seed = std::env::var("TESTKIT_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0xD011_1701);
        Config { cases, seed, max_shrink_replays: 4096 }
    }
}

#[derive(Debug)]
enum Source {
    /// Fresh generation: draw from the RNG, record every choice.
    Random(Rng),
    /// Replay of a (possibly mutated) choice sequence; reads past the end
    /// yield 0, i.e. the minimal value of every draw.
    Replay { choices: Vec<u64>, pos: usize },
}

/// The value source handed to a property closure.
///
/// Every `Gen` method maps one or more recorded `u64` choices into a typed
/// value such that choice 0 is the minimal value of the range.
#[derive(Debug)]
pub struct Gen {
    source: Source,
    recorded: Vec<u64>,
}

impl Gen {
    fn random(case_seed: u64) -> Gen {
        Gen { source: Source::Random(Rng::derive(case_seed, 0)), recorded: Vec::new() }
    }

    fn replaying(choices: Vec<u64>) -> Gen {
        Gen { source: Source::Replay { choices, pos: 0 }, recorded: Vec::new() }
    }

    /// Draw one raw choice in `[0, span)`; the shrinker's target is 0.
    fn choice(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let c = match &mut self.source {
            Source::Random(rng) => rng.below(span),
            Source::Replay { choices, pos } => {
                let raw = choices.get(*pos).copied().unwrap_or(0);
                *pos += 1;
                // A mutated sequence may hold values from a wider draw;
                // reduce instead of rejecting so every replay is valid.
                raw % span
            }
        };
        self.recorded.push(c);
        c
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive); shrinks toward `lo`.
    pub fn u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.choice(u64::MAX); // off by one; acceptable at full width
        }
        lo + self.choice(hi - lo + 1)
    }

    /// Uniform `usize` in `[lo, hi]` (inclusive); shrinks toward `lo`.
    pub fn usize(&mut self, lo: usize, hi: usize) -> usize {
        self.u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `[lo, hi]` (inclusive); shrinks toward `lo`.
    pub fn i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo <= hi, "empty range");
        lo.wrapping_add(self.choice((hi.wrapping_sub(lo) as u64).saturating_add(1)) as i64)
    }

    /// Uniform `f64` in `[lo, hi)`; shrinks toward `lo`.
    pub fn f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        let frac = self.choice(1u64 << 53) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + (hi - lo) * frac
    }

    /// Boolean; shrinks toward `false`.
    pub fn bool(&mut self) -> bool {
        self.choice(2) == 1
    }

    /// A vector with length in `[min_len, max_len]` whose elements are
    /// produced by `element`; shrinks toward shorter vectors of smaller
    /// elements.
    pub fn vec<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut element: impl FnMut(&mut Gen) -> T,
    ) -> Vec<T> {
        let len = self.usize(min_len, max_len);
        (0..len).map(|_| element(self)).collect()
    }

    /// Pick one element of a non-empty slice; shrinks toward the first.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick from empty slice");
        &items[self.usize(0, items.len() - 1)]
    }
}

// ---------------------------------------------------------------------------
// Panic capture
//
// The shrinker replays the property hundreds of times, most of which panic by
// design. Silence the default panic hook for those replays (thread-locally,
// so concurrently running tests keep their reports).
// ---------------------------------------------------------------------------

thread_local! {
    static SILENCED: Cell<bool> = const { Cell::new(false) };
}

fn install_quiet_hook() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if !SILENCED.with(Cell::get) {
                previous(info);
            }
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Run the closure with panics captured and the default hook silenced.
/// Returns `Err(message)` if it panicked.
fn run_case<F: FnMut(&mut Gen)>(f: &mut F, gen: &mut Gen) -> Result<(), String> {
    install_quiet_hook();
    SILENCED.with(|s| s.set(true));
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(gen)));
    SILENCED.with(|s| s.set(false));
    result.map_err(|payload| panic_message(payload.as_ref()))
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

struct Failure {
    choices: Vec<u64>,
    message: String,
}

/// Shortlex order on choice sequences: shorter wins, ties break
/// lexicographically. A candidate is only accepted if what it *records* is
/// strictly simpler than the current best — replays pad exhausted draws with
/// zeros, so comparing the submitted candidate would let no-op "deletions"
/// of trailing pads spin forever.
fn simpler(a: &[u64], b: &[u64]) -> bool {
    a.len() < b.len() || (a.len() == b.len() && a < b)
}

/// Shrink a failing choice sequence: repeatedly try deleting spans (alone
/// and with the preceding choice decremented, which shortens collections)
/// and binary-descending individual choices, keeping any strictly simpler
/// candidate that still fails.
fn shrink<F: FnMut(&mut Gen)>(f: &mut F, mut best: Failure, budget: u32) -> Failure {
    let mut replays = 0u32;
    let mut attempt = |candidate: Vec<u64>, best: &Failure, replays: &mut u32| -> Option<Failure> {
        if *replays >= budget {
            return None;
        }
        *replays += 1;
        let mut gen = Gen::replaying(candidate);
        match run_case(f, &mut gen) {
            Err(message) if simpler(&gen.recorded, &best.choices) => {
                Some(Failure { choices: gen.recorded, message })
            }
            _ => None,
        }
    };

    let mut improved = true;
    while improved && replays < budget {
        improved = false;

        // Pass 1: delete spans of choices (big chunks first). For each span
        // also try the deletion with the preceding choice decremented: when
        // the span holds collection elements, the preceding choice is often
        // the collection's length draw, which must drop in step.
        for chunk in [16usize, 8, 4, 2, 1] {
            let mut i = 0;
            while i + chunk <= best.choices.len() {
                let mut deleted = best.choices.clone();
                deleted.drain(i..i + chunk);
                let mut with_dec = None;
                if i > 0 && deleted[i - 1] > 0 {
                    let mut c = deleted.clone();
                    c[i - 1] -= 1;
                    with_dec = Some(c);
                }
                let mut accepted = false;
                for candidate in with_dec.into_iter().chain([deleted]) {
                    if let Some(better) = attempt(candidate, &best, &mut replays) {
                        best = better;
                        improved = true;
                        accepted = true;
                        // Do not advance: the index now names fresh choices.
                        break;
                    }
                }
                if !accepted {
                    i += 1;
                }
            }
        }

        // Pass 2: minimize each choice by binary descent toward 0. (Not
        // guaranteed monotone, but in practice finds the minimal failing
        // value in O(log v) replays.)
        let mut i = 0;
        while i < best.choices.len() {
            let v = best.choices[i];
            if v > 0 {
                let mut set = |value: u64, best: &Failure, replays: &mut u32| {
                    let mut candidate = best.choices.clone();
                    candidate[i] = value;
                    attempt(candidate, best, replays)
                };
                let (mut lo, mut hi) = (0u64, v);
                while lo < hi {
                    let mid = lo + (hi - lo) / 2;
                    match set(mid, &best, &mut replays) {
                        Some(better) => {
                            best = better;
                            improved = true;
                            if i >= best.choices.len() {
                                break;
                            }
                            hi = best.choices[i].min(mid);
                        }
                        None => lo = mid + 1,
                    }
                    if replays >= budget {
                        break;
                    }
                }
            }
            i += 1;
        }
    }
    best
}

// ---------------------------------------------------------------------------
// Entry points
// ---------------------------------------------------------------------------

/// Check a property against `Config::default()` random cases.
///
/// Panics on the first failing case after shrinking it to a (locally)
/// minimal choice sequence. The panic message contains the seed and the
/// minimal sequence so the failure can be pinned with [`replay`].
pub fn check<F: FnMut(&mut Gen)>(name: &str, f: F) {
    check_with(Config::default(), name, f);
}

/// Check a property with an explicit [`Config`].
pub fn check_with<F: FnMut(&mut Gen)>(config: Config, name: &str, mut f: F) {
    let mut state = config.seed;
    for case in 0..config.cases {
        let case_seed = splitmix64(&mut state);
        let mut gen = Gen::random(case_seed);
        if let Err(message) = run_case(&mut f, &mut gen) {
            let original_len = gen.recorded.len();
            let failure = shrink(
                &mut f,
                Failure { choices: gen.recorded, message },
                config.max_shrink_replays,
            );
            panic!(
                "property `{name}` failed (seed {seed}, case {case}/{cases}):\n  {msg}\n\
                 minimal choice sequence ({nmin} choices, shrunk from {norig}):\n  \
                 prop::replay(&{choices:?}, ..)",
                seed = config.seed,
                cases = config.cases,
                msg = failure.message,
                nmin = failure.choices.len(),
                norig = original_len,
                choices = failure.choices,
            );
        }
    }
}

/// Replay a pinned choice sequence against a property — the regression-test
/// companion of [`check`]. Panics (with the property's own message) if the
/// sequence still fails.
pub fn replay<F: FnMut(&mut Gen)>(choices: &[u64], mut f: F) {
    let mut gen = Gen::replaying(choices.to_vec());
    f(&mut gen);
}

/// Assert inside a property; identical to `assert!` but named to mark
/// property invariants (and to ease porting from proptest).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality inside a property; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        check_with(
            Config { cases: 50, seed: 1, max_shrink_replays: 100 },
            "counts",
            |g| {
                count += 1;
                let x = g.u64(3, 10);
                assert!((3..=10).contains(&x));
            },
        );
        assert_eq!(count, 50);
    }

    #[test]
    fn failing_property_shrinks_to_minimal_case() {
        // Property: every element of the vector is < 500. The minimal
        // counterexample is a 1-element vector [500].
        let result = panic::catch_unwind(|| {
            check_with(
                Config { cases: 200, seed: 2, max_shrink_replays: 4096 },
                "bounded",
                |g| {
                    let v = g.vec(0, 20, |g| g.u64(0, 1000));
                    assert!(v.iter().all(|&x| x < 500), "found {v:?}");
                },
            );
        });
        let msg = panic_message(result.unwrap_err().as_ref());
        assert!(msg.contains("property `bounded` failed"), "{msg}");
        // The shrunk sequence is [len=1, value] with value exactly 500
        // (choice = 500 for range [0,1000]).
        assert!(msg.contains("[1, 500]"), "not minimal: {msg}");
    }

    #[test]
    fn replay_reproduces_recorded_failure() {
        let prop = |g: &mut Gen| {
            let v = g.vec(0, 20, |g| g.u64(0, 1000));
            assert!(v.iter().all(|&x| x < 500));
        };
        let result = panic::catch_unwind(|| replay(&[1, 500], prop));
        assert!(result.is_err());
        // And a passing sequence passes.
        replay(&[1, 499], prop);
    }

    #[test]
    fn replay_pads_missing_choices_with_minimums() {
        replay(&[], |g| {
            assert_eq!(g.u64(7, 99), 7);
            assert_eq!(g.usize(0, 5), 0);
            assert!(!g.bool());
            assert_eq!(g.f64(-2.0, 3.0), -2.0);
        });
    }

    #[test]
    fn deterministic_across_runs() {
        let collect = || {
            let mut seen = Vec::new();
            check_with(
                Config { cases: 10, seed: 99, max_shrink_replays: 0 },
                "det",
                |g| seen.push(g.u64(0, 1_000_000)),
            );
            seen
        };
        assert_eq!(collect(), collect());
    }
}
