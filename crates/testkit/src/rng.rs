//! Deterministic pseudo-random number generation.
//!
//! The generator is xoshiro256++ (Blackman & Vigna), seeded through
//! SplitMix64 expansion of a `(master_seed, stream)` pair. It is the single
//! PRNG of the whole workspace: the simulator's `SimRng` is a re-export of
//! [`Rng`], and the property-test harness draws its choice sequences from it.
//!
//! Deriving independent streams (rather than sharing one generator) keeps
//! runs reproducible even when one subsystem changes how many numbers it
//! consumes. Normal deviates use Box–Muller so no distributions crate is
//! needed.

/// SplitMix64 step; used to expand a (seed, stream) pair into generator state.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Hash a labeled shard into a stream id for [`Rng::derive`].
///
/// `domino-runner` splits every experiment into shards (one per sweep
/// point or trial block) and derives each shard's generator as
/// `Rng::derive(master_seed, shard_stream(experiment, shard))`, so a
/// shard's randomness depends only on *what* it computes — never on which
/// worker thread ran it or in what order shards completed. The hash is a
/// SplitMix64 sponge: each 8-byte chunk of the label, the label length
/// (disambiguating trailing-NUL padding), and the shard index are absorbed
/// through a full avalanche round. Distinct `(label, shard)` pairs map to
/// distinct streams up to the 64-bit birthday bound; the property test
/// below pins collision-freedom over generated pair sets.
pub fn shard_stream(label: &str, shard: u64) -> u64 {
    #[inline]
    fn absorb(state: u64, word: u64) -> u64 {
        let mut t = state ^ word;
        splitmix64(&mut t)
    }
    let mut s = 0xD05F_9D17_ED0C_75A3u64;
    for chunk in label.as_bytes().chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        s = absorb(s, u64::from_le_bytes(w));
    }
    s = absorb(s, label.len() as u64);
    absorb(s, shard)
}

/// A deterministic xoshiro256++ stream.
#[derive(Clone, Debug)]
pub struct Rng {
    s: [u64; 4],
    /// Cached second Box–Muller deviate.
    spare_normal: Option<f64>,
}

impl Rng {
    /// Derive a stream from a master seed and a stream label.
    ///
    /// The label should be a stable constant per subsystem. Distinct labels
    /// yield statistically independent streams for the same master seed.
    pub fn derive(master_seed: u64, stream: u64) -> Rng {
        let mut state = master_seed ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let mut s = [0u64; 4];
        for word in &mut s {
            *word = splitmix64(&mut state);
        }
        // xoshiro forbids the all-zero state; SplitMix64 cannot emit four
        // consecutive zeros from any state, but guard anyway.
        if s == [0; 4] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Rng { s, spare_normal: None }
    }

    /// Seed directly from a single `u64` (stream 0).
    pub fn seed_from_u64(seed: u64) -> Rng {
        Rng::derive(seed, 0)
    }

    /// Raw 64-bit draw (for deriving sub-streams or hashing).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range");
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`, bias-free (Lemire's method). Panics if
    /// `n == 0`.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0)");
        let mut m = u128::from(self.next_u64()) * u128::from(n);
        let mut low = m as u64;
        if low < n {
            let threshold = n.wrapping_neg() % n;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(n);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform integer in the inclusive range `[lo, hi]`.
    #[inline]
    pub fn int_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty range");
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.below(hi - lo + 1)
    }

    /// Bernoulli trial with probability `p` of `true` (clamped to [0, 1]).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.uniform() < p
        }
    }

    /// Standard normal deviate via Box–Muller.
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Draw u1 in (0,1] to keep ln() finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * core::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    #[inline]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        assert!(std_dev >= 0.0, "negative std dev");
        mean + std_dev * self.standard_normal()
    }

    /// Exponential deviate with the given mean.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "non-positive mean");
        -mean * (1.0 - self.uniform()).ln()
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element index, or `None` for an empty slice.
    #[inline]
    pub fn pick_index(&mut self, len: usize) -> Option<usize> {
        if len == 0 {
            None
        } else {
            Some(self.below(len as u64) as usize)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vector_xoshiro256pp() {
        // First outputs for the state {1, 2, 3, 4}, from the reference C
        // implementation by Blackman & Vigna.
        let mut r = Rng { s: [1, 2, 3, 4], spare_normal: None };
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for &e in &expected {
            assert_eq!(r.next_u64(), e);
        }
    }

    #[test]
    fn derive_is_deterministic_and_stream_separated() {
        let mut a = Rng::derive(42, 3);
        let mut b = Rng::derive(42, 3);
        let mut c = Rng::derive(42, 4);
        let mut same_stream_matches = 0;
        let mut cross_stream_matches = 0;
        for _ in 0..64 {
            let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
            same_stream_matches += usize::from(x == y);
            cross_stream_matches += usize::from(x == z);
        }
        assert_eq!(same_stream_matches, 64);
        assert_eq!(cross_stream_matches, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng::seed_from_u64(7);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn int_range_full_width() {
        let mut r = Rng::seed_from_u64(8);
        // Must not overflow on the maximal range.
        let _ = r.int_range(0, u64::MAX);
        assert_eq!(r.int_range(5, 5), 5);
    }

    #[test]
    fn shard_stream_is_stable_and_label_sensitive() {
        // Stable across calls, distinct across labels, shards, and the
        // padding-ambiguous cases the length absorption disambiguates.
        assert_eq!(shard_stream("fig06", 3), shard_stream("fig06", 3));
        assert_ne!(shard_stream("fig06", 3), shard_stream("fig06", 4));
        assert_ne!(shard_stream("fig06", 3), shard_stream("fig09", 3));
        assert_ne!(shard_stream("x", 0), shard_stream("x\0", 0));
        assert_ne!(shard_stream("", 0), shard_stream("\0", 0));
    }

    #[test]
    fn shard_stream_injective_over_pairs() {
        // Property: shard-seed derivation is injective over (experiment,
        // shard) pairs — two distinct pairs never share a stream id, and
        // the streams they derive diverge.
        crate::prop::check("shard_stream_injective_over_pairs", |g| {
            let alphabet = [
                "fig02", "fig05", "fig06", "fig09", "fig10", "fig11", "fig12",
                "fig14", "table1", "table2", "table3", "sec5_light",
                "sec5_polling", "ablations", "", "a", "ab",
            ];
            let la = *g.pick(&alphabet);
            let lb = *g.pick(&alphabet);
            let sa = g.u64(0, 1 << 20);
            let sb = g.u64(0, 1 << 20);
            if (la, sa) != (lb, sb) {
                crate::prop_assert!(
                    shard_stream(la, sa) != shard_stream(lb, sb),
                    "collision: ({la:?},{sa}) vs ({lb:?},{sb})"
                );
            }
        });
        // Exhaustive sweep at small scale: every pair distinct.
        let mut seen = std::collections::BTreeSet::new();
        for label in ["fig06_guard_sweep", "fig09_signature_detection", "fig14_gain_cdf"] {
            for shard in 0..1024u64 {
                assert!(seen.insert(shard_stream(label, shard)), "{label}/{shard}");
            }
        }
    }

    #[test]
    fn uniform_moments() {
        let mut r = Rng::seed_from_u64(9);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
