//! # domino-testkit
//!
//! The in-tree test and measurement substrate of the DOMINO reproduction.
//! It exists so the workspace builds and verifies **hermetically** — with no
//! registry access at all — and has three parts:
//!
//! * [`rng`] — the workspace's only PRNG: xoshiro256++ seeded through
//!   SplitMix64 `(master_seed, stream)` derivation, with uniform / range /
//!   Box–Muller normal / exponential / shuffle APIs. `domino-sim` re-exports
//!   [`rng::Rng`] as `SimRng`; every stochastic subsystem draws from it.
//! * [`prop`] — a property-testing harness (replaces `proptest`): seeded
//!   case generation, configurable case counts, and Hypothesis-style
//!   choice-sequence shrinking with [`prop::replay`] for pinning regressions.
//! * [`bench`] — a wall-clock benchmark harness (replaces `criterion`):
//!   warmup + calibrated samples, median/p95 reporting, JSON output.
//! * [`digest`] — hand-rolled SHA-256 (replaces `sha2`): the content
//!   digest behind the campaign result cache's keys and verified reads.
//!
//! This crate must never grow a dependency, in-workspace or external: it is
//! below `domino-sim` in the crate DAG and is the guarantee that
//! `cargo build --release && cargo test -q` needs nothing but the toolchain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod digest;
pub mod prop;
pub mod rng;

pub use rng::Rng;
