//! The high-level simulation API.
//!
//! ```
//! use domino_core::{Scheme, SimulationBuilder};
//! use domino_core::scenarios;
//!
//! let net = scenarios::fig1();
//! let report = SimulationBuilder::new(net.clone())
//!     .saturated_downlinks()
//!     .duration_s(0.5)
//!     .seed(7)
//!     .run(Scheme::Domino);
//! assert!(report.aggregate_mbps() > 0.0);
//! ```

use crate::report::RunReport;
use domino_faults::FaultConfig;
use domino_mac::centaur::{CentaurConfig, CentaurSim};
use domino_mac::domino::{DominoConfig, DominoSim};
use domino_mac::omniscient::OmniscientSim;
use domino_mac::{DcfSim, Workload};
use domino_obs::TraceHandle;
use domino_topology::{Direction, Network};

/// The four channel-access schemes of the evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Scheme {
    /// 802.11 DCF (distributed baseline).
    Dcf,
    /// CENTAUR-style hybrid (scheduled downlink epochs, DCF uplink).
    Centaur,
    /// DOMINO relative scheduling (the paper's contribution).
    Domino,
    /// Idealized perfectly-synchronized centralized scheduler.
    Omniscient,
}

impl Scheme {
    /// All schemes, in the order the paper's figures list them.
    pub const ALL: [Scheme; 4] = [Scheme::Dcf, Scheme::Centaur, Scheme::Domino, Scheme::Omniscient];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Dcf => "DCF",
            Scheme::Centaur => "CENTAUR",
            Scheme::Domino => "DOMINO",
            Scheme::Omniscient => "Omniscient",
        }
    }
}

/// Configures and runs one simulation.
#[derive(Clone, Debug)]
pub struct SimulationBuilder {
    network: Network,
    workload: Option<Workload>,
    duration_s: f64,
    seed: u64,
    domino: DominoConfig,
    centaur: CentaurConfig,
    faults: FaultConfig,
}

impl SimulationBuilder {
    /// Start building a run over `network`.
    pub fn new(network: Network) -> SimulationBuilder {
        SimulationBuilder {
            network,
            workload: None,
            duration_s: 10.0,
            seed: 1,
            domino: DominoConfig::default(),
            centaur: CentaurConfig::default(),
            faults: FaultConfig::off(),
        }
    }

    /// Use an explicit workload.
    pub fn workload(mut self, workload: Workload) -> Self {
        self.workload = Some(workload);
        self
    }

    /// UDP at `down_bps` on every downlink and `up_bps` on every uplink
    /// (the Fig 12 workload).
    pub fn udp(mut self, down_bps: f64, up_bps: f64) -> Self {
        self.workload = Some(Workload::udp_updown(&self.network, down_bps, up_bps));
        self
    }

    /// TCP at the given offered rates per direction.
    pub fn tcp(mut self, down_bps: f64, up_bps: f64) -> Self {
        self.workload = Some(Workload::tcp_updown(&self.network, down_bps, up_bps));
        self
    }

    /// Saturated UDP on every downlink.
    pub fn saturated_downlinks(mut self) -> Self {
        let links: Vec<_> = self
            .network
            .links()
            .iter()
            .filter(|l| l.direction == Direction::Downlink)
            .map(|l| l.id)
            .collect();
        self.workload = Some(Workload::udp_saturated(&links));
        self
    }

    /// Simulated duration in seconds (the paper uses 50 s runs; tests use
    /// shorter ones).
    pub fn duration_s(mut self, seconds: f64) -> Self {
        assert!(seconds > 0.0);
        self.duration_s = seconds;
        self
    }

    /// Master random seed (runs are pure functions of config + seed).
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override DOMINO engine parameters (batch size, wired jitter,
    /// converter knobs).
    pub fn domino_config(mut self, cfg: DominoConfig) -> Self {
        self.domino = cfg;
        self
    }

    /// Override CENTAUR engine parameters.
    pub fn centaur_config(mut self, cfg: CentaurConfig) -> Self {
        self.centaur = cfg;
        self
    }

    /// Inject faults from a [`FaultConfig`]. The default is all off,
    /// which is byte-identical to a build without the fault plane.
    pub fn faults(mut self, cfg: FaultConfig) -> Self {
        self.faults = cfg;
        self
    }

    /// The network under simulation.
    pub fn network_ref(&self) -> &Network {
        &self.network
    }

    /// Run under the given scheme.
    pub fn run(&self, scheme: Scheme) -> RunReport {
        self.run_traced(scheme, TraceHandle::off())
    }

    /// [`SimulationBuilder::run`] with a trace sink attached. Tracing is
    /// observation only — it draws no randomness and schedules no events,
    /// so a run with the handle off is byte-identical to [`run`].
    ///
    /// The handle is passed per call (rather than stored on the builder)
    /// so the builder itself stays `Send`: trace sinks are `Rc`-based and
    /// must be created inside the thread that runs the simulation.
    ///
    /// [`run`]: SimulationBuilder::run
    pub fn run_traced(&self, scheme: Scheme, tracer: TraceHandle) -> RunReport {
        let workload = self
            .workload
            .clone()
            .expect("no workload configured: call udp()/tcp()/workload() first");
        let stats = match scheme {
            Scheme::Dcf => DcfSim::run_traced(
                &self.network,
                &workload,
                self.duration_s,
                self.seed,
                &self.faults,
                tracer,
            ),
            Scheme::Centaur => CentaurSim::run_traced(
                &self.network,
                &workload,
                self.duration_s,
                self.seed,
                self.centaur.clone(),
                &self.faults,
                tracer,
            ),
            Scheme::Domino => DominoSim::run_traced(
                &self.network,
                &workload,
                self.duration_s,
                self.seed,
                self.domino.clone(),
                &self.faults,
                tracer,
            ),
            Scheme::Omniscient => OmniscientSim::run_traced(
                &self.network,
                &workload,
                self.duration_s,
                self.seed,
                &self.faults,
                tracer,
            ),
        };
        RunReport::new(scheme, workload.flow_links(), stats)
    }

    /// Run all four schemes with the same configuration.
    pub fn run_all(&self) -> Vec<RunReport> {
        Scheme::ALL.iter().map(|&s| self.run(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios;

    #[test]
    fn builder_runs_every_scheme() {
        let net = scenarios::fig1();
        let b = SimulationBuilder::new(net).udp(2e6, 1e6).duration_s(0.3).seed(3);
        for scheme in Scheme::ALL {
            let report = b.run(scheme);
            assert_eq!(report.scheme, scheme);
            assert!(
                report.aggregate_mbps() > 0.5,
                "{}: {}",
                scheme.label(),
                report.aggregate_mbps()
            );
        }
    }

    #[test]
    fn deterministic_across_builder_clones() {
        let net = scenarios::fig7();
        let b = SimulationBuilder::new(net).udp(5e6, 0.0).duration_s(0.3).seed(9);
        let a = b.clone().run(Scheme::Domino);
        let c = b.run(Scheme::Domino);
        assert_eq!(a.stats.delivered_bits, c.stats.delivered_bits);
    }

    #[test]
    #[should_panic(expected = "no workload")]
    fn missing_workload_panics() {
        let net = scenarios::fig1();
        let _ = SimulationBuilder::new(net).run(Scheme::Dcf);
    }

    #[test]
    fn scheme_labels() {
        assert_eq!(Scheme::Domino.label(), "DOMINO");
        assert_eq!(Scheme::ALL.len(), 4);
    }

    #[test]
    fn all_off_fault_plane_is_byte_identical() {
        let net = scenarios::fig1();
        let b = SimulationBuilder::new(net).udp(3e6, 1e6).duration_s(0.3).seed(11);
        for scheme in Scheme::ALL {
            let plain = b.clone().run(scheme);
            let off = b.clone().faults(FaultConfig::off()).run(scheme);
            assert_eq!(plain.stats.delivered_bits, off.stats.delivered_bits, "{scheme:?}");
            assert_eq!(plain.stats.events, off.stats.events, "{scheme:?}");
            assert_eq!(off.stats.faults, Default::default(), "{scheme:?}");
        }
    }

    #[test]
    fn tracing_is_observation_only() {
        // The determinism pin for the observability plane: attaching a
        // trace sink must not perturb event order, timing, or RNG state —
        // even under an active fault plane — and a disabled handle makes
        // zero allocations (the emit closure never runs). Every scheme
        // still produces trace events (the engine's liveness roll-over
        // alone guarantees a non-empty trace).
        let net = scenarios::fig1();
        let b = SimulationBuilder::new(net)
            .udp(3e6, 1e6)
            .duration_s(0.4)
            .seed(13)
            .faults(FaultConfig::chaos(0.8));
        for scheme in Scheme::ALL {
            let plain = b.run(scheme);
            let (handle, sink) = domino_obs::TraceHandle::mem();
            let traced = b.run_traced(scheme, handle);
            assert_eq!(plain.stats.delivered_bits, traced.stats.delivered_bits, "{scheme:?}");
            assert_eq!(plain.stats.events, traced.stats.events, "{scheme:?}");
            assert_eq!(plain.stats.faults, traced.stats.faults, "{scheme:?}");
            assert_eq!(plain.stats.domino, traced.stats.domino, "{scheme:?}");
            assert!(!sink.is_empty(), "{scheme:?} produced no trace events");
        }
    }

    #[test]
    fn chaos_injects_and_every_scheme_survives() {
        let net = scenarios::fig1();
        let b = SimulationBuilder::new(net)
            .udp(3e6, 1e6)
            .duration_s(0.4)
            .seed(13)
            .faults(FaultConfig::chaos(0.8));
        for scheme in Scheme::ALL {
            let report = b.clone().run(scheme);
            assert_eq!(report.stats.faults.livelocks, 0, "{scheme:?} livelocked");
            assert!(
                report.stats.faults.injections() > 0,
                "{scheme:?} saw no injections: {:?}",
                report.stats.faults
            );
            assert!(report.aggregate_mbps() > 0.0, "{scheme:?} collapsed");
        }
    }
}
