//! Run results with the paper's metrics precomputed.

use crate::builder::Scheme;
use domino_mac::RunStats;
use domino_topology::LinkId;

/// The outcome of one simulation run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The scheme that ran.
    pub scheme: Scheme,
    /// The links that carried configured flows (fairness and delay are
    /// computed over these, as in the paper).
    pub flow_links: Vec<LinkId>,
    /// Raw per-run statistics.
    pub stats: RunStats,
}

impl RunReport {
    /// Wrap raw stats.
    pub fn new(scheme: Scheme, flow_links: Vec<LinkId>, stats: RunStats) -> RunReport {
        RunReport { scheme, flow_links, stats }
    }

    /// Aggregate goodput in Mb/s (Fig 12a/d metric).
    pub fn aggregate_mbps(&self) -> f64 {
        self.stats.aggregate_mbps()
    }

    /// One link's goodput in Mb/s (Fig 2 metric).
    pub fn link_mbps(&self, link: LinkId) -> f64 {
        self.stats.link_mbps(link)
    }

    /// Jain's fairness index over the flow links (Fig 12c/f metric).
    pub fn fairness(&self) -> f64 {
        self.stats.fairness(&self.flow_links)
    }

    /// Average per-link delivery delay in µs (Fig 12b/e metric).
    pub fn mean_delay_us(&self) -> f64 {
        self.stats.mean_delay_us(&self.flow_links)
    }

    /// Fig 11's series: maximum transmission misalignment per slot index
    /// in µs (meaningful for DOMINO runs only).
    pub fn misalignment_by_slot(&self) -> Vec<(u64, f64)> {
        self.stats.misalignment_by_slot()
    }

    /// Throughput gain of this run over a baseline (Fig 14's metric).
    pub fn gain_over(&self, baseline: &RunReport) -> f64 {
        let base = baseline.aggregate_mbps();
        assert!(base > 0.0, "baseline delivered nothing");
        self.aggregate_mbps() / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(scheme: Scheme, bits: &[u64]) -> RunReport {
        let mut stats = RunStats::new(bits.len(), 1.0);
        stats.delivered_bits = bits.to_vec();
        RunReport::new(scheme, (0..bits.len() as u32).map(LinkId).collect(), stats)
    }

    #[test]
    fn metrics_delegate() {
        let r = report(Scheme::Domino, &[2_000_000, 2_000_000]);
        assert!((r.aggregate_mbps() - 4.0).abs() < 1e-9);
        assert!((r.link_mbps(LinkId(0)) - 2.0).abs() < 1e-9);
        assert!((r.fairness() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn gain_over_baseline() {
        let d = report(Scheme::Domino, &[4_000_000]);
        let c = report(Scheme::Dcf, &[2_000_000]);
        assert!((d.gain_over(&c) - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "baseline delivered nothing")]
    fn gain_over_empty_baseline_panics() {
        let d = report(Scheme::Domino, &[1]);
        let c = report(Scheme::Dcf, &[0]);
        let _ = d.gain_over(&c);
    }
}
