//! Ready-made scenarios for every experiment in the paper.

use domino_phy::units::Dbm;
use domino_topology::builder::{random_placement, t_topology};
use domino_topology::network::{make_node, Network, PhyParams};
use domino_topology::node::{NodeId, NodeRole, Position};
use domino_topology::rss::RssMatrix;
use domino_topology::trace::{generate, Trace, TraceConfig};

pub use domino_topology::presets::{fig13a, fig13b};

/// Seed of the canonical synthetic 40-node trace (the stand-in for the
/// paper's two-building measurement campaign; see DESIGN.md).
pub const TRACE_SEED: u64 = 0xD0311;

/// Paper Fig 1: three AP–client pairs with a hidden and an exposed
/// relationship (the running motivation example).
pub fn fig1() -> Network {
    domino_topology::presets::fig1(PhyParams::default())
}

/// Paper Fig 7: four AP–client pairs whose downlinks form a 4-cycle.
pub fn fig7() -> Network {
    domino_topology::presets::fig7(PhyParams::default())
}

/// The canonical synthetic 40-node two-building trace.
pub fn standard_trace() -> Trace {
    generate(&TraceConfig::default(), TRACE_SEED)
}

/// Build `T(m, n)` from the canonical trace (paper §4.2.1). Retries a few
/// topology seeds if the first cannot furnish enough clients.
pub fn standard_t(m: usize, n: usize, seed: u64) -> Network {
    let trace = standard_trace();
    for attempt in 0..16 {
        if let Some(net) = t_topology(&trace, m, n, PhyParams::default(), seed ^ (attempt << 32)) {
            return net;
        }
    }
    panic!("trace cannot furnish T({m},{n})")
}

/// The Fig 14 random topology: `m` APs with `n` clients each, uniformly
/// placed in an 800 m × 800 m area with ns-3 default path loss.
pub fn random_t(m: usize, n: usize, seed: u64) -> Network {
    random_placement(m, n, 800.0, 30.0, PhyParams::default(), seed)
}

/// The three USRP prototype scenarios of Table 2: two AP–client pairs
/// whose relationship is controlled.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UsrpScenario {
    /// Same contention domain: senders hear each other *and* conflict.
    SameContention,
    /// Hidden terminals: senders cannot hear each other but collide at
    /// the receivers.
    HiddenTerminals,
    /// Exposed terminals: senders hear each other but both receptions
    /// survive concurrency.
    ExposedTerminals,
}

impl UsrpScenario {
    /// All three, in Table 2's column order.
    pub const ALL: [UsrpScenario; 3] = [
        UsrpScenario::SameContention,
        UsrpScenario::HiddenTerminals,
        UsrpScenario::ExposedTerminals,
    ];

    /// Table 2's column label.
    pub fn label(self) -> &'static str {
        match self {
            UsrpScenario::SameContention => "SC",
            UsrpScenario::HiddenTerminals => "HT",
            UsrpScenario::ExposedTerminals => "ET",
        }
    }
}

/// Build the two-pair network for a Table 2 scenario.
pub fn usrp_scenario(scenario: UsrpScenario) -> Network {
    let nodes = vec![
        make_node(0, NodeRole::Ap, None, Position::new(0.0, 0.0)),
        make_node(1, NodeRole::Client, Some(0), Position::new(0.0, 10.0)),
        make_node(2, NodeRole::Ap, None, Position::new(30.0, 0.0)),
        make_node(3, NodeRole::Client, Some(2), Position::new(30.0, 10.0)),
    ];
    let mut rss = RssMatrix::disconnected(4);
    let pair = Dbm(-55.0);
    let interfere = Dbm(-60.0);
    let sense = Dbm(-75.0);
    let background = Dbm(-95.0);
    rss.set_symmetric(NodeId(0), NodeId(1), pair);
    rss.set_symmetric(NodeId(2), NodeId(3), pair);
    let (ap_ap, cross) = match scenario {
        UsrpScenario::SameContention => (sense, interfere),
        UsrpScenario::HiddenTerminals => (background, interfere),
        UsrpScenario::ExposedTerminals => (sense, background),
    };
    rss.set_symmetric(NodeId(0), NodeId(2), ap_ap);
    // Cross interference: each AP at the other pair's client.
    rss.set_symmetric(NodeId(0), NodeId(3), cross);
    rss.set_symmetric(NodeId(2), NodeId(1), cross);
    // Remaining pairs at background level.
    rss.set_symmetric(NodeId(1), NodeId(3), background);
    Network::new(nodes, rss, PhyParams::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_topology::conflict::{classify_pair, ConflictGraph, PairKind};
    use domino_topology::LinkId;

    fn downlink_pair(net: &Network) -> (LinkId, LinkId) {
        let d: Vec<LinkId> = net
            .links()
            .iter()
            .filter(|l| l.is_downlink())
            .map(|l| l.id)
            .collect();
        (d[0], d[1])
    }

    #[test]
    fn usrp_scenarios_have_the_right_structure() {
        let sc = usrp_scenario(UsrpScenario::SameContention);
        let g = ConflictGraph::build(&sc);
        let (a, b) = downlink_pair(&sc);
        assert_eq!(classify_pair(&sc, &g, a, b), PairKind::Contending);

        let ht = usrp_scenario(UsrpScenario::HiddenTerminals);
        let g = ConflictGraph::build(&ht);
        let (a, b) = downlink_pair(&ht);
        assert_eq!(classify_pair(&ht, &g, a, b), PairKind::Hidden);

        let et = usrp_scenario(UsrpScenario::ExposedTerminals);
        let g = ConflictGraph::build(&et);
        let (a, b) = downlink_pair(&et);
        assert_eq!(classify_pair(&et, &g, a, b), PairKind::Exposed);
    }

    #[test]
    fn standard_t_shapes() {
        let net = standard_t(10, 2, 1);
        assert_eq!(net.aps().len(), 10);
        assert_eq!(net.num_nodes(), 30);
        let net65 = standard_t(6, 5, 2);
        assert_eq!(net65.num_nodes(), 36);
    }

    #[test]
    fn random_t_shape() {
        let net = random_t(20, 3, 7);
        assert_eq!(net.num_nodes(), 80);
    }

    #[test]
    fn trace_is_canonical() {
        let a = standard_trace();
        let b = standard_trace();
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.rss.get(NodeId(0), NodeId(1)).value(),
            b.rss.get(NodeId(0), NodeId(1)).value()
        );
    }
}
