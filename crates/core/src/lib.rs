//! # domino-core
//!
//! The public API of the DOMINO (CoNEXT'13) reproduction.
//!
//! DOMINO is a centralized MAC framework for enterprise WLANs built on
//! *relative scheduling*: wireless transmissions trigger other wireless
//! transmissions through Gold-code signature bursts, removing the need
//! for microsecond time synchronization between APs. This workspace
//! reproduces the paper's full system and evaluation; see `DESIGN.md` for
//! the system inventory and `EXPERIMENTS.md` for paper-vs-measured
//! results.
//!
//! Quick start:
//!
//! ```
//! use domino_core::{Scheme, SimulationBuilder, scenarios};
//!
//! // The paper's Fig 1 motivation topology: a hidden and an exposed
//! // terminal relationship that DCF handles poorly.
//! let net = scenarios::fig1();
//! let builder = SimulationBuilder::new(net)
//!     .udp(2e6, 1e6)      // per-link offered rates
//!     .duration_s(0.2)
//!     .seed(42);
//! let domino = builder.run(Scheme::Domino);
//! let dcf = builder.run(Scheme::Dcf);
//! println!("DOMINO {:.1} Mb/s vs DCF {:.1} Mb/s",
//!          domino.aggregate_mbps(), dcf.aggregate_mbps());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod builder;
pub mod report;
pub mod scenarios;

pub use builder::{Scheme, SimulationBuilder};
pub use report::RunReport;

// Re-export the substrate crates a downstream user needs.
pub use domino_faults as faults;
pub use domino_faults::{FaultConfig, FaultStats};
pub use domino_mac as mac;
pub use domino_mac::{RunStats, Workload};
pub use domino_medium as medium;
pub use domino_obs as obs;
pub use domino_obs::{MemTracer, MetricsRegistry, TraceEvent, TraceHandle};
pub use domino_phy as phy;
pub use domino_scheduler as scheduler;
pub use domino_sim as sim;
pub use domino_stats as stats;
pub use domino_topology as topology;
pub use domino_traffic as traffic;
pub use domino_wired as wired;
