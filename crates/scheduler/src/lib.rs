//! # domino-scheduler
//!
//! The central controller's scheduling machinery for the DOMINO
//! (CoNEXT'13) reproduction: schedule types ([`schedule`]), the
//! RAND-style greedy slot scheduler with fairness rotation
//! ([`rand_scheduler`], paper §4.2.1), the §3.3 strict→relative schedule
//! converter — fake-link insertion, ROP-slot insertion, trigger
//! assignment under the inbound ≤ 2 / outbound ≤ 4 constraints, and batch
//! connection ([`converter`]) — the controller's stale-tolerant backlog
//! view fed by ROP reports ([`backlog`]), and the §5 energy-saving sleep
//! planner ([`sleep`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backlog;
pub mod converter;
pub mod rand_scheduler;
pub mod sleep;
pub mod schedule;

pub use backlog::BacklogView;
pub use converter::{ConversionOutcome, Converter, ConverterConfig};
pub use rand_scheduler::RandScheduler;
pub use sleep::{plan_batch, SleepPlan};
pub use schedule::{
    BurstAssignment, RelativeBatch, RelativeSlot, RopSlot, SlotEntry, StrictSchedule,
    MAX_TRIGGER_TARGETS,
};
