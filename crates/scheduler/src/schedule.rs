//! Schedule data types: strict schedules (what an arbitrary scheduler
//! emits) and relative schedules (what DOMINO executes).

use domino_topology::{InlineVec, LinkId, NodeId};

/// Inline capacity of a [`BurstAssignment`]'s target list. The converter
/// clamps trigger assignment at `max_outbound.min(MAX_TRIGGER_TARGETS)`
/// (4, Fig 9 — ablations only go below it), and the medium's `BURST_CAP`
/// matches, so assignments convert to on-air bursts without truncation
/// while keeping both inline types at event-queue-friendly sizes.
pub const MAX_TRIGGER_TARGETS: usize = 4;

/// A strict schedule: `slots[i]` is the set of links that transmit
/// concurrently in slot `i` (paper §3.3, `S = [s1 … sk]`).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct StrictSchedule {
    /// Concurrent link sets, one per slot.
    pub slots: Vec<Vec<LinkId>>,
}

impl StrictSchedule {
    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the schedule has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }
}

/// One link's appearance in a relative-schedule slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotEntry {
    /// The scheduled link.
    pub link: LinkId,
    /// Fake-link keep-alive (header-only transmission, no payload
    /// consumed, §3.3)?
    pub fake: bool,
    /// No trigger could reach this link's sender from the previous slot
    /// (e.g. an isolated AP cell): the AP starts it individually, per the
    /// paper's first-batch rule, instead of waiting for a signature.
    pub kick_off: bool,
}

/// A signature broadcast assignment: at the end of a slot, `broadcaster`
/// transmits the signatures of `targets` (each a next-slot transmitter or
/// a polling AP), capped at 4 by the outbound constraint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BurstAssignment {
    /// The node sending the combined signatures.
    pub broadcaster: NodeId,
    /// The nodes being triggered (inline: building an assignment never
    /// touches the allocator).
    pub targets: InlineVec<NodeId, MAX_TRIGGER_TARGETS>,
}

/// An ROP slot shared by non-conflicting APs (paper §3.3).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RopSlot {
    /// APs that poll their clients during this slot.
    pub aps: Vec<NodeId>,
}

/// One slot of a relative schedule.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RelativeSlot {
    /// Links transmitting in this slot.
    pub entries: Vec<SlotEntry>,
    /// Signature broadcasts at the end of this slot (they trigger the
    /// ROP slot, if any, and the next slot's transmitters).
    pub bursts: Vec<BurstAssignment>,
    /// ROP slot inserted between this slot and the next; when present,
    /// this slot's bursts carry the ROP marker instead of START.
    pub rop_after: Option<RopSlot>,
}

/// A converted batch ready for distribution to the APs.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct RelativeBatch {
    /// Burst assignments for the *retained* last slot of the previous
    /// batch — they trigger this batch's first slot (batch connection,
    /// §3.3). Empty for the very first batch, whose slot 0 is started by
    /// the APs individually.
    pub connecting_bursts: Vec<BurstAssignment>,
    /// Whether an ROP slot sits between the previous batch's last slot
    /// and this batch's first slot.
    pub connecting_rop: Option<RopSlot>,
    /// The batch's slots.
    pub slots: Vec<RelativeSlot>,
}

impl RelativeBatch {
    /// Total scheduled link-slots (including fakes).
    pub fn total_entries(&self) -> usize {
        self.slots.iter().map(|s| s.entries.len()).sum()
    }

    /// Total fake entries.
    pub fn fake_entries(&self) -> usize {
        self.slots
            .iter()
            .flat_map(|s| &s.entries)
            .filter(|e| e.fake)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_counters() {
        let batch = RelativeBatch {
            connecting_bursts: vec![],
            connecting_rop: None,
            slots: vec![
                RelativeSlot {
                    entries: vec![
                        SlotEntry { link: LinkId(0), fake: false, kick_off: false },
                        SlotEntry { link: LinkId(2), fake: true, kick_off: false },
                    ],
                    bursts: vec![],
                    rop_after: None,
                },
                RelativeSlot {
                    entries: vec![SlotEntry { link: LinkId(1), fake: false, kick_off: false }],
                    bursts: vec![],
                    rop_after: None,
                },
            ],
        };
        assert_eq!(batch.total_entries(), 3);
        assert_eq!(batch.fake_entries(), 1);
    }

    #[test]
    fn strict_schedule_len() {
        let s = StrictSchedule { slots: vec![vec![LinkId(0)], vec![]] };
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert!(StrictSchedule::default().is_empty());
    }
}
