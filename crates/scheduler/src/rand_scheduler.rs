//! The RAND-style greedy slot scheduler (paper §4.2.1).
//!
//! "To calculate the schedule for each slot, the first link l from the
//! queue of links Q that has data to send is added to a set C(l). Then we
//! add another link l′ from Q − C(l) to C(l) if l′ is not conflicting
//! with any link in C(l). … All of the links in C(l) are then scheduled
//! in this slot. To improve the fairness, we move the links in C(l) to
//! the end of Q."
//!
//! The scheduler works from the controller's *view* of per-link backlog
//! (AP queues via the wired network, client queues via ROP) and consumes
//! one packet of backlog per scheduled slot.

use crate::schedule::StrictSchedule;
use domino_topology::{ConflictGraph, LinkId};

/// Rotating-queue greedy scheduler.
///
/// The pools at the bottom recycle slot storage between batches: a
/// caller that hands each schedule back via [`RandScheduler::recycle`]
/// keeps the steady-state compute loop allocation-free.
#[derive(Clone, Debug)]
pub struct RandScheduler {
    order: Vec<LinkId>,
    slot_pool: Vec<Vec<LinkId>>,
    spare: Vec<StrictSchedule>,
}

impl RandScheduler {
    /// A scheduler over `num_links` links in initial id order.
    pub fn new(num_links: usize) -> RandScheduler {
        RandScheduler {
            order: (0..num_links as u32).map(LinkId).collect(),
            slot_pool: Vec::new(),
            spare: Vec::new(),
        }
    }

    /// Hand a consumed schedule back for reuse by a later
    /// [`RandScheduler::schedule_batch`].
    pub fn recycle(&mut self, mut s: StrictSchedule) {
        for mut v in s.slots.drain(..) {
            v.clear();
            self.slot_pool.push(v);
        }
        self.spare.push(s);
    }

    /// Current fairness order (mostly for inspection/testing).
    pub fn order(&self) -> &[LinkId] {
        &self.order
    }

    /// Produce a strict schedule of at most `max_slots` slots, consuming
    /// from `backlog` (packets per link, indexed by `LinkId::index`).
    ///
    /// Stops early when no link has backlog left. Fairness rotation is
    /// applied after every slot.
    pub fn schedule_batch(
        &mut self,
        graph: &ConflictGraph,
        backlog: &mut [u32],
        max_slots: usize,
    ) -> StrictSchedule {
        assert_eq!(backlog.len(), self.order.len(), "backlog size mismatch");
        let mut schedule = self.spare.pop().unwrap_or_default();
        debug_assert!(schedule.slots.is_empty());
        for _ in 0..max_slots {
            let mut chosen = self.slot_pool.pop().unwrap_or_default();
            chosen.clear();
            for &l in &self.order {
                if backlog[l.index()] == 0 {
                    continue;
                }
                if graph.compatible_with_all(l, &chosen) {
                    chosen.push(l);
                }
            }
            if chosen.is_empty() {
                self.slot_pool.push(chosen);
                break;
            }
            for &l in &chosen {
                backlog[l.index()] -= 1;
            }
            // Fairness: move the scheduled links to the end of Q,
            // preserving their relative order.
            self.order.retain(|l| !chosen.contains(l));
            self.order.extend(chosen.iter().copied());
            schedule.slots.push(chosen);
        }
        schedule
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_phy::units::Dbm;
    use domino_topology::network::{make_node, Network, PhyParams};
    use domino_topology::node::{NodeId, NodeRole, Position};
    use domino_topology::rss::RssMatrix;

    /// Three AP-client pairs where downlinks 0 and 2 (link ids 0 and 4)
    /// conflict, everything else across pairs is independent.
    fn fixture() -> (Network, ConflictGraph) {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
            make_node(2, NodeRole::Ap, None, Position::default()),
            make_node(3, NodeRole::Client, Some(2), Position::default()),
            make_node(4, NodeRole::Ap, None, Position::default()),
            make_node(5, NodeRole::Client, Some(4), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(6);
        for (a, c) in [(0u32, 1u32), (2, 3), (4, 5)] {
            rss.set_symmetric(NodeId(a), NodeId(c), Dbm(-55.0));
        }
        // AP0 and AP4 interfere at each other's clients.
        rss.set_symmetric(NodeId(0), NodeId(5), Dbm(-58.0));
        rss.set_symmetric(NodeId(4), NodeId(1), Dbm(-58.0));
        let net = Network::new(nodes, rss, PhyParams::default());
        let graph = ConflictGraph::build(&net);
        (net, graph)
    }

    #[test]
    fn slots_are_independent_sets() {
        let (net, graph) = fixture();
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = vec![3u32; net.links().len()];
        let s = sched.schedule_batch(&graph, &mut backlog, 10);
        assert!(!s.is_empty());
        for slot in &s.slots {
            assert!(graph.is_independent(slot), "slot {slot:?} conflicts");
        }
    }

    #[test]
    fn consumes_backlog() {
        let (net, graph) = fixture();
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = vec![0u32; net.links().len()];
        backlog[0] = 2; // only downlink 0 has traffic
        let s = sched.schedule_batch(&graph, &mut backlog, 10);
        assert_eq!(s.len(), 2, "exactly two slots for two packets");
        assert_eq!(s.slots[0], vec![LinkId(0)]);
        assert_eq!(backlog[0], 0);
    }

    #[test]
    fn empty_backlog_gives_empty_schedule() {
        let (net, graph) = fixture();
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = vec![0u32; net.links().len()];
        assert!(sched.schedule_batch(&graph, &mut backlog, 5).is_empty());
    }

    #[test]
    fn conflicting_links_never_share_a_slot() {
        let (net, graph) = fixture();
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = vec![5u32; net.links().len()];
        let s = sched.schedule_batch(&graph, &mut backlog, 20);
        // Links 0 (AP0->C1) and 4 (AP4->C5) conflict by construction.
        for slot in &s.slots {
            assert!(!(slot.contains(&LinkId(0)) && slot.contains(&LinkId(4))));
        }
    }

    #[test]
    fn fairness_rotation_alternates_conflicting_links() {
        let (net, graph) = fixture();
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = vec![0u32; net.links().len()];
        backlog[0] = 4;
        backlog[4] = 4;
        let s = sched.schedule_batch(&graph, &mut backlog, 8);
        assert_eq!(s.len(), 8);
        // The two conflicting downlinks must alternate, not starve.
        let first: Vec<bool> = s.slots.iter().map(|sl| sl.contains(&LinkId(0))).collect();
        let count0 = first.iter().filter(|&&b| b).count();
        assert_eq!(count0, 4, "link 0 scheduled {count0}/8");
        assert!(first[0] != first[1], "expected alternation, got {first:?}");
    }

    #[test]
    fn greedy_packs_compatible_links_together() {
        let (net, graph) = fixture();
        let mut sched = RandScheduler::new(net.links().len());
        let mut backlog = vec![0u32; net.links().len()];
        backlog[0] = 1; // AP0 downlink
        backlog[2] = 1; // AP2 downlink (independent of everything)
        let s = sched.schedule_batch(&graph, &mut backlog, 5);
        assert_eq!(s.len(), 1, "both links fit one slot");
        assert_eq!(s.slots[0].len(), 2);
    }

    #[test]
    #[should_panic(expected = "backlog size mismatch")]
    fn backlog_size_checked() {
        let (_, graph) = fixture();
        let mut sched = RandScheduler::new(12);
        let mut backlog = vec![0u32; 3];
        let _ = sched.schedule_batch(&graph, &mut backlog, 1);
    }
}
