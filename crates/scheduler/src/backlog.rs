//! The controller's view of per-link backlog.
//!
//! Downlink queues live at the APs and reach the controller over the
//! wire; uplink queues are only learned through ROP reports (§3.1) — and
//! are *stale* in between. The view therefore tracks, per link, the last
//! reported queue length minus the packets the controller has scheduled
//! since, never going negative.

use domino_topology::LinkId;

/// Controller-side backlog estimates.
#[derive(Clone, Debug)]
pub struct BacklogView {
    estimated: Vec<u32>,
    /// Packets scheduled since the last report, per link (so a fresh
    /// report does not double-count in-flight schedule decisions).
    scheduled_since_report: Vec<u32>,
}

impl BacklogView {
    /// A view over `num_links` links, all initially empty.
    pub fn new(num_links: usize) -> BacklogView {
        BacklogView {
            estimated: vec![0; num_links],
            scheduled_since_report: vec![0; num_links],
        }
    }

    /// Number of links tracked.
    pub fn len(&self) -> usize {
        self.estimated.len()
    }

    /// True when no links are tracked.
    pub fn is_empty(&self) -> bool {
        self.estimated.is_empty()
    }

    /// Absorb a fresh queue report for `link` (from ROP or the wire).
    /// The report reflects the queue *before* any still-unexecuted
    /// schedule decisions, so those are subtracted.
    pub fn report(&mut self, link: LinkId, queue: u32) {
        let pending = self.scheduled_since_report[link.index()];
        self.estimated[link.index()] = queue.saturating_sub(pending);
        self.scheduled_since_report[link.index()] = 0;
    }

    /// An arrival the controller directly observes (AP-side enqueue
    /// forwarded over the wire).
    pub fn add(&mut self, link: LinkId, packets: u32) {
        self.estimated[link.index()] = self.estimated[link.index()].saturating_add(packets);
    }

    /// Current estimate for `link`.
    pub fn estimate(&self, link: LinkId) -> u32 {
        self.estimated[link.index()]
    }

    /// Snapshot of all estimates, for feeding the scheduler. The
    /// scheduler consumes from the returned buffer; call
    /// [`BacklogView::commit_schedule`] with what it actually used.
    pub fn snapshot(&self) -> Vec<u32> {
        self.estimated.clone()
    }

    /// Borrowed view of all estimates, for callers that keep their own
    /// scratch buffer instead of taking a fresh [`BacklogView::snapshot`].
    pub fn estimates(&self) -> &[u32] {
        &self.estimated
    }

    /// Commit the scheduler's consumption: `remaining` is the snapshot
    /// after scheduling; the difference is what got scheduled.
    pub fn commit_schedule(&mut self, remaining: &[u32]) {
        assert_eq!(remaining.len(), self.estimated.len());
        #[allow(clippy::needless_range_loop)]
        for i in 0..self.estimated.len() {
            let used = self.estimated[i].saturating_sub(remaining[i]);
            self.scheduled_since_report[i] = self.scheduled_since_report[i].saturating_add(used);
            self.estimated[i] = remaining[i];
        }
    }

    /// Refund one scheduled packet (a converted link was dropped for
    /// lack of triggers and must be rescheduled).
    pub fn refund(&mut self, link: LinkId) {
        self.estimated[link.index()] = self.estimated[link.index()].saturating_add(1);
        self.scheduled_since_report[link.index()] =
            self.scheduled_since_report[link.index()].saturating_sub(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_replace_estimates() {
        let mut v = BacklogView::new(4);
        v.report(LinkId(2), 7);
        assert_eq!(v.estimate(LinkId(2)), 7);
        v.report(LinkId(2), 3);
        assert_eq!(v.estimate(LinkId(2)), 3);
    }

    #[test]
    fn arrivals_accumulate() {
        let mut v = BacklogView::new(2);
        v.add(LinkId(0), 2);
        v.add(LinkId(0), 1);
        assert_eq!(v.estimate(LinkId(0)), 3);
    }

    #[test]
    fn schedule_commit_decrements_and_tracks_pending() {
        let mut v = BacklogView::new(2);
        v.report(LinkId(0), 5);
        let mut snap = v.snapshot();
        snap[0] -= 2; // scheduler consumed 2
        v.commit_schedule(&snap);
        assert_eq!(v.estimate(LinkId(0)), 3);
        // A new report of 5 (the AP hasn't transmitted yet) must subtract
        // the 2 in-flight scheduled packets.
        v.report(LinkId(0), 5);
        assert_eq!(v.estimate(LinkId(0)), 3);
    }

    #[test]
    fn refund_restores_backlog() {
        let mut v = BacklogView::new(1);
        v.report(LinkId(0), 2);
        let mut snap = v.snapshot();
        snap[0] = 0;
        v.commit_schedule(&snap);
        assert_eq!(v.estimate(LinkId(0)), 0);
        v.refund(LinkId(0));
        assert_eq!(v.estimate(LinkId(0)), 1);
        // The refunded packet is no longer counted as in-flight.
        v.report(LinkId(0), 2);
        assert_eq!(v.estimate(LinkId(0)), 1);
    }

    #[test]
    fn never_goes_negative() {
        let mut v = BacklogView::new(1);
        v.report(LinkId(0), 1);
        let mut snap = v.snapshot();
        snap[0] = 0;
        v.commit_schedule(&snap);
        v.report(LinkId(0), 0);
        assert_eq!(v.estimate(LinkId(0)), 0);
    }
}
