//! Sleep planning (paper §5, "Energy saving").
//!
//! "It is straightforward to implement energy saving mechanism in
//! DOMINO. For example, the server can schedule an energy constraint
//! device to sleep for a duration within which it does not need to send
//! or receive packets." Because the controller knows the whole relative
//! schedule, it can tell each client exactly which slots involve it —
//! as a participant of an exchange, a trigger target, or a poll
//! responder — and let it doze through the rest.

use crate::schedule::RelativeBatch;
use domino_topology::{Network, NodeId};

/// One node's activity map over a batch: `awake[i]` says whether the
/// node must be listening/transmitting during batch slot `i`.
#[derive(Clone, Debug)]
pub struct SleepPlan {
    /// The planned node.
    pub node: NodeId,
    /// Awake flags, one per batch slot.
    pub awake: Vec<bool>,
}

impl SleepPlan {
    /// Fraction of the batch the node may sleep through.
    pub fn sleep_fraction(&self) -> f64 {
        if self.awake.is_empty() {
            return 0.0;
        }
        let asleep = self.awake.iter().filter(|&&a| !a).count();
        asleep as f64 / self.awake.len() as f64
    }
}

/// Compute the sleep plan of every *client* for a converted batch.
///
/// A client must be awake in slot `i` when it is an endpoint of one of
/// the slot's links, a target of the slot's outgoing bursts (it is about
/// to be triggered), or its AP polls at the boundary after the slot.
/// APs are always awake (they run the schedule).
pub fn plan_batch(net: &Network, batch: &RelativeBatch) -> Vec<SleepPlan> {
    let n_slots = batch.slots.len();
    net.nodes()
        .iter()
        .filter(|n| !n.is_ap())
        .map(|client| {
            let id = client.id;
            // lint: allow(D005) topology construction gives every non-AP node an association
            let ap = client.associated_ap.expect("client has an AP");
            let awake: Vec<bool> = (0..n_slots)
                .map(|i| {
                    let slot = &batch.slots[i];
                    let endpoint = slot.entries.iter().any(|e| {
                        let l = net.link(e.link);
                        l.sender == id || l.receiver == id
                    });
                    let targeted =
                        slot.bursts.iter().any(|b| b.targets.contains(&id));
                    let prev_targeted = if i == 0 {
                        batch.connecting_bursts.iter().any(|b| b.targets.contains(&id))
                    } else {
                        false
                    };
                    let polled = slot
                        .rop_after
                        .as_ref()
                        .is_some_and(|r| r.aps.contains(&ap))
                        || (i == 0
                            && batch
                                .connecting_rop
                                .as_ref()
                                .is_some_and(|r| r.aps.contains(&ap)));
                    endpoint || targeted || prev_targeted || polled
                })
                .collect();
            SleepPlan { node: id, awake }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::converter::{Converter, ConverterConfig};
    use crate::rand_scheduler::RandScheduler;
    use crate::schedule::StrictSchedule;
    use domino_topology::presets::fig7;
    use domino_topology::{ConflictGraph, Direction, PhyParams};

    fn batch(poll: bool) -> (Network, RelativeBatch) {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut sched = RandScheduler::new(net.links().len());
        // Only the first pair's downlink has traffic; without fake links
        // the other pairs' clients can sleep.
        let mut backlog = vec![0u32; net.links().len()];
        backlog[0] = 4;
        let strict: StrictSchedule = sched.schedule_batch(&graph, &mut backlog, 4);
        let cfg = ConverterConfig {
            insert_fake_links: false,
            insert_rop: poll,
            ..ConverterConfig::default()
        };
        let mut conv = Converter::new(cfg);
        let aps = if poll { net.aps() } else { Vec::new() };
        let outcome = conv.convert(&net, &graph, &strict, &aps);
        (net, outcome.batch)
    }

    #[test]
    fn uninvolved_clients_sleep_through_the_batch() {
        let (net, b) = batch(false);
        let plans = plan_batch(&net, &b);
        // Client 1 (pair 1) is busy every slot; the other three sleep.
        let p1 = plans.iter().find(|p| p.node.0 == 1).unwrap();
        assert_eq!(p1.sleep_fraction(), 0.0);
        for other in [3u32, 5, 7] {
            let p = plans.iter().find(|p| p.node.0 == other).unwrap();
            assert_eq!(
                p.sleep_fraction(),
                1.0,
                "client {other} should sleep the whole batch"
            );
        }
    }

    #[test]
    fn polling_keeps_clients_awake_for_their_rop_slot() {
        let (net, b) = batch(true);
        let plans = plan_batch(&net, &b);
        // Any client whose AP polls inside the batch must wake for at
        // least that slot.
        let polled_aps: Vec<NodeId> = b
            .slots
            .iter()
            .filter_map(|s| s.rop_after.as_ref())
            .flat_map(|r| r.aps.clone())
            .collect();
        for plan in &plans {
            let ap = net.node(plan.node).associated_ap.unwrap();
            if polled_aps.contains(&ap) {
                assert!(
                    plan.sleep_fraction() < 1.0,
                    "client {} sleeps through its poll",
                    plan.node
                );
            }
        }
    }

    #[test]
    fn fake_links_trade_sleep_for_robustness() {
        // With fake-link insertion on, the same workload keeps every
        // client's radio busier — the §3.3/§5 energy trade-off made
        // measurable.
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let run = |fakes: bool| {
            let mut sched = RandScheduler::new(net.links().len());
            let mut backlog = vec![0u32; net.links().len()];
            backlog[0] = 4;
            let strict = sched.schedule_batch(&graph, &mut backlog, 4);
            let cfg = ConverterConfig {
                insert_fake_links: fakes,
                insert_rop: false,
                ..ConverterConfig::default()
            };
            let mut conv = Converter::new(cfg);
            let outcome = conv.convert(&net, &graph, &strict, &[]);
            let plans = plan_batch(&net, &outcome.batch);
            plans.iter().map(|p| p.sleep_fraction()).sum::<f64>() / plans.len() as f64
        };
        let sleep_without = run(false);
        let sleep_with = run(true);
        assert!(
            sleep_with < sleep_without,
            "fakes should reduce sleep: {sleep_with} vs {sleep_without}"
        );
    }

    #[test]
    fn aps_are_not_planned() {
        let (net, b) = batch(false);
        let plans = plan_batch(&net, &b);
        assert_eq!(
            plans.len(),
            net.links().iter().filter(|l| l.direction == Direction::Uplink).count()
        );
        for p in &plans {
            assert!(!net.node(p.node).is_ap());
        }
    }
}
