//! The schedule converter (paper §3.3): strict schedule → relative
//! schedule.
//!
//! Three transformations, in order:
//!
//! 1. **Fake-link insertion** — every slot is extended to a *maximal*
//!    independent set of the conflict graph; the added links are fake
//!    (header-only keep-alives) and exist purely to widen the trigger
//!    coverage so every node keeps hearing signatures.
//! 2. **ROP-slot insertion** — greedily place one ROP slot between
//!    neighbouring slots per polling AP; APs whose links do not conflict
//!    share a slot. Bursts before an ROP slot carry the ROP marker so the
//!    next slot's transmitters wait one ROP-slot duration.
//! 3. **Trigger assignment** — for every transmitter of slot `i+1` (and
//!    every AP polling at the boundary), pick up to `max_inbound` (2)
//!    triggering nodes among the endpoints of slot `i`'s links, highest
//!    RSS first, with at most `max_outbound` (4) signatures per
//!    broadcaster. Untriggerable links are dropped back to the scheduler
//!    ("the scheduler will reschedule such links").
//!
//! **Batch connection**: the converter retains the last slot of each
//! batch; the next batch's first slot is triggered by burst assignments
//! computed for that retained slot (`connecting_bursts`).

use crate::schedule::{
    BurstAssignment, RelativeBatch, RelativeSlot, RopSlot, SlotEntry, StrictSchedule,
    MAX_TRIGGER_TARGETS,
};
use domino_phy::units::Dbm;
use domino_topology::{ConflictGraph, LinkId, Network, NodeId};

/// Upper bound on signatures per broadcaster the converter's inline
/// scratch can hold (the paper's `max_outbound` is 4).
const MAX_OUT: usize = MAX_TRIGGER_TARGETS;

/// Converter tuning (paper §3.2/§3.3 constants).
#[derive(Clone, Debug)]
pub struct ConverterConfig {
    /// Maximum triggers per next-transmitter (paper: 2).
    pub max_inbound: usize,
    /// Maximum signatures per broadcaster (paper: 4, from Fig 9).
    pub max_outbound: usize,
    /// Minimum RSS for a trigger assignment. Correlation gain keeps lone
    /// signatures detectable near the noise floor, but a *scheduled*
    /// trigger must survive the other simultaneous end-of-slot bursts, so
    /// the converter demands a healthy margin; senders no broadcaster can
    /// reach become kick-off entries instead.
    pub trigger_min_rss: Dbm,
    /// Insert fake links (ablation knob; the paper always does).
    pub insert_fake_links: bool,
    /// Insert ROP slots (off for downlink-only or USRP-profile runs).
    pub insert_rop: bool,
}

impl Default for ConverterConfig {
    fn default() -> ConverterConfig {
        ConverterConfig {
            max_inbound: 2,
            max_outbound: 4,
            trigger_min_rss: Dbm(-88.0),
            insert_fake_links: true,
            insert_rop: true,
        }
    }
}

/// Result of converting one strict batch.
#[derive(Clone, Debug, Default)]
pub struct ConversionOutcome {
    /// The executable batch.
    pub batch: RelativeBatch,
    /// Links that could not be triggered and were dropped (the
    /// controller refunds their backlog and reschedules).
    pub rescheduled: Vec<LinkId>,
    /// APs that found no ROP opportunity this batch.
    pub unpolled_aps: Vec<NodeId>,
}

/// Stateful strict→relative converter (retains the batch-connection
/// slot).
///
/// The scratch fields at the bottom are pure working storage, rebuilt or
/// cleared on every call: the converter runs once per batch on the
/// simulator's controller path, and reusing the buffers keeps the
/// steady state allocation-free without touching any output.
#[derive(Debug)]
pub struct Converter {
    cfg: ConverterConfig,
    retained: Option<Vec<SlotEntry>>,
    batch_counter: u64,
    /// Every link id, cached (the fake-insertion candidate universe).
    all_links: Vec<LinkId>,
    /// Links per AP node index (empty for clients), for ROP conflict
    /// checks.
    links_of_ap: Vec<Vec<LinkId>>,
    /// Rotated fake-candidate order, reused across slots.
    candidates: Vec<LinkId>,
    /// Per-node outbound trigger targets ([`MAX_OUT`] inline slots).
    out_targets: Vec<([NodeId; MAX_OUT], usize)>,
    /// Per-node inbound trigger count.
    inbound: Vec<u8>,
    /// Broadcaster candidates at the boundary being assigned.
    broadcasters: Vec<NodeId>,
    /// Trigger targets at the boundary being assigned.
    targets: Vec<(NodeId, Option<LinkId>)>,
    /// Recycled slot storage (entries/bursts capacity survives between
    /// batches via [`Converter::convert_into`]).
    slot_pool: Vec<RelativeSlot>,
    /// Working copy of one strict slot during fake-link insertion.
    set_buf: Vec<LinkId>,
    /// Untriggered-links buffer, reused across boundaries.
    untriggered_buf: Vec<LinkId>,
}

impl Converter {
    /// A fresh converter.
    pub fn new(cfg: ConverterConfig) -> Converter {
        Converter {
            cfg,
            retained: None,
            batch_counter: 0,
            all_links: Vec::new(),
            links_of_ap: Vec::new(),
            candidates: Vec::new(),
            out_targets: Vec::new(),
            inbound: Vec::new(),
            broadcasters: Vec::new(),
            targets: Vec::new(),
            slot_pool: Vec::new(),
            set_buf: Vec::new(),
            untriggered_buf: Vec::new(),
        }
    }

    /// (Re)build the cached link tables when the network shape changes
    /// (in practice: once, on the first batch).
    fn sync_tables(&mut self, net: &Network) {
        if self.all_links.len() == net.links().len() && self.links_of_ap.len() == net.num_nodes()
        {
            return;
        }
        self.all_links = (0..net.links().len() as u32).map(LinkId).collect();
        self.links_of_ap = (0..net.num_nodes())
            .map(|n| {
                let node = NodeId(n as u32);
                net.links().iter().filter(|l| l.ap == node).map(|l| l.id).collect()
            })
            .collect();
        self.out_targets = vec![([NodeId(0); MAX_OUT], 0); net.num_nodes()];
        self.inbound = vec![0; net.num_nodes()];
    }

    /// The configuration in force.
    pub fn config(&self) -> &ConverterConfig {
        &self.cfg
    }

    /// Whether a retained slot exists (false only before the first
    /// non-empty batch).
    pub fn has_retained_slot(&self) -> bool {
        self.retained.is_some()
    }

    /// The entries of the retained batch-connection slot, if any.
    pub fn retained_entries(&self) -> Option<&[SlotEntry]> {
        self.retained.as_deref()
    }

    /// Convert one strict batch. `polling_aps` asks for ROP slots for
    /// those APs (normally all APs, once per batch).
    pub fn convert(
        &mut self,
        net: &Network,
        graph: &ConflictGraph,
        strict: &StrictSchedule,
        polling_aps: &[NodeId],
    ) -> ConversionOutcome {
        let mut out = ConversionOutcome::default();
        self.convert_into(net, graph, strict, polling_aps, &mut out);
        out
    }

    /// [`Converter::convert`], reusing a caller-held outcome. The
    /// previous contents of `out` are recycled into the converter's slot
    /// pool, so a controller loop that keeps handing back the same
    /// outcome never allocates batch storage in steady state.
    pub fn convert_into(
        &mut self,
        net: &Network,
        graph: &ConflictGraph,
        strict: &StrictSchedule,
        polling_aps: &[NodeId],
        out: &mut ConversionOutcome,
    ) {
        self.batch_counter += 1;
        out.rescheduled.clear();
        out.unpolled_aps.clear();
        out.batch.connecting_bursts.clear();
        out.batch.connecting_rop = None;
        self.slot_pool.append(&mut out.batch.slots);
        if strict.is_empty() && polling_aps.is_empty() {
            return;
        }
        self.sync_tables(net);

        // 1. Fake-link insertion.
        for (i, slot) in strict.slots.iter().enumerate() {
            let mut rslot = self.slot_pool.pop().unwrap_or_default();
            rslot.entries.clear();
            rslot.bursts.clear();
            rslot.rop_after = None;
            let mut set = std::mem::take(&mut self.set_buf);
            set.clear();
            set.extend_from_slice(slot);
            rslot
                .entries
                .extend(set.iter().map(|&l| SlotEntry { link: l, fake: false, kick_off: false }));
            if self.cfg.insert_fake_links {
                // Rotate the candidate order per slot so fake coverage
                // cycles over the whole network.
                let rot = (self.batch_counter as usize * 7 + i) % self.all_links.len().max(1);
                self.candidates.clear();
                self.candidates.extend_from_slice(&self.all_links[rot..]);
                self.candidates.extend_from_slice(&self.all_links[..rot]);
                let before = set.len();
                graph.extend_to_maximal_in_place(&mut set, &self.candidates);
                rslot.entries.extend(
                    set[before..]
                        .iter()
                        .map(|&l| SlotEntry { link: l, fake: true, kick_off: false }),
                );
            }
            self.set_buf = set;
            out.batch.slots.push(rslot);
        }

        // 2. ROP-slot insertion. Boundary b sits after "previous slot" b:
        // boundary 0 = between the retained slot and slots[0] (only if a
        // retained slot exists), boundary i = between slots[i-1] and
        // slots[i].
        if self.cfg.insert_rop {
            for &ap in polling_aps {
                if !self.try_insert_rop(
                    net,
                    graph,
                    ap,
                    &mut out.batch.slots,
                    &mut out.batch.connecting_rop,
                ) {
                    out.unpolled_aps.push(ap);
                }
            }
        }

        // 3. Trigger assignment per boundary. A boundary whose previous
        // slot is empty (or absent, for the very first batch) has no live
        // chain to trigger from: its links are marked kick-off and the
        // APs start them individually (§3.3's first-batch rule).
        let slots = &mut out.batch.slots;
        match &self.retained {
            None => mark_all_kick_offs(slots, 0),
            Some(retained) if retained.is_empty() => mark_all_kick_offs(slots, 0),
            _ => {}
        }
        for i in 0..slots.len().saturating_sub(1) {
            if slots[i].entries.is_empty() {
                mark_all_kick_offs(slots, i + 1);
            }
        }
        if self.retained.as_ref().is_some_and(|r| !r.is_empty()) {
            // The retained slot leaves `self` for the duration of the
            // call so `assign_boundary` can use the scratch tables.
            let retained = self.retained.take().unwrap_or_default();
            let mut dropped = std::mem::take(&mut self.untriggered_buf);
            dropped.clear();
            {
                let rop_aps: &[NodeId] = out
                    .batch
                    .connecting_rop
                    .as_ref()
                    .map(|r| r.aps.as_slice())
                    .unwrap_or(&[]);
                let next: &[SlotEntry] =
                    out.batch.slots.first().map(|s| s.entries.as_slice()).unwrap_or(&[]);
                self.assign_boundary(
                    net,
                    &retained,
                    next,
                    rop_aps,
                    &mut out.batch.connecting_bursts,
                    &mut dropped,
                );
            }
            self.retained = Some(retained);
            mark_kick_offs(&mut out.batch.slots, 0, &dropped);
            self.untriggered_buf = dropped;
        }
        for i in 0..out.batch.slots.len().saturating_sub(1) {
            // Disjoint borrows: slot `i` is read (entries, rop_after) and
            // written (bursts); slot `i + 1` is read then kick-off
            // marked.
            let (head, tail) = out.batch.slots.split_at_mut(i + 1);
            let RelativeSlot { entries: prev_entries, bursts: prev_bursts, rop_after: prev_rop } =
                &mut head[i];
            if prev_entries.is_empty() {
                continue;
            }
            let rop_aps: &[NodeId] = prev_rop.as_ref().map(|r| r.aps.as_slice()).unwrap_or(&[]);
            prev_bursts.clear();
            let mut dropped = std::mem::take(&mut self.untriggered_buf);
            dropped.clear();
            self.assign_boundary(net, prev_entries, &tail[0].entries, rop_aps, prev_bursts, &mut dropped);
            mark_kick_offs_in(&mut tail[0], &dropped);
            self.untriggered_buf = dropped;
        }

        // Retain the last slot for batch connection (reusing the
        // previous retained buffer).
        if let Some(last) = out.batch.slots.last() {
            let mut r = self.retained.take().unwrap_or_default();
            r.clear();
            r.extend_from_slice(&last.entries);
            self.retained = Some(r);
        }
    }

    /// Try to give `ap` an ROP opportunity; returns success.
    fn try_insert_rop(
        &self,
        net: &Network,
        graph: &ConflictGraph,
        ap: NodeId,
        slots: &mut [RelativeSlot],
        connecting_rop: &mut Option<RopSlot>,
    ) -> bool {
        let ap_links = &self.links_of_ap[ap.index()];
        let compatible = |existing: &RopSlot| {
            existing.aps.iter().all(|&other| {
                let other_links = &self.links_of_ap[other.index()];
                ap_links
                    .iter()
                    .all(|&a| other_links.iter().all(|&b| !graph.conflicts(a, b)))
            })
        };
        // Boundary None sits between the retained slot and the first
        // slot; inner boundaries follow in execution order.
        let boundaries = (self.retained.is_some().then_some(None).into_iter())
            .chain((0..slots.len().saturating_sub(1)).map(Some));
        for boundary in boundaries {
            let prev_entries: &[SlotEntry] = match boundary {
                None => self.retained.as_deref().unwrap_or(&[]),
                Some(i) => &slots[i].entries,
            };
            if !self.slot_can_trigger(net, prev_entries, ap) {
                continue;
            }
            let slot_ref: &mut Option<RopSlot> = match boundary {
                None => connecting_rop,
                Some(i) => &mut slots[i].rop_after,
            };
            match slot_ref {
                None => {
                    *slot_ref = Some(RopSlot { aps: vec![ap] });
                    return true;
                }
                Some(existing) => {
                    if compatible(existing) {
                        existing.aps.push(ap);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Can any endpoint of `prev` links deliver a signature to `target`?
    fn slot_can_trigger(&self, net: &Network, prev: &[SlotEntry], target: NodeId) -> bool {
        prev.iter().any(|e| {
            let l = net.link(e.link);
            [l.sender, l.receiver].iter().any(|&n| {
                n != target && net.rss().get(n, target) >= self.cfg.trigger_min_rss
            })
        })
    }

    /// Assign triggers at one boundary. Targets are the next slot's
    /// senders plus the polling APs. Appends the burst assignments and
    /// the untriggered next-slot links to the caller's buffers.
    fn assign_boundary(
        &mut self,
        net: &Network,
        prev: &[SlotEntry],
        next: &[SlotEntry],
        rop_aps: &[NodeId],
        bursts: &mut Vec<BurstAssignment>,
        untriggered: &mut Vec<LinkId>,
    ) {
        // Candidate broadcasters: both endpoints of every prev-slot link.
        self.broadcasters.clear();
        for e in prev {
            let l = net.link(e.link);
            for n in [l.sender, l.receiver] {
                if !self.broadcasters.contains(&n) {
                    self.broadcasters.push(n);
                }
            }
        }

        // Targets: (node, link-to-mark-if-untriggered). Targets that are
        // endpoints of the previous slot may be deaf during the
        // simultaneous burst phase (the engine's self-trigger path covers
        // them), but they still receive assignments: the redundancy is
        // what rides out partial failures (§3.2's cross-links).
        self.targets.clear();
        for e in next {
            let sender = net.link(e.link).sender;
            if !self.targets.iter().any(|&(n, _)| n == sender) {
                self.targets.push((sender, Some(e.link)));
            }
        }
        for &ap in rop_aps {
            if !self.targets.iter().any(|&(n, _)| n == ap) {
                self.targets.push((ap, None));
            }
        }

        // Per-node scratch tables stand in for the original
        // `BTreeMap<NodeId, _>`s: node-index order *is* ascending NodeId
        // order, so the drained burst list and every §3.3
        // highest-RSS-first tie-break come out identically — and the
        // tables are plain clears, not tree rebuilds (lint rule D002
        // cares about iteration order, which stays deterministic).
        let n = net.num_nodes();
        for slot in &mut self.out_targets[..n] {
            slot.1 = 0;
        }
        self.inbound[..n].fill(0);

        // Two passes: primary trigger for everyone, then secondary
        // triggers ("repeat the previous step to find the secondary
        // possible triggering node", §3.3).
        for pass in 0..self.cfg.max_inbound {
            for ti in 0..self.targets.len() {
                let (target, link) = self.targets[ti];
                if usize::from(self.inbound[target.index()]) > pass {
                    continue; // already has a trigger from this pass
                }
                // Single scan, one RSS lookup per broadcaster. Ties keep
                // the *last* maximum (`is_ge`), matching the
                // `Iterator::max_by` this replaces — the §3.3
                // highest-RSS-first choice is byte-identical.
                let mut best: Option<NodeId> = None;
                let mut best_rss = f64::NEG_INFINITY;
                for &b in &self.broadcasters {
                    let (assigned, count) = &self.out_targets[b.index()];
                    let rss = net.rss().get(b, target);
                    if b != target
                        && rss >= self.cfg.trigger_min_rss
                        && *count < self.cfg.max_outbound.min(MAX_OUT)
                        && !assigned[..*count].contains(&target)
                        && (best.is_none() || rss.value().total_cmp(&best_rss).is_ge())
                    {
                        best = Some(b);
                        best_rss = rss.value();
                    }
                }
                match best {
                    Some(b) => {
                        let (assigned, count) = &mut self.out_targets[b.index()];
                        assigned[*count] = target;
                        *count += 1;
                        self.inbound[target.index()] += 1;
                    }
                    None if pass == 0 => {
                        if let Some(l) = link {
                            untriggered.push(l);
                        }
                    }
                    None => {}
                }
            }
        }

        bursts.extend((0..n).filter_map(|i| {
            let (assigned, count) = &self.out_targets[i];
            (*count > 0).then(|| BurstAssignment {
                broadcaster: NodeId(i as u32),
                targets: assigned[..*count].iter().copied().collect(),
            })
        }));
    }

}

/// Mark the given links of `slots[idx]` as kick-offs (no over-the-air
/// trigger reaches their sender; the AP starts them individually).
fn mark_kick_offs(slots: &mut [RelativeSlot], idx: usize, untriggered: &[LinkId]) {
    if let Some(slot) = slots.get_mut(idx) {
        mark_kick_offs_in(slot, untriggered);
    }
}

/// [`mark_kick_offs`] on an already-resolved slot.
fn mark_kick_offs_in(slot: &mut RelativeSlot, untriggered: &[LinkId]) {
    if untriggered.is_empty() {
        return;
    }
    for e in slot.entries.iter_mut() {
        if untriggered.contains(&e.link) {
            e.kick_off = true;
        }
    }
}

/// Mark every entry of `slots[idx]` as a kick-off.
fn mark_all_kick_offs(slots: &mut [RelativeSlot], idx: usize) {
    if let Some(slot) = slots.get_mut(idx) {
        for e in slot.entries.iter_mut() {
            e.kick_off = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_topology::presets::{fig13a, fig7};
    use domino_topology::PhyParams;
    use std::collections::BTreeMap;

    fn downlinks(net: &Network) -> Vec<LinkId> {
        net.links().iter().filter(|l| l.is_downlink()).map(|l| l.id).collect()
    }

    /// The Fig 7(c) two-slot strict schedule.
    fn fig7_strict(net: &Network) -> StrictSchedule {
        let d = downlinks(net);
        StrictSchedule { slots: vec![vec![d[0], d[2]], vec![d[1], d[3]]] }
    }

    #[test]
    fn slots_stay_independent_after_fake_insertion() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        for slot in &outcome.batch.slots {
            let links: Vec<LinkId> = slot.entries.iter().map(|e| e.link).collect();
            assert!(graph.is_independent(&links), "{links:?}");
        }
    }

    #[test]
    fn fake_links_fill_slack_slots() {
        // In fig13a all four downlinks are mutually compatible; a strict
        // slot holding only one of them must be topped up with fakes.
        let net = fig13a(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let d = downlinks(&net);
        let strict = StrictSchedule { slots: vec![vec![d[0]]] };
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &strict, &[]);
        assert!(
            outcome.batch.fake_entries() >= 3,
            "expected the three other downlinks as fakes, got {}",
            outcome.batch.fake_entries()
        );
        let links: Vec<LinkId> = outcome.batch.slots[0].entries.iter().map(|e| e.link).collect();
        assert!(graph.is_independent(&links));
        // Maximality: nothing else fits.
        for l in (0..net.links().len() as u32).map(LinkId) {
            if !links.contains(&l) {
                assert!(!graph.compatible_with_all(l, &links), "{l} would still fit");
            }
        }
    }

    #[test]
    fn triggers_respect_inbound_and_outbound_caps() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        // Convert twice so boundaries (including batch connection) exist.
        let _ = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        let check = |bursts: &[BurstAssignment]| {
            let mut inbound: BTreeMap<NodeId, usize> = BTreeMap::new();
            for b in bursts {
                assert!(b.targets.len() <= 4, "outbound cap violated: {b:?}");
                for &t in &b.targets {
                    *inbound.entry(t).or_default() += 1;
                }
            }
            for (node, count) in inbound {
                assert!(count <= 2, "inbound cap violated for {node}: {count}");
            }
        };
        check(&outcome.batch.connecting_bursts);
        for slot in &outcome.batch.slots {
            check(&slot.bursts);
        }
    }

    #[test]
    fn every_next_slot_sender_is_triggered() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        // Boundary between slot 0 and slot 1: every sender in slot 1 must
        // either appear in some burst of slot 0 or be an endpoint of
        // slot 0 itself (those continue from their own slot timing — the
        // engine's self-trigger path — because all end-of-slot bursts are
        // simultaneous).
        let slot0 = &outcome.batch.slots[0];
        let slot1 = &outcome.batch.slots[1];
        let triggered: Vec<NodeId> =
            slot0.bursts.iter().flat_map(|b| b.targets.to_vec()).collect();
        let endpoints: Vec<NodeId> = slot0
            .entries
            .iter()
            .flat_map(|e| {
                let l = net.link(e.link);
                [l.sender, l.receiver]
            })
            .collect();
        for e in &slot1.entries {
            let sender = net.link(e.link).sender;
            assert!(
                triggered.contains(&sender) || endpoints.contains(&sender),
                "sender {sender} of {:?} neither triggered nor self-triggered",
                e.link
            );
        }
        assert!(outcome.rescheduled.is_empty());
    }

    #[test]
    fn batch_connection_retains_last_slot() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let first = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        assert!(first.batch.connecting_bursts.is_empty(), "first batch has no predecessor");
        assert!(conv.has_retained_slot());
        // Snapshot the retained slot *before* converting the second batch
        // (conversion replaces it).
        let retained: Vec<SlotEntry> = conv.retained_entries().unwrap().to_vec();
        let second = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        // The second batch is connected: its first-slot senders are
        // covered by connecting bursts or by being endpoints of the
        // retained slot (self-trigger).
        let triggered: Vec<NodeId> = second
            .batch
            .connecting_bursts
            .iter()
            .flat_map(|b| b.targets.to_vec())
            .collect();
        let endpoints: Vec<NodeId> = retained
            .iter()
            .flat_map(|e| {
                let l = net.link(e.link);
                [l.sender, l.receiver]
            })
            .collect();
        for e in &second.batch.slots[0].entries {
            let sender = net.link(e.link).sender;
            assert!(
                triggered.contains(&sender)
                    || endpoints.contains(&sender)
                    || second.rescheduled.contains(&e.link),
                "first slot sender {sender} unconnected"
            );
        }
    }

    #[test]
    fn rop_slots_inserted_and_shared() {
        let net = fig13a(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let d = downlinks(&net);
        let strict = StrictSchedule { slots: vec![d.clone(), d.clone()] };
        let aps = net.aps();
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &strict, &aps);
        let polled: usize = outcome
            .batch
            .slots
            .iter()
            .filter_map(|s| s.rop_after.as_ref())
            .map(|r| r.aps.len())
            .sum::<usize>()
            + outcome.batch.connecting_rop.as_ref().map_or(0, |r| r.aps.len());
        assert_eq!(
            polled + outcome.unpolled_aps.len(),
            aps.len(),
            "every AP either polls or is reported unpolled"
        );
        assert!(polled >= 2, "at least some APs must find an ROP slot");
        // In fig13a all links are mutually non-conflicting, so sharing
        // must happen: at most 2 boundaries exist, but 4 APs poll.
        let rop_slots: Vec<&RopSlot> = outcome
            .batch
            .slots
            .iter()
            .filter_map(|s| s.rop_after.as_ref())
            .collect();
        assert!(
            rop_slots.iter().any(|r| r.aps.len() > 1)
                || outcome.batch.connecting_rop.as_ref().is_some_and(|r| r.aps.len() > 1),
            "non-conflicting APs should share an ROP slot"
        );
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &StrictSchedule::default(), &[]);
        assert!(outcome.batch.slots.is_empty());
        assert!(!conv.has_retained_slot());
    }

    #[test]
    fn fake_links_can_be_disabled() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let cfg = ConverterConfig { insert_fake_links: false, ..ConverterConfig::default() };
        let mut conv = Converter::new(cfg);
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        assert_eq!(outcome.batch.fake_entries(), 0);
    }
}
