//! The schedule converter (paper §3.3): strict schedule → relative
//! schedule.
//!
//! Three transformations, in order:
//!
//! 1. **Fake-link insertion** — every slot is extended to a *maximal*
//!    independent set of the conflict graph; the added links are fake
//!    (header-only keep-alives) and exist purely to widen the trigger
//!    coverage so every node keeps hearing signatures.
//! 2. **ROP-slot insertion** — greedily place one ROP slot between
//!    neighbouring slots per polling AP; APs whose links do not conflict
//!    share a slot. Bursts before an ROP slot carry the ROP marker so the
//!    next slot's transmitters wait one ROP-slot duration.
//! 3. **Trigger assignment** — for every transmitter of slot `i+1` (and
//!    every AP polling at the boundary), pick up to `max_inbound` (2)
//!    triggering nodes among the endpoints of slot `i`'s links, highest
//!    RSS first, with at most `max_outbound` (4) signatures per
//!    broadcaster. Untriggerable links are dropped back to the scheduler
//!    ("the scheduler will reschedule such links").
//!
//! **Batch connection**: the converter retains the last slot of each
//! batch; the next batch's first slot is triggered by burst assignments
//! computed for that retained slot (`connecting_bursts`).

use crate::schedule::{BurstAssignment, RelativeBatch, RelativeSlot, RopSlot, SlotEntry, StrictSchedule};
use domino_phy::units::Dbm;
use domino_topology::{ConflictGraph, LinkId, Network, NodeId};
use std::collections::BTreeMap;

/// Converter tuning (paper §3.2/§3.3 constants).
#[derive(Clone, Debug)]
pub struct ConverterConfig {
    /// Maximum triggers per next-transmitter (paper: 2).
    pub max_inbound: usize,
    /// Maximum signatures per broadcaster (paper: 4, from Fig 9).
    pub max_outbound: usize,
    /// Minimum RSS for a trigger assignment. Correlation gain keeps lone
    /// signatures detectable near the noise floor, but a *scheduled*
    /// trigger must survive the other simultaneous end-of-slot bursts, so
    /// the converter demands a healthy margin; senders no broadcaster can
    /// reach become kick-off entries instead.
    pub trigger_min_rss: Dbm,
    /// Insert fake links (ablation knob; the paper always does).
    pub insert_fake_links: bool,
    /// Insert ROP slots (off for downlink-only or USRP-profile runs).
    pub insert_rop: bool,
}

impl Default for ConverterConfig {
    fn default() -> ConverterConfig {
        ConverterConfig {
            max_inbound: 2,
            max_outbound: 4,
            trigger_min_rss: Dbm(-88.0),
            insert_fake_links: true,
            insert_rop: true,
        }
    }
}

/// Result of converting one strict batch.
#[derive(Clone, Debug, Default)]
pub struct ConversionOutcome {
    /// The executable batch.
    pub batch: RelativeBatch,
    /// Links that could not be triggered and were dropped (the
    /// controller refunds their backlog and reschedules).
    pub rescheduled: Vec<LinkId>,
    /// APs that found no ROP opportunity this batch.
    pub unpolled_aps: Vec<NodeId>,
}

/// Stateful strict→relative converter (retains the batch-connection
/// slot).
#[derive(Debug)]
pub struct Converter {
    cfg: ConverterConfig,
    retained: Option<Vec<SlotEntry>>,
    batch_counter: u64,
}

impl Converter {
    /// A fresh converter.
    pub fn new(cfg: ConverterConfig) -> Converter {
        Converter { cfg, retained: None, batch_counter: 0 }
    }

    /// The configuration in force.
    pub fn config(&self) -> &ConverterConfig {
        &self.cfg
    }

    /// Whether a retained slot exists (false only before the first
    /// non-empty batch).
    pub fn has_retained_slot(&self) -> bool {
        self.retained.is_some()
    }

    /// The entries of the retained batch-connection slot, if any.
    pub fn retained_entries(&self) -> Option<&[SlotEntry]> {
        self.retained.as_deref()
    }

    /// Convert one strict batch. `polling_aps` asks for ROP slots for
    /// those APs (normally all APs, once per batch).
    pub fn convert(
        &mut self,
        net: &Network,
        graph: &ConflictGraph,
        strict: &StrictSchedule,
        polling_aps: &[NodeId],
    ) -> ConversionOutcome {
        self.batch_counter += 1;
        let mut out = ConversionOutcome::default();
        if strict.is_empty() && polling_aps.is_empty() {
            return out;
        }

        // 1. Fake-link insertion.
        let all_links: Vec<LinkId> = (0..net.links().len() as u32).map(LinkId).collect();
        let mut slots: Vec<RelativeSlot> = Vec::new();
        for (i, slot) in strict.slots.iter().enumerate() {
            let mut set: Vec<LinkId> = slot.clone();
            let mut entries: Vec<SlotEntry> =
                set.iter().map(|&l| SlotEntry { link: l, fake: false, kick_off: false }).collect();
            if self.cfg.insert_fake_links {
                // Rotate the candidate order per slot so fake coverage
                // cycles over the whole network.
                let rot = (self.batch_counter as usize * 7 + i) % all_links.len().max(1);
                let mut candidates = all_links.clone();
                candidates.rotate_left(rot);
                let added = graph.extend_to_maximal(&mut set, &candidates);
                entries.extend(added.into_iter().map(|l| SlotEntry { link: l, fake: true, kick_off: false }));
            }
            slots.push(RelativeSlot { entries, bursts: Vec::new(), rop_after: None });
        }

        // 2. ROP-slot insertion. Boundary b sits after "previous slot" b:
        // boundary 0 = between the retained slot and slots[0] (only if a
        // retained slot exists), boundary i = between slots[i-1] and
        // slots[i].
        let mut connecting_rop: Option<RopSlot> = None;
        if self.cfg.insert_rop {
            for &ap in polling_aps {
                if !self.try_insert_rop(net, graph, ap, &mut slots, &mut connecting_rop) {
                    out.unpolled_aps.push(ap);
                }
            }
        }

        // 3. Trigger assignment per boundary. A boundary whose previous
        // slot is empty (or absent, for the very first batch) has no live
        // chain to trigger from: its links are marked kick-off and the
        // APs start them individually (§3.3's first-batch rule).
        let mut connecting_bursts = Vec::new();
        match &self.retained {
            None => mark_all_kick_offs(&mut slots, 0),
            Some(retained) if retained.is_empty() => mark_all_kick_offs(&mut slots, 0),
            _ => {}
        }
        for i in 0..slots.len().saturating_sub(1) {
            if slots[i].entries.is_empty() {
                mark_all_kick_offs(&mut slots, i + 1);
            }
        }
        if let Some(retained) = self.retained.clone() {
            if !retained.is_empty() {
                let rop_aps: Vec<NodeId> =
                    connecting_rop.as_ref().map(|r| r.aps.clone()).unwrap_or_default();
                let (bursts, dropped) = self.assign_boundary(
                    net,
                    &retained,
                    slots.first().map(|s| s.entries.as_slice()).unwrap_or(&[]),
                    &rop_aps,
                );
                connecting_bursts = bursts;
                mark_kick_offs(&mut slots, 0, &dropped);
            }
        }
        for i in 0..slots.len().saturating_sub(1) {
            let prev_entries = slots[i].entries.clone();
            if prev_entries.is_empty() {
                continue;
            }
            let next_entries = slots[i + 1].entries.clone();
            let rop_aps: Vec<NodeId> = slots[i]
                .rop_after
                .as_ref()
                .map(|r| r.aps.clone())
                .unwrap_or_default();
            let (bursts, dropped) =
                self.assign_boundary(net, &prev_entries, &next_entries, &rop_aps);
            slots[i].bursts = bursts;
            mark_kick_offs(&mut slots, i + 1, &dropped);
        }

        // Retain the last slot for batch connection.
        if let Some(last) = slots.last() {
            self.retained = Some(last.entries.clone());
        }

        out.batch = RelativeBatch { connecting_bursts, connecting_rop, slots };
        out
    }

    /// Try to give `ap` an ROP opportunity; returns success.
    fn try_insert_rop(
        &self,
        net: &Network,
        graph: &ConflictGraph,
        ap: NodeId,
        slots: &mut [RelativeSlot],
        connecting_rop: &mut Option<RopSlot>,
    ) -> bool {
        let ap_links: Vec<LinkId> = net
            .links()
            .iter()
            .filter(|l| l.ap == ap)
            .map(|l| l.id)
            .collect();
        let compatible = |existing: &RopSlot| {
            existing.aps.iter().all(|&other| {
                let other_links: Vec<LinkId> = net
                    .links()
                    .iter()
                    .filter(|l| l.ap == other)
                    .map(|l| l.id)
                    .collect();
                ap_links
                    .iter()
                    .all(|&a| other_links.iter().all(|&b| !graph.conflicts(a, b)))
            })
        };
        // Boundary None sits between the retained slot and the first
        // slot; inner boundaries follow in execution order.
        let boundaries: Vec<Option<usize>> = {
            let mut b: Vec<Option<usize>> = Vec::new();
            if self.retained.is_some() {
                b.push(None);
            }
            b.extend((0..slots.len().saturating_sub(1)).map(Some));
            b
        };
        for boundary in boundaries {
            let prev_entries: Vec<SlotEntry> = match boundary {
                None => self.retained.clone().unwrap_or_default(),
                Some(i) => slots[i].entries.clone(),
            };
            if !self.slot_can_trigger(net, &prev_entries, ap) {
                continue;
            }
            let slot_ref: &mut Option<RopSlot> = match boundary {
                None => connecting_rop,
                Some(i) => &mut slots[i].rop_after,
            };
            match slot_ref {
                None => {
                    *slot_ref = Some(RopSlot { aps: vec![ap] });
                    return true;
                }
                Some(existing) => {
                    if compatible(existing) {
                        existing.aps.push(ap);
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Can any endpoint of `prev` links deliver a signature to `target`?
    fn slot_can_trigger(&self, net: &Network, prev: &[SlotEntry], target: NodeId) -> bool {
        prev.iter().any(|e| {
            let l = net.link(e.link);
            [l.sender, l.receiver].iter().any(|&n| {
                n != target && net.rss().get(n, target) >= self.cfg.trigger_min_rss
            })
        })
    }

    /// Assign triggers at one boundary. Targets are the next slot's
    /// senders plus the polling APs. Returns (bursts, untriggered
    /// next-slot links).
    fn assign_boundary(
        &self,
        net: &Network,
        prev: &[SlotEntry],
        next: &[SlotEntry],
        rop_aps: &[NodeId],
    ) -> (Vec<BurstAssignment>, Vec<LinkId>) {
        // Candidate broadcasters: both endpoints of every prev-slot link.
        let mut broadcasters: Vec<NodeId> = Vec::new();
        for e in prev {
            let l = net.link(e.link);
            for n in [l.sender, l.receiver] {
                if !broadcasters.contains(&n) {
                    broadcasters.push(n);
                }
            }
        }

        // Targets: (node, link-to-mark-if-untriggered). Targets that are
        // endpoints of the previous slot may be deaf during the
        // simultaneous burst phase (the engine's self-trigger path covers
        // them), but they still receive assignments: the redundancy is
        // what rides out partial failures (§3.2's cross-links).
        let mut targets: Vec<(NodeId, Option<LinkId>)> = Vec::new();
        for e in next {
            let sender = net.link(e.link).sender;
            if !targets.iter().any(|&(n, _)| n == sender) {
                targets.push((sender, Some(e.link)));
            }
        }
        for &ap in rop_aps {
            if !targets.iter().any(|&(n, _)| n == ap) {
                targets.push((ap, None));
            }
        }

        // BTreeMaps, deliberately (lint rule D002): `outbound` is drained
        // into the burst list and `inbound` seeds the per-pass trigger
        // counts, so hash order here would let the §3.3 highest-RSS-first
        // tie-breaks drift between runs as the code evolves.
        let mut outbound: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        let mut inbound: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut untriggered: Vec<LinkId> = Vec::new();

        // Two passes: primary trigger for everyone, then secondary
        // triggers ("repeat the previous step to find the secondary
        // possible triggering node", §3.3).
        for pass in 0..self.cfg.max_inbound {
            for &(target, link) in &targets {
                if inbound.get(&target).copied().unwrap_or(0) > pass {
                    continue; // already has a trigger from this pass
                }
                let best = broadcasters
                    .iter()
                    .filter(|&&b| {
                        b != target
                            && net.rss().get(b, target) >= self.cfg.trigger_min_rss
                            && outbound.get(&b).map_or(0, Vec::len) < self.cfg.max_outbound
                            && !outbound.get(&b).is_some_and(|t| t.contains(&target))
                    })
                    .max_by(|&&a, &&b| {
                        net.rss()
                            .get(a, target)
                            .value()
                            .total_cmp(&net.rss().get(b, target).value())
                    });
                match best {
                    Some(&b) => {
                        outbound.entry(b).or_default().push(target);
                        *inbound.entry(target).or_default() += 1;
                    }
                    None if pass == 0 => {
                        if let Some(l) = link {
                            untriggered.push(l);
                        }
                    }
                    None => {}
                }
            }
        }

        // Untriggered targets' inbound entries must not linger.
        let bursts = outbound
            .into_iter()
            .map(|(broadcaster, targets)| BurstAssignment { broadcaster, targets })
            .collect();
        (bursts, untriggered)
    }

}

/// Mark the given links of `slots[idx]` as kick-offs (no over-the-air
/// trigger reaches their sender; the AP starts them individually).
fn mark_kick_offs(slots: &mut [RelativeSlot], idx: usize, untriggered: &[LinkId]) {
    if untriggered.is_empty() || idx >= slots.len() {
        return;
    }
    for e in slots[idx].entries.iter_mut() {
        if untriggered.contains(&e.link) {
            e.kick_off = true;
        }
    }
}

/// Mark every entry of `slots[idx]` as a kick-off.
fn mark_all_kick_offs(slots: &mut [RelativeSlot], idx: usize) {
    if let Some(slot) = slots.get_mut(idx) {
        for e in slot.entries.iter_mut() {
            e.kick_off = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_topology::presets::{fig13a, fig7};
    use domino_topology::PhyParams;

    fn downlinks(net: &Network) -> Vec<LinkId> {
        net.links().iter().filter(|l| l.is_downlink()).map(|l| l.id).collect()
    }

    /// The Fig 7(c) two-slot strict schedule.
    fn fig7_strict(net: &Network) -> StrictSchedule {
        let d = downlinks(net);
        StrictSchedule { slots: vec![vec![d[0], d[2]], vec![d[1], d[3]]] }
    }

    #[test]
    fn slots_stay_independent_after_fake_insertion() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        for slot in &outcome.batch.slots {
            let links: Vec<LinkId> = slot.entries.iter().map(|e| e.link).collect();
            assert!(graph.is_independent(&links), "{links:?}");
        }
    }

    #[test]
    fn fake_links_fill_slack_slots() {
        // In fig13a all four downlinks are mutually compatible; a strict
        // slot holding only one of them must be topped up with fakes.
        let net = fig13a(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let d = downlinks(&net);
        let strict = StrictSchedule { slots: vec![vec![d[0]]] };
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &strict, &[]);
        assert!(
            outcome.batch.fake_entries() >= 3,
            "expected the three other downlinks as fakes, got {}",
            outcome.batch.fake_entries()
        );
        let links: Vec<LinkId> = outcome.batch.slots[0].entries.iter().map(|e| e.link).collect();
        assert!(graph.is_independent(&links));
        // Maximality: nothing else fits.
        for l in (0..net.links().len() as u32).map(LinkId) {
            if !links.contains(&l) {
                assert!(!graph.compatible_with_all(l, &links), "{l} would still fit");
            }
        }
    }

    #[test]
    fn triggers_respect_inbound_and_outbound_caps() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        // Convert twice so boundaries (including batch connection) exist.
        let _ = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        let check = |bursts: &[BurstAssignment]| {
            let mut inbound: BTreeMap<NodeId, usize> = BTreeMap::new();
            for b in bursts {
                assert!(b.targets.len() <= 4, "outbound cap violated: {b:?}");
                for &t in &b.targets {
                    *inbound.entry(t).or_default() += 1;
                }
            }
            for (node, count) in inbound {
                assert!(count <= 2, "inbound cap violated for {node}: {count}");
            }
        };
        check(&outcome.batch.connecting_bursts);
        for slot in &outcome.batch.slots {
            check(&slot.bursts);
        }
    }

    #[test]
    fn every_next_slot_sender_is_triggered() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        // Boundary between slot 0 and slot 1: every sender in slot 1 must
        // either appear in some burst of slot 0 or be an endpoint of
        // slot 0 itself (those continue from their own slot timing — the
        // engine's self-trigger path — because all end-of-slot bursts are
        // simultaneous).
        let slot0 = &outcome.batch.slots[0];
        let slot1 = &outcome.batch.slots[1];
        let triggered: Vec<NodeId> =
            slot0.bursts.iter().flat_map(|b| b.targets.clone()).collect();
        let endpoints: Vec<NodeId> = slot0
            .entries
            .iter()
            .flat_map(|e| {
                let l = net.link(e.link);
                [l.sender, l.receiver]
            })
            .collect();
        for e in &slot1.entries {
            let sender = net.link(e.link).sender;
            assert!(
                triggered.contains(&sender) || endpoints.contains(&sender),
                "sender {sender} of {:?} neither triggered nor self-triggered",
                e.link
            );
        }
        assert!(outcome.rescheduled.is_empty());
    }

    #[test]
    fn batch_connection_retains_last_slot() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let first = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        assert!(first.batch.connecting_bursts.is_empty(), "first batch has no predecessor");
        assert!(conv.has_retained_slot());
        // Snapshot the retained slot *before* converting the second batch
        // (conversion replaces it).
        let retained: Vec<SlotEntry> = conv.retained_entries().unwrap().to_vec();
        let second = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        // The second batch is connected: its first-slot senders are
        // covered by connecting bursts or by being endpoints of the
        // retained slot (self-trigger).
        let triggered: Vec<NodeId> = second
            .batch
            .connecting_bursts
            .iter()
            .flat_map(|b| b.targets.clone())
            .collect();
        let endpoints: Vec<NodeId> = retained
            .iter()
            .flat_map(|e| {
                let l = net.link(e.link);
                [l.sender, l.receiver]
            })
            .collect();
        for e in &second.batch.slots[0].entries {
            let sender = net.link(e.link).sender;
            assert!(
                triggered.contains(&sender)
                    || endpoints.contains(&sender)
                    || second.rescheduled.contains(&e.link),
                "first slot sender {sender} unconnected"
            );
        }
    }

    #[test]
    fn rop_slots_inserted_and_shared() {
        let net = fig13a(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let d = downlinks(&net);
        let strict = StrictSchedule { slots: vec![d.clone(), d.clone()] };
        let aps = net.aps();
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &strict, &aps);
        let polled: usize = outcome
            .batch
            .slots
            .iter()
            .filter_map(|s| s.rop_after.as_ref())
            .map(|r| r.aps.len())
            .sum::<usize>()
            + outcome.batch.connecting_rop.as_ref().map_or(0, |r| r.aps.len());
        assert_eq!(
            polled + outcome.unpolled_aps.len(),
            aps.len(),
            "every AP either polls or is reported unpolled"
        );
        assert!(polled >= 2, "at least some APs must find an ROP slot");
        // In fig13a all links are mutually non-conflicting, so sharing
        // must happen: at most 2 boundaries exist, but 4 APs poll.
        let rop_slots: Vec<&RopSlot> = outcome
            .batch
            .slots
            .iter()
            .filter_map(|s| s.rop_after.as_ref())
            .collect();
        assert!(
            rop_slots.iter().any(|r| r.aps.len() > 1)
                || outcome.batch.connecting_rop.as_ref().is_some_and(|r| r.aps.len() > 1),
            "non-conflicting APs should share an ROP slot"
        );
    }

    #[test]
    fn empty_schedule_is_a_noop() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let mut conv = Converter::new(ConverterConfig::default());
        let outcome = conv.convert(&net, &graph, &StrictSchedule::default(), &[]);
        assert!(outcome.batch.slots.is_empty());
        assert!(!conv.has_retained_slot());
    }

    #[test]
    fn fake_links_can_be_disabled() {
        let net = fig7(PhyParams::default());
        let graph = ConflictGraph::build(&net);
        let cfg = ConverterConfig { insert_fake_links: false, ..ConverterConfig::default() };
        let mut conv = Converter::new(cfg);
        let outcome = conv.convert(&net, &graph, &fig7_strict(&net), &[]);
        assert_eq!(outcome.batch.fake_entries(), 0);
    }
}
