//! DOMINO: relative scheduling executed through signature triggers.
//!
//! The paper's contribution. The central controller computes strict
//! schedules with the RAND greedy policy, converts them to relative
//! schedules (`domino-scheduler`), and distributes per-AP programs over
//! the jittery wired backbone. On the air, *nothing is clocked*: each
//! slot's transmitters start when they detect their own Gold-code
//! signature followed by the START (or ROP) marker in the previous slot's
//! end-of-exchange bursts (Fig 8). Re-anchoring to the *last* received
//! trigger is what heals the initial wired-jitter misalignment within a
//! few slots (Fig 11 / §3.4).
//!
//! Faithfully modeled details:
//! * trigger instructions ride in-band: the client's burst assignment is
//!   embedded in the AP's data frame (downlink) or ACK (uplink), so a
//!   corrupted exchange silences both bursts — the paper's ..2 failure;
//! * fake links transmit header-only keep-alives and carry triggers;
//! * ROP slots: poll → one WiFi slot → the shared 16 µs answer symbol,
//!   with decode success from the Fig 5/6-calibrated model; reports are
//!   relayed to the controller over the wire;
//! * missed-ACK retransmission per §3.5 (client: retransmit on next
//!   trigger; AP: retransmit when the schedule head targets the same
//!   receiver);
//! * watchdog self-start: the very first batch (and any fully broken
//!   chain) starts by the APs individually, then heals.

use crate::flows::{FlowEngine, TCP_TICK};
use crate::timing::{
    fake_airtime, poll_airtime, rop_slot_duration, slot_geometry, SlotGeometry, ACK_BYTES,
    MAC_OVERHEAD_BYTES, POLL_BYTES, ROP_SYMBOL, SIFS, SLOT_TIME,
};
use crate::workload::{client_indices, DominoCounters, RunStats, Workload, WATCHDOG_STORM_THRESHOLD};
use domino_faults::{FaultConfig, FaultPlane, NodeFaults};
use domino_medium::{Burst, BurstMarker, Frame, FrameBody, InlineVec, Medium, Reception, TxId};
use domino_obs::{FaultKind, TraceEvent, TraceHandle};
use domino_scheduler::{
    BacklogView, BurstAssignment, ConversionOutcome, Converter, ConverterConfig, RandScheduler,
    RelativeBatch,
};
use domino_sim::engine::{DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW};
use domino_sim::{Engine, SimDuration, SimTime};
use domino_topology::{ConflictGraph, Direction, LinkId, Network, NodeId};
use domino_traffic::{Packet, PacketKind};
use domino_wired::{Backbone, WiredLatency};
use std::collections::VecDeque;

/// DOMINO engine parameters.
#[derive(Clone, Debug)]
pub struct DominoConfig {
    /// Strict-schedule slots per batch (the §5 polling-frequency knob:
    /// ROP runs once per batch).
    pub batch_slots: usize,
    /// Wired backbone latency model.
    pub wired: WiredLatency,
    /// Converter settings (trigger caps, fake links, ROP insertion).
    pub converter: ConverterConfig,
    /// Self-start watchdog: how long an AP with pending work waits for a
    /// trigger before starting on its own.
    pub watchdog: SimDuration,
}

impl Default for DominoConfig {
    fn default() -> DominoConfig {
        DominoConfig {
            batch_slots: 5,
            wired: WiredLatency::default(),
            converter: ConverterConfig::default(),
            watchdog: SimDuration::from_micros(1500),
        }
    }
}

/// What an AP does in one scheduled slot.
#[derive(Clone, Debug, PartialEq)]
enum ApActionKind {
    /// Transmit (downlink): the AP is the slot's sender on `link`.
    TxData {
        /// The downlink.
        link: LinkId,
    },
    /// Receive (uplink): the client transmits on `link`; the AP ACKs.
    RxData {
        /// The uplink.
        link: LinkId,
    },
    /// Run the ROP poll.
    Poll,
}

/// One per-AP program entry.
#[derive(Clone, Debug)]
struct ApAction {
    slot: u64,
    kind: ApActionKind,
    /// An ROP slot sits immediately before this action's slot (the
    /// self-trigger path must wait it out, like the ROP marker does).
    rop_before: bool,
    /// No over-the-air trigger reaches this entry: the AP starts it
    /// individually at its estimated slot time (§3.3's first-batch rule,
    /// applied per entry — isolated AP cells live on this).
    kick_off: bool,
    /// Burst the AP broadcasts at the slot's burst offset.
    own_burst: Option<Burst>,
    /// Burst instruction for the client (embedded in data or ACK).
    client_burst: Option<Burst>,
}

/// Replacement burst info for one already-delivered retained-slot
/// action: `(slot, own burst, client burst)`.
type RetainedUpdate = (u64, Option<Burst>, Option<Burst>);

/// Wired message to one AP.
#[derive(Debug)]
struct ApMessage {
    first_slot: u64,
    actions: Vec<ApAction>,
    /// Replacement burst info for already-delivered retained-slot
    /// actions, keyed by slot id (batch connection, §3.3).
    retained_updates: Vec<RetainedUpdate>,
}

/// DOMINO scheme events.
#[derive(Debug)]
enum DEv {
    UdpArrival { flow: usize },
    TcpTick { flow: usize },
    TcpRto { flow: usize, gen: u64 },
    TxEnd { tx: TxId },
    /// Wired delivery of a batch program to an AP.
    BatchArrive { ap: u32, msg: ApMessage },
    /// Wired delivery of a queue report to the controller.
    ReportArrive { link: u32, queue: u32 },
    /// Controller computes and dispatches the next batch (stale
    /// generations are ignored).
    ControllerCompute { gen: u64 },
    /// A triggered node's slot begins.
    SlotStart { node: u32, gen: u64, slot: u64 },
    /// A node's scheduled burst goes on the air.
    SendBurst { node: u32, burst: Burst },
    /// A receiver's ACK is due.
    SendAck { rx: u32, packet: Packet, client_burst: Option<Burst> },
    /// A sender checks whether its data was ACKed.
    AckCheck { node: u32, gen: u64 },
    /// A client answers a poll with its share of the ROP symbol.
    RopAnswer { client: u32, ap: u32 },
    /// An AP with pending work got no trigger for too long.
    Watchdog { ap: u32, gen: u64 },
    /// An untriggerable entry's estimated slot time arrived.
    KickOff { ap: u32, slot: u64 },
}

/// Per-node runtime state.
struct NodeRt {
    /// AP program (empty for clients).
    program: VecDeque<ApAction>,
    /// Generation counter for SlotStart staleness.
    gen: u64,
    /// Watchdog generation: bumped on every progress point so stale
    /// watchdog timers die.
    wd_gen: u64,
    /// A SlotStart is pending (for last-trigger re-anchoring).
    pending_start: bool,
    /// End of this node's current exchange: its correlator is not armed
    /// while it is mid-slot, so triggers arriving before this instant are
    /// ignored (this is also what absorbs the second of the two assigned
    /// redundant triggers).
    busy_until: SimTime,
    /// Sender-side: packet on the air awaiting its ACK (kept for the
    /// §3.5 retransmission rules).
    unacked: Option<Packet>,
    /// The pending packet's ACK arrived.
    acked: bool,
}

impl NodeRt {
    fn bump(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }
}

/// The DOMINO engine.
#[derive(Debug)]
pub struct DominoSim;

impl DominoSim {
    /// Run `workload` over `net` for `duration_s` seconds with default
    /// parameters.
    pub fn run(net: &Network, workload: &Workload, duration_s: f64, seed: u64) -> RunStats {
        Self::run_with(net, workload, duration_s, seed, DominoConfig::default())
    }

    /// Run with explicit DOMINO parameters.
    pub fn run_with(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: DominoConfig,
    ) -> RunStats {
        Self::run_faulted(net, workload, duration_s, seed, cfg, &FaultConfig::off())
    }

    /// [`DominoSim::run_with`] under a fault plane: backbone loss/spikes
    /// under the batch programs and ROP relays, AP crashes with state
    /// loss, controller compute stalls that overrun the batch fallback
    /// timer, stale ROP reports, plus the medium-resident fade and churn
    /// classes. With `faults` all off this is byte-identical to the plain
    /// run.
    pub fn run_faulted(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: DominoConfig,
        faults: &FaultConfig,
    ) -> RunStats {
        Self::run_traced(net, workload, duration_s, seed, cfg, faults, TraceHandle::off())
    }

    /// [`DominoSim::run_faulted`] with a trace sink attached. Tracing is
    /// observation only — it draws no randomness and schedules no events,
    /// so a run with the handle off is byte-identical to one that never
    /// attached a tracer.
    pub fn run_traced(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: DominoConfig,
        faults: &FaultConfig,
        tracer: TraceHandle,
    ) -> RunStats {
        let mut world = World::new(net, workload, duration_s, seed, cfg, faults, tracer);
        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(duration_s);
        loop {
            let (now, ev) = match world.engine.pop_until_checked(horizon) {
                Ok(Some(pair)) => pair,
                Ok(None) => break,
                Err(_livelock) => {
                    world.fe.stats.faults.livelocks += 1;
                    break;
                }
            };
            world.handle(now, ev);
        }
        world.fe.stats.events = world.engine.events_processed();
        world.fe.stats.tcp_retransmissions = world.fe.tcp_retransmissions();
        world.fe.stats.domino = world.counters;
        world.fe.stats.faults.merge_node(&world.node_faults);
        world.fe.stats.faults.merge_backbone(
            world.backbone.messages_lost(),
            world.backbone.spikes_injected(),
        );
        if let Some(mf) = world.medium.faults() {
            world.fe.stats.faults.merge_medium(mf);
        }
        world.fe.stats
    }
}

struct World {
    net: Network,
    cfg: DominoConfig,
    engine: Engine<DEv>,
    medium: Medium,
    fe: FlowEngine,
    backbone: Backbone,
    graph: ConflictGraph,
    scheduler: RandScheduler,
    converter: Converter,
    backlog: BacklogView,
    nodes: Vec<NodeRt>,
    rto_gen: Vec<u64>,
    geo: SlotGeometry,
    rop_dur: SimDuration,
    next_slot_id: u64,
    signature_of: Vec<u32>,
    /// Trigger-chain diagnostics, reported on the run's `RunStats`.
    counters: DominoCounters,
    /// Controller pacing: generation of the next accepted compute event.
    compute_gen: u64,
    /// The controller waits for the first ROP report of the current
    /// batch before computing the next one (with a time fallback).
    awaiting_report: bool,
    /// When the current batch was dispatched and how long it should run.
    dispatch_time: SimTime,
    exec_estimate: SimDuration,
    /// Execution time remaining after the batch's first ROP slot — the
    /// report wave is the execution-anchored clock that paces the next
    /// compute.
    post_poll_exec: SimDuration,
    /// Node-class fault source (AP crashes, compute stalls, stale
    /// reports). All draws short-circuit when the class is off.
    node_faults: NodeFaults,
    /// Until when each crashed AP stays dark (ignores batch programs and
    /// triggers).
    ap_dark_until: Vec<SimTime>,
    /// Crash flag per AP: the first batch accepted after the downtime
    /// counts as the recovery.
    ap_crashed: Vec<bool>,
    /// Per-link last truthful ROP value — what a stale report replays.
    last_rop: Vec<u32>,
    /// Consecutive watchdog restarts with zero deliveries in between
    /// (storm detection, see `DominoCounters::watchdog_storms`).
    wd_streak: u64,
    /// Observation-only trace sink (off by default).
    tracer: TraceHandle,
    /// Monotone batch id for BatchBegin/BatchEnd trace pairing.
    batch_seq: u64,
    /// Reception buffer recycled across `on_tx_end` calls.
    rx_buf: Vec<Reception>,
    /// Static topology tables cached at construction: the per-batch
    /// controller loops would otherwise rebuild these Vecs on every
    /// compute (hundreds per run).
    ap_list: Vec<NodeId>,
    clients: Vec<Vec<NodeId>>,
    /// Controller scratch, recycled across computes.
    backlog_buf: Vec<u32>,
    before_buf: Vec<u32>,
    committed_buf: Vec<u32>,
    slot_senders: Vec<Vec<NodeId>>,
    /// Converted-batch storage, recycled through `Converter::convert_into`.
    outcome_buf: ConversionOutcome,
    /// Recycled `ApMessage` payload storage: messages that complete
    /// delivery hand their buffers back via `on_batch_arrive`.
    action_pool: Vec<Vec<ApAction>>,
    retained_pool: Vec<Vec<RetainedUpdate>>,
}

impl World {
    fn new(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: DominoConfig,
        faults: &FaultConfig,
        tracer: TraceHandle,
    ) -> World {
        let geo = slot_geometry(net.phy().data_rate, workload.packet_bytes);
        let rop_dur = rop_slot_duration(net.phy().data_rate);
        let plane = FaultPlane::new(faults, seed, &client_indices(net), duration_s);
        let mut medium = Medium::new(net.clone(), seed);
        if plane.cfg.enabled() {
            medium.set_faults(plane.medium);
        }
        medium.set_tracer(tracer.clone());
        let mut backbone = Backbone::new(cfg.wired.clone(), seed);
        backbone.set_loss(faults.wired_loss);
        backbone.set_spikes(faults.wired_spike, faults.wired_spike_us);
        backbone.set_tracer(tracer.clone());
        let mut engine = Engine::new();
        engine.set_liveness(DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW);
        engine.set_tracer(tracer.clone());
        let fe = FlowEngine::new(net, workload, duration_s);
        for flow in fe.udp_flows() {
            engine.schedule_at(fe.udp_next_arrival(flow), DEv::UdpArrival { flow });
        }
        for flow in fe.tcp_flows() {
            engine.schedule_at(SimTime::ZERO + TCP_TICK, DEv::TcpTick { flow });
        }
        engine.schedule_at(SimTime::ZERO, DEv::ControllerCompute { gen: 0 });
        let nodes = (0..net.num_nodes())
            .map(|_| NodeRt {
                program: VecDeque::new(),
                gen: 0,
                wd_gen: 0,
                pending_start: false,
                busy_until: SimTime::ZERO,
                unacked: None,
                acked: false,
            })
            .collect();
        let signature_of = net.nodes().iter().map(|n| n.signature as u32).collect();
        let num_flows = workload.flows.len();
        let ap_list = net.aps();
        let clients = (0..net.num_nodes())
            .map(|n| net.clients_of(NodeId(n as u32)))
            .collect();
        World {
            engine,
            medium,
            fe,
            backbone,
            graph: ConflictGraph::build(net),
            scheduler: RandScheduler::new(net.links().len()),
            converter: Converter::new(cfg.converter.clone()),
            backlog: BacklogView::new(net.links().len()),
            nodes,
            rto_gen: vec![0; num_flows],
            geo,
            rop_dur,
            next_slot_id: 0,
            signature_of,
            counters: DominoCounters::default(),
            compute_gen: 0,
            awaiting_report: false,
            dispatch_time: SimTime::ZERO,
            exec_estimate: SimDuration::ZERO,
            post_poll_exec: SimDuration::ZERO,
            node_faults: plane.node,
            ap_dark_until: vec![SimTime::ZERO; net.num_nodes()],
            ap_crashed: vec![false; net.num_nodes()],
            last_rop: vec![0; net.links().len()],
            wd_streak: 0,
            tracer,
            batch_seq: 0,
            rx_buf: Vec::new(),
            ap_list,
            clients,
            backlog_buf: Vec::new(),
            before_buf: Vec::new(),
            committed_buf: Vec::new(),
            slot_senders: Vec::new(),
            outcome_buf: ConversionOutcome::default(),
            action_pool: Vec::new(),
            retained_pool: Vec::new(),
            net: net.clone(),
            cfg,
        }
    }

    // ------------------------------------------------------- controller

    fn controller_compute(&mut self, now: SimTime) {
        // Downlink queues are known instantly over the wire; uplinks only
        // through ROP reports. All three working buffers are World scratch
        // recycled across computes.
        let mut backlog = std::mem::take(&mut self.backlog_buf);
        backlog.clear();
        backlog.extend(self.net.links().iter().map(|l| match l.direction {
            Direction::Downlink => self.fe.queue(l.id).len() as u32,
            Direction::Uplink => self.backlog.estimate(l.id),
        }));
        let mut before = std::mem::take(&mut self.before_buf);
        before.clear();
        before.extend_from_slice(&backlog);
        let mut strict = self
            .scheduler
            .schedule_batch(&self.graph, &mut backlog, self.cfg.batch_slots);
        if strict.is_empty() {
            // Idle heartbeat: fake-only slots keep the trigger chains and
            // the ROP polling alive so new uplink backlog is discovered
            // (fake-link insertion turns an empty slot into a maximal
            // cover). The very first batch needs two slots to create a
            // boundary for the ROP insertion.
            let n = if self.converter.has_retained_slot() { 1 } else { 2 };
            strict.slots = vec![Vec::new(); n];
        }
        // Commit uplink consumption to the stale-report tracker.
        let mut committed = std::mem::take(&mut self.committed_buf);
        committed.clear();
        committed.extend_from_slice(self.backlog.estimates());
        for l in self.net.links() {
            if l.direction == Direction::Uplink {
                let used = before[l.id.index()] - backlog[l.id.index()];
                committed[l.id.index()] = committed[l.id.index()].saturating_sub(used);
            }
        }
        self.backlog.commit_schedule(&committed);
        self.backlog_buf = backlog;
        self.before_buf = before;
        self.committed_buf = committed;

        let polling: &[NodeId] = if self.cfg.converter.insert_rop {
            &self.ap_list
        } else {
            &[]
        };
        let mut outcome = std::mem::take(&mut self.outcome_buf);
        self.converter
            .convert_into(&self.net, &self.graph, &strict, polling, &mut outcome);
        self.scheduler.recycle(strict);
        for l in &outcome.rescheduled {
            if self.net.link(*l).direction == Direction::Uplink {
                self.backlog.refund(*l);
            }
            // Downlink refunds are implicit: those packets never left
            // their queues.
        }

        let n_slots = outcome.batch.slots.len();
        if n_slots == 0 && outcome.batch.connecting_rop.is_none() {
            self.outcome_buf = outcome;
            self.compute_gen += 1;
            self.engine.schedule_in(
                SimDuration::from_millis(1),
                DEv::ControllerCompute { gen: self.compute_gen },
            );
            return;
        }

        let n_rops = outcome
            .batch
            .slots
            .iter()
            .filter(|s| s.rop_after.is_some())
            .count()
            + usize::from(outcome.batch.connecting_rop.is_some());
        // Slots that run after the batch's first poll (whose report wave
        // paces the next compute).
        let after_first_poll = if outcome.batch.connecting_rop.is_some() {
            n_slots
        } else {
            outcome
                .batch
                .slots
                .iter()
                .position(|s| s.rop_after.is_some())
                .map(|i| n_slots - (i + 1))
                .unwrap_or(0)
        };
        self.post_poll_exec = self.geo.total * after_first_poll as u64;
        // A stalled controller ships the batch late. The fallback timer
        // below is deliberately NOT extended: overrunning it — the next
        // compute firing while the late batch is still in flight — is the
        // injected failure mode.
        let stall = match self.node_faults.compute_stall() {
            Some(d) => {
                // The controller is not a radio node; u32::MAX marks it.
                self.tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                    kind: FaultKind::ComputeStall,
                    node: u32::MAX,
                });
                d
            }
            None => SimDuration::ZERO,
        };
        self.dispatch_batch(now, &outcome.batch, stall);

        // Pacing: the next batch is computed when this batch's first ROP
        // report comes back (proof the batch is executing), with a
        // fallback timer sized to the batch's nominal execution time.
        // Without ROP there are no reports, so the timer alone paces
        // dispatch — slightly ahead of the batch's drain so the
        // connecting bursts arrive in time.
        let exec = self.geo.total * n_slots as u64 + self.rop_dur * n_rops as u64;
        let wired = SimDuration::from_micros_f64(self.cfg.wired.mean_us);
        let fallback = if self.cfg.converter.insert_rop {
            exec + wired * 2 + self.cfg.watchdog
        } else {
            exec.checked_sub(wired)
                .unwrap_or(SimDuration::from_micros(200))
                .max(SimDuration::from_micros(200))
        };
        self.awaiting_report = true;
        self.dispatch_time = now;
        self.exec_estimate = exec;
        self.compute_gen += 1;
        self.engine
            .schedule_in(fallback, DEv::ControllerCompute { gen: self.compute_gen });
        self.outcome_buf = outcome;
    }

    /// Turn a converted batch into per-AP wired messages, each delayed by
    /// `stall` (the controller's injected compute stall; zero normally).
    fn dispatch_batch(&mut self, now: SimTime, batch: &RelativeBatch, stall: SimDuration) {
        let first_slot = self.next_slot_id;
        let retained_slot = first_slot.wrapping_sub(1);
        self.next_slot_id += batch.slots.len() as u64;
        self.batch_seq += 1;
        let batch_id = self.batch_seq;
        self.tracer.emit(now.as_nanos(), || TraceEvent::BatchBegin {
            batch: batch_id,
            first_slot,
            slots: batch.slots.len() as u32,
        });
        let sigs = &self.signature_of;

        let burst_of = |assignments: &[BurstAssignment],
                        node: NodeId,
                        marker: BurstMarker,
                        slot: u64,
                        next_senders: &[NodeId]|
         -> Option<Burst> {
            assignments.iter().find(|b| b.broadcaster == node).map(|b| Burst {
                // lint: allow(D007) collect into array-backed InlineVec<_, BURST_CAP>; no heap
                codes: b.targets.iter().map(|t| sigs[t.index()]).collect(),
                // lint: allow(D007) collect into array-backed InlineVec<_, BURST_CAP>; no heap
                targets: b.targets.iter().copied().collect(),
                marker,
                slot,
                continues: next_senders.contains(&node),
            })
        };
        // Senders of each batch slot (for the `continues` self-trigger
        // flag: a broadcaster is deaf during the simultaneous burst
        // phase, so the controller tells it in-band that it transmits
        // again). Inner Vecs are World scratch recycled across batches.
        let mut sender_bufs = std::mem::take(&mut self.slot_senders);
        for (i, s) in batch.slots.iter().enumerate() {
            if sender_bufs.len() <= i {
                // lint: allow(D007) one-time pool growth; buffers recycled across batches via World::slot_senders
                sender_bufs.push(Vec::new());
            }
            let buf = &mut sender_bufs[i];
            buf.clear();
            buf.extend(s.entries.iter().map(|e| self.net.link(e.link).sender));
        }
        let slot_senders = &sender_bufs[..batch.slots.len()];

        for &ap in &self.ap_list {
            let mut actions: Vec<ApAction> = self.action_pool.pop().unwrap_or_default();
            let mut retained_updates = self.retained_pool.pop().unwrap_or_default();
            debug_assert!(actions.is_empty() && retained_updates.is_empty());

            // Batch connection: bursts for the retained slot trigger our
            // first slot (and the connecting ROP slot).
            let conn_marker = if batch.connecting_rop.is_some() {
                BurstMarker::Rop
            } else {
                BurstMarker::Start
            };
            if let Some(rop) = &batch.connecting_rop {
                if rop.aps.contains(&ap) {
                    actions.push(ApAction {
                        slot: first_slot,
                        kind: ApActionKind::Poll,
                        rop_before: false,
                        kick_off: false,
                        own_burst: None,
                        client_burst: None,
                    });
                }
            }
            if !batch.connecting_bursts.is_empty() {
                let first_senders: &[NodeId] =
                    slot_senders.first().map(|v| v.as_slice()).unwrap_or(&[]);
                let own =
                    burst_of(&batch.connecting_bursts, ap, conn_marker, first_slot, first_senders);
                let client = self.clients[ap.index()].iter().copied().find_map(|c| {
                    burst_of(&batch.connecting_bursts, c, conn_marker, first_slot, first_senders)
                        .or_else(|| {
                            first_senders.contains(&c).then(|| Burst {
                                codes: InlineVec::new(),
                                targets: InlineVec::new(),
                                marker: conn_marker,
                                slot: first_slot,
                                continues: true,
                            })
                        })
                });
                if own.is_some() || client.is_some() {
                    retained_updates.push((retained_slot, own, client));
                }
            }

            for (i, slot) in batch.slots.iter().enumerate() {
                let slot_id = first_slot + i as u64;
                let next_slot_id = slot_id + 1;
                let marker = if slot.rop_after.is_some() {
                    BurstMarker::Rop
                } else {
                    BurstMarker::Start
                };
                for entry in &slot.entries {
                    let link = *self.net.link(entry.link);
                    if link.ap != ap {
                        continue;
                    }
                    let next_senders: &[NodeId] = slot_senders
                        .get(i + 1)
                        .map(|v| v.as_slice())
                        .unwrap_or(&[]);
                    let own = burst_of(&slot.bursts, ap, marker, next_slot_id, next_senders);
                    // The client's instruction is sent even when it has
                    // no trigger targets of its own: a client that
                    // transmits again in the next slot is deaf during the
                    // burst phase and must learn its continuation
                    // in-band.
                    let client = burst_of(&slot.bursts, link.client(), marker, next_slot_id, next_senders)
                        .or_else(|| {
                            next_senders.contains(&link.client()).then(|| Burst {
                                codes: InlineVec::new(),
                                targets: InlineVec::new(),
                                marker,
                                slot: next_slot_id,
                                continues: true,
                            })
                        });
                    let kind = if link.is_downlink() {
                        ApActionKind::TxData { link: entry.link }
                    } else {
                        ApActionKind::RxData { link: entry.link }
                    };
                    let rop_before = if i == 0 {
                        batch.connecting_rop.is_some()
                    } else {
                        // lint: allow(D010) i >= 1 in this branch: the i == 0 arm is above
                        batch.slots[i - 1].rop_after.is_some()
                    };
                    actions.push(ApAction {
                        slot: slot_id,
                        kind,
                        rop_before,
                        kick_off: entry.kick_off,
                        own_burst: own,
                        client_burst: client,
                    });
                }
                if let Some(rop) = &slot.rop_after {
                    if rop.aps.contains(&ap) {
                        actions.push(ApAction {
                            slot: next_slot_id,
                            kind: ApActionKind::Poll,
                            rop_before: false,
                            kick_off: false,
                            own_burst: None,
                            client_burst: None,
                        });
                    }
                }
            }

            if actions.is_empty() && retained_updates.is_empty() {
                self.action_pool.push(actions);
                self.retained_pool.push(retained_updates);
                continue;
            }
            if let Some(m) = self.backbone.try_send(now, ()) {
                let msg = ApMessage { first_slot, actions, retained_updates };
                self.engine
                    .schedule_at(m.deliver_at + stall, DEv::BatchArrive { ap: ap.0, msg });
            } else {
                // A lost program is not re-sent: the controller's
                // fallback timer paces the next compute regardless, and
                // the AP's retained entries are shed when the next batch
                // lands.
                actions.clear();
                retained_updates.clear();
                self.action_pool.push(actions);
                self.retained_pool.push(retained_updates);
            }
        }
        self.slot_senders = sender_bufs;
    }

    // --------------------------------------------------------- AP logic

    fn on_batch_arrive(&mut self, now: SimTime, ap: usize, msg: ApMessage) {
        if now < self.ap_dark_until[ap] {
            return; // crashed AP: the program dies with it
        }
        if let Some(downtime) = self.node_faults.crash() {
            // Crash with state loss: the program, pending starts, and the
            // unacked frame are gone; generation bumps retire every timer
            // the old incarnation armed. The AP rejoins lazily — the
            // first batch delivered after the downtime restarts it.
            self.tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                kind: FaultKind::ApCrash,
                node: ap as u32,
            });
            let rt = &mut self.nodes[ap];
            rt.program.clear();
            rt.pending_start = false;
            rt.unacked = None;
            rt.acked = false;
            rt.bump();
            rt.wd_gen += 1;
            self.ap_dark_until[ap] = now + downtime;
            self.ap_crashed[ap] = true;
            return;
        }
        if self.ap_crashed[ap] {
            self.ap_crashed[ap] = false;
            self.node_faults.recovered();
            self.tracer.emit(now.as_nanos(), || TraceEvent::FaultRecover {
                kind: FaultKind::ApCrash,
                node: ap as u32,
            });
        }
        let ApMessage { first_slot, mut actions, mut retained_updates } = msg;
        // Apply retained-slot burst updates to still-pending actions.
        for (slot, own, client) in retained_updates.drain(..) {
            if let Some(action) =
                self.nodes[ap].program.iter_mut().find(|a| a.slot == slot)
            {
                if own.is_some() {
                    action.own_burst = own;
                }
                if client.is_some() {
                    action.client_burst = client;
                }
            }
            // If the retained action already executed, these triggers are
            // lost; the watchdog restarts the chain.
        }
        let was_idle = self.nodes[ap].program.is_empty();
        let head_is_first = actions.first().is_some_and(|a| a.slot == first_slot);
        // Untriggerable entries start on their own, paced by the nominal
        // slot length from the batch's arrival; once an island's chain is
        // running, its later slots chain relatively as usual.
        for a in &actions {
            if a.kick_off {
                let offset = self.geo.total * a.slot.saturating_sub(first_slot);
                self.engine
                    .schedule_at(now + offset, DEv::KickOff { ap: ap as u32, slot: a.slot });
            }
        }
        self.counters.actions_dispatched += actions.len() as u64;
        self.nodes[ap].program.extend(actions.drain(..));
        // Hand the message's buffers back to the dispatch pools.
        self.action_pool.push(actions);
        self.retained_pool.push(retained_updates);

        if was_idle && head_is_first && !self.nodes[ap].pending_start {
            // Chain (re)start: APs begin individually (paper §3.3);
            // relative scheduling heals the misalignment (§4.2.2).
            self.self_start(now, ap);
        }
        self.arm_watchdog(now, ap);
    }

    /// Restart a chain at this AP: transmit/poll heads start directly;
    /// for a receive head "the AP will send a signature to the sender of
    /// that link" (paper §3.3).
    fn self_start(&mut self, now: SimTime, ap: usize) {
        let Some(head) = self.nodes[ap].program.front().cloned() else {
            return;
        };
        match head.kind {
            ApActionKind::RxData { link } => {
                self.nodes[ap].bump(); // retire stacked watchdogs
                let client = self.net.link(link).client();
                let burst = Burst {
                    codes: InlineVec::of(self.signature_of[client.index()]),
                    targets: InlineVec::of(client),
                    marker: BurstMarker::Start,
                    slot: head.slot,
                    continues: false,
                };
                self.on_send_burst(now, ap, burst);
            }
            _ => {
                self.schedule_start(now, ap, head.slot);
            }
        }
    }

    /// (Re-)arm the self-start watchdog; every call marks progress and
    /// retires previously armed timers.
    fn arm_watchdog(&mut self, now: SimTime, ap: usize) {
        if self.nodes[ap].program.is_empty() {
            return;
        }
        self.nodes[ap].wd_gen += 1;
        let gen = self.nodes[ap].wd_gen;
        self.engine
            .schedule_at(now + self.cfg.watchdog, DEv::Watchdog { ap: ap as u32, gen });
    }

    /// A node detected its own signature in a burst: (re-)anchor its slot
    /// start to this (the last) trigger (§3.4).
    fn on_trigger(&mut self, now: SimTime, node: usize, marker: BurstMarker, slot: u64) {
        if self.medium.is_transmitting(NodeId(node as u32)) {
            return; // a transmitting radio cannot run its correlator
        }
        if now < self.ap_dark_until[node] {
            return; // crashed: the radio is down
        }
        if now < self.nodes[node].busy_until {
            self.counters.stale_triggers += 1;
            return; // mid-exchange: the correlator is not armed
        }
        let is_poll_next = self.nodes[node]
            .program
            .front()
            .is_some_and(|a| a.kind == ApActionKind::Poll);
        let delay = match (marker, is_poll_next) {
            (BurstMarker::Rop, true) => SLOT_TIME, // the polling AP starts the ROP slot
            (BurstMarker::Rop, false) => self.rop_dur + SLOT_TIME,
            (BurstMarker::Start, _) => SLOT_TIME,
        };
        self.tracer.emit(now.as_nanos(), || TraceEvent::TriggerFire {
            node: node as u32,
            slot,
        });
        self.schedule_start(now + delay, node, slot);
    }

    /// Commit a (re-)anchored slot start for `node` at `at`, superseding
    /// any earlier pending start (last trigger wins, §3.4).
    fn schedule_start(&mut self, at: SimTime, node: usize, slot: u64) {
        let gen = self.nodes[node].bump();
        self.nodes[node].pending_start = true;
        self.engine
            .schedule_at(at, DEv::SlotStart { node: node as u32, gen, slot });
    }

    /// Self-trigger: the node finishing slot `s` (which started at
    /// `slot_start`) transmits again in slot `s+1`; it cannot hear any
    /// trigger during the simultaneous burst phase, so it continues from
    /// its own slot timing.
    fn self_trigger_after_slot(&mut self, slot_start: SimTime, node: usize, next_slot: u64, rop_before: bool) {
        let mut at = slot_start
            + self.geo.burst_start
            + crate::timing::BURST_DURATION
            + SLOT_TIME;
        if rop_before {
            at += self.rop_dur;
        }
        self.schedule_start(at, node, next_slot);
    }

    fn on_slot_start(&mut self, now: SimTime, node: usize, gen: u64, slot: u64) {
        if self.nodes[node].gen != gen {
            return;
        }
        self.nodes[node].pending_start = false;
        if self.medium.is_transmitting(NodeId(node as u32)) {
            return;
        }
        // The node is now committed to this slot's exchange; its
        // correlator re-arms at the burst phase.
        self.nodes[node].busy_until = now + self.geo.burst_start;
        if self.net.node(NodeId(node as u32)).is_ap() {
            self.ap_execute(now, node, slot);
        } else {
            self.client_transmit(now, node, slot);
        }
    }

    /// The AP acts on a trigger. The trigger's slot index is advisory
    /// (the real protocol carries none): entries for clearly-passed slots
    /// are shed so a lagging AP rejoins the live grid — their packets
    /// never left the queues — but the trigger always starts the next
    /// pending entry.
    fn ap_execute(&mut self, now: SimTime, ap: usize, slot: u64) {
        while let Some(head) = self.nodes[ap].program.front() {
            if head.slot < slot {
                self.counters.actions_shed += 1;
                self.nodes[ap].program.pop_front();
            } else {
                break;
            }
        }
        let Some(action) = self.nodes[ap].program.front().cloned() else {
            return;
        };
        match action.kind {
            ApActionKind::TxData { link } => {
                self.nodes[ap].program.pop_front();
                self.start_data_slot(
                    now,
                    NodeId(ap as u32),
                    link,
                    action.own_burst,
                    action.client_burst,
                    action.slot,
                );
                self.maybe_self_trigger(now, ap, action.slot);
                self.arm_watchdog(now, ap);
            }
            ApActionKind::Poll => {
                self.nodes[ap].program.pop_front();
                self.start_poll(now, NodeId(ap as u32));
                // The polling AP may itself transmit in the slot that
                // follows the ROP slot.
                if self.nodes[ap]
                    .program
                    .front()
                    .is_some_and(|a| a.slot == action.slot)
                {
                    // The guard above ensures the head slot equals action.slot.
                    self.schedule_start(now + self.rop_dur + SLOT_TIME, ap, action.slot);
                }
                self.arm_watchdog(now, ap);
            }
            ApActionKind::RxData { link } => {
                // Our trigger fired for a slot whose entry is a receive:
                // relay the trigger to the client with a direct burst
                // (kick-off path; ordinary uplink slots trigger the
                // client over the air instead).
                let client = self.net.link(link).client();
                if now >= self.nodes[client.index()].busy_until {
                    let burst = Burst {
                        codes: InlineVec::of(self.signature_of[client.index()]),
                        targets: InlineVec::of(client),
                        marker: BurstMarker::Start,
                        slot: action.slot,
                        continues: false,
                    };
                    self.on_send_burst(now, ap, burst);
                }
            }
        }
    }

    /// If the AP's (new) program head is the very next slot, arrange its
    /// self-trigger relative to the slot that starts at `slot_start`.
    fn maybe_self_trigger(&mut self, slot_start: SimTime, ap: usize, current_slot: u64) {
        let Some(head) = self.nodes[ap].program.front() else {
            return;
        };
        // RxData heads are passive (the client drives that slot); only
        // TxData/Poll continuations need a self-trigger.
        if head.slot == current_slot + 1 && !matches!(head.kind, ApActionKind::RxData { .. }) {
            let rop = head.rop_before;
            let next = head.slot;
            self.self_trigger_after_slot(slot_start, ap, next, rop);
        }
    }

    /// A triggered client transmits its uplink head (or a fake header).
    fn client_transmit(&mut self, now: SimTime, client: usize, slot: u64) {
        self.counters.client_transmissions += 1;
        let uplink = match self
            .net
            .links()
            .iter()
            .find(|l| l.sender == NodeId(client as u32))
        {
            Some(l) => l.id,
            None => return,
        };
        // §3.5 missed ACK: the client retransmits the unacked packet when
        // its next trigger arrives.
        let packet = match self.nodes[client].unacked.take() {
            Some(p) => Some(p),
            None => self.fe.queue_mut(uplink).pop(),
        };
        self.transmit_exchange(now, NodeId(client as u32), uplink, packet, None, slot);
    }

    /// Shared data-slot start for AP transmitters.
    fn start_data_slot(
        &mut self,
        now: SimTime,
        sender: NodeId,
        link: LinkId,
        own_burst: Option<Burst>,
        client_burst: Option<Burst>,
        slot: u64,
    ) {
        // §3.5 missed ACK (AP side): retransmit if the schedule head has
        // the same destination — here, the same link.
        let packet = match self.nodes[sender.index()].unacked.take() {
            Some(p) if p.link == link => Some(p),
            Some(p) => {
                // Different destination: back to its queue for the
                // scheduler.
                let _ = self.fe.queue_mut(p.link).push_front(p);
                self.fe.queue_mut(link).pop()
            }
            None => self.fe.queue_mut(link).pop(),
        };
        // The AP's burst goes out at the fixed offset regardless of the
        // exchange outcome (its job is to trigger the next slot).
        if let Some(b) = own_burst {
            self.engine.schedule_at(
                now + self.geo.burst_start,
                DEv::SendBurst { node: sender.0, burst: b },
            );
        }
        self.transmit_exchange(now, sender, link, packet, client_burst, slot);
    }

    /// Put the data (or fake-header) frame of a slot on the air.
    fn transmit_exchange(
        &mut self,
        now: SimTime,
        sender: NodeId,
        link: LinkId,
        packet: Option<Packet>,
        client_burst: Option<Burst>,
        slot: u64,
    ) {
        if self.medium.is_transmitting(sender) {
            if let Some(p) = packet {
                let _ = self.fe.queue_mut(link).push_front(p);
            }
            return;
        }
        self.fe.stats.slot_starts.push(crate::workload::SlotStartRecord {
            slot,
            start_ns: now.as_nanos(),
            link,
            fake: packet.is_none(),
        });
        self.tracer.emit(now.as_nanos(), || TraceEvent::SlotStart {
            slot,
            link: link.0,
            fake: packet.is_none(),
        });
        let (frame, airtime) = match packet {
            Some(p) => {
                self.nodes[sender.index()].unacked = Some(p);
                self.nodes[sender.index()].acked = false;
                let gen = self.nodes[sender.index()].gen;
                self.engine.schedule_at(
                    now + self.geo.ack_start + self.geo.ack_airtime + SLOT_TIME,
                    DEv::AckCheck { node: sender.0, gen },
                );
                (
                    Frame {
                        src: sender,
                        body: FrameBody::Data { packet: p, fake: false, client_burst },
                        bits: (p.payload_bytes + MAC_OVERHEAD_BYTES) * 8,
                    },
                    self.geo.data_airtime,
                )
            }
            None => (
                Frame {
                    src: sender,
                    body: FrameBody::Data {
                        packet: Packet {
                            id: domino_traffic::PacketId(u64::MAX),
                            flow: domino_traffic::FlowId(u32::MAX),
                            link,
                            payload_bytes: 0,
                            created_at: now,
                            kind: PacketKind::Udp,
                            seq: u64::MAX,
                        },
                        fake: true,
                        client_burst,
                    },
                    bits: crate::timing::FAKE_HEADER_BYTES * 8,
                },
                fake_airtime(self.net.phy().data_rate) + crate::timing::INSTRUCTION_APPENDIX,
            ),
        };
        let tx = self.medium.begin(now, frame);
        self.engine.schedule_at(now + airtime, DEv::TxEnd { tx });
    }

    fn start_poll(&mut self, now: SimTime, ap: NodeId) {
        if self.medium.is_transmitting(ap) {
            return;
        }
        self.tracer.emit(now.as_nanos(), || TraceEvent::RopPoll { ap: ap.0 });
        let frame = Frame { src: ap, body: FrameBody::Poll { ap }, bits: POLL_BYTES * 8 };
        let tx = self.medium.begin(now, frame);
        self.engine
            .schedule_at(now + poll_airtime(self.net.phy().data_rate), DEv::TxEnd { tx });
    }

    // ------------------------------------------------------- receptions

    fn on_tx_end(&mut self, now: SimTime, tx: TxId) {
        // One reception buffer for the whole run: `end_into` refills it
        // here and the storage goes back on `self.rx_buf` below.
        let mut receptions = std::mem::take(&mut self.rx_buf);
        receptions.clear();
        self.medium.end_into(tx, now, &mut receptions);
        for r in &receptions {
            let rx = r.rx.index();
            match &r.frame.body {
                FrameBody::Data { packet, fake, client_burst } => {
                    let l = *self.net.link(packet.link);
                    let intended = if l.is_downlink() { l.client() } else { l.ap };
                    if r.rx == intended {
                        self.tracer.emit(now.as_nanos(), || TraceEvent::SlotEnd {
                            link: packet.link.0,
                            delivered: r.success && !*fake,
                        });
                    }
                    if !r.success {
                        continue;
                    }
                    if !*fake {
                        self.fe.deliver(packet, now);
                        self.sync_all_rto(now);
                        self.wd_streak = 0; // progress: the storm streak ends
                    }
                    let ap_is_receiver = self.net.node(r.rx).is_ap();
                    // How far into the fixed slot the data phase actually
                    // ran (fake headers are short, but the burst offset
                    // never moves).
                    let elapsed = if *fake {
                        fake_airtime(self.net.phy().data_rate)
                            + crate::timing::INSTRUCTION_APPENDIX
                    } else {
                        self.geo.data_airtime
                    };
                    // Downlink: the client schedules its instructed burst
                    // at the slot's fixed burst offset.
                    if !ap_is_receiver {
                        if let Some(b) = client_burst {
                            let at = now + (self.geo.burst_start - elapsed);
                            self.engine
                                .schedule_at(at, DEv::SendBurst { node: r.rx.0, burst: *b });
                            if b.continues {
                                let rop = b.marker == BurstMarker::Rop;
                                self.self_trigger_after_slot(now - elapsed, rx, b.slot, rop);
                            }
                        }
                    }
                    // Uplink: the AP advances its program, schedules its
                    // own burst and embeds the client's instruction in
                    // the ACK.
                    let reply_burst = if ap_is_receiver {
                        self.ap_uplink_reception(now, rx, packet.link, elapsed)
                    } else {
                        None
                    };
                    // Real frames are ACKed; a fake uplink still gets a
                    // header-ACK when it must carry the client's burst
                    // instruction (Fig 8b's S1 has no other ride). The
                    // ACK always sits at the slot's fixed ACK offset — a
                    // fake exchange's header ends early, and an early ACK
                    // would land inside concurrent links' data phases.
                    let must_ack = !*fake || (ap_is_receiver && reply_burst.is_some());
                    if must_ack && !self.medium.is_transmitting(r.rx) {
                        let ack_at = now + (self.geo.ack_start - elapsed);
                        self.engine.schedule_at(
                            ack_at,
                            DEv::SendAck { rx: r.rx.0, packet: *packet, client_burst: reply_burst },
                        );
                    }
                }
                FrameBody::MacAck { packet, link, client_burst } => {
                    if !r.success {
                        continue;
                    }
                    let sender = self.net.link(*link).sender.index();
                    if rx == sender
                        && self.nodes[sender].unacked.is_some_and(|p| p.id == *packet)
                    {
                        self.nodes[sender].unacked = None;
                        self.nodes[sender].acked = true;
                    }
                    // Uplink case: the client's instruction rides the
                    // ACK; it bursts one slot later.
                    if let Some(b) = client_burst {
                        if !self.net.node(r.rx).is_ap() {
                            self.engine.schedule_at(
                                now + SLOT_TIME,
                                DEv::SendBurst { node: r.rx.0, burst: *b },
                            );
                            if b.continues {
                                let rop = b.marker == BurstMarker::Rop;
                                // The ACK ends at slot_start + data phase +
                                // SIFS + ack airtime; fake exchanges (the
                                // acked id is the fake sentinel) had a
                                // short data phase.
                                let data_elapsed = if *packet == domino_traffic::PacketId(u64::MAX)
                                {
                                    fake_airtime(self.net.phy().data_rate)
                                        + crate::timing::INSTRUCTION_APPENDIX
                                } else {
                                    self.geo.data_airtime
                                };
                                let offset = data_elapsed + SIFS + self.geo.ack_airtime;
                                if now.as_nanos() >= offset.as_nanos() {
                                    let slot_start = now - offset;
                                    self.self_trigger_after_slot(slot_start, rx, b.slot, rop);
                                }
                            }
                        }
                    }
                }
                FrameBody::Poll { ap } => {
                    if !r.success {
                        continue;
                    }
                    self.engine
                        .schedule_at(now + SLOT_TIME, DEv::RopAnswer { client: r.rx.0, ap: ap.0 });
                }
                FrameBody::RopReport { client, ap, queue } => {
                    if !r.success {
                        continue;
                    }
                    self.tracer.emit(now.as_nanos(), || TraceEvent::RopReport {
                        client: client.0,
                        ap: ap.0,
                        queue: *queue,
                    });
                    let uplink = self
                        .net
                        .links()
                        .iter()
                        .find(|l| l.sender == *client)
                        .map(|l| l.id);
                    if let Some(link) = uplink {
                        if let Some(m) = self.backbone.try_send(now, ()) {
                            self.engine.schedule_at(
                                m.deliver_at,
                                DEv::ReportArrive { link: link.0, queue: *queue },
                            );
                        }
                    }
                }
                FrameBody::SignatureBurst(b) => {
                    if !r.success {
                        self.counters.triggers_failed += 1;
                        self.tracer.emit(now.as_nanos(), || TraceEvent::SigMiss {
                            node: r.rx.0,
                            slot: b.slot,
                        });
                        continue;
                    }
                    self.counters.triggers_detected += 1;
                    self.tracer.emit(now.as_nanos(), || TraceEvent::SigDetect {
                        node: r.rx.0,
                        slot: b.slot,
                    });
                    self.on_trigger(now, rx, b.marker, b.slot);
                }
            }
        }
        self.rx_buf = receptions;
    }

    /// The AP received an uplink frame: advance its program past the
    /// matching RxData head and schedule its own burst for this slot.
    /// Returns the client's burst instruction to embed in the ACK.
    fn ap_uplink_reception(
        &mut self,
        now: SimTime,
        ap: usize,
        link: LinkId,
        elapsed: SimDuration,
    ) -> Option<Burst> {
        let matches = self.nodes[ap]
            .program
            .front()
            .is_some_and(|a| a.kind == (ApActionKind::RxData { link }));
        if !matches {
            return None;
        }
        let action = self.nodes[ap].program.pop_front()?;
        self.arm_watchdog(now, ap);
        if let Some(b) = action.own_burst {
            // The data phase consumed `elapsed`; the burst sits at the
            // slot's fixed offset.
            let at = now + (self.geo.burst_start - elapsed);
            self.engine.schedule_at(at, DEv::SendBurst { node: ap as u32, burst: b });
        }
        self.maybe_self_trigger(now - elapsed, ap, action.slot);
        action.client_burst
    }

    // ------------------------------------------------------- mid-slot

    fn on_send_ack(
        &mut self,
        now: SimTime,
        rx: usize,
        packet: Packet,
        client_burst: Option<Burst>,
    ) {
        if self.medium.is_transmitting(NodeId(rx as u32)) {
            return;
        }
        let frame = Frame {
            src: NodeId(rx as u32),
            body: FrameBody::MacAck { packet: packet.id, link: packet.link, client_burst },
            bits: ACK_BYTES * 8,
        };
        let tx = self.medium.begin(now, frame);
        self.engine.schedule_at(now + self.geo.ack_airtime, DEv::TxEnd { tx });
    }

    fn on_send_burst(&mut self, now: SimTime, node: usize, burst: Burst) {
        if burst.targets.is_empty() || self.medium.is_transmitting(NodeId(node as u32)) {
            return;
        }
        let frame = Frame {
            src: NodeId(node as u32),
            body: FrameBody::SignatureBurst(burst),
            bits: 0,
        };
        self.counters.bursts_sent += 1;
        if let FrameBody::SignatureBurst(b) = &frame.body {
            self.tracer.emit(now.as_nanos(), || TraceEvent::SigEmit {
                node: node as u32,
                slot: b.slot,
                targets: b.targets.iter().map(|t| t.0).collect(),
            });
        }
        let tx = self.medium.begin(now, frame);
        self.engine
            .schedule_at(now + crate::timing::BURST_DURATION, DEv::TxEnd { tx });
    }

    fn on_ack_check(&mut self, _now: SimTime, node: usize, _gen: u64) {
        if self.nodes[node].acked {
            self.nodes[node].acked = false;
            return;
        }
        if self.nodes[node].unacked.is_some() {
            // Kept for the §3.5 retransmission paths; count the miss.
            self.fe.stats.ack_timeouts += 1;
            self.fe.stats.retries += 1;
        }
    }

    fn on_rop_answer(&mut self, now: SimTime, client: usize, ap: usize) {
        if self.medium.is_transmitting(NodeId(client as u32)) {
            return;
        }
        let uplink = self
            .net
            .links()
            .iter()
            .find(|l| l.sender == NodeId(client as u32))
            .map(|l| l.id);
        let Some(link) = uplink else { return };
        let fresh =
            self.fe.queue(link).rop_report() + u32::from(self.nodes[client].unacked.is_some());
        // Stale-report fault: the client replays the previous round's
        // value instead of the live queue state.
        let stale = self.node_faults.report_stale();
        if stale {
            self.tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                kind: FaultKind::StaleRop,
                node: client as u32,
            });
        }
        let queue = if stale { self.last_rop[link.index()] } else { fresh };
        self.last_rop[link.index()] = fresh;
        let frame = Frame {
            src: NodeId(client as u32),
            body: FrameBody::RopReport {
                client: NodeId(client as u32),
                ap: NodeId(ap as u32),
                queue: queue.min(63),
            },
            bits: 0,
        };
        let tx = self.medium.begin(now, frame);
        self.engine.schedule_at(now + ROP_SYMBOL, DEv::TxEnd { tx });
    }

    fn on_watchdog(&mut self, now: SimTime, ap: usize, gen: u64) {
        if self.nodes[ap].wd_gen != gen || self.nodes[ap].program.is_empty() {
            return;
        }
        if self.nodes[ap].pending_start {
            self.arm_watchdog(now, ap);
            return;
        }
        // Never restart into an active channel: the "stall" may be an
        // exchange we are part of (e.g. the uplink data we are waiting
        // for is in flight right now — a burst would deafen us to it).
        if self.medium.is_busy(NodeId(ap as u32)) {
            let gen = self.nodes[ap].wd_gen;
            self.engine.schedule_at(
                now + SimDuration::from_micros(200),
                DEv::Watchdog { ap: ap as u32, gen },
            );
            return;
        }
        // A receive head that has been stalled for a whole watchdog
        // period is dead (its client either missed the trigger or its
        // data keeps failing): discard the opportunity — the scheduler
        // still sees the backlog and reschedules the link — and restart
        // from the next entry.
        if matches!(
            self.nodes[ap].program.front().map(|a| &a.kind),
            Some(ApActionKind::RxData { .. })
        ) {
            self.nodes[ap].program.pop_front();
            if self.nodes[ap].program.is_empty() {
                return;
            }
        }
        self.counters.watchdog_restarts += 1;
        // Storm detection: restarts with zero deliveries in between mean
        // the fallback timer, not the trigger chain, is pacing the
        // schedule. Counting is observation-only (no events, no RNG).
        self.wd_streak += 1;
        if self.wd_streak == WATCHDOG_STORM_THRESHOLD {
            self.counters.watchdog_storms += 1;
        }
        // Chain broken: restart individually (§3.3's first-batch rule
        // doubles as the self-healing restart).
        self.self_start(now, ap);
        self.arm_watchdog(now, ap);
    }

    /// An untriggerable entry's estimated time arrived: start it unless a
    /// real trigger already did (or the channel is mid-exchange).
    fn on_kick_off(&mut self, now: SimTime, ap: usize, slot: u64) {
        if self.nodes[ap].pending_start || now < self.nodes[ap].busy_until {
            return; // a trigger beat us to it
        }
        let Some(head) = self.nodes[ap].program.front().cloned() else {
            return;
        };
        if head.slot > slot {
            return; // already past it
        }
        if self.medium.is_busy(NodeId(ap as u32)) {
            self.engine.schedule_at(
                now + SimDuration::from_micros(100),
                DEv::KickOff { ap: ap as u32, slot },
            );
            return;
        }
        self.counters.kick_offs += 1;
        match head.kind {
            ApActionKind::RxData { link } if head.slot == slot => {
                let client = self.net.link(link).client();
                let burst = Burst {
                    codes: InlineVec::of(self.signature_of[client.index()]),
                    targets: InlineVec::of(client),
                    marker: BurstMarker::Start,
                    slot,
                    continues: false,
                };
                self.on_send_burst(now, ap, burst);
            }
            _ => self.schedule_start(now, ap, slot),
        }
    }

    // ---------------------------------------------------------- traffic

    fn sync_all_rto(&mut self, now: SimTime) {
        for flow in self.fe.tcp_flows() {
            self.rto_gen[flow] += 1;
            if let Some(deadline) = self.fe.tcp_rto_deadline(flow) {
                self.engine
                    .schedule_at(deadline.max(now), DEv::TcpRto { flow, gen: self.rto_gen[flow] });
            }
        }
    }

    fn handle(&mut self, now: SimTime, ev: DEv) {
        match ev {
            DEv::UdpArrival { flow } => {
                let _ = self.fe.udp_arrive(flow);
                self.engine
                    .schedule_at(self.fe.udp_next_arrival(flow), DEv::UdpArrival { flow });
            }
            DEv::TcpTick { flow } => {
                self.fe.tcp_tick(flow, now);
                self.engine.schedule_in(TCP_TICK, DEv::TcpTick { flow });
                self.sync_all_rto(now);
            }
            DEv::TcpRto { flow, gen } => {
                if self.rto_gen[flow] == gen {
                    self.fe.tcp_timer(flow, now);
                    self.sync_all_rto(now);
                }
            }
            DEv::TxEnd { tx } => self.on_tx_end(now, tx),
            DEv::BatchArrive { ap, msg } => self.on_batch_arrive(now, ap as usize, msg),
            DEv::ReportArrive { link, queue } => {
                self.backlog.report(LinkId(link), queue);
                // The report wave is execution-anchored: schedule the
                // next compute so it lands one wired delay before this
                // batch drains. Stragglers of the previous wave arriving
                // right after a dispatch must not consume the new batch's
                // wave slot.
                let batch_age = now.saturating_since(self.dispatch_time);
                if self.awaiting_report && batch_age >= SimDuration::from_micros(400) {
                    self.awaiting_report = false;
                    let batch_id = self.batch_seq;
                    self.tracer
                        .emit(now.as_nanos(), move || TraceEvent::BatchEnd { batch: batch_id });
                    let lead = SimDuration::from_micros_f64(self.cfg.wired.mean_us)
                        + self.geo.total;
                    let at = (now + self.post_poll_exec.saturating_sub(lead))
                        .max(now + SimDuration::from_micros(150));
                    self.compute_gen += 1;
                    self.engine
                        .schedule_at(at, DEv::ControllerCompute { gen: self.compute_gen });
                }
            }
            DEv::ControllerCompute { gen } => {
                if gen == self.compute_gen {
                    self.controller_compute(now);
                }
            }
            DEv::SlotStart { node, gen, slot } => {
                self.on_slot_start(now, node as usize, gen, slot)
            }
            DEv::SendBurst { node, burst } => self.on_send_burst(now, node as usize, burst),
            DEv::SendAck { rx, packet, client_burst } => {
                self.on_send_ack(now, rx as usize, packet, client_burst)
            }
            DEv::AckCheck { node, gen } => self.on_ack_check(now, node as usize, gen),
            DEv::RopAnswer { client, ap } => {
                self.on_rop_answer(now, client as usize, ap as usize)
            }
            DEv::Watchdog { ap, gen } => self.on_watchdog(now, ap as usize, gen),
            DEv::KickOff { ap, slot } => self.on_kick_off(now, ap as usize, slot),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcf::DcfSim;
    use crate::omniscient::OmniscientSim;
    use domino_topology::presets::{fig1, fig7};
    use domino_topology::{NodeId, PhyParams};

    fn fig1_links(net: &Network) -> (LinkId, LinkId, LinkId) {
        let dl = |ap: u32| {
            net.links()
                .iter()
                .find(|l| l.is_downlink() && l.sender == NodeId(ap))
                .unwrap()
                .id
        };
        let ul = |ap: u32| {
            net.links()
                .iter()
                .find(|l| !l.is_downlink() && l.ap == NodeId(ap))
                .unwrap()
                .id
        };
        (dl(0), ul(2), dl(4))
    }

    #[test]
    fn single_pair_downlink_flows() {
        let net = fig1(PhyParams::default());
        let (l1, _, _) = fig1_links(&net);
        let w = Workload::udp_saturated(&[l1]);
        let stats = DominoSim::run(&net, &w, 2.0, 1);
        let mbps = stats.link_mbps(l1);
        // One link per slot: 4096 bits / ~492 us slot ≈ 8.3 Mb/s (minus
        // ROP overhead).
        assert!(mbps > 6.0, "DOMINO single link: {mbps} Mb/s");
        // The trigger-chain diagnostics ride on the run report: a healthy
        // run is paced by detected triggers, not by fallback timers.
        let d = stats.domino;
        assert!(d.bursts_sent > 0, "no signature bursts recorded: {d:?}");
        assert!(d.triggers_detected > 0, "no triggers recorded: {d:?}");
        assert!(d.actions_dispatched > 0, "no dispatches recorded: {d:?}");
        assert!(
            d.triggers_detected > d.watchdog_restarts,
            "chain paced by watchdogs, not triggers: {d:?}"
        );
    }

    #[test]
    fn fig2_shape_domino_matches_omniscient() {
        let net = fig1(PhyParams::default());
        let (l1, l2, l3) = fig1_links(&net);
        let w = Workload::udp_saturated(&[l1, l2, l3]);
        let domino = DominoSim::run(&net, &w, 3.0, 1);
        let dcf = DcfSim::run(&net, &w, 3.0, 1);
        let omni = OmniscientSim::run(&net, &w, 3.0, 1);
        let (d, c, o) =
            (domino.aggregate_mbps(), dcf.aggregate_mbps(), omni.aggregate_mbps());
        // Fig 2: DOMINO performs close to the omniscient scheme and far
        // above DCF.
        assert!(d > c * 1.4, "DOMINO {d} vs DCF {c}");
        assert!(d > o * 0.75, "DOMINO {d} should be close to omniscient {o}");
        // The exposed uplink is scheduled every slot; the hidden victim
        // is not starved.
        assert!(domino.link_mbps(l2) > 5.0, "C2->AP2: {}", domino.link_mbps(l2));
        assert!(domino.link_mbps(l3) > 2.0, "AP3->C3: {}", domino.link_mbps(l3));
    }

    #[test]
    fn uplink_traffic_is_scheduled_via_rop() {
        let net = fig7(PhyParams::default());
        let ups: Vec<LinkId> = net
            .links()
            .iter()
            .filter(|l| !l.is_downlink())
            .map(|l| l.id)
            .collect();
        let w = Workload::udp_saturated(&ups);
        let stats = DominoSim::run(&net, &w, 3.0, 2);
        let total = stats.aggregate_mbps();
        // Client-driven slots lean on relayed triggers and carry more
        // per-slot control overhead than downlinks; the healthy signal is
        // meaningful aggregate progress with no starved link.
        assert!(total > 4.0, "uplink-only DOMINO: {total} Mb/s");
        for &u in &ups {
            assert!(
                stats.link_mbps(u) > 1.0,
                "uplink {u} starved: {}",
                stats.link_mbps(u)
            );
        }
    }

    #[test]
    fn misalignment_heals_within_a_few_slots() {
        let net = fig7(PhyParams::default());
        let w = Workload::udp_updown(&net, 10e6, 10e6);
        let cfg = DominoConfig {
            wired: WiredLatency::with_std(60.0),
            ..DominoConfig::default()
        };
        let stats = DominoSim::run_with(&net, &w, 1.0, 3, cfg);
        let mis = stats.misalignment_by_slot();
        assert!(mis.len() > 10, "not enough slots recorded: {}", mis.len());
        // Steady state must be tightly aligned even though slot 0 starts
        // with wired jitter.
        let mut late: Vec<f64> = mis.iter().skip(8).map(|&(_, m)| m).collect();
        late.sort_by(|a, b| a.total_cmp(b));
        let late_median = late[late.len() / 2];
        assert!(late_median < 15.0, "steady-state misalignment {late_median} us");
    }

    #[test]
    fn deterministic() {
        let net = fig7(PhyParams::default());
        let w = Workload::udp_updown(&net, 5e6, 5e6);
        let a = DominoSim::run(&net, &w, 1.0, 9);
        let b = DominoSim::run(&net, &w, 1.0, 9);
        assert_eq!(a.delivered_bits, b.delivered_bits);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn tcp_over_domino_progresses() {
        let net = fig1(PhyParams::default());
        let w = Workload::tcp_updown(&net, 10e6, 0.0);
        let stats = DominoSim::run(&net, &w, 3.0, 4);
        // Modest by design: the paper treats the TCP ACK as a regular
        // packet occupying a whole slot (§4.2.3), which halves the slot
        // budget of a single flow; the healthy signal is progress with
        // few transport-level losses.
        assert!(
            stats.aggregate_mbps() > 1.0,
            "TCP over DOMINO: {} Mb/s",
            stats.aggregate_mbps()
        );
        assert!(
            stats.tcp_retransmissions < 100,
            "TCP losses: {}",
            stats.tcp_retransmissions
        );
    }

    #[test]
    fn fake_links_can_be_disabled_for_ablation() {
        let net = fig7(PhyParams::default());
        let w = Workload::udp_updown(&net, 10e6, 0.0);
        let cfg = DominoConfig {
            converter: ConverterConfig {
                insert_fake_links: false,
                ..ConverterConfig::default()
            },
            ..DominoConfig::default()
        };
        let without = DominoSim::run_with(&net, &w, 2.0, 5, cfg);
        let with = DominoSim::run(&net, &w, 2.0, 5);
        assert!(without.aggregate_mbps() > 0.0);
        assert!(with.aggregate_mbps() > 0.0);
    }
}

