//! # domino-mac
//!
//! The MAC-layer engines of the DOMINO (CoNEXT'13) reproduction. Four
//! channel-access schemes over the same medium, topology and traffic
//! substrates:
//!
//! * [`dcf`] — IEEE 802.11 DCF (CSMA/CA), the distributed baseline;
//! * [`centaur`] — the CENTAUR-style hybrid: centrally batched downlink
//!   epochs with carrier-sense alignment, DCF uplink;
//! * [`omniscient`] — an idealized, perfectly synchronized centralized
//!   scheduler (the upper bound of Fig 2);
//! * [`domino`] — the paper's contribution: relative scheduling executed
//!   through signature triggers, with ROP polling, fake-link keep-alives
//!   and missed-ACK retransmission.
//!
//! Shared pieces: [`timing`] (802.11g constants and DOMINO slot
//! geometry), [`workload`] (flow specs and run statistics), [`flows`]
//! (traffic drive and metering).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod centaur;
pub mod dcf;
pub mod domino;
pub mod flows;
pub mod omniscient;
pub mod timing;
pub mod workload;

pub use dcf::DcfSim;
pub use workload::{FlowKind, FlowSpec, RunStats, Workload};
