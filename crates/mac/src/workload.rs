//! Workload specification and per-run statistics.

use domino_faults::FaultStats;
use domino_obs::MetricsRegistry;
use domino_stats::{jain_index, DelayMeter};
use domino_topology::{Direction, LinkId, Network};
use domino_traffic::TcpConfig;

/// What kind of traffic a flow carries.
#[derive(Clone, Debug)]
pub enum FlowKind {
    /// Constant-bit-rate UDP at the given offered rate.
    Udp {
        /// Offered rate, bits/s.
        rate_bps: f64,
    },
    /// TCP-lite with the given configuration (offered rate lives inside
    /// the config).
    Tcp {
        /// Transport parameters.
        cfg: TcpConfig,
    },
}

/// One flow over one directed link.
#[derive(Clone, Debug)]
pub struct FlowSpec {
    /// The directed link the flow's data packets traverse.
    pub link: LinkId,
    /// Traffic kind.
    pub kind: FlowKind,
}

/// A complete workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// The flows.
    pub flows: Vec<FlowSpec>,
    /// Data packet payload size (the paper's 512 bytes).
    pub packet_bytes: usize,
}

impl Workload {
    /// The paper's Fig 12 workload: UDP on every downlink at
    /// `down_bps` and on every uplink at `up_bps` (zero-rate flows are
    /// omitted).
    pub fn udp_updown(net: &Network, down_bps: f64, up_bps: f64) -> Workload {
        let flows = net
            .links()
            .iter()
            .filter_map(|l| {
                let rate = match l.direction {
                    Direction::Downlink => down_bps,
                    Direction::Uplink => up_bps,
                };
                (rate > 0.0).then_some(FlowSpec { link: l.id, kind: FlowKind::Udp { rate_bps: rate } })
            })
            .collect();
        Workload { flows, packet_bytes: 512 }
    }

    /// TCP on every downlink at `down_bps` offered and every uplink at
    /// `up_bps` offered.
    pub fn tcp_updown(net: &Network, down_bps: f64, up_bps: f64) -> Workload {
        let flows = net
            .links()
            .iter()
            .filter_map(|l| {
                let rate = match l.direction {
                    Direction::Downlink => down_bps,
                    Direction::Uplink => up_bps,
                };
                (rate > 0.0).then_some(FlowSpec {
                    link: l.id,
                    kind: FlowKind::Tcp { cfg: TcpConfig { app_rate_bps: rate, ..TcpConfig::default() } },
                })
            })
            .collect();
        Workload { flows, packet_bytes: 512 }
    }

    /// Saturated UDP on an explicit set of links (motivation/Table 2
    /// experiments): offered far above channel capacity.
    pub fn udp_saturated(links: &[LinkId]) -> Workload {
        Workload {
            flows: links
                .iter()
                .map(|&l| FlowSpec { link: l, kind: FlowKind::Udp { rate_bps: 20e6 } })
                .collect(),
            packet_bytes: 512,
        }
    }

    /// Links that carry a configured flow.
    pub fn flow_links(&self) -> Vec<LinkId> {
        self.flows.iter().map(|f| f.link).collect()
    }
}

/// Node indices of every client in `net` — the nodes the fault plane's
/// churn class may take dark.
pub fn client_indices(net: &Network) -> Vec<u32> {
    net.nodes()
        .iter()
        .filter(|n| n.role == domino_topology::NodeRole::Client)
        .map(|n| n.id.0)
        .collect()
}

/// Everything a scheme engine reports after a run.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Measured duration, seconds.
    pub duration_s: f64,
    /// Goodput bits delivered per link.
    pub delivered_bits: Vec<u64>,
    /// Per-link packet delays.
    pub delays: Vec<DelayMeter>,
    /// Packets dropped (queue overflow or retry exhaustion).
    pub drops: u64,
    /// MAC-level retransmissions.
    pub retries: u64,
    /// ACK timeouts (DCF diagnostics; the paper quotes 57 386 for DCF vs
    /// 0 for CENTAUR in one configuration).
    pub ack_timeouts: u64,
    /// Engine events processed.
    pub events: u64,
    /// Transport-layer (TCP) retransmissions across all flows.
    pub tcp_retransmissions: u64,
    /// Populated by DOMINO only: one record per slot transmission, for
    /// the Fig 10 timeline and the Fig 11 misalignment analysis (empty
    /// for the other MACs).
    pub slot_starts: Vec<SlotStartRecord>,
    /// Populated by DOMINO only: trigger-chain diagnostics (all zero for
    /// the other MACs).
    pub domino: DominoCounters,
    /// Fault-plane injection and recovery counters (all zero when the
    /// fault plane is off).
    pub faults: FaultStats,
}

/// DOMINO trigger-chain diagnostics, accumulated during a run and carried
/// on [`RunStats`] so they flow through the normal reporting path (no
/// stderr side channel). Healthy runs show `triggers_detected` dominating
/// `watchdog_restarts`/`kick_offs`: the relative chain, not the fallback
/// timers, is what paces the schedule (§3.4).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DominoCounters {
    /// Signature bursts put on the air.
    pub bursts_sent: u64,
    /// Bursts whose signature a targeted receiver detected.
    pub triggers_detected: u64,
    /// Bursts lost to the channel (correlator miss / SINR failure).
    pub triggers_failed: u64,
    /// Triggers discarded because the receiver was mid-exchange.
    pub stale_triggers: u64,
    /// Client-driven slot starts (uplink data or fake header).
    pub client_transmissions: u64,
    /// Watchdog-initiated chain restarts (§3.3's self-start rule).
    pub watchdog_restarts: u64,
    /// Untriggerable entries started by their estimated-time fallback.
    pub kick_offs: u64,
    /// Program entries shed because their slot had clearly passed.
    pub actions_shed: u64,
    /// Program entries dispatched to APs over the wire.
    pub actions_dispatched: u64,
    /// Watchdog-restart storms: runs of more than
    /// [`WATCHDOG_STORM_THRESHOLD`] consecutive watchdog restarts with
    /// zero deliveries in between. A storm means the fallback timer, not
    /// the relative chain, is driving the schedule — the failure mode the
    /// fault plane is designed to expose.
    pub watchdog_storms: u64,
}

/// Consecutive zero-delivery watchdog restarts that count as one storm
/// (see [`DominoCounters::watchdog_storms`]).
pub const WATCHDOG_STORM_THRESHOLD: u64 = 8;

/// One DOMINO slot transmission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SlotStartRecord {
    /// Absolute slot index.
    pub slot: u64,
    /// Transmission start, ns since simulation start.
    pub start_ns: u64,
    /// The link transmitting.
    pub link: LinkId,
    /// Header-only fake keep-alive?
    pub fake: bool,
}

impl RunStats {
    /// Empty stats over `num_links` links.
    pub fn new(num_links: usize, duration_s: f64) -> RunStats {
        RunStats {
            duration_s,
            delivered_bits: vec![0; num_links],
            delays: vec![DelayMeter::new(); num_links],
            drops: 0,
            retries: 0,
            ack_timeouts: 0,
            events: 0,
            tcp_retransmissions: 0,
            slot_starts: Vec::new(),
            domino: DominoCounters::default(),
            faults: FaultStats::default(),
        }
    }

    /// Goodput of one link, Mb/s.
    pub fn link_mbps(&self, link: LinkId) -> f64 {
        self.delivered_bits[link.index()] as f64 / self.duration_s / 1e6
    }

    /// Aggregate goodput, Mb/s.
    pub fn aggregate_mbps(&self) -> f64 {
        self.delivered_bits.iter().sum::<u64>() as f64 / self.duration_s / 1e6
    }

    /// Jain's fairness index over the given links' goodputs (the paper
    /// computes fairness "among all links" that carry flows).
    pub fn fairness(&self, links: &[LinkId]) -> f64 {
        let alloc: Vec<f64> = links.iter().map(|&l| self.link_mbps(l)).collect();
        jain_index(&alloc)
    }

    /// Mean delivery delay over the given links, µs ("average delay per
    /// link": mean of per-link means, matching Fig 12's metric).
    pub fn mean_delay_us(&self, links: &[LinkId]) -> f64 {
        let means: Vec<f64> = links
            .iter()
            .map(|&l| self.delays[l.index()].mean_us())
            .filter(|&m| m > 0.0)
            .collect();
        if means.is_empty() {
            0.0
        } else {
            // Explicit left-to-right fold: same result as `.sum()` today, but
            // the pinned association order survives future refactors (D009).
            let mut total = 0.0;
            for m in &means {
                total += m;
            }
            total / means.len() as f64
        }
    }

    /// Project every counter onto a metrics registry under stable dotted
    /// names (`mac.*`, `domino.*`, `faults.*`). The names are part of the
    /// output contract: `domino-run` manifests and trace tooling key on
    /// them, so renames are breaking changes. The registry iterates in
    /// sorted name order, making renders byte-stable across runs.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("mac.delivered_bits", self.delivered_bits.iter().sum());
        reg.counter_add("mac.events", self.events);
        reg.counter_add("mac.drops", self.drops);
        reg.counter_add("mac.retries", self.retries);
        reg.counter_add("mac.ack_timeouts", self.ack_timeouts);
        reg.counter_add("mac.tcp_retransmissions", self.tcp_retransmissions);
        reg.counter_add("mac.slot_starts", self.slot_starts.len() as u64);
        let d = &self.domino;
        reg.counter_add("domino.bursts_sent", d.bursts_sent);
        reg.counter_add("domino.triggers_detected", d.triggers_detected);
        reg.counter_add("domino.triggers_failed", d.triggers_failed);
        reg.counter_add("domino.stale_triggers", d.stale_triggers);
        reg.counter_add("domino.client_transmissions", d.client_transmissions);
        reg.counter_add("domino.watchdog_restarts", d.watchdog_restarts);
        reg.counter_add("domino.kick_offs", d.kick_offs);
        reg.counter_add("domino.actions_shed", d.actions_shed);
        reg.counter_add("domino.actions_dispatched", d.actions_dispatched);
        reg.counter_add("domino.watchdog_storms", d.watchdog_storms);
        for (name, value) in self.faults.classes() {
            reg.counter_add(&format!("faults.{name}"), value);
        }
        reg.gauge_set("mac.aggregate_mbps", self.aggregate_mbps());
        reg
    }

    /// Fig 11 metric: maximum pairwise start misalignment per absolute
    /// slot index, in µs, ordered by slot.
    pub fn misalignment_by_slot(&self) -> Vec<(u64, f64)> {
        use std::collections::BTreeMap;
        let mut groups: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        for r in &self.slot_starts {
            let e = groups.entry(r.slot).or_insert((r.start_ns, r.start_ns));
            e.0 = e.0.min(r.start_ns);
            e.1 = e.1.max(r.start_ns);
        }
        groups
            .into_iter()
            .map(|(slot, (lo, hi))| (slot, (hi - lo) as f64 / 1_000.0))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_phy::units::Dbm;
    use domino_topology::network::{make_node, PhyParams};
    use domino_topology::node::{NodeId, NodeRole, Position};
    use domino_topology::rss::RssMatrix;

    fn tiny_net() -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(2);
        rss.set_symmetric(NodeId(0), NodeId(1), Dbm(-55.0));
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn udp_updown_builds_flows_per_direction() {
        let net = tiny_net();
        let w = Workload::udp_updown(&net, 10e6, 5e6);
        assert_eq!(w.flows.len(), 2);
        let w0 = Workload::udp_updown(&net, 10e6, 0.0);
        assert_eq!(w0.flows.len(), 1, "zero-rate uplink omitted");
    }

    #[test]
    fn stats_throughput_and_fairness() {
        let mut s = RunStats::new(2, 2.0);
        s.delivered_bits[0] = 4_000_000;
        s.delivered_bits[1] = 4_000_000;
        assert!((s.link_mbps(LinkId(0)) - 2.0).abs() < 1e-12);
        assert!((s.aggregate_mbps() - 4.0).abs() < 1e-12);
        assert!((s.fairness(&[LinkId(0), LinkId(1)]) - 1.0).abs() < 1e-12);
        s.delivered_bits[1] = 0;
        assert!((s.fairness(&[LinkId(0), LinkId(1)]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn misalignment_groups_by_slot() {
        let mut s = RunStats::new(1, 1.0);
        let rec = |slot, start_ns| SlotStartRecord { slot, start_ns, link: LinkId(0), fake: false };
        s.slot_starts = vec![rec(0, 1_000), rec(0, 21_000), rec(1, 50_000), rec(1, 52_000)];
        let m = s.misalignment_by_slot();
        assert_eq!(m, vec![(0, 20.0), (1, 2.0)]);
    }

    #[test]
    fn mean_delay_skips_silent_links() {
        let mut s = RunStats::new(2, 1.0);
        s.delays[0].record_us(100.0);
        s.delays[0].record_us(200.0);
        assert!((s.mean_delay_us(&[LinkId(0), LinkId(1)]) - 150.0).abs() < 1e-12);
    }
}
