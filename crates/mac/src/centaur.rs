//! CENTAUR-style hybrid data path (the paper's second baseline).
//!
//! Following the paper's description of CENTAUR (§1, §4.2.3): the central
//! controller schedules *downlink* packets in epochs of conflict-free
//! rounds; APs execute their assignments using carrier sensing plus a
//! *fixed* backoff to align exposed transmissions; the next epoch is
//! released only when every AP reports its batch complete. Uplink traffic
//! is unscheduled DCF and disturbs the downlink schedule at will.
//!
//! Two structural behaviours matter for the reproduction:
//! * **Alignment by shared idle events** — APs that hear each other
//!   observe the same busy→idle transition, wait the same fixed backoff,
//!   and fire simultaneously (exposed-set concurrency, Fig 13a /
//!   Table 3 row 1).
//! * **The batch barrier** — APs that cannot hear each other desynchronize,
//!   the common neighbour keeps deferring, and the whole epoch waits for
//!   the slowest AP while the others idle (Fig 13b / Table 3 row 2,
//!   where CENTAUR drops below DCF).

use crate::dcf::{sync_rto, CsmaCore, Ev};
use crate::flows::{FlowEngine, TCP_TICK};
use crate::timing::{ack_timeout, data_airtime, DIFS, MAC_OVERHEAD_BYTES, RETRY_LIMIT};
use crate::workload::{client_indices, RunStats, Workload};
use domino_faults::{FaultConfig, FaultPlane};
use domino_medium::{Frame, FrameBody, Medium, Reception};
use domino_obs::{FaultKind, TraceEvent, TraceHandle};
use domino_scheduler::RandScheduler;
use domino_sim::engine::{DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW};
use domino_sim::{Engine, SimDuration, SimTime};
use domino_topology::{ConflictGraph, Direction, LinkId, Network, NodeId};
use domino_traffic::Packet;
use domino_wired::{Backbone, WiredLatency};
use std::collections::VecDeque;

/// CENTAUR engine parameters.
#[derive(Clone, Debug)]
pub struct CentaurConfig {
    /// Packet quota per scheduled link per round (rounds amortize the
    /// wired round-trip of the release barrier).
    pub packets_per_round: usize,
    /// The fixed alignment backoff after a sensed idle transition.
    pub fixed_backoff: SimDuration,
    /// Wired backbone latency model.
    pub wired: WiredLatency,
}

impl Default for CentaurConfig {
    fn default() -> CentaurConfig {
        CentaurConfig {
            packets_per_round: 8,
            fixed_backoff: DIFS,
            wired: WiredLatency::default(),
        }
    }
}

/// CENTAUR scheme events.
#[derive(Debug)]
pub enum CentaurEv {
    /// An epoch assignment reaches an AP over the wire.
    EpochArrive {
        /// Destination AP node index.
        ap: u32,
        /// Epoch number.
        epoch: u64,
        /// Link ids to serve, in round order.
        assignments: Vec<LinkId>,
    },
    /// An AP's fixed alignment backoff expires.
    ApArm {
        /// AP node index.
        ap: u32,
        /// Staleness guard.
        gen: u64,
    },
    /// An AP's ACK wait expires.
    ApAckTimeout {
        /// AP node index.
        ap: u32,
        /// Staleness guard.
        gen: u64,
    },
    /// An AP's completion report reaches the controller.
    DoneArrive {
        /// Reporting AP node index.
        ap: u32,
        /// Epoch number.
        epoch: u64,
    },
    /// Idle controller re-checks the queues.
    ControllerCheck,
    /// Fault-plane fallback: the batch barrier has waited too long — a
    /// lost epoch assignment or completion report would otherwise hang
    /// the controller forever. Scheduled only when faults are enabled.
    EpochTimeout {
        /// The epoch this timeout guards.
        epoch: u64,
    },
}

/// How long the controller waits on the batch barrier before abandoning
/// an epoch (fault-plane recovery; never scheduled in fault-free runs).
const EPOCH_TIMEOUT: SimDuration = SimDuration::from_millis(15);

#[derive(Clone, Copy, PartialEq, Debug)]
enum ApPhase {
    /// No assignments (between epochs).
    Idle,
    /// Waiting for the channel to go idle.
    WaitIdle,
    /// Fixed backoff running.
    Armed,
    /// Our data frame is on the air.
    Transmitting,
    /// Waiting for the client's ACK.
    AwaitAck,
}

#[derive(Debug)]
struct ApState {
    assignments: VecDeque<LinkId>,
    epoch: u64,
    phase: ApPhase,
    current: Option<Packet>,
    current_link: Option<LinkId>,
    retries: u32,
    gen: u64,
    arm_expiry: SimTime,
    last_busy: bool,
    /// NAV-adjusted time reference shared by aligned APs: the last sensed
    /// busy→idle transition, pushed past the ACK window when the frame
    /// that ended was a data frame (whose duration field reserves the
    /// channel through its ACK).
    nav_anchor: SimTime,
}

impl ApState {
    fn invalidate(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }
}

/// The CENTAUR engine.
#[derive(Debug)]
pub struct CentaurSim;

impl CentaurSim {
    /// Run `workload` over `net` for `duration_s` seconds.
    pub fn run(net: &Network, workload: &Workload, duration_s: f64, seed: u64) -> RunStats {
        Self::run_with(net, workload, duration_s, seed, CentaurConfig::default())
    }

    /// Run with explicit CENTAUR parameters.
    pub fn run_with(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: CentaurConfig,
    ) -> RunStats {
        Self::run_faulted(net, workload, duration_s, seed, cfg, &FaultConfig::off())
    }

    /// [`CentaurSim::run_with`] under a fault plane: backbone loss/spikes
    /// on the epoch wire, AP crashes at epoch delivery, controller compute
    /// stalls, and the medium-resident churn class. Lost epoch or Done
    /// messages are recovered by a fallback [`EPOCH_TIMEOUT`] on the batch
    /// barrier (scheduled only when faults are enabled, so fault-free runs
    /// stay byte-identical).
    pub fn run_faulted(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: CentaurConfig,
        faults: &FaultConfig,
    ) -> RunStats {
        Self::run_traced(net, workload, duration_s, seed, cfg, faults, TraceHandle::off())
    }

    /// [`CentaurSim::run_faulted`] with a trace sink attached. Tracing is
    /// observation only — it draws no randomness and schedules no events,
    /// so a run with the handle off is byte-identical to one that never
    /// attached a tracer.
    pub fn run_traced(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        cfg: CentaurConfig,
        faults: &FaultConfig,
        tracer: TraceHandle,
    ) -> RunStats {
        let mut engine: Engine<Ev<CentaurEv>> = Engine::new();
        let mut medium = Medium::new(net.clone(), seed);
        let plane = FaultPlane::new(faults, seed, &client_indices(net), duration_s);
        let faults_on = plane.cfg.enabled();
        let mut node_faults = plane.node;
        if faults_on {
            medium.set_faults(plane.medium);
        }
        medium.set_tracer(tracer.clone());
        engine.set_liveness(DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW);
        engine.set_tracer(tracer.clone());
        let mut fe = FlowEngine::new(net, workload, duration_s);
        let mut backbone = Backbone::new(cfg.wired.clone(), seed);
        backbone.set_loss(faults.wired_loss);
        backbone.set_spikes(faults.wired_spike, faults.wired_spike_us);
        backbone.set_tracer(tracer.clone());
        let graph = ConflictGraph::build_for_scheduling(net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut rto_gen: Vec<u64> = vec![0; workload.flows.len()];
        let rate = net.phy().data_rate;

        // Clients contend with DCF; APs follow the schedule.
        let clients: Vec<NodeId> = net
            .nodes()
            .iter()
            .filter(|n| !n.is_ap())
            .map(|n| n.id)
            .collect();
        let mut csma = CsmaCore::new(net, &clients, seed);

        let aps = net.aps();
        let mut ap_states: Vec<Option<ApState>> = (0..net.num_nodes()).map(|_| None).collect();
        for &ap in &aps {
            ap_states[ap.index()] = Some(ApState {
                assignments: VecDeque::new(),
                epoch: 0,
                phase: ApPhase::Idle,
                current: None,
                current_link: None,
                retries: 0,
                gen: 0,
                arm_expiry: SimTime::ZERO,
                last_busy: false,
                nav_anchor: SimTime::ZERO,
            });
        }
        let mut epoch_counter: u64 = 0;
        let mut pending_done: usize = 0;
        // Crash bookkeeping: a dark AP ignores epoch traffic until its
        // downtime elapses; the first epoch it accepts afterwards counts
        // as the recovery.
        let mut ap_dark_until: Vec<SimTime> = vec![SimTime::ZERO; net.num_nodes()];
        let mut ap_crashed: Vec<bool> = vec![false; net.num_nodes()];
        // NAV window of a data frame: SIFS + ACK. An AP that hears a data
        // frame end (but maybe not the ACK) and an AP that hears the ACK
        // end must compute the same aligned fire time.
        let nav_window = crate::timing::SIFS + crate::timing::ack_airtime(rate);
        let fixed = cfg.fixed_backoff;

        for flow in fe.udp_flows() {
            engine.schedule_at(fe.udp_next_arrival(flow), Ev::UdpArrival { flow });
        }
        for flow in fe.tcp_flows() {
            engine.schedule_at(SimTime::ZERO + TCP_TICK, Ev::TcpTick { flow });
        }
        engine.schedule_at(SimTime::ZERO, Ev::Scheme(CentaurEv::ControllerCheck));

        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(duration_s);
        loop {
            let (now, ev) = match engine.pop_until_checked(horizon) {
                Ok(Some(pair)) => pair,
                Ok(None) => break,
                Err(_livelock) => {
                    fe.stats.faults.livelocks += 1;
                    break;
                }
            };
            match ev {
                Ev::UdpArrival { flow } => {
                    let _ = fe.udp_arrive(flow);
                    engine.schedule_at(fe.udp_next_arrival(flow), Ev::UdpArrival { flow });
                    let sender = net.link(fe.flow_link(flow)).sender;
                    csma.try_start(sender.index(), now, &mut engine, &medium, &fe);
                }
                Ev::TcpTick { flow } => {
                    fe.tcp_tick(flow, now);
                    engine.schedule_in(TCP_TICK, Ev::TcpTick { flow });
                    sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                    csma.try_start_all(now, &mut engine, &medium, &fe);
                }
                Ev::TcpRto { flow, gen } => {
                    if rto_gen[flow] == gen {
                        fe.tcp_timer(flow, now);
                        sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                        csma.try_start_all(now, &mut engine, &medium, &fe);
                    }
                }
                Ev::BackoffExpire { node, gen } => {
                    csma.on_backoff_expire(node as usize, gen, now, &mut engine, &mut medium, &mut fe);
                    scan_aps(&mut ap_states, &aps, now, &mut engine, &medium, fixed, SimDuration::ZERO);
                }
                Ev::SendAck { rx, packet } => {
                    csma.send_ack(rx as usize, &packet, now, &mut engine, &mut medium);
                    scan_aps(&mut ap_states, &aps, now, &mut engine, &medium, fixed, SimDuration::ZERO);
                }
                Ev::AckTimeout { node, gen } => {
                    csma.on_ack_timeout(node as usize, gen, now, &mut engine, &medium, &mut fe);
                }
                Ev::TxEnd { tx } => {
                    let receptions = medium.end(tx, now);
                    csma.scan(now, &mut engine, &medium);
                    // A data frame's NAV reserves the channel through its
                    // ACK; an idle transition it causes is anchored past
                    // that window.
                    let nav = match receptions.first().map(|r| &r.frame.body) {
                        Some(FrameBody::Data { .. }) => nav_window,
                        _ => SimDuration::ZERO,
                    };
                    scan_aps(&mut ap_states, &aps, now, &mut engine, &medium, fixed, nav);
                    if let Some(first) = receptions.first() {
                        let src = first.frame.src;
                        match &first.frame.body {
                            FrameBody::Data { .. } => {
                                let scheduled_ap = ap_states[src.index()]
                                    .as_mut()
                                    .filter(|s| s.phase == ApPhase::Transmitting);
                                if let Some(st) = scheduled_ap {
                                    st.phase = ApPhase::AwaitAck;
                                    let gen = st.invalidate();
                                    engine.schedule_at(
                                        now + ack_timeout(rate),
                                        Ev::Scheme(CentaurEv::ApAckTimeout { ap: src.0, gen }),
                                    );
                                } else if ap_states[src.index()].is_none() {
                                    csma.after_data_tx(src.index(), now, &mut engine);
                                }
                                // An AP whose state was torn down mid-air
                                // (fault-plane crash) gets neither path:
                                // its frame still delivers, nobody waits
                                // for the ACK.
                                CsmaCore::handle_data_receptions(
                                    &receptions, now, &mut engine, &medium, &mut fe,
                                );
                                for flow in fe.tcp_flows() {
                                    sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                                }
                            }
                            FrameBody::MacAck { .. } => {
                                for r in &receptions {
                                    if !csma.on_ack_reception(r, now, &mut engine, &medium, &mut fe)
                                        || ap_states[r.rx.index()].is_some()
                                    {
                                        handle_ap_ack(
                                            net, r, now, &mut engine, &medium, &mut fe,
                                            &mut ap_states, &mut backbone, fixed,
                                        );
                                    }
                                }
                            }
                            _ => {}
                        }
                    }
                    csma.try_start_all(now, &mut engine, &medium, &fe);
                }
                Ev::Scheme(CentaurEv::EpochArrive { ap, epoch, assignments }) => {
                    let apx = ap as usize;
                    if now < ap_dark_until[apx] {
                        // The AP is crashed: the assignment dies with it;
                        // the epoch timeout will release the barrier.
                        continue;
                    }
                    if let Some(downtime) = node_faults.crash() {
                        // Crash with state loss: forget everything, go
                        // dark for the downtime.
                        tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                            kind: FaultKind::ApCrash,
                            node: ap,
                        });
                        // lint: allow(D005) controller addresses epochs to APs only; a miss is a wiring bug worth a crash
                        let st = ap_states[apx].as_mut().expect("epoch for non-AP");
                        st.assignments.clear();
                        st.current = None;
                        st.current_link = None;
                        st.retries = 0;
                        st.phase = ApPhase::Idle;
                        st.invalidate();
                        ap_dark_until[apx] = now + downtime;
                        ap_crashed[apx] = true;
                        continue;
                    }
                    if ap_crashed[apx] {
                        ap_crashed[apx] = false;
                        node_faults.recovered();
                        tracer.emit(now.as_nanos(), || TraceEvent::FaultRecover {
                            kind: FaultKind::ApCrash,
                            node: ap,
                        });
                    }
                    // lint: allow(D005) controller addresses epochs to APs only; a miss is a wiring bug worth a crash
                    let st = ap_states[apx].as_mut().expect("epoch for non-AP");
                    st.assignments = assignments.into();
                    st.epoch = epoch;
                    match st.phase {
                        // Mid-flight (only reachable when the epoch
                        // timeout released the barrier early): keep the
                        // current exchange; the completion path advances
                        // into the new assignments.
                        ApPhase::Transmitting | ApPhase::AwaitAck => {}
                        _ if st.assignments.is_empty() => {
                            // Nothing to do: report done immediately.
                            if let Some(m) = backbone.try_send(now, ()) {
                                engine.schedule_at(
                                    m.deliver_at,
                                    Ev::Scheme(CentaurEv::DoneArrive { ap, epoch }),
                                );
                            }
                        }
                        _ => {
                            st.phase = ApPhase::WaitIdle;
                            arm_if_idle(st, ap as usize, now, &mut engine, &medium, fixed);
                        }
                    }
                }
                Ev::Scheme(CentaurEv::ApArm { ap, gen }) => {
                    ap_arm_fired(
                        net, ap as usize, gen, now, &mut engine, &mut medium, &mut fe,
                        &mut ap_states, &mut backbone, rate, fixed,
                    );
                    csma.scan(now, &mut engine, &medium);
                    scan_aps(&mut ap_states, &aps, now, &mut engine, &medium, fixed, SimDuration::ZERO);
                }
                Ev::Scheme(CentaurEv::ApAckTimeout { ap, gen }) => {
                    let needs = {
                        // lint: allow(D005) ack timeouts are armed only for AP indices
                        let st = ap_states[ap as usize].as_mut().unwrap();
                        if st.gen != gen || st.phase != ApPhase::AwaitAck {
                            false
                        } else {
                            fe.stats.ack_timeouts += 1;
                            st.retries += 1;
                            if st.retries > RETRY_LIMIT {
                                fe.stats.drops += 1;
                                st.current = None;
                                st.current_link = None;
                                st.retries = 0;
                            } else {
                                fe.stats.retries += 1;
                            }
                            st.phase = ApPhase::WaitIdle;
                            true
                        }
                    };
                    if needs {
                        advance_ap(
                            net, ap as usize, now, &mut engine, &medium, &mut ap_states,
                            &mut backbone, fixed,
                        );
                    }
                }
                Ev::Scheme(CentaurEv::DoneArrive { ap: _, epoch }) => {
                    if epoch == epoch_counter && pending_done > 0 {
                        pending_done -= 1;
                        if pending_done == 0 {
                            tracer.emit(now.as_nanos(), || TraceEvent::EpochBarrier {
                                epoch: epoch_counter,
                                pending: 0,
                            });
                            engine.schedule_now(Ev::Scheme(CentaurEv::ControllerCheck));
                        }
                    }
                }
                Ev::Scheme(CentaurEv::ControllerCheck) => {
                    if pending_done > 0 {
                        continue; // round still running
                    }
                    // Snapshot downlink queues (instant AP→controller
                    // knowledge over the wire) and pick one maximal
                    // non-conflicting set for this round.
                    let mut backlog: Vec<u32> = net
                        .links()
                        .iter()
                        .map(|l| {
                            if l.direction == Direction::Downlink {
                                fe.queue(l.id).len() as u32
                            } else {
                                0
                            }
                        })
                        .collect();
                    let queue_lens = backlog.clone();
                    let batch = sched.schedule_batch(&graph, &mut backlog, 1);
                    let Some(round) = batch.slots.first() else {
                        engine.schedule_in(
                            SimDuration::from_millis(1),
                            Ev::Scheme(CentaurEv::ControllerCheck),
                        );
                        continue;
                    };
                    epoch_counter += 1;
                    pending_done = aps.len();
                    // A stalled controller computes the round late; every
                    // assignment ships after the stall.
                    let stall = match node_faults.compute_stall() {
                        Some(d) => {
                            // The controller is not a radio node; u32::MAX
                            // marks it.
                            tracer.emit(now.as_nanos(), || TraceEvent::FaultInject {
                                kind: FaultKind::ComputeStall,
                                node: u32::MAX,
                            });
                            d
                        }
                        None => SimDuration::ZERO,
                    };
                    // Each scheduled link gets a quota of up to
                    // `packets_per_round` back-to-back packets; the next
                    // round is released only when every AP reports done
                    // (the CENTAUR batch barrier).
                    for &ap in &aps {
                        let assignments: Vec<LinkId> = round
                            .iter()
                            .copied()
                            .filter(|&l| net.link(l).ap == ap)
                            .flat_map(|l| {
                                let quota = (queue_lens[l.index()] as usize)
                                    .min(cfg.packets_per_round);
                                std::iter::repeat_n(l, quota)
                            })
                            .collect();
                        if let Some(m) = backbone.try_send(now, ()) {
                            engine.schedule_at(
                                m.deliver_at + stall,
                                Ev::Scheme(CentaurEv::EpochArrive {
                                    ap: ap.0,
                                    epoch: epoch_counter,
                                    assignments,
                                }),
                            );
                        }
                    }
                    if faults_on {
                        // Fallback: a lost assignment or Done would hang
                        // the barrier forever without this.
                        engine.schedule_at(
                            now + stall + EPOCH_TIMEOUT,
                            Ev::Scheme(CentaurEv::EpochTimeout { epoch: epoch_counter }),
                        );
                    }
                }
                Ev::Scheme(CentaurEv::EpochTimeout { epoch }) => {
                    if epoch == epoch_counter && pending_done > 0 {
                        // Barrier released by the timeout, not by Done
                        // reports: `pending` records how many were missing.
                        let pending = pending_done as u32;
                        tracer.emit(now.as_nanos(), move || TraceEvent::EpochBarrier {
                            epoch,
                            pending,
                        });
                        pending_done = 0;
                        engine.schedule_now(Ev::Scheme(CentaurEv::ControllerCheck));
                    }
                }
            }
        }

        fe.stats.events = engine.events_processed();
        fe.stats.tcp_retransmissions = fe.tcp_retransmissions();
        fe.stats.faults.merge_node(&node_faults);
        fe.stats.faults.merge_backbone(backbone.messages_lost(), backbone.spikes_injected());
        if let Some(mf) = medium.faults() {
            fe.stats.faults.merge_medium(mf);
        }
        fe.stats
    }
}

/// Arm an AP's fixed backoff if its channel is idle.
fn arm_if_idle(
    st: &mut ApState,
    ap: usize,
    now: SimTime,
    engine: &mut Engine<Ev<CentaurEv>>,
    medium: &Medium,
    fixed_wait: SimDuration,
) {
    if st.phase != ApPhase::WaitIdle {
        return;
    }
    if medium.is_busy(NodeId(ap as u32)) {
        st.last_busy = true;
        return;
    }
    st.phase = ApPhase::Armed;
    // Anchor the fixed wait to the shared NAV reference, not to this AP's
    // private ready time; that is what lets every AP of an exposed set
    // fire at the same instant regardless of which frames each could
    // hear.
    st.arm_expiry = (st.nav_anchor + fixed_wait).max(now);
    let gen = st.invalidate();
    engine.schedule_at(st.arm_expiry, Ev::Scheme(CentaurEv::ApArm { ap: ap as u32, gen }));
}

/// Busy/idle scan for all scheduled APs. `nav_extension` is added to the
/// idle-transition anchor when the frame that just left the air was a
/// data frame (its NAV reserves the ACK window); pass zero for scans
/// triggered by transmission starts.
fn scan_aps(
    ap_states: &mut [Option<ApState>],
    aps: &[NodeId],
    now: SimTime,
    engine: &mut Engine<Ev<CentaurEv>>,
    medium: &Medium,
    fixed_wait: SimDuration,
    nav_extension: SimDuration,
) {
    for &ap in aps {
        let busy = medium.is_busy(ap);
        let st = match ap_states[ap.index()].as_mut() {
            Some(s) => s,
            None => continue,
        };
        if busy == st.last_busy {
            continue;
        }
        st.last_busy = busy;
        if !busy {
            st.nav_anchor = now + nav_extension;
        }
        if busy {
            // Cancel a pending arm — unless the busy-makers started at
            // this very instant and our arm fires now too (simultaneous
            // aligned starts must not suppress each other).
            let simultaneous_start =
                st.arm_expiry == now && !medium.is_busy_before_instant(ap, now);
            if st.phase == ApPhase::Armed && !simultaneous_start {
                st.phase = ApPhase::WaitIdle;
                st.invalidate();
            }
        } else if st.phase == ApPhase::WaitIdle {
            arm_if_idle(st, ap.index(), now, engine, medium, fixed_wait);
        }
    }
}

/// The fixed backoff expired: transmit the next assignment.
#[allow(clippy::too_many_arguments)]
fn ap_arm_fired(
    _net: &Network,
    ap: usize,
    gen: u64,
    now: SimTime,
    engine: &mut Engine<Ev<CentaurEv>>,
    medium: &mut Medium,
    fe: &mut FlowEngine,
    ap_states: &mut [Option<ApState>],
    backbone: &mut Backbone,
    rate: domino_phy::error_model::DataRate,
    fixed_wait: SimDuration,
) {
    let packet = {
        // lint: allow(D005) ApArm events are scheduled for AP indices only
        let st = ap_states[ap].as_mut().unwrap();
        if st.gen != gen || st.phase != ApPhase::Armed {
            return;
        }
        if medium.is_busy_before_instant(NodeId(ap as u32), now) {
            st.phase = ApPhase::WaitIdle;
            return;
        }
        // Claim a packet: retry the current one, or pop the next
        // assignment with data.
        if st.current.is_none() {
            while let Some(link) = st.assignments.pop_front() {
                if let Some(p) = fe.queue_mut(link).pop() {
                    st.current = Some(p);
                    st.current_link = Some(link);
                    break;
                }
                // Stale backlog estimate: skip the empty assignment.
            }
        }
        let Some(packet) = st.current else {
            st.phase = ApPhase::Idle;
            if let Some(m) = backbone.try_send(now, ()) {
                engine.schedule_at(
                    m.deliver_at,
                    Ev::Scheme(CentaurEv::DoneArrive { ap: ap as u32, epoch: st.epoch }),
                );
            }
            return;
        };
        st.phase = ApPhase::Transmitting;
        packet
    };
    let frame = Frame {
        src: NodeId(ap as u32),
        body: FrameBody::Data { packet, fake: false, client_burst: None },
        bits: (packet.payload_bytes + MAC_OVERHEAD_BYTES) * 8,
    };
    let tx = medium.begin(now, frame);
    engine.schedule_at(now + data_airtime(rate, packet.payload_bytes), Ev::TxEnd { tx });
    let _ = fixed_wait;
}

/// An ACK reached an AP in `AwaitAck`: advance to its next assignment.
#[allow(clippy::too_many_arguments)]
fn handle_ap_ack(
    net: &Network,
    r: &Reception,
    now: SimTime,
    engine: &mut Engine<Ev<CentaurEv>>,
    medium: &Medium,
    _fe: &mut FlowEngine,
    ap_states: &mut [Option<ApState>],
    backbone: &mut Backbone,
    fixed_wait: SimDuration,
) {
    let FrameBody::MacAck { packet, .. } = &r.frame.body else {
        return;
    };
    if !r.success {
        return;
    }
    let ap = r.rx.index();
    let needs_advance = match ap_states[ap].as_mut() {
        Some(st)
            if st.phase == ApPhase::AwaitAck
                && st.current.is_some_and(|p| p.id == *packet) =>
        {
            st.current = None;
            st.current_link = None;
            st.retries = 0;
            st.phase = ApPhase::WaitIdle;
            st.invalidate();
            true
        }
        _ => false,
    };
    if needs_advance {
        advance_ap(net, ap, now, engine, medium, ap_states, backbone, fixed_wait);
    }
}

/// Move an AP to its next assignment or report epoch completion.
#[allow(clippy::too_many_arguments)]
fn advance_ap(
    _net: &Network,
    ap: usize,
    now: SimTime,
    engine: &mut Engine<Ev<CentaurEv>>,
    medium: &Medium,
    ap_states: &mut [Option<ApState>],
    backbone: &mut Backbone,
    fixed_wait: SimDuration,
) {
    // lint: allow(D005) callers index this helper with AP node ids only
    let st = ap_states[ap].as_mut().unwrap();
    if st.current.is_none() && st.assignments.is_empty() {
        st.phase = ApPhase::Idle;
        if let Some(m) = backbone.try_send(now, ()) {
            engine.schedule_at(
                m.deliver_at,
                Ev::Scheme(CentaurEv::DoneArrive { ap: ap as u32, epoch: st.epoch }),
            );
        }
    } else {
        st.phase = ApPhase::WaitIdle;
        arm_if_idle(st, ap, now, engine, medium, fixed_wait);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dcf::DcfSim;
    use domino_topology::presets::{fig13a, fig13b, fig1};
    use domino_topology::PhyParams;

    fn downlinks(net: &Network) -> Vec<LinkId> {
        net.links().iter().filter(|l| l.is_downlink()).map(|l| l.id).collect()
    }

    #[test]
    fn exposed_set_runs_concurrently_fig13a() {
        let net = fig13a(PhyParams::default());
        let w = Workload::udp_saturated(&downlinks(&net));
        let centaur = CentaurSim::run(&net, &w, 3.0, 1).aggregate_mbps();
        let dcf = DcfSim::run(&net, &w, 3.0, 1).aggregate_mbps();
        // Table 3 row 1: CENTAUR ≈ 3x DCF on mutually exposed links.
        assert!(
            centaur > dcf * 2.0,
            "CENTAUR {centaur} should crush DCF {dcf} on fig13a"
        );
        assert!(centaur > 20.0, "four concurrent links: {centaur}");
    }

    #[test]
    fn common_exposed_neighbour_breaks_alignment_fig13b() {
        let net = fig13b(PhyParams::default());
        let w = Workload::udp_saturated(&downlinks(&net));
        let centaur = CentaurSim::run(&net, &w, 3.0, 1);
        let dcf = DcfSim::run(&net, &w, 3.0, 1);
        // Table 3 row 2: CENTAUR falls below DCF.
        assert!(
            centaur.aggregate_mbps() < dcf.aggregate_mbps(),
            "CENTAUR {} should underperform DCF {} on fig13b",
            centaur.aggregate_mbps(),
            dcf.aggregate_mbps()
        );
    }

    #[test]
    fn downlink_only_fig1_avoids_hidden_collisions() {
        let net = fig1(PhyParams::default());
        // Only the two hidden downlinks (AP1->C1 and AP3->C3).
        let d = downlinks(&net);
        let w = Workload::udp_saturated(&[d[0], d[2]]);
        let centaur = CentaurSim::run(&net, &w, 3.0, 2);
        let dcf = DcfSim::run(&net, &w, 3.0, 2);
        // The scheduler never puts the conflicting pair in one round, so
        // CENTAUR rescues the hidden-terminal victim (AP3->C3) that DCF
        // starves, and collision timeouts all but disappear.
        let victim = d[2];
        assert!(
            centaur.link_mbps(victim) > dcf.link_mbps(victim) * 3.0,
            "victim under CENTAUR {} vs DCF {}",
            centaur.link_mbps(victim),
            dcf.link_mbps(victim)
        );
        let links = [d[0], d[2]];
        assert!(
            centaur.fairness(&links) > dcf.fairness(&links) + 0.2,
            "fairness {} vs {}",
            centaur.fairness(&links),
            dcf.fairness(&links)
        );
        assert!(centaur.ack_timeouts < dcf.ack_timeouts / 4 + 10);
    }

    #[test]
    fn uplink_disturbs_downlink_schedule() {
        let net = fig1(PhyParams::default());
        let d = downlinks(&net);
        let down_only = Workload::udp_saturated(&[d[0], d[2]]);
        let down = CentaurSim::run(&net, &down_only, 2.0, 3);
        let with_up = Workload::udp_updown(&net, 10e6, 10e6);
        let both = CentaurSim::run(&net, &with_up, 2.0, 3);
        let down_tput_alone = down.link_mbps(d[0]) + down.link_mbps(d[2]);
        let down_tput_disturbed = both.link_mbps(d[0]) + both.link_mbps(d[2]);
        assert!(
            down_tput_disturbed < down_tput_alone,
            "uplink DCF must hurt the schedule: {down_tput_disturbed} vs {down_tput_alone}"
        );
    }

    #[test]
    fn deterministic() {
        let net = fig13a(PhyParams::default());
        let w = Workload::udp_saturated(&downlinks(&net));
        let a = CentaurSim::run(&net, &w, 1.0, 5);
        let b = CentaurSim::run(&net, &w, 1.0, 5);
        assert_eq!(a.delivered_bits, b.delivered_bits);
    }
}
