//! DCF: IEEE 802.11 Distributed Coordination Function.
//!
//! The paper's primary baseline. Full CSMA/CA: DIFS sensing, binary
//! exponential backoff (CW 15…1023) with freeze/resume on channel
//! activity, SIFS-spaced link-layer ACKs, ACK timeouts, retry limit 7.
//! Hidden- and exposed-terminal behaviour emerges from the medium's RSS
//! physics, not from special cases.
//!
//! [`CsmaCore`] is the per-node contention machine; [`DcfSim`] wires it
//! to the traffic engine for a pure-DCF run. CENTAUR reuses `CsmaCore`
//! for its unscheduled uplink.

use crate::flows::{FlowEngine, TCP_TICK};
use crate::timing::{ack_airtime, ack_timeout, data_airtime, CW_MAX, CW_MIN, DIFS, RETRY_LIMIT, SIFS, SLOT_TIME};
use crate::workload::{client_indices, RunStats, Workload};
use domino_faults::{FaultConfig, FaultPlane};
use domino_medium::{Frame, FrameBody, Medium, Reception, TxId};
use domino_phy::error_model::DataRate;
use domino_sim::engine::{DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW};
use domino_sim::rng::streams;
use domino_sim::{Engine, SimRng, SimTime};
use domino_topology::{LinkId, Network, NodeId};
use domino_traffic::{Packet, PacketId};

/// Events of a CSMA-based run. `X` is the scheme extension (unit for pure
/// DCF; CENTAUR adds epoch events).
#[derive(Debug)]
pub enum Ev<X> {
    /// A UDP flow's next packet is due.
    UdpArrival {
        /// Flow index.
        flow: usize,
    },
    /// Periodic TCP application tick.
    TcpTick {
        /// Flow index.
        flow: usize,
    },
    /// TCP retransmission-timer check.
    TcpRto {
        /// Flow index.
        flow: usize,
        /// Staleness guard.
        gen: u64,
    },
    /// A transmission leaves the air.
    TxEnd {
        /// Medium handle.
        tx: TxId,
    },
    /// A node's backoff may have reached zero.
    BackoffExpire {
        /// Node index.
        node: u32,
        /// Staleness guard.
        gen: u64,
    },
    /// A data sender's ACK wait expires.
    AckTimeout {
        /// Node index.
        node: u32,
        /// Staleness guard.
        gen: u64,
    },
    /// A receiver's SIFS elapsed; transmit the ACK.
    SendAck {
        /// Acknowledging node.
        rx: u32,
        /// The packet being acknowledged.
        packet: Packet,
    },
    /// Scheme-specific event.
    Scheme(X),
}

#[derive(Clone, Debug, PartialEq)]
enum NodeState {
    /// Nothing to do or waiting for a packet.
    Idle,
    /// Backoff in progress; `anchor` is when the current countdown
    /// started (None = frozen by a busy channel).
    Counting { anchor: Option<SimTime> },
    /// Our data frame is on the air.
    Transmitting,
    /// Data sent; waiting for the ACK.
    AwaitAck,
}

#[derive(Debug)]
struct CsmaNode {
    out_links: Vec<LinkId>,
    cw: u32,
    retries: u32,
    remaining_slots: Option<u32>,
    state: NodeState,
    current: Option<Packet>,
    gen: u64,
}

impl CsmaNode {
    fn invalidate(&mut self) -> u64 {
        self.gen += 1;
        self.gen
    }
}

/// The CSMA/CA contention machinery for a set of contending nodes.
#[derive(Debug)]
pub struct CsmaCore {
    nodes: Vec<CsmaNode>,
    contender: Vec<bool>,
    last_busy: Vec<bool>,
    rng: SimRng,
    rate: DataRate,
}

impl CsmaCore {
    /// Build the core; `contenders` are the nodes that run CSMA (all
    /// nodes for DCF; only clients for CENTAUR).
    pub fn new(net: &Network, contenders: &[NodeId], seed: u64) -> CsmaCore {
        let nodes = (0..net.num_nodes() as u32)
            .map(|n| CsmaNode {
                out_links: net.links_from(NodeId(n)),
                cw: CW_MIN,
                retries: 0,
                remaining_slots: None,
                state: NodeState::Idle,
                current: None,
                gen: 0,
            })
            .collect();
        let mut contender = vec![false; net.num_nodes()];
        for c in contenders {
            contender[c.index()] = true;
        }
        CsmaCore {
            nodes,
            contender,
            last_busy: vec![false; net.num_nodes()],
            rng: SimRng::derive(seed, streams::DCF_BACKOFF),
            rate: net.phy().data_rate,
        }
    }

    /// Is this node's pending data frame `packet`?
    fn head_packet(&self, node: usize, fe: &FlowEngine) -> Option<Packet> {
        if let Some(p) = self.nodes[node].current {
            return Some(p);
        }
        // Earliest-queued head across this node's outgoing links (one
        // device queue in spirit).
        self.nodes[node]
            .out_links
            .iter()
            .filter_map(|&l| fe.queue(l).peek().copied())
            .min_by_key(|p| p.created_at)
    }

    /// Kick a node: if it is idle and has traffic, enter backoff.
    pub fn try_start<X>(
        &mut self,
        node: usize,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &Medium,
        fe: &FlowEngine,
    ) {
        if !self.contender[node] || self.nodes[node].state != NodeState::Idle {
            return;
        }
        if self.head_packet(node, fe).is_none() {
            return;
        }
        if self.nodes[node].remaining_slots.is_none() {
            let cw = self.nodes[node].cw;
            self.nodes[node].remaining_slots = Some(self.rng.below(u64::from(cw) + 1) as u32);
        }
        self.nodes[node].state = NodeState::Counting { anchor: None };
        self.resume(node, now, engine, medium);
    }

    fn resume<X>(
        &mut self,
        node: usize,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &Medium,
    ) {
        if medium.is_busy(NodeId(node as u32)) {
            return; // stay frozen; the busy→idle scan resumes us
        }
        let remaining = self.nodes[node].remaining_slots.unwrap_or(0);
        self.nodes[node].state = NodeState::Counting { anchor: Some(now) };
        let gen = self.nodes[node].invalidate();
        let expire = now + DIFS + SLOT_TIME * u64::from(remaining);
        engine.schedule_at(expire, Ev::BackoffExpire { node: node as u32, gen });
    }

    fn freeze(&mut self, node: usize, now: SimTime) {
        if let NodeState::Counting { anchor: Some(anchor) } = self.nodes[node].state {
            let elapsed = now.saturating_since(anchor);
            let slots_done = elapsed
                .checked_sub(DIFS)
                .map(|d| (d.as_nanos() / SLOT_TIME.as_nanos()) as u32)
                .unwrap_or(0);
            let rem = self.nodes[node].remaining_slots.unwrap_or(0);
            self.nodes[node].remaining_slots = Some(rem.saturating_sub(slots_done));
            self.nodes[node].state = NodeState::Counting { anchor: None };
            self.nodes[node].invalidate();
        }
    }

    /// Re-scan channel state after any medium change, freezing or
    /// resuming counters.
    pub fn scan<X>(&mut self, now: SimTime, engine: &mut Engine<Ev<X>>, medium: &Medium) {
        for node in 0..self.nodes.len() {
            if !self.contender[node] {
                continue;
            }
            let busy = medium.is_busy(NodeId(node as u32));
            if busy == self.last_busy[node] {
                continue;
            }
            self.last_busy[node] = busy;
            if busy {
                self.freeze(node, now);
            } else if matches!(self.nodes[node].state, NodeState::Counting { anchor: None }) {
                self.resume(node, now, engine, medium);
            }
        }
    }

    /// A backoff timer fired: transmit if still valid.
    pub fn on_backoff_expire<X>(
        &mut self,
        node: usize,
        gen: u64,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &mut Medium,
        fe: &mut FlowEngine,
    ) {
        if self.nodes[node].gen != gen
            || !matches!(self.nodes[node].state, NodeState::Counting { anchor: Some(_) })
        {
            return;
        }
        // A transmission that started at this very instant is invisible
        // to carrier sense (sensing is causal): we transmit into it —
        // that is exactly how same-slot DCF collisions happen. Busy from
        // *earlier* transmissions means our freeze lost a race; re-wait.
        if medium.is_busy_before_instant(NodeId(node as u32), now) {
            self.freeze(node, now);
            return;
        }
        // Claim the head packet (pop it from its queue on first attempt).
        let packet = match self.nodes[node].current {
            Some(p) => p,
            None => {
                // lint: allow(D005) backoff countdown only runs while a head packet is queued
                let head = self.head_packet(node, fe).expect("counting without a packet");
                let popped = fe
                    .queue_mut(head.link)
                    .pop()
                    .expect("head packet vanished"); // lint: allow(D005) head_packet just returned it; a miss is queue corruption
                debug_assert_eq!(popped.id, head.id);
                self.nodes[node].current = Some(popped);
                popped
            }
        };
        self.nodes[node].remaining_slots = None;
        self.nodes[node].state = NodeState::Transmitting;
        let frame = Frame {
            src: NodeId(node as u32),
            body: FrameBody::Data { packet, fake: false, client_burst: None },
            bits: (packet.payload_bytes + crate::timing::MAC_OVERHEAD_BYTES) * 8,
        };
        let airtime = data_airtime(self.rate, packet.payload_bytes);
        let tx = medium.begin(now, frame);
        engine.schedule_at(now + airtime, Ev::TxEnd { tx });
        self.scan(now, engine, medium);
    }

    /// Shared handling of a finished *data* frame sent by a CSMA node:
    /// arm the sender's ACK timeout. (Reception side is in
    /// [`CsmaCore::handle_data_receptions`].)
    pub fn after_data_tx<X>(
        &mut self,
        sender: usize,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
    ) {
        debug_assert_eq!(self.nodes[sender].state, NodeState::Transmitting);
        self.nodes[sender].state = NodeState::AwaitAck;
        let gen = self.nodes[sender].invalidate();
        engine.schedule_at(
            now + ack_timeout(self.rate),
            Ev::AckTimeout { node: sender as u32, gen },
        );
    }

    /// Deliver data receptions and schedule ACKs (used for any data
    /// frame, whether a CSMA node or a scheduled AP sent it).
    pub fn handle_data_receptions<X>(
        receptions: &[Reception],
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &Medium,
        fe: &mut FlowEngine,
    ) {
        for r in receptions {
            if !r.success {
                continue;
            }
            if let FrameBody::Data { packet, fake: false, .. } = &r.frame.body {
                fe.deliver(packet, now);
                if !medium.is_transmitting(r.rx) {
                    engine.schedule_at(
                        now + SIFS,
                        Ev::SendAck { rx: r.rx.0, packet: *packet },
                    );
                }
            }
        }
    }

    /// Transmit a MAC ACK (fired SIFS after a successful data
    /// reception).
    pub fn send_ack<X>(
        &mut self,
        rx: usize,
        packet: &Packet,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &mut Medium,
    ) {
        if medium.is_transmitting(NodeId(rx as u32)) {
            return; // cannot ack while transmitting
        }
        let frame = Frame {
            src: NodeId(rx as u32),
            body: FrameBody::MacAck { packet: packet.id, link: packet.link, client_burst: None },
            bits: crate::timing::ACK_BYTES * 8,
        };
        let tx = medium.begin(now, frame);
        engine.schedule_at(now + ack_airtime(self.rate), Ev::TxEnd { tx });
        self.scan(now, engine, medium);
    }

    /// An ACK reception reached a CSMA sender: resolve its pending frame.
    /// Returns true if this reception was consumed.
    pub fn on_ack_reception<X>(
        &mut self,
        r: &Reception,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &Medium,
        fe: &mut FlowEngine,
    ) -> bool {
        let FrameBody::MacAck { packet, .. } = &r.frame.body else {
            return false;
        };
        let node = r.rx.index();
        if !self.contender[node] {
            return false;
        }
        if !r.success {
            return true; // lost ACK; the timeout will handle it
        }
        match self.nodes[node].current {
            Some(p) if p.id == *packet && self.nodes[node].state == NodeState::AwaitAck => {
                self.nodes[node].current = None;
                self.nodes[node].cw = CW_MIN;
                self.nodes[node].retries = 0;
                self.nodes[node].remaining_slots = None;
                self.nodes[node].state = NodeState::Idle;
                self.nodes[node].invalidate(); // cancels the pending timeout
                self.try_start(node, now, engine, medium, fe);
                true
            }
            _ => true,
        }
    }

    /// The ACK wait expired: retry or drop.
    pub fn on_ack_timeout<X>(
        &mut self,
        node: usize,
        gen: u64,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &Medium,
        fe: &mut FlowEngine,
    ) {
        if self.nodes[node].gen != gen || self.nodes[node].state != NodeState::AwaitAck {
            return;
        }
        fe.stats.ack_timeouts += 1;
        self.nodes[node].retries += 1;
        if self.nodes[node].retries > RETRY_LIMIT {
            fe.stats.drops += 1;
            self.nodes[node].current = None;
            self.nodes[node].cw = CW_MIN;
            self.nodes[node].retries = 0;
        } else {
            fe.stats.retries += 1;
            self.nodes[node].cw = (self.nodes[node].cw * 2 + 1).min(CW_MAX);
        }
        self.nodes[node].remaining_slots = None;
        self.nodes[node].state = NodeState::Idle;
        self.nodes[node].invalidate();
        self.try_start(node, now, engine, medium, fe);
    }

    /// Kick every contender (after deliveries released new packets).
    pub fn try_start_all<X>(
        &mut self,
        now: SimTime,
        engine: &mut Engine<Ev<X>>,
        medium: &Medium,
        fe: &FlowEngine,
    ) {
        for node in 0..self.nodes.len() {
            self.try_start(node, now, engine, medium, fe);
        }
    }

    /// Whether `node`'s data frame is on the air (used by scheme engines
    /// routing TxEnd events).
    pub fn is_node_transmitting_data(&self, node: usize) -> bool {
        self.nodes[node].state == NodeState::Transmitting
    }
}

/// A pure-DCF simulation run.
#[derive(Debug)]
pub struct DcfSim;

impl DcfSim {
    /// Run `workload` over `net` for `duration_s` seconds of simulated
    /// time.
    pub fn run(net: &Network, workload: &Workload, duration_s: f64, seed: u64) -> RunStats {
        DcfSim::run_faulted(net, workload, duration_s, seed, &FaultConfig::off())
    }

    /// [`DcfSim::run`] under a fault plane. With `faults` all off this is
    /// byte-identical to the plain run (the plane makes zero draws and the
    /// medium hook is never installed).
    pub fn run_faulted(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        faults: &FaultConfig,
    ) -> RunStats {
        Self::run_traced(net, workload, duration_s, seed, faults, domino_obs::TraceHandle::off())
    }

    /// [`DcfSim::run_faulted`] with a trace sink attached. DCF has no
    /// scheduler, so only the engine's liveness events and the medium's
    /// fault injections appear in its trace. Tracing is observation only —
    /// with the handle off this is byte-identical to the untraced run.
    pub fn run_traced(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        faults: &FaultConfig,
        tracer: domino_obs::TraceHandle,
    ) -> RunStats {
        let mut engine: Engine<Ev<()>> = Engine::new();
        let mut medium = Medium::new(net.clone(), seed);
        let plane = FaultPlane::new(faults, seed, &client_indices(net), duration_s);
        if plane.cfg.enabled() {
            medium.set_faults(plane.medium);
        }
        medium.set_tracer(tracer.clone());
        engine.set_liveness(DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW);
        engine.set_tracer(tracer);
        let mut fe = FlowEngine::new(net, workload, duration_s);
        let contenders: Vec<NodeId> = (0..net.num_nodes() as u32).map(NodeId).collect();
        let mut csma = CsmaCore::new(net, &contenders, seed);
        let mut rto_gen: Vec<u64> = vec![0; workload.flows.len()];

        for flow in fe.udp_flows() {
            engine.schedule_at(fe.udp_next_arrival(flow), Ev::UdpArrival { flow });
        }
        for flow in fe.tcp_flows() {
            engine.schedule_at(SimTime::ZERO + TCP_TICK, Ev::TcpTick { flow });
        }

        let horizon = SimTime::ZERO + domino_sim::SimDuration::from_secs_f64(duration_s);
        loop {
            let (now, ev) = match engine.pop_until_checked(horizon) {
                Ok(Some(pair)) => pair,
                Ok(None) => break,
                Err(_livelock) => {
                    fe.stats.faults.livelocks += 1;
                    break;
                }
            };
            match ev {
                Ev::UdpArrival { flow } => {
                    let _ = fe.udp_arrive(flow);
                    engine.schedule_at(fe.udp_next_arrival(flow), Ev::UdpArrival { flow });
                    let sender = sender_of_flow(net, &fe, flow);
                    csma.try_start(sender, now, &mut engine, &medium, &fe);
                }
                Ev::TcpTick { flow } => {
                    fe.tcp_tick(flow, now);
                    engine.schedule_in(TCP_TICK, Ev::TcpTick { flow });
                    sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                    csma.try_start_all(now, &mut engine, &medium, &fe);
                }
                Ev::TcpRto { flow, gen } => {
                    if rto_gen[flow] == gen {
                        fe.tcp_timer(flow, now);
                        sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                        csma.try_start_all(now, &mut engine, &medium, &fe);
                    }
                }
                Ev::BackoffExpire { node, gen } => {
                    csma.on_backoff_expire(node as usize, gen, now, &mut engine, &mut medium, &mut fe);
                }
                Ev::TxEnd { tx } => {
                    let receptions = medium.end(tx, now);
                    csma.scan(now, &mut engine, &medium);
                    if let Some(first) = receptions.first() {
                        match &first.frame.body {
                            FrameBody::Data { .. } => {
                                csma.after_data_tx(first.frame.src.index(), now, &mut engine);
                                CsmaCore::handle_data_receptions(
                                    &receptions, now, &mut engine, &medium, &mut fe,
                                );
                                for flow in fe.tcp_flows() {
                                    sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                                }
                            }
                            FrameBody::MacAck { .. } => {
                                for r in &receptions {
                                    csma.on_ack_reception(r, now, &mut engine, &medium, &mut fe);
                                }
                            }
                            _ => {}
                        }
                    }
                    csma.try_start_all(now, &mut engine, &medium, &fe);
                }
                Ev::SendAck { rx, packet } => {
                    csma.send_ack(rx as usize, &packet, now, &mut engine, &mut medium);
                }
                Ev::AckTimeout { node, gen } => {
                    csma.on_ack_timeout(node as usize, gen, now, &mut engine, &medium, &mut fe);
                }
                Ev::Scheme(()) => {}
            }
        }

        fe.stats.events = engine.events_processed();
        fe.stats.tcp_retransmissions = fe.tcp_retransmissions();
        if let Some(mf) = medium.faults() {
            fe.stats.faults.merge_medium(mf);
        }
        fe.stats
    }
}

/// The sender node of a flow's link.
fn sender_of_flow(net: &Network, fe: &FlowEngine, flow: usize) -> usize {
    net.link(fe.flow_link(flow)).sender.index()
}

/// Re-arm a TCP flow's RTO event after its deadline may have moved.
pub(crate) fn sync_rto<X>(
    engine: &mut Engine<Ev<X>>,
    fe: &FlowEngine,
    rto_gen: &mut [u64],
    flow: usize,
    now: SimTime,
) {
    rto_gen[flow] += 1;
    if let Some(deadline) = fe.tcp_rto_deadline(flow) {
        let at = deadline.max(now);
        engine.schedule_at(at, Ev::TcpRto { flow, gen: rto_gen[flow] });
    }
}

#[allow(unused)]
fn _suppress(_: PacketId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{FlowKind, FlowSpec};
    use domino_phy::units::Dbm;
    use domino_topology::network::{make_node, PhyParams};
    use domino_topology::node::{NodeRole, Position};
    use domino_topology::presets::fig1;
    use domino_topology::rss::RssMatrix;

    fn one_pair() -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(2);
        rss.set_symmetric(domino_topology::NodeId(0), domino_topology::NodeId(1), Dbm(-55.0));
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn saturated_single_pair_throughput() {
        let net = one_pair();
        let w = Workload::udp_saturated(&[LinkId(0)]);
        let stats = DcfSim::run(&net, &w, 2.0, 1);
        let mbps = stats.aggregate_mbps();
        // 512 B at 12 Mb/s with DIFS + mean backoff + SIFS + ACK
        // overhead lands around 7-8 Mb/s.
        assert!((6.0..9.5).contains(&mbps), "DCF single-pair: {mbps} Mb/s");
        assert!(stats.ack_timeouts == 0, "clean channel has no timeouts");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = one_pair();
        let w = Workload::udp_updown(&net, 3e6, 1e6);
        let a = DcfSim::run(&net, &w, 1.0, 7);
        let b = DcfSim::run(&net, &w, 1.0, 7);
        assert_eq!(a.delivered_bits, b.delivered_bits);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn light_load_is_served_fully() {
        let net = one_pair();
        let w = Workload::udp_updown(&net, 1e6, 0.5e6);
        let stats = DcfSim::run(&net, &w, 2.0, 3);
        let down = stats.link_mbps(LinkId(0));
        let up = stats.link_mbps(LinkId(1));
        assert!((down - 1.0).abs() < 0.08, "downlink served: {down}");
        assert!((up - 0.5).abs() < 0.05, "uplink served: {up}");
        // Light load means small queues and small delays.
        assert!(stats.mean_delay_us(&[LinkId(0)]) < 5_000.0);
    }

    #[test]
    fn hidden_terminal_starves_victim() {
        let net = fig1(PhyParams::default());
        // Saturate the paper's three flows: AP1->C1 (link 0), C2->AP2
        // (uplink of pair 2), AP3->C3 (downlink of pair 3).
        let l_ap1 = LinkId(0);
        let l_c2 = net.links().iter().find(|l| !l.is_downlink() && l.ap == domino_topology::NodeId(2)).unwrap().id;
        let l_ap3 = net.links().iter().find(|l| l.is_downlink() && l.sender == domino_topology::NodeId(4)).unwrap().id;
        let w = Workload::udp_saturated(&[l_ap1, l_c2, l_ap3]);
        let stats = DcfSim::run(&net, &w, 3.0, 5);
        let t1 = stats.link_mbps(l_ap1);
        let t3 = stats.link_mbps(l_ap3);
        // AP3's downlink is the hidden-terminal victim: far below AP1.
        assert!(t3 < t1 * 0.5, "victim {t3} vs aggressor {t1}");
        assert!(stats.ack_timeouts > 100, "collisions must show up as timeouts");
    }

    #[test]
    fn exposed_terminal_serializes_under_dcf() {
        let net = fig1(PhyParams::default());
        let l_ap1 = LinkId(0);
        let l_c2 = net.links().iter().find(|l| !l.is_downlink() && l.ap == domino_topology::NodeId(2)).unwrap().id;
        let w = Workload::udp_saturated(&[l_ap1, l_c2]);
        let stats = DcfSim::run(&net, &w, 2.0, 9);
        let total = stats.link_mbps(l_ap1) + stats.link_mbps(l_c2);
        // The two links are exposed (could run concurrently at ~8 each)
        // but DCF serializes them: aggregate stays near single-link
        // capacity.
        assert!(total < 10.0, "DCF should serialize exposed links: {total}");
        assert!(total > 5.0, "but they do share the channel: {total}");
    }

    #[test]
    fn tcp_flow_progresses() {
        let net = one_pair();
        let w = Workload {
            flows: vec![FlowSpec {
                link: LinkId(0),
                kind: FlowKind::Tcp { cfg: domino_traffic::TcpConfig::default() },
            }],
            packet_bytes: 512,
        };
        let stats = DcfSim::run(&net, &w, 2.0, 11);
        let mbps = stats.link_mbps(LinkId(0));
        assert!(mbps > 3.0, "TCP over clean DCF: {mbps} Mb/s");
    }
}
