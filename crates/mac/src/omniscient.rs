//! The omniscient centralized scheduler (the Fig 2 upper bound).
//!
//! An idealized scheme: the controller sees every queue instantaneously,
//! all nodes share a perfect clock, and control traffic is free. Each
//! slot it greedily packs a maximal set of backlogged, non-conflicting
//! links (the same RAND policy DOMINO uses) and everyone transmits in
//! perfect synchrony. This is what strict scheduling *would* achieve if
//! microsecond synchronization were free — the bar DOMINO is measured
//! against.

use crate::dcf::{sync_rto, Ev};
use crate::flows::{FlowEngine, TCP_TICK};
use crate::timing::{ack_airtime, data_airtime, SIFS};
use crate::workload::{client_indices, RunStats, Workload};
use domino_faults::{FaultConfig, FaultPlane};
use domino_medium::{Frame, FrameBody, Medium};
use domino_obs::{TraceEvent, TraceHandle};
use domino_scheduler::RandScheduler;
use domino_sim::engine::{DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW};
use domino_sim::{Engine, SimDuration, SimTime};
use domino_topology::{ConflictGraph, LinkId, Network};

/// Scheme events for the omniscient engine.
#[derive(Debug)]
pub enum OmniEv {
    /// A synchronized slot begins.
    SlotStart,
}

/// The omniscient engine.
#[derive(Debug)]
pub struct OmniscientSim;

impl OmniscientSim {
    /// Run `workload` over `net` for `duration_s` seconds.
    pub fn run(net: &Network, workload: &Workload, duration_s: f64, seed: u64) -> RunStats {
        OmniscientSim::run_faulted(net, workload, duration_s, seed, &FaultConfig::off())
    }

    /// [`OmniscientSim::run`] under a fault plane. Only the medium-resident
    /// classes (churn dark intervals; fades are moot without signature
    /// bursts) touch this idealized scheme — its control plane is free and
    /// lossless by definition.
    pub fn run_faulted(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        faults: &FaultConfig,
    ) -> RunStats {
        Self::run_traced(net, workload, duration_s, seed, faults, TraceHandle::off())
    }

    /// [`OmniscientSim::run_faulted`] with a trace sink attached. Tracing
    /// is observation only — it draws no randomness and schedules no
    /// events, so a run with the handle off is byte-identical to one that
    /// never attached a tracer.
    pub fn run_traced(
        net: &Network,
        workload: &Workload,
        duration_s: f64,
        seed: u64,
        faults: &FaultConfig,
        tracer: TraceHandle,
    ) -> RunStats {
        let mut engine: Engine<Ev<OmniEv>> = Engine::new();
        let mut medium = Medium::new(net.clone(), seed);
        let plane = FaultPlane::new(faults, seed, &client_indices(net), duration_s);
        if plane.cfg.enabled() {
            medium.set_faults(plane.medium);
        }
        medium.set_tracer(tracer.clone());
        engine.set_liveness(DEFAULT_EVENT_BUDGET, DEFAULT_LIVENESS_WINDOW);
        engine.set_tracer(tracer.clone());
        let mut fe = FlowEngine::new(net, workload, duration_s);
        let graph = ConflictGraph::build_for_scheduling(net);
        let mut sched = RandScheduler::new(net.links().len());
        let mut rto_gen: Vec<u64> = vec![0; workload.flows.len()];
        let rate = net.phy().data_rate;

        // Fixed slot: data + SIFS + ack + SIFS turnaround.
        let slot = data_airtime(rate, workload.packet_bytes) + SIFS + ack_airtime(rate) + SIFS;
        // Synchronized-slot index, for the trace only.
        let mut slot_idx: u64 = 0;

        for flow in fe.udp_flows() {
            engine.schedule_at(fe.udp_next_arrival(flow), Ev::UdpArrival { flow });
        }
        for flow in fe.tcp_flows() {
            engine.schedule_at(SimTime::ZERO + TCP_TICK, Ev::TcpTick { flow });
        }
        engine.schedule_at(SimTime::ZERO, Ev::Scheme(OmniEv::SlotStart));

        let horizon = SimTime::ZERO + SimDuration::from_secs_f64(duration_s);
        loop {
            let (now, ev) = match engine.pop_until_checked(horizon) {
                Ok(Some(pair)) => pair,
                Ok(None) => break,
                Err(_livelock) => {
                    fe.stats.faults.livelocks += 1;
                    break;
                }
            };
            match ev {
                Ev::UdpArrival { flow } => {
                    let _ = fe.udp_arrive(flow);
                    engine.schedule_at(fe.udp_next_arrival(flow), Ev::UdpArrival { flow });
                }
                Ev::TcpTick { flow } => {
                    fe.tcp_tick(flow, now);
                    engine.schedule_in(TCP_TICK, Ev::TcpTick { flow });
                    sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                }
                Ev::TcpRto { flow, gen } => {
                    if rto_gen[flow] == gen {
                        fe.tcp_timer(flow, now);
                        sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                    }
                }
                Ev::Scheme(OmniEv::SlotStart) => {
                    // Perfect knowledge: one maximal set from true queue
                    // lengths.
                    let mut backlog: Vec<u32> = (0..net.links().len())
                        .map(|l| fe.queue(LinkId(l as u32)).len() as u32)
                        .collect();
                    let batch = sched.schedule_batch(&graph, &mut backlog, 1);
                    slot_idx += 1;
                    if let Some(links) = batch.slots.first() {
                        let mut txs = Vec::new();
                        for &l in links {
                            tracer.emit(now.as_nanos(), || TraceEvent::SlotStart {
                                slot: slot_idx,
                                link: l.0,
                                fake: false,
                            });
                            // lint: allow(D005) the scheduler only emits links whose live backlog was non-zero
                            let packet = fe.queue_mut(l).pop().expect("empty queue");
                            let airtime = data_airtime(rate, packet.payload_bytes);
                            let frame = Frame {
                                src: net.link(l).sender,
                                body: FrameBody::Data { packet, fake: false, client_burst: None },
                                bits: (packet.payload_bytes + crate::timing::MAC_OVERHEAD_BYTES) * 8,
                            };
                            let tx = medium.begin(now, frame);
                            txs.push((tx, now + airtime));
                        }
                        for (tx, end) in txs {
                            engine.schedule_at(end, Ev::TxEnd { tx });
                        }
                    }
                    engine.schedule_at(now + slot, Ev::Scheme(OmniEv::SlotStart));
                }
                Ev::TxEnd { tx } => {
                    let receptions = medium.end(tx, now);
                    for r in &receptions {
                        if let FrameBody::Data { packet, .. } = &r.frame.body {
                            let l = *net.link(packet.link);
                            let intended = if l.is_downlink() { l.client() } else { l.ap };
                            if r.rx == intended {
                                tracer.emit(now.as_nanos(), || TraceEvent::SlotEnd {
                                    link: packet.link.0,
                                    delivered: r.success,
                                });
                            }
                            if r.success {
                                fe.deliver(packet, now);
                            } else {
                                // The omniscient controller observes the
                                // loss and retries next slot.
                                fe.stats.retries += 1;
                                if !fe.queue_mut(packet.link).push_front(*packet) {
                                    fe.stats.drops += 1;
                                }
                            }
                        }
                    }
                    for flow in fe.tcp_flows() {
                        sync_rto(&mut engine, &fe, &mut rto_gen, flow, now);
                    }
                }
                Ev::BackoffExpire { .. } | Ev::AckTimeout { .. } | Ev::SendAck { .. } => {
                    // lint: allow(D005) this engine never schedules CSMA events; reaching here is a dispatch bug
                    unreachable!("no CSMA events in the omniscient engine")
                }
            }
        }

        fe.stats.events = engine.events_processed();
        fe.stats.tcp_retransmissions = fe.tcp_retransmissions();
        if let Some(mf) = medium.faults() {
            fe.stats.faults.merge_medium(mf);
        }
        fe.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use domino_topology::presets::fig1;
    use domino_topology::{NodeId, PhyParams};

    pub(crate) fn fig1_links(net: &Network) -> (LinkId, LinkId, LinkId) {
        let l_ap1 = net
            .links()
            .iter()
            .find(|l| l.is_downlink() && l.sender == NodeId(0))
            .unwrap()
            .id;
        let l_c2 = net
            .links()
            .iter()
            .find(|l| !l.is_downlink() && l.ap == NodeId(2))
            .unwrap()
            .id;
        let l_ap3 = net
            .links()
            .iter()
            .find(|l| l.is_downlink() && l.sender == NodeId(4))
            .unwrap()
            .id;
        (l_ap1, l_c2, l_ap3)
    }

    #[test]
    fn fig2_shape_exposed_link_runs_continuously() {
        let net = fig1(PhyParams::default());
        let (l_ap1, l_c2, l_ap3) = fig1_links(&net);
        let w = Workload::udp_saturated(&[l_ap1, l_c2, l_ap3]);
        let stats = OmniscientSim::run(&net, &w, 3.0, 1);
        let (t1, t2, t3) = (
            stats.link_mbps(l_ap1),
            stats.link_mbps(l_c2),
            stats.link_mbps(l_ap3),
        );
        // The exposed uplink rides along every slot; the two hidden
        // downlinks alternate and each get about half of C2's rate.
        assert!(t2 > 7.0, "C2->AP2 should be near full rate: {t2}");
        assert!((t1 - t3).abs() < 1.5, "hidden pair shares fairly: {t1} vs {t3}");
        assert!(t1 > 3.0 && t3 > 3.0, "no starvation: {t1}, {t3}");
        assert!(stats.aggregate_mbps() > 14.0, "aggregate: {}", stats.aggregate_mbps());
    }

    #[test]
    fn omniscient_beats_dcf_on_fig1() {
        use crate::dcf::DcfSim;
        let net = fig1(PhyParams::default());
        let (l_ap1, l_c2, l_ap3) = fig1_links(&net);
        let w = Workload::udp_saturated(&[l_ap1, l_c2, l_ap3]);
        let omni = OmniscientSim::run(&net, &w, 3.0, 1).aggregate_mbps();
        let dcf = DcfSim::run(&net, &w, 3.0, 1).aggregate_mbps();
        // The paper's Fig 2: the omniscient scheme is ~76% above DCF.
        assert!(omni > dcf * 1.4, "omniscient {omni} should clearly beat DCF {dcf}");
    }

    #[test]
    fn deterministic() {
        let net = fig1(PhyParams::default());
        let (l_ap1, l_c2, _) = fig1_links(&net);
        let w = Workload::udp_saturated(&[l_ap1, l_c2]);
        let a = OmniscientSim::run(&net, &w, 1.0, 3);
        let b = OmniscientSim::run(&net, &w, 1.0, 3);
        assert_eq!(a.delivered_bits, b.delivered_bits);
    }
}
