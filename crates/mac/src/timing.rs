//! 802.11g timing constants and DOMINO slot geometry.
//!
//! All schemes share the same PHY timing (the paper configures CENTAUR
//! and DCF "according to 802.11g standard" and fixes the data rate to
//! 12 Mb/s with 512-byte packets). DOMINO's fixed slot length is derived
//! here from the Fig 8 timeline: data (+ appended trigger-instruction
//! samples) → SIFS → ACK → one slot → signature burst.

use domino_phy::error_model::DataRate;
use domino_phy::signature::SIGNATURE_DURATION_NS;
use domino_sim::SimDuration;

/// 802.11g slot time (9 µs).
pub const SLOT_TIME: SimDuration = SimDuration::from_micros(9);
/// 802.11g SIFS (10 µs).
pub const SIFS: SimDuration = SimDuration::from_micros(10);
/// DIFS = SIFS + 2 · slot (28 µs).
pub const DIFS: SimDuration = SimDuration::from_micros(28);
/// ERP-OFDM PLCP preamble + header (20 µs).
pub const PLCP_PREAMBLE: SimDuration = SimDuration::from_micros(20);
/// MAC header + FCS overhead added to every data frame, bytes.
pub const MAC_OVERHEAD_BYTES: usize = 36;
/// MAC ACK frame length, bytes.
pub const ACK_BYTES: usize = 14;
/// DCF minimum contention window (CWmin).
pub const CW_MIN: u32 = 15;
/// DCF maximum contention window (CWmax).
pub const CW_MAX: u32 = 1023;
/// DCF retry limit before a frame is dropped.
pub const RETRY_LIMIT: u32 = 7;

/// One 127-chip Gold signature on the air (6.35 µs).
pub const SIGNATURE_DURATION: SimDuration = SimDuration::from_nanos(SIGNATURE_DURATION_NS);

/// A trigger burst: combined signatures followed by the START/ROP marker
/// signature (2 × 6.35 µs).
pub const BURST_DURATION: SimDuration = SimDuration::from_nanos(2 * SIGNATURE_DURATION_NS);

/// Samples of the client's burst instruction appended to a data/ACK frame
/// (up to 4 signatures + marker ≈ we budget 2 signature durations, the
/// instruction is compressed samples).
pub const INSTRUCTION_APPENDIX: SimDuration = SimDuration::from_nanos(2 * SIGNATURE_DURATION_NS);

/// ROP polling packet payload, bytes (preamble for CFO correction +
/// subchannel map).
pub const POLL_BYTES: usize = 24;

/// The ROP answer symbol: 3.2 µs CP + 12.8 µs body (Table 1).
pub const ROP_SYMBOL: SimDuration = SimDuration::from_nanos(16_000);

/// Bytes of a header-only fake-link frame (§3.3: "a node only need to
/// send the header of the fake packet").
pub const FAKE_HEADER_BYTES: usize = 24;

/// Airtime of a data frame: PLCP preamble + (payload + MAC overhead) at
/// the PHY rate.
pub fn data_airtime(rate: DataRate, payload_bytes: usize) -> SimDuration {
    PLCP_PREAMBLE + SimDuration::from_nanos(rate.airtime_ns(payload_bytes + MAC_OVERHEAD_BYTES))
}

/// Airtime of a MAC ACK.
pub fn ack_airtime(rate: DataRate) -> SimDuration {
    PLCP_PREAMBLE + SimDuration::from_nanos(rate.airtime_ns(ACK_BYTES))
}

/// Airtime of a header-only fake frame.
pub fn fake_airtime(rate: DataRate) -> SimDuration {
    PLCP_PREAMBLE + SimDuration::from_nanos(rate.airtime_ns(FAKE_HEADER_BYTES))
}

/// Airtime of an ROP polling packet.
pub fn poll_airtime(rate: DataRate) -> SimDuration {
    PLCP_PREAMBLE + SimDuration::from_nanos(rate.airtime_ns(POLL_BYTES))
}

/// How long a DCF sender waits for an ACK after its data frame ends.
pub fn ack_timeout(rate: DataRate) -> SimDuration {
    SIFS + ack_airtime(rate) + SLOT_TIME + SLOT_TIME
}

/// Geometry of one DOMINO slot (Fig 8).
#[derive(Clone, Copy, Debug)]
pub struct SlotGeometry {
    /// Offset of the data transmission from slot start (zero).
    pub data_start: SimDuration,
    /// Data airtime including the appended instruction samples.
    pub data_airtime: SimDuration,
    /// Offset of the ACK from slot start.
    pub ack_start: SimDuration,
    /// ACK airtime including the appendix (uplink case: AP appends S1 to
    /// the ACK).
    pub ack_airtime: SimDuration,
    /// Offset of the signature burst from slot start.
    pub burst_start: SimDuration,
    /// Total slot duration.
    pub total: SimDuration,
}

/// Compute the fixed slot geometry for a data rate and payload size.
pub fn slot_geometry(rate: DataRate, payload_bytes: usize) -> SlotGeometry {
    let data = data_airtime(rate, payload_bytes) + INSTRUCTION_APPENDIX;
    let ack = ack_airtime(rate) + INSTRUCTION_APPENDIX;
    let ack_start = data + SIFS;
    let burst_start = ack_start + ack + SLOT_TIME;
    let total = burst_start + BURST_DURATION + SIFS;
    SlotGeometry {
        data_start: SimDuration::ZERO,
        data_airtime: data,
        ack_start,
        ack_airtime: ack,
        burst_start,
        total,
    }
}

/// Duration of an ROP slot: poll packet + one slot of turnaround + the
/// answer symbol + SIFS of margin.
pub fn rop_slot_duration(rate: DataRate) -> SimDuration {
    poll_airtime(rate) + SLOT_TIME + ROP_SYMBOL + SIFS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_airtime_at_12mbps() {
        // (512 + 36) bytes = 4384 bits / 12 Mb/s = 365.33 us + 20 us
        // preamble.
        let t = data_airtime(DataRate::Mbps12, 512);
        assert_eq!(t.as_nanos(), 20_000 + 365_333);
    }

    #[test]
    fn ack_airtime_small() {
        let t = ack_airtime(DataRate::Mbps12);
        // 14 bytes = 112 bits = 9.33 us + 20 us.
        assert_eq!(t.as_nanos(), 20_000 + 9_333);
        assert!(t < data_airtime(DataRate::Mbps12, 512));
    }

    #[test]
    fn slot_geometry_is_consistent() {
        let g = slot_geometry(DataRate::Mbps12, 512);
        assert!(g.ack_start > g.data_airtime);
        assert!(g.burst_start > g.ack_start + g.ack_airtime);
        assert!(g.total > g.burst_start + BURST_DURATION);
        // A DOMINO slot for 512 B at 12 Mb/s lands in the ~480 us range.
        let us = g.total.as_micros_f64();
        assert!((450.0..520.0).contains(&us), "slot = {us} us");
    }

    #[test]
    fn rop_slot_is_short_relative_to_data_slots() {
        let rop = rop_slot_duration(DataRate::Mbps12);
        let slot = slot_geometry(DataRate::Mbps12, 512).total;
        assert!(rop < slot / 4 + SimDuration::from_micros(20), "rop = {rop}");
        // Roughly: 36 us poll + 9 + 16 + 10 ≈ 71 us.
        assert!((60.0..90.0).contains(&rop.as_micros_f64()));
    }

    #[test]
    fn difs_is_sifs_plus_two_slots() {
        assert_eq!(DIFS.as_micros(), SIFS.as_micros() + 2 * SLOT_TIME.as_micros());
    }

    #[test]
    fn fake_frames_are_much_shorter_than_data() {
        let fake = fake_airtime(DataRate::Mbps12);
        let data = data_airtime(DataRate::Mbps12, 512);
        assert!(fake.as_nanos() * 5 < data.as_nanos());
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn slot_geometry_scales_with_payload() {
        let small = slot_geometry(DataRate::Mbps12, 256);
        let big = slot_geometry(DataRate::Mbps12, 1024);
        assert!(big.total > small.total);
        // Difference = the extra payload airtime exactly.
        let extra = DataRate::Mbps12.airtime_ns(1024) - DataRate::Mbps12.airtime_ns(256);
        assert_eq!((big.total - small.total).as_nanos(), extra);
    }

    #[test]
    fn slot_geometry_scales_with_rate() {
        let slow = slot_geometry(DataRate::Mbps6, 512);
        let fast = slot_geometry(DataRate::Mbps54, 512);
        assert!(slow.total > fast.total);
    }

    #[test]
    fn ack_timeout_covers_the_ack() {
        // The timeout must exceed SIFS + ack airtime, else every ACK
        // "times out".
        for rate in [DataRate::Mbps6, DataRate::Mbps12, DataRate::Mbps54] {
            assert!(ack_timeout(rate) > SIFS + ack_airtime(rate));
        }
    }

    #[test]
    fn burst_is_two_signatures() {
        assert_eq!(BURST_DURATION.as_nanos(), 2 * SIGNATURE_DURATION.as_nanos());
        assert_eq!(SIGNATURE_DURATION.as_nanos(), 6_350);
    }

    #[test]
    fn rop_slot_contains_poll_turnaround_and_symbol() {
        let rop = rop_slot_duration(DataRate::Mbps12);
        assert!(rop > poll_airtime(DataRate::Mbps12) + SLOT_TIME + ROP_SYMBOL);
    }
}
