//! Traffic glue shared by every scheme engine: per-link queues, UDP/TCP
//! flow drive, delivery accounting.
//!
//! The scheme engines (DCF, CENTAUR, Omniscient, DOMINO) differ only in
//! *when* a link gets to transmit; everything about packet arrivals,
//! TCP feedback, queue occupancy and goodput/delay metering is identical
//! and lives here.

use crate::workload::{FlowKind, RunStats, Workload};
use domino_sim::{SimDuration, SimTime};
use domino_topology::{LinkId, Network};
use domino_traffic::{
    FlowId, LinkQueue, Packet, PacketId, PacketKind, TcpReceiver, TcpSender, UdpSource,
    TCP_ACK_BYTES,
};

/// Recommended interval for the harness's periodic TCP application tick.
pub const TCP_TICK: SimDuration = SimDuration::from_millis(2);

#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
enum FlowRuntime {
    Udp(UdpSource),
    Tcp {
        sender: TcpSender,
        receiver: TcpReceiver,
        link: LinkId,
        reverse: LinkId,
        delivered_segments: u64,
    },
}

/// Queues + flow state + metering for one run.
#[derive(Debug)]
pub struct FlowEngine {
    packet_bytes: usize,
    queues: Vec<LinkQueue>,
    flows: Vec<FlowRuntime>,
    /// link index → flow index (for TCP data links and reverse-ack
    /// lookup).
    flow_of_link: Vec<Option<usize>>,
    /// Highest UDP sequence delivered per link (a lost MAC ACK makes the
    /// sender retransmit a packet the receiver already has; goodput must
    /// not double-count it).
    last_udp_seq: Vec<Option<u64>>,
    ack_serial: u64,
    /// Statistics under construction.
    pub stats: RunStats,
}

impl FlowEngine {
    /// Build the runtime for a workload over a network.
    pub fn new(net: &Network, workload: &Workload, duration_s: f64) -> FlowEngine {
        let num_links = net.links().len();
        let mut flow_of_link = vec![None; num_links];
        let flows: Vec<FlowRuntime> = workload
            .flows
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                flow_of_link[spec.link.index()] = Some(i);
                match &spec.kind {
                    FlowKind::Udp { rate_bps } => FlowRuntime::Udp(UdpSource::new(
                        FlowId(i as u32),
                        spec.link,
                        *rate_bps,
                        workload.packet_bytes,
                        SimTime::ZERO,
                    )),
                    FlowKind::Tcp { cfg } => FlowRuntime::Tcp {
                        sender: TcpSender::new(
                            FlowId(i as u32),
                            spec.link,
                            cfg.clone(),
                            (i as u64) << 40,
                            SimTime::ZERO,
                        ),
                        receiver: TcpReceiver::new(),
                        link: spec.link,
                        reverse: net.reverse_link(spec.link),
                        delivered_segments: 0,
                    },
                }
            })
            .collect();
        FlowEngine {
            packet_bytes: workload.packet_bytes,
            queues: (0..num_links).map(|_| LinkQueue::default()).collect(),
            flows,
            flow_of_link,
            last_udp_seq: vec![None; num_links],
            ack_serial: 0,
            stats: RunStats::new(num_links, duration_s),
        }
    }

    /// The queue of one link.
    pub fn queue(&self, link: LinkId) -> &LinkQueue {
        &self.queues[link.index()]
    }

    /// Mutable queue access (schemes pop/push here).
    pub fn queue_mut(&mut self, link: LinkId) -> &mut LinkQueue {
        &mut self.queues[link.index()]
    }

    /// Total packets waiting across all links.
    pub fn total_backlog(&self) -> usize {
        self.queues.iter().map(LinkQueue::len).sum()
    }

    /// Indices of UDP flows.
    pub fn udp_flows(&self) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, FlowRuntime::Udp(_)))
            .map(|(i, _)| i)
            .collect()
    }

    /// Indices of TCP flows.
    pub fn tcp_flows(&self) -> Vec<usize> {
        self.flows
            .iter()
            .enumerate()
            .filter(|(_, f)| matches!(f, FlowRuntime::Tcp { .. }))
            .map(|(i, _)| i)
            .collect()
    }

    /// The data link of a flow.
    pub fn flow_link(&self, flow: usize) -> LinkId {
        match &self.flows[flow] {
            FlowRuntime::Udp(src) => src.link(),
            FlowRuntime::Tcp { link, .. } => *link,
        }
    }

    /// Next arrival instant of a UDP flow.
    pub fn udp_next_arrival(&self, flow: usize) -> SimTime {
        match &self.flows[flow] {
            FlowRuntime::Udp(src) => src.next_arrival(),
            // lint: allow(D005) caller contract: flow index came from a UDP event; misrouting must not silently corrupt stats
            _ => panic!("flow {flow} is not UDP"),
        }
    }

    /// Emit the due packet of a UDP flow into its queue. Returns whether
    /// it was queued (false = dropped at the full queue).
    pub fn udp_arrive(&mut self, flow: usize) -> bool {
        let packet = match &mut self.flows[flow] {
            FlowRuntime::Udp(src) => src.emit((flow as u64) << 40),
            // lint: allow(D005) caller contract: arrival events carry UDP flow indices only
            _ => panic!("flow {flow} is not UDP"),
        };
        let ok = self.queues[packet.link.index()].push(packet);
        if !ok {
            self.stats.drops += 1;
        }
        ok
    }

    /// Drive a TCP sender's application/window (periodic tick and after
    /// acks); releases segments into the link queue.
    pub fn tcp_tick(&mut self, flow: usize, now: SimTime) {
        let packets = match &mut self.flows[flow] {
            FlowRuntime::Tcp { sender, .. } => sender.poll(now),
            // lint: allow(D005) caller contract: tick events carry TCP flow indices only
            _ => panic!("flow {flow} is not TCP"),
        };
        self.enqueue_all(packets);
    }

    /// Current RTO deadline of a TCP flow.
    pub fn tcp_rto_deadline(&self, flow: usize) -> Option<SimTime> {
        match &self.flows[flow] {
            FlowRuntime::Tcp { sender, .. } => sender.rto_deadline(),
            _ => None,
        }
    }

    /// Fire a TCP retransmission-timer check.
    pub fn tcp_timer(&mut self, flow: usize, now: SimTime) {
        let packets = match &mut self.flows[flow] {
            FlowRuntime::Tcp { sender, .. } => sender.on_timer(now),
            // lint: allow(D005) caller contract: RTO events carry TCP flow indices only
            _ => panic!("flow {flow} is not TCP"),
        };
        self.enqueue_all(packets);
    }

    fn enqueue_all(&mut self, packets: Vec<Packet>) {
        for p in packets {
            if !self.queues[p.link.index()].push(p) {
                self.stats.drops += 1;
            }
        }
    }

    /// Account a successful delivery of `packet` at `now` and run the
    /// transport reaction (TCP receivers generate acks onto the reverse
    /// link; TCP senders absorb acks and may release more segments).
    pub fn deliver(&mut self, packet: &Packet, now: SimTime) {
        match packet.kind {
            PacketKind::Udp => {
                let last = &mut self.last_udp_seq[packet.link.index()];
                if last.is_some_and(|l| packet.seq <= l) {
                    return; // duplicate of an already-delivered packet
                }
                *last = Some(packet.seq);
                self.stats.delivered_bits[packet.link.index()] +=
                    packet.payload_bytes as u64 * 8;
                self.stats.delays[packet.link.index()]
                    .record_us(now.saturating_since(packet.created_at).as_micros_f64());
            }
            PacketKind::TcpData => {
                let flow_idx = self.flow_of_link[packet.link.index()]
                    .expect("TCP data on a link without a flow"); // lint: allow(D005) TCP packets are only minted by a flow on that link
                let mss = self.packet_bytes as u64 * 8;
                let (ack, link, reverse) = match &mut self.flows[flow_idx] {
                    FlowRuntime::Tcp { receiver, link, reverse, delivered_segments, .. } => {
                        let ack = receiver.on_data(packet.seq);
                        // Goodput counts in-order delivered segments only
                        // (retransmissions don't double-count).
                        let newly = receiver.delivered() - *delivered_segments;
                        *delivered_segments = receiver.delivered();
                        self.stats.delivered_bits[link.index()] += newly * mss;
                        (ack, *link, *reverse)
                    }
                    // lint: allow(D005) flow_of_link maps TCP links to TCP runtimes by construction
                    _ => panic!("flow mismatch"),
                };
                self.stats.delays[link.index()]
                    .record_us(now.saturating_since(packet.created_at).as_micros_f64());
                // Ack as a regular packet on the reverse link.
                self.ack_serial += 1;
                let ack_packet = Packet {
                    id: PacketId((0xACu64 << 48) | self.ack_serial),
                    flow: packet.flow,
                    link: reverse,
                    payload_bytes: TCP_ACK_BYTES,
                    created_at: now,
                    kind: PacketKind::TcpAck,
                    seq: ack,
                };
                if !self.queues[reverse.index()].push(ack_packet) {
                    self.stats.drops += 1;
                }
            }
            PacketKind::TcpAck => {
                // The ack arrived back at the data sender: find the flow
                // whose data link is the reverse of the ack's link.
                let flow_idx = self
                    .flows
                    .iter()
                    .position(|f| matches!(f, FlowRuntime::Tcp { reverse, .. } if *reverse == packet.link))
                    .expect("TCP ack on a link that is no flow's reverse"); // lint: allow(D005) acks are minted with reverse = some flow's data link
                let released = match &mut self.flows[flow_idx] {
                    FlowRuntime::Tcp { sender, .. } => sender.on_ack(packet.seq, now),
                    // lint: allow(D005) position() above matched a Tcp variant at this index
                    _ => unreachable!(),
                };
                self.enqueue_all(released);
            }
        }
    }

    /// Total MAC retransmissions recorded by TCP senders (diagnostics).
    pub fn tcp_retransmissions(&self) -> u64 {
        self.flows
            .iter()
            .map(|f| match f {
                FlowRuntime::Tcp { sender, .. } => sender.retransmissions(),
                _ => 0,
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use domino_phy::units::Dbm;
    use domino_topology::network::{make_node, PhyParams};
    use domino_topology::node::{NodeId, NodeRole, Position};
    use domino_topology::rss::RssMatrix;

    fn net() -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(2);
        rss.set_symmetric(NodeId(0), NodeId(1), Dbm(-55.0));
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn udp_arrivals_fill_the_queue() {
        let n = net();
        let w = Workload::udp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.udp_flows()[0];
        assert!(fe.udp_next_arrival(flow) > SimTime::ZERO);
        for _ in 0..5 {
            assert!(fe.udp_arrive(flow));
        }
        assert_eq!(fe.queue(LinkId(0)).len(), 5);
        assert_eq!(fe.total_backlog(), 5);
    }

    #[test]
    fn udp_delivery_meters_goodput_and_delay() {
        let n = net();
        let w = Workload::udp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.udp_flows()[0];
        fe.udp_arrive(flow);
        let p = fe.queue_mut(LinkId(0)).pop().unwrap();
        let deliver_at = p.created_at + SimDuration::from_micros(500);
        fe.deliver(&p, deliver_at);
        assert_eq!(fe.stats.delivered_bits[0], 512 * 8);
        assert!((fe.stats.delays[0].mean_us() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn tcp_data_generates_ack_on_reverse_link() {
        let n = net();
        let w = Workload::tcp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.tcp_flows()[0];
        fe.tcp_tick(flow, SimTime::from_millis(1));
        assert!(!fe.queue(LinkId(0)).is_empty(), "sender released segments");
        let p = fe.queue_mut(LinkId(0)).pop().unwrap();
        assert_eq!(p.kind, PacketKind::TcpData);
        fe.deliver(&p, SimTime::from_millis(2));
        // Ack waits on the reverse (uplink) queue.
        assert_eq!(fe.queue(LinkId(1)).len(), 1);
        let ack = fe.queue_mut(LinkId(1)).pop().unwrap();
        assert_eq!(ack.kind, PacketKind::TcpAck);
        assert_eq!(ack.seq, 1);
        // Goodput counted once.
        assert_eq!(fe.stats.delivered_bits[0], 512 * 8);
        // Delivering the ack opens the sender's window.
        let before = fe.queue(LinkId(0)).len();
        fe.deliver(&ack, SimTime::from_millis(3));
        assert!(fe.queue(LinkId(0)).len() > before, "ack released new segments");
    }

    #[test]
    fn tcp_retransmission_does_not_double_count_goodput() {
        let n = net();
        let w = Workload::tcp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.tcp_flows()[0];
        fe.tcp_tick(flow, SimTime::from_millis(1));
        let p = fe.queue_mut(LinkId(0)).pop().unwrap();
        fe.deliver(&p, SimTime::from_millis(2));
        let bits = fe.stats.delivered_bits[0];
        // Same segment again (spurious retransmission).
        fe.deliver(&p, SimTime::from_millis(3));
        assert_eq!(fe.stats.delivered_bits[0], bits);
    }

    #[test]
    fn duplicate_udp_delivery_not_double_counted() {
        let n = net();
        let w = Workload::udp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.udp_flows()[0];
        fe.udp_arrive(flow);
        let p = fe.queue_mut(LinkId(0)).pop().unwrap();
        fe.deliver(&p, SimTime::from_millis(1));
        fe.deliver(&p, SimTime::from_millis(2)); // MAC retry after lost ACK
        assert_eq!(fe.stats.delivered_bits[0], 512 * 8);
        assert_eq!(fe.stats.delays[0].count(), 1);
    }

    #[test]
    fn queue_overflow_counts_drops() {
        let n = net();
        let w = Workload::udp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.udp_flows()[0];
        for _ in 0..250 {
            let _ = fe.udp_arrive(flow);
        }
        assert!(fe.stats.drops > 0);
        assert_eq!(fe.queue(LinkId(0)).len(), 200);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::workload::Workload;
    use domino_phy::units::Dbm;
    use domino_topology::network::{make_node, PhyParams};
    use domino_topology::node::{NodeId, NodeRole, Position};
    use domino_topology::rss::RssMatrix;
    use domino_topology::{LinkId, Network};

    fn net() -> Network {
        let nodes = vec![
            make_node(0, NodeRole::Ap, None, Position::default()),
            make_node(1, NodeRole::Client, Some(0), Position::default()),
        ];
        let mut rss = RssMatrix::disconnected(2);
        rss.set_symmetric(NodeId(0), NodeId(1), Dbm(-55.0));
        Network::new(nodes, rss, PhyParams::default())
    }

    #[test]
    fn tcp_rto_fires_through_the_engine_interface() {
        let n = net();
        let w = Workload::tcp_updown(&n, 10e6, 0.0);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        let flow = fe.tcp_flows()[0];
        fe.tcp_tick(flow, SimTime::from_millis(1));
        let q_before = fe.queue(LinkId(0)).len();
        assert!(q_before > 0);
        let deadline = fe.tcp_rto_deadline(flow).expect("rto armed after send");
        // Drain the queue (packets "lost"), then fire the timer: the
        // retransmission lands back in the queue.
        while fe.queue_mut(LinkId(0)).pop().is_some() {}
        fe.tcp_timer(flow, deadline);
        assert_eq!(fe.queue(LinkId(0)).len(), 1, "go-back-N retransmission queued");
        assert_eq!(fe.tcp_retransmissions(), 1);
    }

    #[test]
    fn flow_link_lookup() {
        let n = net();
        let w = Workload::udp_updown(&n, 5e6, 1e6);
        let fe = FlowEngine::new(&n, &w, 1.0);
        assert_eq!(fe.flow_link(0), LinkId(0));
        assert_eq!(fe.flow_link(1), LinkId(1));
    }

    #[test]
    fn total_backlog_sums_all_queues() {
        let n = net();
        let w = Workload::udp_updown(&n, 5e6, 5e6);
        let mut fe = FlowEngine::new(&n, &w, 1.0);
        for flow in fe.udp_flows() {
            fe.udp_arrive(flow);
            fe.udp_arrive(flow);
        }
        assert_eq!(fe.total_backlog(), 4);
    }
}
