//! Property tests for the semantic layer: the forgiving parser and the
//! extraction pass must be total — any byte soup, token soup, or mangled
//! Rust fragment parses to *some* tree without panicking, and the
//! downstream fact extraction accepts whatever comes out. CI replays the
//! suite under `TESTKIT_SEED=271828` so a regression reproduces exactly.

use domino_lint::callgraph;
use domino_lint::parser;
use domino_lint::rules::{check_semantic, FileCtx};
use domino_lint::tokenizer::tokenize;

/// The full per-file semantic pipeline: tokenize → parse → local rules →
/// fact extraction. Each stage must accept the previous one's output for
/// arbitrary input.
fn pipeline(path: &str, src: &str) {
    let tokens = tokenize(src);
    let parsed = parser::parse(&tokens);
    let ctx = FileCtx::from_path(path);
    let _ = check_semantic(&ctx, &parsed);
    let _ = callgraph::extract(&parsed);
}

#[test]
fn parser_never_panics_on_arbitrary_bytes() {
    domino_testkit::prop::check("parser_total_bytes", |g| {
        let bytes = g.vec(0, 300, |g| g.u64(0, 255) as u8);
        let src = String::from_utf8_lossy(&bytes).into_owned();
        pipeline("crates/sim/src/x.rs", &src);
    });
}

#[test]
fn parser_never_panics_on_rusty_fragments() {
    // Token soup biased toward the constructs the parser models: items,
    // groups (including unbalanced ones), bindings, calls, operators.
    const PIECES: &[&str] = &[
        "fn", "impl", "for", "where", "let", "if", "else", "while", "match",
        "mod", "streams", "const", "pub", "use", "#[test]", "#[cfg(test)]",
        "f", "Engine", "Self", "self", ".", "::", "<f64>", "::<f64>",
        "(", ")", "{", "}", "[", "]", "<", ">", ",", ";", "=", "=>", "->",
        "+", "-", "==", "!=", "&", "&&", "|", "||", "!", "..", "u64", ":",
        "0.5", "1e9", "42", "0x1F", "sum", "fold", "derive", "Vec::new",
        "collect", "partial_cmp", "as_nanos", "as", "move", "|a, b|",
        "\"s\"", "'a", "'x'", "//c\n", "/*b*/", "\n",
    ];
    domino_testkit::prop::check("parser_total_fragments", |g| {
        let n = g.usize(0, 40);
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(PIECES[g.usize(0, PIECES.len() - 1)]);
            src.push(' ');
        }
        pipeline("crates/mac/src/x.rs", &src);
    });
}

#[test]
fn parser_line_numbers_stay_in_range() {
    // Every function item the parser finds must carry a line number that
    // exists in the source — the waiver matcher depends on it.
    domino_testkit::prop::check("parser_lines_bounded", |g| {
        let n = g.usize(1, 10);
        let mut src = String::new();
        for i in 0..n {
            if g.bool() {
                src.push_str("#[test]\n");
            }
            src.push_str(&format!("fn f{i}() {{ let x = {i}; }}\n"));
        }
        let tokens = tokenize(&src);
        let parsed = parser::parse(&tokens);
        let lines = src.lines().count() as u32;
        for f in &parsed.fns {
            assert!(f.line >= 1 && f.line <= lines, "fn line {} out of range", f.line);
        }
        assert_eq!(parsed.fns.len(), n, "every top-level fn item is found");
    });
}
