//! Fixture tests: one known-bad and one known-good snippet per rule, plus
//! waiver plumbing and tokenizer edge cases. These are the linter's own
//! regression net — every rule's detection surface is pinned here so a
//! tokenizer or scope change that silently blinds a rule fails loudly.

use domino_lint::lint_source;
use domino_lint::rules::RuleId;
use domino_lint::tokenizer::{tokenize, TokenKind};

/// Lint `src` as if it lived at `path`, returning the rule ids hit.
fn rules_at(path: &str, src: &str) -> Vec<RuleId> {
    lint_source(path, src).into_iter().filter(|v| v.waived.is_none()).map(|v| v.rule).collect()
}

const SCHED: &str = "crates/scheduler/src/x.rs";

// ---------------------------------------------------------------- D001

#[test]
fn d001_flags_wall_clock_outside_testkit() {
    let bad = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(rules_at(SCHED, bad), vec![RuleId::D001]);
    let bad2 = "use std::time::SystemTime;\n";
    assert_eq!(rules_at(SCHED, bad2), vec![RuleId::D001]);
}

#[test]
fn d001_allows_wall_clock_in_testkit_and_bench() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert!(rules_at("crates/testkit/src/bench.rs", src).is_empty());
    assert!(rules_at("crates/bench/src/lib.rs", src).is_empty());
}

#[test]
fn d001_allows_duration_type() {
    // Duration is a plain value type; only the clocks are ambient.
    let good = "use std::time::Duration;\nfn f(d: Duration) {}\n";
    assert!(rules_at(SCHED, good).is_empty());
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_flags_hashmap_iteration_in_ordered_crates() {
    let bad = "use std::collections::HashMap;\n\
               fn f(m: HashMap<u32, u32>) { for (k, v) in m.iter() { let _ = (k, v); } }";
    assert_eq!(rules_at(SCHED, bad), vec![RuleId::D002]);
}

#[test]
fn d002_flags_for_loop_over_hash_binding() {
    let bad = "use std::collections::HashSet;\n\
               fn f() { let s: HashSet<u32> = HashSet::new(); for x in &s { let _ = x; } }";
    assert_eq!(rules_at(SCHED, bad), vec![RuleId::D002]);
}

#[test]
fn d002_allows_keyed_lookup() {
    let good = "use std::collections::HashMap;\n\
                fn f(m: HashMap<u32, u32>) -> Option<u32> { m.get(&1).copied() }";
    assert!(rules_at(SCHED, good).is_empty());
}

#[test]
fn d002_allows_btreemap_iteration() {
    let good = "use std::collections::BTreeMap;\n\
                fn f(m: BTreeMap<u32, u32>) { for (k, v) in m.iter() { let _ = (k, v); } }";
    assert!(rules_at(SCHED, good).is_empty());
}

#[test]
fn d002_does_not_apply_outside_ordered_crates() {
    let src = "use std::collections::HashMap;\n\
               fn f(m: HashMap<u32, u32>) { for x in m.values() { let _ = x; } }";
    assert!(rules_at("crates/stats/src/lib.rs", src).is_empty());
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_flags_float_equality() {
    let bad = "fn f(x: f64) -> bool { x == 1.0 }";
    assert_eq!(rules_at(SCHED, bad), vec![RuleId::D003]);
    let bad2 = "fn f(x: f64) -> bool { 0.5 != x }";
    assert_eq!(rules_at(SCHED, bad2), vec![RuleId::D003]);
}

#[test]
fn d003_allows_float_ordering_and_int_equality() {
    let good = "fn f(x: f64, n: u32) -> bool { x > 1.0 && n == 3 }";
    assert!(rules_at(SCHED, good).is_empty());
}

#[test]
fn d003_does_not_confuse_tuple_index_with_float() {
    // `t.0 == u.0` is integer-field equality, not a float literal.
    let good = "fn f(t: (u32, u32), u: (u32, u32)) -> bool { t.0 == u.0 }";
    assert!(rules_at(SCHED, good).is_empty());
}

#[test]
fn d003_exempt_in_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { assert!(1.0 == 1.0); }\n}\n";
    assert!(rules_at(SCHED, src).is_empty());
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_flags_ambient_randomness() {
    let bad = "fn f() { let x = rand::thread_rng(); let _ = x; }";
    assert_eq!(rules_at(SCHED, bad), vec![RuleId::D004]);
}

#[test]
fn d004_allows_seeded_rng() {
    let good = "fn f(rng: &mut domino_testkit::rng::Rng) -> u64 { rng.next() }";
    assert!(rules_at(SCHED, good).is_empty());
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_flags_unwrap_in_no_panic_crates() {
    let bad = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_at("crates/phy/src/lib.rs", bad), vec![RuleId::D005]);
    let bad2 = "fn f() { todo!() }";
    assert_eq!(rules_at("crates/sim/src/engine.rs", bad2), vec![RuleId::D005]);
}

#[test]
fn d005_allows_unwrap_in_tests_and_other_crates() {
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_at("crates/phy/src/lib.rs", in_test).is_empty());
    // stats is not in the no-panic set.
    let elsewhere = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert!(rules_at("crates/stats/src/lib.rs", elsewhere).is_empty());
}

// ---------------------------------------------------------------- D006

#[test]
fn d006_flags_println_in_library_code() {
    let bad = "fn f() { println!(\"hi\"); }";
    assert_eq!(rules_at("crates/mac/src/lib.rs", bad), vec![RuleId::D006]);
    let bad2 = "fn f() { dbg!(1); }";
    assert_eq!(rules_at("crates/mac/src/lib.rs", bad2), vec![RuleId::D006]);
}

#[test]
fn d006_allows_prints_in_bin_targets_and_tests() {
    let src = "fn main() { println!(\"report\"); }";
    assert!(rules_at("crates/bench/src/bin/fig12.rs", src).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { println!(\"dbg\"); }\n}\n";
    assert!(rules_at("crates/mac/src/lib.rs", in_test).is_empty());
}

// ------------------------------------------------- runner scope (D001/D006)

#[test]
fn d001_applies_to_the_runner_crate() {
    // The runner is deliberately NOT in the wall-clock set: it measures
    // shard time through testkit's Stopwatch, so a raw Instant — in the
    // library or in the domino-run binary — is a determinism leak.
    let bad = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(rules_at("crates/runner/src/pool.rs", bad), vec![RuleId::D001]);
    assert_eq!(rules_at("crates/runner/src/bin/domino_run.rs", bad), vec![RuleId::D001]);
}

#[test]
fn d006_splits_runner_library_from_its_cli() {
    let src = "fn f() { println!(\"progress\"); }";
    // The runner library renders experiment text and the JSON manifest as
    // Strings — printing there would bypass the bins that own stdout…
    assert_eq!(rules_at("crates/runner/src/lib.rs", src), vec![RuleId::D006]);
    assert_eq!(rules_at("crates/runner/src/experiments/mod.rs", src), vec![RuleId::D006]);
    // …while the domino-run binary is the one place that may print.
    assert!(rules_at("crates/runner/src/bin/domino_run.rs", src).is_empty());
}

// ------------------------------------------------- obs scope (D002/D005)

#[test]
fn obs_crate_is_in_scope_for_ordering_and_no_panic() {
    // Trace analysis groups events in maps whose iteration order reaches
    // rendered reports, and trace sinks run inside every simulation — so
    // the observability crate is held to the D002 and D005 bars.
    const OBS: &str = "crates/obs/src/analysis.rs";
    let hash_iter = "use std::collections::HashMap;\n\
                     fn f(m: HashMap<u32, u32>) { for x in m.values() { let _ = x; } }";
    assert_eq!(rules_at(OBS, hash_iter), vec![RuleId::D002]);
    let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_at(OBS, unwrap), vec![RuleId::D005]);
    // The domino-trace binary may still unwrap (bins are D005-exempt).
    assert!(rules_at("crates/obs/src/bin/domino_trace.rs", unwrap).is_empty());
}

// --------------------------------------------- campaign scope (D002/D005)

#[test]
fn campaign_crate_is_in_scope_for_ordering_and_no_panic() {
    // The cache index, resume ledger, and report rollups all iterate
    // collections into byte-compared artifacts, and the store parses
    // untrusted on-disk bytes — so the campaign crate is held to the
    // D002 and D005 bars.
    const CAMPAIGN: &str = "crates/campaign/src/store.rs";
    let hash_iter = "use std::collections::HashMap;\n\
                     fn f(m: HashMap<String, u64>) { for x in m.values() { let _ = x; } }";
    assert_eq!(rules_at(CAMPAIGN, hash_iter), vec![RuleId::D002]);
    let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_at(CAMPAIGN, unwrap), vec![RuleId::D005]);
    // BTreeMap iteration is the sanctioned shape for the store index.
    let ordered = "use std::collections::BTreeMap;\n\
                   fn f(m: BTreeMap<String, u64>) { for x in m.values() { let _ = x; } }";
    assert!(rules_at(CAMPAIGN, ordered).is_empty());
}

#[test]
fn campaign_tests_keep_the_usual_exemptions() {
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_at("crates/campaign/src/ledger.rs", in_test).is_empty());
}

// ------------------------------------- render-path binaries (D006 extension)

#[test]
fn d006_flags_inline_format_specs_in_render_path_binaries() {
    // domino-run and domino-trace print pre-rendered strings; a format
    // spec at the print site is formatting that escaped the render path.
    let bad = "fn main() { println!(\"{:<28} {:>9.1} ms\", name, ms); }";
    assert_eq!(
        rules_at("crates/runner/src/bin/domino_run.rs", bad),
        vec![RuleId::D006]
    );
    assert_eq!(
        rules_at("crates/obs/src/bin/domino_trace.rs", bad),
        vec![RuleId::D006]
    );
    let dbg = "fn main() { dbg!(1); }";
    assert_eq!(rules_at("crates/runner/src/bin/domino_run.rs", dbg), vec![RuleId::D006]);
}

#[test]
fn d006_render_path_allows_plain_prints_and_other_bins() {
    // Plain `{}` / named `{name}` holes pass pre-rendered text through.
    let good = "fn main() { println!(\"{}\", rendered); eprintln!(\"cannot write {path}\"); }";
    assert!(rules_at("crates/runner/src/bin/domino_run.rs", good).is_empty());
    assert!(rules_at("crates/obs/src/bin/domino_trace.rs", good).is_empty());
    // Bench's thin per-experiment bins are not render-path scoped.
    let spec = "fn main() { println!(\"{:>5}\", x); }";
    assert!(rules_at("crates/bench/src/bin/fig12.rs", spec).is_empty());
}

// ------------------------------------------------- faults scope (D001–D006)

#[test]
fn fault_plane_crate_is_in_scope_for_every_rule() {
    // The fault plane perturbs scheduling decisions by design, so it is
    // held to the same determinism bar as the crates it perturbs: no wall
    // clock, no hash-order iteration, no ambient randomness, no panicking
    // calls in library code.
    const FAULTS: &str = "crates/faults/src/lib.rs";
    let wall = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(rules_at(FAULTS, wall), vec![RuleId::D001]);
    let hash_iter = "use std::collections::HashMap;\n\
                     fn f(m: HashMap<u32, u32>) { for x in m.values() { let _ = x; } }";
    assert_eq!(rules_at(FAULTS, hash_iter), vec![RuleId::D002]);
    let float_eq = "fn f(p: f64) -> bool { p == 0.5 }";
    assert_eq!(rules_at(FAULTS, float_eq), vec![RuleId::D003]);
    let ambient = "fn f() { let x = rand::thread_rng(); let _ = x; }";
    assert_eq!(rules_at(FAULTS, ambient), vec![RuleId::D004]);
    let unwrap = "fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    assert_eq!(rules_at(FAULTS, unwrap), vec![RuleId::D005]);
    let print = "fn f() { println!(\"injected\"); }";
    assert_eq!(rules_at(FAULTS, print), vec![RuleId::D006]);
}

#[test]
fn fault_plane_tests_keep_the_usual_exemptions() {
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(1).unwrap(); }\n}\n";
    assert!(rules_at("crates/faults/src/lib.rs", in_test).is_empty());
}

// ---------------------------------------------------------------- waivers

#[test]
fn waiver_with_reason_silences_and_records() {
    let src = "// lint: allow(D005) invariant: id handed out by push\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let vs = lint_source("crates/phy/src/lib.rs", src);
    assert_eq!(vs.len(), 1);
    assert_eq!(vs[0].waived.as_deref(), Some("invariant: id handed out by push"));
}

#[test]
fn waiver_without_reason_is_w000_and_does_not_silence() {
    let src = "// lint: allow(D005)\nfn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let mut rules = rules_at("crates/phy/src/lib.rs", src);
    rules.sort();
    assert_eq!(rules, vec![RuleId::D005, RuleId::W000]);
}

#[test]
fn waiver_with_unknown_rule_is_w000() {
    let src = "// lint: allow(D999) sure\nfn f() {}\n";
    assert_eq!(rules_at(SCHED, src), vec![RuleId::W000]);
}

#[test]
fn waiver_only_reaches_adjacent_line() {
    let src = "// lint: allow(D005) too far away\n\n\n\
               fn f(x: Option<u32>) -> u32 { x.unwrap() }";
    let rules = rules_at("crates/phy/src/lib.rs", src);
    assert!(rules.contains(&RuleId::D005), "waiver two lines up must not apply");
}

// ------------------------------------------------------- tokenizer edges

#[test]
fn raw_string_containing_unwrap_is_not_a_call() {
    let src = "fn f() -> &'static str { r#\"docs say .unwrap() is bad\"# }";
    assert!(rules_at("crates/phy/src/lib.rs", src).is_empty());
}

#[test]
fn string_and_comment_bodies_are_inert() {
    let src = "fn f() -> &'static str { \"std::time::Instant println! x.unwrap()\" }\n\
               // std::time::Instant::now() in a comment\n\
               /* nested /* println!(\"hi\") */ still a comment */\n";
    assert!(rules_at(SCHED, src).is_empty());
}

#[test]
fn nested_block_comments_tokenize_as_one_token() {
    let toks = tokenize("/* a /* b */ c */ fn");
    assert_eq!(toks[0].kind, TokenKind::BlockComment);
    assert_eq!(toks[0].text, "/* a /* b */ c */");
    assert_eq!(toks[1].text, "fn");
}

#[test]
fn raw_string_guards_are_respected() {
    let toks = tokenize(r####"let s = r##"has "# inside"##; x"####);
    let raw = toks.iter().find(|t| t.kind == TokenKind::RawStr).expect("raw string token");
    assert_eq!(raw.text, r###"r##"has "# inside"##"###);
    assert!(toks.iter().any(|t| t.text == "x"), "lexing continued past the raw string");
}

#[test]
fn lifetimes_are_not_char_literals() {
    let toks = tokenize("fn f<'a>(x: &'a str) -> &'a str { x }");
    assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime && t.text == "'a"));
    assert!(!toks.iter().any(|t| t.kind == TokenKind::Char));
}

// ------------------------------------------------- D003 let-bound extension

#[test]
fn d003_ext_flags_equality_through_float_bound_local() {
    let bad = "fn f(x: f64) -> bool { let thresh = 0.5; x == thresh }";
    assert_eq!(rules_at(SCHED, bad), vec![RuleId::D003]);
    let bad2 = "fn f(x: f64) -> bool { let eps = 1e-9; eps != x }";
    assert_eq!(rules_at(SCHED, bad2), vec![RuleId::D003]);
}

#[test]
fn d003_ext_waiver_and_out_of_scope() {
    let waived = "fn f(x: f64) -> bool {\n\
                  let thresh = 0.5;\n\
                  // lint: allow(D003) sentinel compare; exact bit pattern set above\n\
                  x == thresh\n\
                  }";
    assert!(rules_at(SCHED, waived).is_empty());
    // Ordering comparisons, integer-bound locals, and locals from another
    // function stay clean.
    let good = "fn f(x: f64) -> bool { let thresh = 0.5; x > thresh }\n\
                fn g(n: u32) -> bool { let limit = 3; n == limit }\n\
                fn h(x: f64, thresh: f64) -> bool { x == thresh }";
    assert!(rules_at(SCHED, good).is_empty());
}

// ---------------------------------------------------------------- D007

#[test]
fn d007_flags_alloc_reachable_from_hot_roots() {
    // Root and allocation in one file: pop → helper → Vec::new().
    let bad = "impl Engine { pub fn pop(&mut self) { helper(); } }\n\
               fn helper() { let v: Vec<u32> = Vec::new(); let _ = v; }";
    assert_eq!(rules_at("crates/sim/src/engine.rs", bad), vec![RuleId::D007]);
    // Allocation directly inside a root, via macro.
    let bad2 = "pub fn dispatch_batch() { let s = format!(\"x\"); let _ = s; }";
    assert_eq!(rules_at("crates/mac/src/x.rs", bad2), vec![RuleId::D007]);
}

#[test]
fn d007_waiver_silences_the_alloc_site() {
    let src = "impl Engine { pub fn pop(&mut self) { helper(); } }\n\
               fn helper() {\n\
               // lint: allow(D007) arena warm-up; runs once before the hot loop\n\
               let v: Vec<u32> = Vec::new(); let _ = v;\n\
               }";
    assert!(rules_at("crates/sim/src/engine.rs", src).is_empty());
}

#[test]
fn d007_out_of_scope_allocs_stay_clean() {
    // Unreachable from any root: no finding.
    let cold = "pub fn report() { let v: Vec<u32> = Vec::new(); let _ = v; }";
    assert!(rules_at("crates/sim/src/report.rs", cold).is_empty());
    // Excluded crates never join the graph, even with a root-shaped fn.
    let excluded = "impl Engine { pub fn pop(&mut self) { let v: Vec<u32> = Vec::new(); } }";
    assert!(rules_at("crates/testkit/src/sim.rs", excluded).is_empty());
    // Test functions are not graph nodes.
    let in_test = "impl Engine { pub fn pop(&mut self) {} }\n\
                   #[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let v: Vec<u32> = Vec::new(); }\n}\n";
    assert!(rules_at("crates/sim/src/engine.rs", in_test).is_empty());
}

// ---------------------------------------------------------------- D008

#[test]
fn d008_flags_bare_literal_stream_ids() {
    let bad = "fn f() { let r = SimRng::derive(42, 7); let _ = r; }";
    assert_eq!(rules_at("crates/sim/src/x.rs", bad), vec![RuleId::D008]);
    // Applies inside test code too: collisions between test streams and
    // simulation streams are exactly as silent.
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let r = SimRng::derive(1, 3); }\n}\n";
    assert_eq!(rules_at("crates/sim/src/x.rs", in_test), vec![RuleId::D008]);
}

#[test]
fn d008_waiver_and_out_of_scope() {
    let waived = "fn f() {\n\
                  // lint: allow(D008) stream id documented in rng.rs table; const lives upstream\n\
                  let r = SimRng::derive(42, 7); let _ = r;\n\
                  }";
    assert!(rules_at("crates/sim/src/x.rs", waived).is_empty());
    // A named constant is the fix, and the harness crates are exempt.
    let named = "fn f() { let r = SimRng::derive(42, streams::TRAFFIC); let _ = r; }";
    assert!(rules_at("crates/sim/src/x.rs", named).is_empty());
    let harness = "fn f() { let r = SimRng::derive(42, 7); let _ = r; }";
    assert!(rules_at("crates/testkit/src/x.rs", harness).is_empty());
}

// ---------------------------------------------------------------- D009

#[test]
fn d009_flags_float_reductions_and_comparator_sorts() {
    let sum = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
    assert_eq!(rules_at(SCHED, sum), vec![RuleId::D009]);
    let ascribed = "fn f(xs: &[f64]) -> f64 { let s: f64 = xs.iter().copied().sum(); s }";
    assert_eq!(rules_at(SCHED, ascribed), vec![RuleId::D009]);
    let fold = "fn f(xs: &[f64]) -> f64 { xs.iter().fold(0.0, |a, b| a + b) }";
    assert_eq!(rules_at(SCHED, fold), vec![RuleId::D009]);
    // medium is float-order scope but not no-panic scope, so the
    // partial_cmp fixture isolates D009.
    let sort = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert_eq!(rules_at("crates/medium/src/x.rs", sort), vec![RuleId::D009]);
}

#[test]
fn d009_waiver_and_out_of_scope() {
    let waived = "fn f(xs: &[f64]) -> f64 {\n\
                  // lint: allow(D009) left fold over a pinned slice walk\n\
                  xs.iter().sum::<f64>()\n\
                  }";
    assert!(rules_at(SCHED, waived).is_empty());
    // Integer reductions, non-sim crates, and test code are out of scope.
    let int_sum = "fn f(xs: &[u64]) -> u64 { xs.iter().sum::<u64>() }";
    assert!(rules_at(SCHED, int_sum).is_empty());
    let phy = "fn f(xs: &[f64]) -> f64 { xs.iter().sum::<f64>() }";
    assert!(rules_at("crates/phy/src/dsp.rs", phy).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _: f64 = [1.0].iter().sum(); }\n}\n";
    assert!(rules_at(SCHED, in_test).is_empty());
}

// ---------------------------------------------------------------- D010

#[test]
fn d010_flags_index_arithmetic_and_sim_time_arith() {
    let idx = "fn f(xs: &[u32], i: usize) -> u32 { xs[i + 1] }";
    assert_eq!(rules_at("crates/phy/src/x.rs", idx), vec![RuleId::D010]);
    let sub = "fn f(xs: &[u32], i: usize) -> u32 { xs[i - 1] }";
    assert_eq!(rules_at("crates/mac/src/x.rs", sub), vec![RuleId::D010]);
    let time = "fn f(t: SimTime, d: u64) -> u64 { t.as_nanos() + d }";
    assert_eq!(rules_at("crates/sim/src/x.rs", time), vec![RuleId::D010]);
}

#[test]
fn d010_waiver_and_out_of_scope() {
    let waived = "fn f(xs: &[u32], i: usize) -> u32 {\n\
                  // lint: allow(D010) caller guarantees i + 1 < xs.len()\n\
                  xs[i + 1]\n\
                  }";
    assert!(rules_at("crates/phy/src/x.rs", waived).is_empty());
    // Plain indexing, checked access, non-sim crates, and tests stay clean.
    let plain = "fn f(xs: &[u32], i: usize) -> u32 { xs[i] }";
    assert!(rules_at("crates/phy/src/x.rs", plain).is_empty());
    let checked = "fn f(xs: &[u32], i: usize) -> Option<u32> { xs.get(i + 1).copied() }";
    assert!(rules_at("crates/phy/src/x.rs", checked).is_empty());
    let stats = "fn f(xs: &[u32], i: usize) -> u32 { xs[i + 1] }";
    assert!(rules_at("crates/stats/src/lib.rs", stats).is_empty());
    let in_test = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { let _ = [1u32, 2][0 + 1]; }\n}\n";
    assert!(rules_at("crates/phy/src/x.rs", in_test).is_empty());
}

// ---------------------------------------------------------- property test

#[test]
fn tokenizer_never_panics_on_arbitrary_input() {
    domino_testkit::prop::check("tokenizer_total", |g| {
        let bytes = g.vec(0, 200, |g| g.u64(0, 255) as u8);
        let src = String::from_utf8_lossy(&bytes).into_owned();
        // Must terminate without panicking, and every token must carry a
        // line number within the source.
        let lines = src.lines().count().max(1) as u32;
        for t in tokenize(&src) {
            assert!(t.line >= 1 && t.line <= lines, "line {} out of range", t.line);
        }
    });
}

#[test]
fn tokenizer_never_panics_on_rusty_fragments() {
    // Bias the fuzz toward tricky prefixes the pure byte fuzz rarely forms.
    const PIECES: &[&str] = &[
        "r#\"", "\"#", "r##\"", "'a", "'x'", "b'", "/*", "*/", "//", "\n",
        "0.5", ".0", "==", "r#type", "br\"", "\"", "\\", "unwrap()", "1e9f64",
    ];
    domino_testkit::prop::check("tokenizer_fragments", |g| {
        let n = g.usize(0, 12);
        let mut src = String::new();
        for _ in 0..n {
            src.push_str(PIECES[g.usize(0, PIECES.len() - 1)]);
        }
        let _ = tokenize(&src);
    });
}
